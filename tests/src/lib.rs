//! Cross-crate integration and property tests live in `tests/tests/`; this
//! crate intentionally exports nothing.
