//! Cluster-level multi-tenant simulation: the contention-off independence
//! baseline. With `ClusterSpec::contention = false` every admitted tenant
//! gets the same private substrate a solo run would build, so each
//! [`TenantReport`] must be **byte-identical** (via `Debug`) to the same
//! workload run solo under the same policy — for arbitrary tenant mixes.
//!
//! This is the load-bearing invariant behind fig10's goodput metric: the
//! solo baselines it divides by are exactly the contention-off cluster
//! projections, so any divergence is attributable to contention alone.

use gbcr_core::cluster::{run_cluster, ClusterSpec, ClusterTenant, TenantPolicy, TenantReport};
use gbcr_core::StoreBackend;
use gbcr_des::time;
use gbcr_storage::MB;
use gbcr_workloads::{GroupLayout, MicroBench};
use proptest::prelude::*;

/// One randomized tenant's knobs, kept plain-old-data so proptest can
/// shrink them independently.
#[derive(Debug, Clone)]
struct TenantKnobs {
    n: u32,
    steps: u64,
    footprint_mb: u64,
    interval_ms: u64,
    offset_ms: u64,
    epochs: u32,
    group_size: u32,
    replicated: bool,
}

/// The raw tuple shape the (vendored, map-less) proptest draws; folded
/// into [`TenantKnobs`] by [`knobs`] inside the test body.
type RawKnobs = ((u32, u64, u64, u64), (u64, u32, usize, bool));

fn raw_knobs() -> impl Strategy<Value = RawKnobs> {
    (
        (prop::sample::select(vec![2u32, 4]), 40u64..120, 1u64..4, 400u64..900),
        (0u64..400, 1u32..3, 0usize..3, any::<bool>()),
    )
}

fn knobs(raw: &RawKnobs) -> TenantKnobs {
    let ((n, steps, fp, interval), (offset, epochs, gidx, replicated)) = *raw;
    TenantKnobs {
        n,
        steps,
        footprint_mb: fp,
        interval_ms: interval,
        offset_ms: offset,
        epochs,
        group_size: [1, 2, n][gidx],
        replicated,
    }
}

fn tenant(i: usize, k: &TenantKnobs) -> ClusterTenant {
    let mut spec = MicroBench {
        n: k.n,
        comm_group_size: 2,
        footprint: k.footprint_mb * MB,
        step_compute: time::ms(10),
        steps: k.steps,
        msg_size: 16 * 1024,
        layout: GroupLayout::Blocked,
    }
    .job();
    spec.name = format!("t{i}");
    let policy = TenantPolicy {
        interval: time::ms(k.interval_ms),
        offset: time::ms(k.offset_ms),
        epochs: k.epochs,
        group_size: k.group_size,
        backend: if k.replicated {
            StoreBackend::Replicated { replicas: 1 }
        } else {
            StoreBackend::Central
        },
        ckpt_bytes: k.footprint_mb * MB * u64::from(k.n),
    };
    ClusterTenant { spec, policy }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary tenant mixes through the cluster scheduler with
    /// contention off are byte-identical, tenant by tenant, to solo runs
    /// under the same policy expansion.
    #[test]
    fn contention_off_cluster_matches_solo_runs(mix in prop::collection::vec(raw_knobs(), 1..4)) {
        let tenants: Vec<ClusterTenant> =
            mix.iter().enumerate().map(|(i, raw)| tenant(i, &knobs(raw))).collect();
        let cluster = ClusterSpec { contention: false, ..ClusterSpec::new(tenants.clone()) };
        let report = run_cluster(&cluster, None).unwrap();
        prop_assert_eq!(report.tenants.len(), tenants.len());
        for (t, got) in tenants.iter().zip(&report.tenants) {
            // Mirror run_cluster's per-tenant substrate override: the
            // policy's backend wins over the spec's.
            let mut solo_spec = t.spec.clone();
            solo_spec.backend = t.policy.backend;
            let solo = solo_spec
                .runner()
                .ckpt(t.policy.ckpt_cfg(&t.spec.name))
                .run()
                .unwrap();
            let want = TenantReport::from_run(&t.spec.name, &solo);
            prop_assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }
}

/// The same identity, deterministic and cheap enough for `--smoke`-level
/// CI: a fixed three-tenant mix spanning both backends and all three
/// formation shapes.
#[test]
fn contention_off_fixed_mix_matches_solo() {
    let mixes = [
        TenantKnobs {
            n: 4,
            steps: 80,
            footprint_mb: 2,
            interval_ms: 500,
            offset_ms: 0,
            epochs: 2,
            group_size: 4,
            replicated: false,
        },
        TenantKnobs {
            n: 2,
            steps: 60,
            footprint_mb: 1,
            interval_ms: 700,
            offset_ms: 150,
            epochs: 1,
            group_size: 1,
            replicated: true,
        },
        TenantKnobs {
            n: 4,
            steps: 100,
            footprint_mb: 3,
            interval_ms: 600,
            offset_ms: 300,
            epochs: 2,
            group_size: 2,
            replicated: false,
        },
    ];
    let tenants: Vec<ClusterTenant> =
        mixes.iter().enumerate().map(|(i, k)| tenant(i, k)).collect();
    let cluster = ClusterSpec { contention: false, ..ClusterSpec::new(tenants.clone()) };
    let report = run_cluster(&cluster, None).unwrap();
    for (t, got) in tenants.iter().zip(&report.tenants) {
        let mut solo_spec = t.spec.clone();
        solo_spec.backend = t.policy.backend;
        let solo =
            solo_spec.runner().ckpt(t.policy.ckpt_cfg(&t.spec.name)).run().unwrap();
        let want = TenantReport::from_run(&t.spec.name, &solo);
        assert_eq!(format!("{want:?}"), format!("{got:?}"), "tenant {}", t.spec.name);
    }
}
