//! Fault-injection integration: single-node kills, torn checkpoint
//! images, and byte-level determinism of supervised faulted runs.

use gbcr_blcr::ProcessImage;
use gbcr_core::{
    extract_images, restart_job, CkptMode,
    CkptSchedule, CoordinatorCfg, Formation, RestartSpec, SupervisePolicy,
};
use gbcr_des::{time, SimError, Time};
use gbcr_faults::{FaultConfig, FaultPlan, StochasticFaults, TornWrites};
use gbcr_workloads::RandomTraffic;
use parking_lot::Mutex;
use std::sync::Arc;

const JOB: &str = "random-traffic";

fn cfg(at: Vec<Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: JOB.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

/// A mid-epoch node kill aborts the run, the report pins the victim and
/// the last complete epoch, and a restart from that epoch finishes with
/// results identical to a failure-free run.
#[test]
fn node_kill_mid_epoch_restarts_from_last_complete_epoch() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    // Kill rank 2 at 3.5 s: epoch 0 (issued 1 s) is durable, epoch 1
    // (issued 3 s) is still in flight.
    let faults = FaultConfig {
        plan: FaultPlan::node_kill_at(time::ms(3500), 2),
        detect_latency: time::ms(500),
        torn: None,
        ..FaultConfig::none()
    };
    let results = Arc::new(Mutex::new(Vec::new()));
    let crashed = w
        .job(Some(results.clone()))
        .runner()
        .ckpt(cfg(vec![time::secs(1), time::secs(3), time::secs(5)]))
        .faults(&faults)
        .run()
    .unwrap();

    assert_eq!(crashed.killed_ranks, vec![2]);
    assert!(crashed.finished_ranks < w.n, "no rank may outlive the abort");
    // The kill + detection bound the aborted run's extent.
    assert!(crashed.sim_end >= time::ms(3500) && crashed.sim_end < time::secs(6));
    assert_eq!(crashed.last_complete_epoch(JOB, w.n), Some(0));

    let images = extract_images(&crashed, JOB, 0, w.n).unwrap();
    let restarted = restart_job(
        &w.job(Some(results.clone())),
        None,
        RestartSpec { job: JOB.into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(restarted.finished_ranks, w.n);

    // Only the restarted attempt's ranks pushed results.
    let mut got = results.lock().clone();
    got.sort();
    assert_eq!(got, want, "kill + restart diverged from the failure-free run");
}

/// A torn image write leaves its epoch incomplete: the epoch is reported
/// by the coordinator but restart skips it and falls back to the previous
/// complete one.
#[test]
fn torn_image_epochs_are_skipped_on_restart() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    // Pick (pure probe, no simulation) a torn-write seed that leaves every
    // epoch-0 image intact but tears at least one epoch-1 image.
    let torn = (0u64..10_000)
        .map(|seed| TornWrites { seed, prob: 0.3 })
        .find(|t| {
            (0..w.n).all(|r| !t.tears(&ProcessImage::object_name(JOB, 0, r)))
                && (0..w.n).any(|r| t.tears(&ProcessImage::object_name(JOB, 1, r)))
        })
        .expect("some seed tears epoch 1 but not epoch 0");

    // Cluster-kill at 6 s: late enough that epoch 1 (issued 3 s) has fully
    // run its protocol, early enough that the job has not finished.
    let faults = FaultConfig {
        plan: FaultPlan::cluster_at(time::secs(6)),
        detect_latency: time::ms(500),
        torn: Some(torn),
        ..FaultConfig::none()
    };
    let crashed = w.job(None).runner().ckpt(cfg(vec![time::secs(1), time::secs(3)])).faults(&faults).run()
    .unwrap();

    // Both epochs ran protocol-wise, but the torn write keeps epoch 1 from
    // ever becoming a restart point.
    assert_eq!(crashed.epochs.len(), 2);
    assert_eq!(crashed.last_complete_epoch(JOB, w.n), Some(0));
    let err = extract_images(&crashed, JOB, 1, w.n).unwrap_err();
    assert!(
        matches!(&err, SimError::NoRestartPoint { job, detail }
            if job == JOB && detail.contains("epoch 1 incomplete")),
        "expected NoRestartPoint for the torn epoch, got {err:?}"
    );

    let images = extract_images(&crashed, JOB, 0, w.n).unwrap();
    let restarted = restart_job(
        &w.job(None),
        None,
        RestartSpec { job: JOB.into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(restarted.finished_ranks, w.n);
}

/// The full supervised faulted loop is deterministic: identical seeds give
/// byte-identical reports, and the scenario actually exercises a restart.
#[test]
fn identical_seeds_give_byte_identical_supervised_reports() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    // Pure probe: find a fault seed whose first kill lands mid-run, so the
    // determinism check covers kill → abort → restart, not a clean finish.
    // The per-node MTBF of 60 s (cluster MTBF 7.5 s) keeps later attempts
    // likely to outrun their kill draws, so the loop converges well within
    // the default retry budget.
    let seed = (0u64..10_000)
        .find(|&s| {
            let f = StochasticFaults::kills(s, time::secs(60));
            let (at, _) = f.first_kill(0, w.n);
            at > time::secs(2) && at < time::secs(5)
        })
        .expect("some seed kills mid-run");
    let faults = StochasticFaults {
        link_flap_mtbf: Some(time::secs(5)),
        torn_write_prob: 0.05,
        ..StochasticFaults::kills(seed, time::secs(60))
    };
    let ckpt = cfg(vec![time::secs(1), time::secs(3), time::secs(5)]);
    let policy = SupervisePolicy::default();

    let a = w.job(None).runner().ckpt(ckpt.clone()).supervised(policy.clone()).stochastic(&faults).unwrap();
    let b = w.job(None).runner().ckpt(ckpt).supervised(policy.clone()).stochastic(&faults).unwrap();

    assert!(a.attempts.len() >= 2, "the seeded kill must force at least one restart");
    assert!(a.attempts.last().unwrap().finished);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seeds, different reports");
}
