//! Crash-consistent commit integration: manifest-first restart selection,
//! torn-manifest demotion, phase-targeted kills escalating to the
//! supervisor, and storage-outage retry/failover.

use gbcr_core::{
    extract_images_manifested, proto, restart_job, CkptMode,
    CkptSchedule, CoordinatorCfg, Formation, PhaseDeadlines, RestartSpec,
};
use gbcr_des::{time, SimError, Time};
use gbcr_faults::{
    FaultConfig, FaultKind, FaultPlan, PhaseAction, PhaseFault, ProtocolPhase, TornWrites,
};
use gbcr_workloads::RandomTraffic;
use parking_lot::Mutex;
use std::sync::Arc;

const JOB: &str = "random-traffic";

fn cfg(at: Vec<Time>, deadlines: PhaseDeadlines) -> CoordinatorCfg {
    CoordinatorCfg {
        job: JOB.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines,
        election: Default::default(),
    }
}

/// A rank killed inside its checkpoint phase takes the epoch down with it:
/// the dead node is confirmed by the failure detector (not papered over by
/// an abort-and-retry), the supervisor-facing report pins the last
/// *manifested* epoch, and a restart from that manifest finishes with
/// results identical to a failure-free run.
#[test]
fn phase_kill_escalates_and_restarts_from_last_manifest() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    // Rank 2 dies on entry to its epoch-1 checkpoint phase. The 500 ms
    // detector confirms the death long before the 5 s group deadline, so
    // this must escalate to a job abort, not an epoch retry.
    let faults = FaultConfig {
        detect_latency: time::ms(500),
        phase_faults: vec![PhaseFault {
            epoch: 1,
            phase: ProtocolPhase::Checkpoint,
            rank: 2,
            action: PhaseAction::Kill,
        }],
        ..FaultConfig::none()
    };
    let results = Arc::new(Mutex::new(Vec::new()));
    let deadlines = PhaseDeadlines::new(time::secs(2), time::secs(5));
    let crashed = w
        .job(Some(results.clone()))
        .runner()
        .ckpt(cfg(vec![time::secs(1), time::secs(3)], deadlines))
        .faults(&faults)
        .run()
    .unwrap();

    assert_eq!(crashed.killed_ranks, vec![2]);
    assert!(crashed.finished_ranks < w.n, "no rank may outlive the abort");
    assert_eq!(crashed.protocol_aborts, 0, "a confirmed death is not a deadline abort");
    // Epoch 0's manifest committed before the kill; epoch 1 never commits.
    assert_eq!(crashed.manifest_commits, 1);
    assert!(crashed.has_manifests(JOB));
    assert_eq!(crashed.last_manifested_epoch(JOB, w.n), Some(0));

    let images = extract_images_manifested(&crashed, JOB, 0, w.n).unwrap();
    let restarted = restart_job(
        &w.job(Some(results.clone())),
        None,
        RestartSpec { job: JOB.into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(restarted.finished_ranks, w.n);

    let mut got = results.lock().clone();
    got.sort();
    assert_eq!(got, want, "phase-kill + manifest restart diverged from failure-free run");
}

/// A torn manifest commit demotes its epoch: every image survives — the
/// legacy scan would accept the epoch — but the manifest-first selector
/// refuses it and falls back to the previous committed epoch.
#[test]
fn torn_manifest_epochs_are_demoted_to_the_previous_manifest() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    // Pick (pure probe, no simulation) a seed that commits epoch 0's
    // manifest but tears epoch 1's.
    let torn = (0u64..10_000)
        .map(|seed| TornWrites { seed, prob: 0.5 })
        .find(|t| {
            !t.tears(&proto::manifest_name(JOB, 0)) && t.tears(&proto::manifest_name(JOB, 1))
        })
        .expect("some seed tears epoch 1's manifest but not epoch 0's");

    // Cluster-kill at 6 s: late enough that epoch 1 (issued 3 s) has fully
    // run its protocol, early enough that the job has not finished.
    let faults = FaultConfig {
        plan: FaultPlan::cluster_at(time::secs(6)),
        detect_latency: time::ms(500),
        torn_manifests: Some(torn),
        ..FaultConfig::none()
    };
    let crashed = w
        .job(None)
        .runner()
        .ckpt(cfg(vec![time::secs(1), time::secs(3)], PhaseDeadlines::none()))
        .faults(&faults)
        .run()
    .unwrap();

    assert_eq!(crashed.epochs.len(), 2);
    assert_eq!(crashed.manifest_commits, 1);
    assert_eq!(crashed.torn_manifests, 1);
    // All images are intact, so the image scan still accepts epoch 1 …
    assert_eq!(crashed.last_complete_epoch(JOB, w.n), Some(1));
    // … but without a committed manifest the epoch is not a restart point.
    assert_eq!(crashed.last_manifested_epoch(JOB, w.n), Some(0));
    let err = extract_images_manifested(&crashed, JOB, 1, w.n).unwrap_err();
    assert!(
        matches!(&err, SimError::NoRestartPoint { job, detail }
            if job == JOB && detail.contains("no committed manifest")),
        "expected NoRestartPoint for the torn-manifest epoch, got {err:?}"
    );

    let images = extract_images_manifested(&crashed, JOB, 0, w.n).unwrap();
    let restarted = restart_job(
        &w.job(None),
        None,
        RestartSpec { job: JOB.into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(restarted.finished_ranks, w.n);
}

/// A primary-storage outage spanning both checkpoint epochs forces every
/// image write through the retry ladder and over to the secondary target.
/// The job still finishes with failure-free results, the merged image view
/// keeps both epochs restartable, and the whole scenario is byte-level
/// deterministic.
#[test]
fn storage_outage_retries_then_fails_over_to_secondary() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    let spec = |sink| {
        let mut s = w.job(Some(sink));
        s.storage_secondary = Some(s.storage.clone());
        s
    };
    // Primary (target 0) rejects writes from 0.5 s to 20.5 s — across both
    // scheduled epochs, and longer than the full retry ladder.
    let mut plan = FaultPlan::none();
    plan.push(time::ms(500), FaultKind::StorageOutage { target: 0, duration: time::secs(20) });
    let faults = FaultConfig { plan, ..FaultConfig::none() };
    let run = |sink| {
        spec(sink)
            .runner()
            .ckpt(cfg(vec![time::secs(1), time::secs(3)], PhaseDeadlines::none()))
            .faults(&faults)
            .run()
        .unwrap()
    };
    let results = Arc::new(Mutex::new(Vec::new()));
    let report = run(results.clone());
    let replay = run(Arc::new(Mutex::new(Vec::new())));
    assert_eq!(
        format!("{report:?}"),
        format!("{replay:?}"),
        "same seed and fault plan, different reports"
    );

    assert_eq!(report.finished_ranks, w.n, "failover must keep the job alive");
    assert!(report.write_retries >= 1, "outage must be retried before failing over");
    assert!(report.failovers >= 1, "exhausted retries must fail over");
    assert!(report.storage_stats.unavailable_writes >= 1);
    // The primary was down at both commit points, so no epoch manifests —
    // but the failed-over images keep the legacy scan path restartable.
    assert_eq!(report.manifest_commits, 0);
    assert!(!report.has_manifests(JOB));
    assert_eq!(report.last_complete_epoch(JOB, w.n), Some(1));

    let mut got = results.lock().clone();
    got.sort();
    assert_eq!(got, want, "storage failover perturbed application results");
}
