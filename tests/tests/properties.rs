//! Property-based tests (proptest) over the core invariants:
//! determinism of the event engine, conservation in the storage model,
//! codec round-trips, group-plan validity, and checkpoint/restart
//! equivalence under randomized traffic, placement, and grouping.

use bytes::Bytes;
use gbcr_blcr::codec::{Decoder, Encoder};
use gbcr_blcr::ProcessImage;
use gbcr_core::{
    extract_images, restart_job, CkptMode, CkptSchedule, CoordinatorCfg, Formation,
    GroupPlan, RestartSpec,
};
use gbcr_des::{time, Sim};
use gbcr_storage::{Storage, StorageConfig, StoredObject, MB};
use gbcr_workloads::RandomTraffic;
use parking_lot::Mutex;
use proptest::prelude::*;
use rand::Rng as _;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Event engine
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two simulations with the same seed and construction produce the
    /// same event trace, for arbitrary seeds and process counts.
    #[test]
    fn des_runs_are_deterministic(seed in any::<u64>(), procs in 1usize..12) {
        fn trace(seed: u64, procs: usize) -> Vec<(u64, u64)> {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new(seed);
            for i in 0..procs as u64 {
                let log = log.clone();
                sim.spawn(format!("p{i}"), move |p| {
                    for step in 0..30u64 {
                        let dt = p.handle().with_rng(|r| r.gen_range(1..5_000u64));
                        p.sleep(time::us(dt));
                        log.lock().push((p.now(), i * 1000 + step));
                    }
                });
            }
            sim.run().unwrap();
            let v = log.lock().clone();
            v
        }
        prop_assert_eq!(trace(seed, procs), trace(seed, procs));
    }
}

// ---------------------------------------------------------------------
// Storage model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and fairness: with arbitrary staggered writers, every
    /// byte requested is eventually recorded as transferred, no client
    /// ever exceeds the single-client ceiling, and the aggregate over the
    /// busy span never exceeds the configured aggregate bandwidth.
    #[test]
    fn storage_conserves_bytes_and_respects_limits(
        sizes in prop::collection::vec(1u64..400, 1..24),
        stagger_ms in prop::collection::vec(0u64..3_000, 24),
    ) {
        let mut sim = Sim::new(7);
        let cfg = StorageConfig::paper_testbed();
        let storage = Storage::new(sim.handle(), cfg.clone());
        let total: u64 = sizes.iter().map(|s| s * MB).sum();
        for (i, (&mb, &st)) in sizes.iter().zip(&stagger_ms).enumerate() {
            let s = storage.clone();
            sim.spawn(format!("w{i}"), move |p| {
                p.sleep(time::ms(st));
                s.write(p, i as u32, &format!("o{i}"), StoredObject::bulk(mb * MB));
            });
        }
        sim.run().unwrap();
        let stats = storage.stats();
        prop_assert_eq!(stats.records.len(), sizes.len());
        prop_assert_eq!(stats.total_bytes(), total);
        for r in &stats.records {
            prop_assert!(
                r.mean_bandwidth() <= cfg.single_client_bw * 1.001,
                "client {} exceeded the single-client ceiling: {}",
                r.client,
                r.mean_bandwidth()
            );
        }
        prop_assert!(stats.aggregate_throughput() <= cfg.aggregate_bw * 1.001);
    }
}

// ---------------------------------------------------------------------
// Codec / image framing
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_arbitrary_values(
        u in any::<u64>(),
        i in any::<i64>(),
        f in any::<f64>(),
        b in any::<bool>(),
        s in ".{0,64}",
        v in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut e = Encoder::new();
        e.put_u64(u);
        e.put_i64(i);
        e.put_f64(f);
        e.put_bool(b);
        e.put_str(&s);
        e.put_seq(&v);
        let mut d = Decoder::new(e.finish());
        prop_assert_eq!(d.get_u64().unwrap(), u);
        prop_assert_eq!(d.get_i64().unwrap(), i);
        let f2 = d.get_f64().unwrap();
        prop_assert_eq!(f2.to_bits(), f.to_bits(), "f64 must round-trip by bits");
        prop_assert_eq!(d.get_bool().unwrap(), b);
        prop_assert_eq!(d.get_str().unwrap(), s);
        prop_assert_eq!(d.get_seq::<u64>().unwrap(), v);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn image_round_trips_and_decoder_never_panics(
        rank in any::<u32>(),
        epoch in any::<u64>(),
        footprint in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let img = ProcessImage {
            rank,
            epoch,
            taken_at: 1,
            footprint,
            restore_extra: footprint / 3,
            app_state: Bytes::from(payload),
        };
        prop_assert_eq!(ProcessImage::decode(img.encode()).unwrap(), img);
        // Arbitrary bytes must decode to Err, never panic.
        let _ = ProcessImage::decode(Bytes::from(garbage));
    }
}

// ---------------------------------------------------------------------
// Group formation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dynamic formation always yields a valid partition (every rank in
    /// exactly one group) for arbitrary traffic matrices and thresholds.
    #[test]
    fn dynamic_formation_always_partitions(
        n in 2u32..24,
        edges in prop::collection::vec((any::<u32>(), any::<u32>(), 1u64..10_000), 0..64),
        frac in 0.01f64..1.0,
        fallback in 1u32..8,
    ) {
        let mut traffic = vec![Vec::new(); n as usize];
        for (a, b, w) in edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                traffic[a as usize].push((b, w, w * 100));
            }
        }
        let plan = GroupPlan::dynamic(n, &traffic, frac, fallback, n.max(2) - 1);
        // Validity is enforced by GroupPlan::new internally; double-check.
        let mut seen = vec![false; n as usize];
        for g in plan.groups() {
            for &r in g {
                prop_assert!(!seen[r as usize], "rank {r} appears twice");
                seen[r as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some rank missing from the plan");
        for r in 0..n {
            prop_assert!(plan.members(plan.group_of(r)).contains(&r));
        }
    }

    /// Static formation covers all ranks in order for any size.
    #[test]
    fn static_formation_partitions(n in 1u32..64, g in 0u32..70) {
        let plan = GroupPlan::by_size(n, g);
        let flat: Vec<u32> = plan.groups().iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..n).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------
// End-to-end checkpoint/restart equivalence (randomized)
// ---------------------------------------------------------------------

proptest! {
    // Each case runs three full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random communication patterns, checkpoint placements, and group
    /// sizes: the checkpointed run produces the uninterrupted result, and
    /// a restart from the epoch reproduces it too.
    #[test]
    fn randomized_checkpoint_restart_equivalence(
        pattern_seed in 0u64..1_000_000,
        group_size in prop::sample::select(vec![1u32, 2, 3, 4, 8]),
        at_ms in 500u64..2_500, // safely before the ~3.3 s+ completion
    ) {
        let w = RandomTraffic { pattern_seed, steps: 110, ..Default::default() };
        let truth = Arc::new(Mutex::new(Vec::new()));
        w.job(Some(truth.clone())).runner().run().unwrap();
        let mut want = truth.lock().clone();
        want.sort();

        let cfg = CoordinatorCfg {
            job: "random-traffic".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size },
            schedule: CkptSchedule::once(time::ms(at_ms)),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let mid = Arc::new(Mutex::new(Vec::new()));
        let report = w.job(Some(mid.clone())).runner().ckpt(cfg).run().unwrap();
        let mut got = mid.lock().clone();
        got.sort();
        prop_assert_eq!(&got, &want, "checkpointed run diverged");

        let images = extract_images(&report, "random-traffic", 0, w.n).unwrap();
        let rec = Arc::new(Mutex::new(Vec::new()));
        restart_job(
            &w.job(Some(rec.clone())),
            None,
            RestartSpec { job: "random-traffic".into(), epoch: 0, images, lost_nodes: vec![] },
        )
        .unwrap();
        let mut got = rec.lock().clone();
        got.sort();
        prop_assert_eq!(&got, &want, "restarted run diverged");
    }
}
