//! Scheduler equivalence suite: the conservative-window parallel
//! scheduler must produce **byte-identical** model outputs to the serial
//! single-heap oracle on every workload, for any shard count and any
//! fabric lookahead — including the zero-lookahead degenerate case, which
//! must fall back to lockstep windows rather than deadlock.

use gbcr_blcr::codec::fnv1a;
use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg, Formation, JobSpec, PhaseDeadlines,
    RunReport,
};
use gbcr_des::{time, SchedKind};
use gbcr_storage::MB;
use gbcr_workloads::{MicroBench, MotifMinerWorkload};
use parking_lot::Mutex;
use proptest::prelude::*;

/// `set_sched_default` / `set_shard_count_default` are process-wide, so
/// runs that flip them must not interleave within this test binary.
static SCHED_LOCK: Mutex<()> = Mutex::new(());

/// Run `spec` under the given scheduler configuration, restoring the
/// process-wide default (serial) afterwards.
fn run_with(kind: SchedKind, shards: usize, spec: &JobSpec, ckpt: CoordinatorCfg) -> RunReport {
    let _guard = SCHED_LOCK.lock();
    gbcr_des::set_sched_default(kind);
    gbcr_des::set_shard_count_default(shards);
    let report = spec.runner().ckpt(ckpt).run();
    gbcr_des::set_sched_default(SchedKind::Serial);
    gbcr_des::set_shard_count_default(0);
    report.expect("job completes")
}

/// Every model output of a run, rendered to one comparable string.
/// Simulator-cost fields (wall clocks, executor/scheduler backend, shard
/// telemetry, and the `events`/`elided_wakes` counters) are deliberately
/// excluded — they are *about* the simulator, not outputs *of* the model.
/// The event counters in particular may legitimately differ by a few
/// same-timestamp wake coalescings: when a park and its matching delivery
/// share a timestamp, the serial `(time, seq)` order and the parallel
/// `(time, lane, lane_seq)` merge can dispatch them in a different
/// intra-batch order, so one backend parks-and-wakes where the other
/// finds the message already queued. Both orders are individually
/// deterministic and produce identical model outputs.
fn digest(r: &RunReport) -> String {
    let images: Vec<(String, u64, u64)> = r
        .images
        .iter()
        .map(|(name, obj)| (name.clone(), obj.virtual_size, fnv1a(&obj.payload)))
        .collect();
    format!(
        "completion={} sim_end={} finished={} epochs={:?} \
         records={:?} net={:?} defer={:?} logged={} cl_logged={} images={:?} \
         aborts={} retries={} manifests={} torn={} sends_to_failed={}",
        r.completion,
        r.sim_end,
        r.finished_ranks,
        r.epochs,
        r.rank_records,
        r.net_stats,
        r.defer_stats,
        r.logged_bytes,
        r.channel_logged_bytes,
        images,
        r.protocol_aborts,
        r.epoch_retries,
        r.manifest_commits,
        r.torn_manifests,
        r.sends_to_failed,
    )
}

fn micro_spec(n: u32, group: u32) -> JobSpec {
    MicroBench {
        n,
        comm_group_size: group,
        footprint: 4 * MB,
        step_compute: time::ms(10),
        steps: 6,
        msg_size: 4 * 1024,
        ..MicroBench::default()
    }
    .job()
}

fn ckpt_once(n: u32, at: gbcr_des::Time) -> CoordinatorCfg {
    CoordinatorCfg {
        job: "sched-eq".into(),
        mode: CkptMode::Buffering,
        formation: Formation::regular(n),
        schedule: CkptSchedule::once(at),
        incremental: false,
        deadlines: PhaseDeadlines::none(),
        election: Default::default(),
    }
}

#[test]
fn micro_model_outputs_identical_serial_vs_parallel() {
    let n = 8;
    let spec = micro_spec(n, 4);
    let serial = run_with(SchedKind::Serial, 0, &spec, ckpt_once(n, time::ms(25)));
    assert_eq!(serial.sched, SchedKind::Serial);
    assert_eq!(serial.sched_telemetry.windows, 0);
    for shards in [2usize, 3, 5] {
        let par = run_with(SchedKind::Parallel, shards, &spec, ckpt_once(n, time::ms(25)));
        assert_eq!(par.sched, SchedKind::Parallel, "parallel run fell back at {shards} shards");
        assert_eq!(par.sched_telemetry.shards, shards as u64);
        assert!(par.sched_telemetry.windows > 0, "no windows recorded");
        assert_eq!(digest(&serial), digest(&par), "model outputs diverged at {shards} shards");
    }
}

#[test]
fn motifminer_model_outputs_identical_serial_vs_parallel() {
    let wl = MotifMinerWorkload {
        n: 6,
        iterations: 2,
        iter_compute: time::ms(50),
        footprint: MB,
        exchange_bytes: 64 * 1024,
        atoms: 16,
        ..MotifMinerWorkload::default()
    };
    let spec = wl.job(None);
    let serial = run_with(SchedKind::Serial, 0, &spec, ckpt_once(wl.n, time::ms(60)));
    let par = run_with(SchedKind::Parallel, 2, &spec, ckpt_once(wl.n, time::ms(60)));
    assert_eq!(par.sched, SchedKind::Parallel);
    assert_eq!(digest(&serial), digest(&par));
}

/// Zero lookahead (both fabrics at zero wire latency) forces every window
/// degenerate: single-timestamp batches in lockstep. The run must still
/// terminate — each window is guaranteed to execute at least the `T_min`
/// batch — and match the serial oracle exactly.
#[test]
fn zero_lookahead_runs_in_lockstep_without_deadlock() {
    let n = 6;
    let mut spec = micro_spec(n, 3);
    spec.mpi.net.latency = 0;
    spec.mpi.oob.latency = 0;
    let serial = run_with(SchedKind::Serial, 0, &spec, ckpt_once(n, time::ms(25)));
    let par = run_with(SchedKind::Parallel, 3, &spec, ckpt_once(n, time::ms(25)));
    assert_eq!(par.sched, SchedKind::Parallel);
    let t = par.sched_telemetry;
    assert!(t.windows > 0);
    assert_eq!(t.windows, t.fenced_windows, "zero lookahead must fence every window");
    assert_eq!(digest(&serial), digest(&par));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary shard counts (i.e. arbitrary contiguous rank
    /// partitions) and arbitrary fabric lookaheads, the parallel
    /// scheduler's model outputs are byte-identical to the serial
    /// oracle's under the same configuration.
    #[test]
    fn random_partitions_and_lookaheads_are_byte_identical(
        shards in 2usize..6,
        net_us in 0u64..20,
        oob_us in 0u64..60,
        n in 4u32..10,
    ) {
        let mut spec = micro_spec(n, 1);
        spec.mpi.net.latency = time::us(net_us);
        spec.mpi.oob.latency = time::us(oob_us);
        let serial = run_with(SchedKind::Serial, 0, &spec, ckpt_once(n, time::ms(20)));
        let par = run_with(SchedKind::Parallel, shards, &spec, ckpt_once(n, time::ms(20)));
        if shards.min(n as usize) >= 2 {
            prop_assert_eq!(par.sched, SchedKind::Parallel);
        }
        prop_assert_eq!(digest(&serial), digest(&par));
    }
}
