//! Property and identity tests for the survivable control plane: under
//! random coordinator/participant kill schedules, the lease-based
//! election must elect **exactly one leader per term** with strictly
//! monotone term numbers, supervised runs must replay **byte-identically
//! under the same seed**, and with no faults injected the whole lease
//! machinery must be a **pure observer** — heartbeats and standbys change
//! nothing the model reports.

use gbcr_core::{
    CkptMode,
    CkptSchedule, CoordinatorCfg, ElectionCfg, Formation, PhaseDeadlines, SupervisePolicy,
};
use gbcr_des::trace::Event;
use gbcr_des::{time, TraceLevel};
use gbcr_faults::{FaultConfig, FaultKind, FaultPlan, StochasticFaults};
use gbcr_workloads::{random::ResultsSink, RandomTraffic};
use proptest::prelude::*;

fn cfg(n: u32, election: ElectionCfg) -> CoordinatorCfg {
    CoordinatorCfg {
        job: "election-prop".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: (n / 2).max(1) },
        schedule: CkptSchedule { at: vec![time::secs(1), time::secs(3), time::secs(5)] },
        incremental: false,
        deadlines: PhaseDeadlines::none(),
        election,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary mixes of coordinator kills and a participant kill:
    /// every `ElectionWon` carries a unique term, terms strictly
    /// increase over virtual time, and the report's migration counter
    /// agrees with the event stream.
    #[test]
    fn one_leader_per_term_and_terms_are_monotone(
        seed in any::<u64>(),
        coord_kills in prop::collection::vec(400u64..7_000, 1..3),
        kill_a_rank in any::<bool>(),
        rank_kill in (2_000u64..7_000, 0u32..4),
    ) {
        let n = 4;
        let w = RandomTraffic { n, steps: 150, ..RandomTraffic::default() };
        let mut plan = FaultPlan::none();
        for &at in &coord_kills {
            plan.push(time::ms(at), FaultKind::CoordinatorKill);
        }
        if kill_a_rank {
            let (at, rank) = rank_kill;
            plan.push(time::ms(at), FaultKind::NodeKill { rank });
        }
        let faults = FaultConfig { plan, ..FaultConfig::none() };
        let report = w
            .job(None)
            .runner()
            .ckpt(cfg(n, ElectionCfg::failover(seed)))
            .faults(&faults)
            .traced(TraceLevel::Phases)
            .run()
        .expect("faulted run");
        let data = report.trace.as_ref().expect("traced run records data");
        let wins: Vec<(u64, u32)> = data
            .instants
            .iter()
            .filter_map(|i| match i.event {
                Event::ElectionWon { term, leader } => Some((term, leader)),
                _ => None,
            })
            .collect();
        let terms: Vec<u64> = wins.iter().map(|w| w.0).collect();
        prop_assert!(
            terms.windows(2).all(|p| p[0] < p[1]),
            "terms not strictly monotone (one leader per term violated): {wins:?}"
        );
        prop_assert!(
            terms.iter().all(|&t| t >= 2),
            "an election won the bootstrap term: {wins:?}"
        );
        prop_assert_eq!(
            report.leader_migrations,
            wins.len() as u64,
            "migration counter disagrees with the ElectionWon stream"
        );
        if let Some(&(last, _)) = wins.last() {
            prop_assert!(report.terms >= last, "report term {} behind last win {last}", report.terms);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed, same stochastic coordinator + participant kill process:
    /// two supervised runs produce byte-identical `SupervisedReport`s
    /// (or byte-identical errors), elections included.
    #[test]
    fn supervised_failover_replays_byte_identically(seed in any::<u64>()) {
        let n = 4;
        let w = RandomTraffic { n, steps: 150, ..RandomTraffic::default() };
        let run = || {
            let faults = StochasticFaults {
                coord_mtbf: Some(time::secs(15)),
                ..StochasticFaults::kills(seed, time::secs(40))
            };
            w
                .job(None)
                .runner()
                .ckpt(cfg(n, ElectionCfg::failover(seed)))
                .supervised(SupervisePolicy::default())
                .stochastic(&faults)
        };
        prop_assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A coordinator kill at an arbitrary point in the run — mid-epoch,
    /// between epochs, during the finish drain, even after completion —
    /// never loses the job: every rank finishes and per-rank results stay
    /// byte-identical to the fault-free run.
    #[test]
    fn failover_preserves_results_for_arbitrary_kill_times(
        seed in any::<u64>(),
        kill_ms in 200u64..8_000,
    ) {
        let n = 4;
        let w = RandomTraffic { n, steps: 150, ..RandomTraffic::default() };
        let truth = ResultsSink::default();
        w.job(Some(truth.clone())).runner().ckpt(cfg(n, ElectionCfg::failover(seed))).run()
            .expect("fault-free run");
        let mut want = truth.lock().clone();
        want.sort();

        let faults = FaultConfig {
            plan: FaultPlan::coordinator_kill_at(time::ms(kill_ms)),
            ..FaultConfig::none()
        };
        let results = ResultsSink::default();
        let report = w
            .job(Some(results.clone()))
            .runner()
            .ckpt(cfg(n, ElectionCfg::failover(seed)))
            .faults(&faults)
            .run()
        .expect("coordinator-kill run");
        prop_assert_eq!(report.finished_ranks, n, "failover lost the job (kill at {kill_ms} ms)");
        let mut got = results.lock().clone();
        got.sort();
        prop_assert_eq!(got, want, "results diverged (kill at {} ms)", kill_ms);
    }
}

/// With no faults injected, enabling the lease machinery changes nothing
/// the model reports: completion time, per-epoch reports, per-rank
/// checkpoint records and per-rank results are byte-identical to a run
/// with the control plane disabled.
#[test]
fn fault_free_election_is_a_pure_observer() {
    let n = 8;
    let w = RandomTraffic { n, steps: 220, ..RandomTraffic::default() };
    let run = |election: ElectionCfg| {
        let sink = ResultsSink::default();
        let report = w.job(Some(sink.clone())).runner().ckpt(cfg(n, election)).run().expect("clean run");
        let mut results = sink.lock().clone();
        results.sort();
        (
            report.completion,
            format!("{:?}", report.epochs),
            format!("{:?}", report.rank_records),
            results,
        )
    };
    let on = run(ElectionCfg::failover(0xE1EC));
    let off = run(ElectionCfg::disabled());
    assert_eq!(on.0, off.0, "completion time shifted");
    assert_eq!(on.1, off.1, "epoch reports shifted");
    assert_eq!(on.2, off.2, "rank checkpoint records shifted");
    assert_eq!(on.3, off.3, "per-rank results shifted");
}
