//! Analytical models vs the simulator: the paper's Eq. 1–3 and the
//! advisor's placement window must agree with what the full stack
//! measures.

use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::time;
use gbcr_metrics::{placement_window, young_interval, AdvisorInputs};
use gbcr_storage::{StorageConfig, MB};
use gbcr_workloads::{MicroBench, PlacementBench};

/// Eq. 1 / Eq. 2a / Eq. 3a: `Individual ≈ footprint × group / B`, measured
/// across several group sizes on the micro-benchmark.
#[test]
fn equation_individual_time_matches_measurement() {
    let mb = MicroBench { n: 16, comm_group_size: 4, steps: 200, ..Default::default() };
    let cfg_storage = StorageConfig::paper_testbed();
    for g in [16u32, 8, 4] {
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: g },
            schedule: CkptSchedule::once(time::secs(10)),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let report = mb.job().runner().ckpt(cfg).run().unwrap();
        let measured = time::as_secs_f64(report.epochs[0].mean_individual());
        let predicted =
            (u64::from(g) * mb.footprint) as f64 / cfg_storage.aggregate_rate(g as usize);
        assert!(
            (measured - predicted).abs() / predicted < 0.15,
            "g={g}: measured {measured:.2}s vs Eq. 3a {predicted:.2}s"
        );
    }
}

/// Eq. 3b: `Total ≈ groups × Individual` for the group-based protocol.
#[test]
fn equation_total_time_matches_measurement() {
    let mb = MicroBench { n: 16, comm_group_size: 4, steps: 200, ..Default::default() };
    let cfg = CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule::once(time::secs(10)),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let report = mb.job().runner().ckpt(cfg).run().unwrap();
    let ep = &report.epochs[0];
    let predicted = ep.mean_individual() * ep.plan.group_count() as u64;
    let total = ep.total_time();
    assert!(
        (total as f64 - predicted as f64).abs() / (predicted as f64) < 0.15,
        "total {} vs groups × individual {}",
        time::fmt(total),
        time::fmt(predicted)
    );
}

/// The advisor's placement window against the actual Figure 4 machinery:
/// issuing at the predicted best offset must beat the predicted worst
/// offset by roughly `Total − Individual`.
#[test]
fn placement_window_prediction_matches_figure4_behavior() {
    let pb = PlacementBench {
        n: 8,
        comm_group_size: 4,
        footprint: 120 * MB,
        steps_per_period: 120, // × 250 ms = 30 s period
        periods: 3,
        ..Default::default()
    };
    let spec = pb.job();
    let base = spec.runner().run().unwrap();
    let measure = |at| {
        let cfg = CoordinatorCfg {
            job: "placement".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 4 },
            schedule: CkptSchedule::once(at),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let ck = spec.runner().ckpt(cfg).run().unwrap();
        (
            time::as_secs_f64(ck.completion.saturating_sub(base.completion)),
            ck.epochs[0].total_time(),
        )
    };
    // Probe once to learn the total checkpoint time, then ask the advisor.
    let (_, total) = measure(time::secs(31));
    let period = pb.barrier_interval();
    let (best_off, worst_off) = placement_window(period, total);
    // Second barrier period starts at 30 s.
    let (best_eff, _) = measure(time::secs(30) + best_off + time::secs(1));
    let (worst_eff, _) = measure(time::secs(30) + worst_off);
    assert!(
        best_eff < 0.6 * worst_eff,
        "advised best placement ({best_eff:.1}s) must clearly beat the worst \
         ({worst_eff:.1}s)"
    );
}

/// Young's interval really is (locally) optimal: at the advised interval
/// the modeled overhead is below both a much shorter and a much longer
/// interval's overhead.
#[test]
fn young_interval_is_a_local_minimum() {
    let inputs =
        AdvisorInputs { effective_delay: 12.0, mtbf: 3_600.0, restart_read: 20.0 };
    let advice = young_interval(inputs);
    let overhead = |interval: f64| {
        inputs.effective_delay / interval
            + interval / (2.0 * inputs.mtbf)
            + inputs.restart_read / inputs.mtbf
    };
    assert!(advice.overhead_fraction < overhead(advice.interval / 3.0));
    assert!(advice.overhead_fraction < overhead(advice.interval * 3.0));
    assert!((overhead(advice.interval) - advice.overhead_fraction).abs() < 1e-12);
}
