//! Supervised execution: multiple injected cluster failures, automatic
//! restart from the newest surviving checkpoint each time, final result
//! identical to a failure-free run.

use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg, Formation, SupervisePolicy,
};
use gbcr_des::time;
use gbcr_workloads::RandomTraffic;
use parking_lot::Mutex;
use std::sync::Arc;

fn cfg(at: Vec<gbcr_des::Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: "random-traffic".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

#[test]
fn survives_two_cluster_failures_and_finishes_exactly() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    let results = Arc::new(Mutex::new(Vec::new()));
    let report = w
        .job(Some(results.clone()))
        .runner()
        .ckpt(cfg(vec![time::secs(1), time::secs(3), time::secs(5)]))
        .supervised(SupervisePolicy::immediate())
        // Crash twice: once after epoch 0 completed (~3 s), once in the
        // restored attempt after its own first epochs.
        .crashes(&[time::ms(3500), time::ms(4800)])
        .unwrap();

    assert_eq!(report.failures_survived(), 2);
    assert_eq!(report.attempts.len(), 3);
    assert!(report.attempts[0].crashed_at.is_some());
    assert_eq!(report.attempts[0].restored_from, None);
    assert!(report.attempts[1].restored_from.is_some());
    assert!(report.attempts.last().unwrap().finished);

    // Only the final attempt's ranks push results (earlier attempts died
    // before their bodies completed).
    let mut got = results.lock().clone();
    got.sort();
    assert_eq!(got, want, "supervised recovery diverged from the truth");
}

#[test]
fn crash_before_any_checkpoint_is_fatal() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let err = w
        .job(None)
        .runner()
        .ckpt(cfg(vec![time::secs(3)]))
        .supervised(SupervisePolicy::immediate())
        .crashes(&[time::ms(500)]) // long before epoch 0 completes
        .unwrap_err();
    assert!(
        matches!(&err, gbcr_des::SimError::NoRestartPoint { detail, .. }
            if detail.contains("preceded the first complete checkpoint")),
        "expected NoRestartPoint, got {err:?}"
    );
}
