//! Whole-cluster crash recovery across the full stack: run a job with
//! periodic checkpoints, power-fail the cluster mid-run (every simulated
//! process killed), salvage the durable images from central storage, and
//! recover on a fresh cluster to the exact result of an uninterrupted run.

use gbcr_core::{
    extract_images, restart_job, CkptMode, CkptSchedule,
    CoordinatorCfg, Formation, RestartSpec,
};
use gbcr_des::time;
use gbcr_storage::MB;
use gbcr_workloads::{hpl, HplWorkload, RandomTraffic};
use parking_lot::Mutex;
use std::sync::Arc;

fn cfg(job: &str, group_size: u32, at: Vec<gbcr_des::Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

#[test]
fn crash_after_epoch_recovers_exactly() {
    let w = RandomTraffic { steps: 150, ..Default::default() };

    // Ground truth.
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    // Checkpoint at 1 s, power failure at 3 s (workload runs ~4.5 s+).
    let crashed = w
        .job(None)
        .runner()
        .ckpt(cfg("random-traffic", 4, vec![time::secs(1)]))
        .crash_at(time::secs(3))
        .run()
    .unwrap();
    assert_eq!(crashed.epochs.len(), 1, "epoch 0 completed before the crash");
    // The crashed run obviously produced no results.
    let images = extract_images(&crashed, "random-traffic", 0, w.n).unwrap();

    // Recover on a fresh cluster.
    let rec = Arc::new(Mutex::new(Vec::new()));
    restart_job(
        &w.job(Some(rec.clone())),
        None,
        RestartSpec { job: "random-traffic".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    let mut got = rec.lock().clone();
    got.sort();
    assert_eq!(got, want, "post-crash recovery diverged from the uninterrupted run");
}

#[test]
fn crash_during_an_epoch_recovers_from_the_previous_one() {
    let w = RandomTraffic { steps: 200, ..Default::default() };
    let truth = Arc::new(Mutex::new(Vec::new()));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    // Epoch 0 at 1 s completes; epoch 1 at 4 s is interrupted by the crash
    // at 4.2 s (mid-epoch: image writes take ~1.4 s per group here).
    let crashed = w
        .job(None)
        .runner()
        .ckpt(cfg("random-traffic", 4, vec![time::secs(1), time::secs(4)]))
        .crash_at(time::ms(4200))
        .run()
    .unwrap();
    assert_eq!(
        crashed.epochs.len(),
        1,
        "only epoch 0 completed; the interrupted epoch must not be reported"
    );

    let images = extract_images(&crashed, "random-traffic", 0, w.n).unwrap();
    let rec = Arc::new(Mutex::new(Vec::new()));
    restart_job(
        &w.job(Some(rec.clone())),
        None,
        RestartSpec { job: "random-traffic".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    let mut got = rec.lock().clone();
    got.sort();
    assert_eq!(got, want, "recovery from the last complete epoch diverged");
}

#[test]
fn hpl_crash_recovery_matches_oracle() {
    let w = HplWorkload {
        grid_rows: 4,
        grid_cols: 2,
        panels: 24,
        base_footprint: 25 * MB,
        factor_time: time::ms(50),
        update_time: time::ms(400),
        panel_bytes: MB,
        update_substeps: 4,
    };
    let oracle = hpl::sequential_digest_sum(w.panels, w.grid_rows, w.grid_cols);

    let crashed = w.job(None).runner().ckpt(cfg("hpl", 4, vec![time::secs(2)])).crash_at(time::secs(6)).run()
    .unwrap();
    assert_eq!(crashed.epochs.len(), 1);
    let images = extract_images(&crashed, "hpl", 0, w.n()).unwrap();

    let sum = Arc::new(Mutex::new(0u64));
    restart_job(
        &w.job(Some(sum.clone())),
        None,
        RestartSpec { job: "hpl".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(*sum.lock(), oracle, "post-crash HPL result diverged from the oracle");
}

#[test]
fn recovering_from_the_interrupted_epoch_is_impossible() {
    let w = RandomTraffic { steps: 200, ..Default::default() };
    let crashed = w
        .job(None)
        .runner()
        .ckpt(cfg("random-traffic", 4, vec![time::secs(1), time::secs(4)]))
        .crash_at(time::ms(4200))
        .run()
    .unwrap();
    // Epoch 1 was cut short: its image set must be rejected with a typed
    // error a supervisor can catch (fall back to epoch 0).
    let err = extract_images(&crashed, "random-traffic", 1, w.n).unwrap_err();
    assert!(
        matches!(&err, gbcr_des::SimError::NoRestartPoint { detail, .. }
            if detail.contains("epoch 1 incomplete")),
        "expected NoRestartPoint for the torn epoch, got {err:?}"
    );
    // The shared survival scan agrees: epoch 0 is the restart point.
    assert_eq!(crashed.last_complete_epoch("random-traffic", w.n), Some(0));
}
