//! The diskless peer-replicated checkpoint store, end to end: remote
//! recovery after node kills, typed failure when every copy is lost,
//! byte-level determinism, and cross-backend result agreement.

use gbcr_core::{
    extract_images, CkptMode, CkptSchedule,
    CoordinatorCfg, Formation, JobSpec, StoreBackend, SupervisePolicy,
};
use gbcr_des::{time, SimError, Time};
use gbcr_faults::rng::{draw_u64, Domain};
use gbcr_faults::{FaultConfig, FaultKind, FaultPlan, StochasticFaults};
use gbcr_storage::replica_nodes;
use gbcr_workloads::random::ResultsSink;
use gbcr_workloads::RandomTraffic;
use proptest::prelude::*;

const JOB: &str = "random-traffic";

fn cfg(at: Vec<Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: JOB.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

fn replicated(mut spec: JobSpec) -> JobSpec {
    spec.backend = StoreBackend::Replicated { replicas: 2 };
    spec
}

/// Same seeds, same backend, same bytes: the replicated store's fan-out,
/// placement draw and remote recovery are all deterministic, so two
/// identically-seeded supervised runs produce byte-identical reports.
#[test]
fn identical_seeds_give_byte_identical_replicated_reports() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let seed = (0u64..10_000)
        .find(|&s| {
            let f = StochasticFaults::kills(s, time::secs(60));
            let (at, _) = f.first_kill(0, w.n);
            at > time::secs(2) && at < time::secs(5)
        })
        .expect("some seed kills mid-run");
    let faults = StochasticFaults::kills(seed, time::secs(60));
    let ckpt = cfg(vec![time::secs(1), time::secs(3), time::secs(5)]);
    let policy = SupervisePolicy::default();

    let a =
        replicated(w.job(None))
            .runner()
            .ckpt(ckpt.clone())
            .supervised(policy.clone())
            .stochastic(&faults)
            .unwrap();
    let b = replicated(w.job(None))
        .runner()
        .ckpt(ckpt)
        .supervised(policy.clone())
        .stochastic(&faults)
        .unwrap();

    assert!(a.attempts.len() >= 2, "the seeded kill must force at least one restart");
    assert!(a.attempts.last().unwrap().finished);
    assert!(a.counters.replicas_written > 0, "fan-out must have happened");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seeds, different reports");
}

/// A node kill destroys the victim's local copies, yet the supervised run
/// recovers: the replacement node reads the dead rank's image from a
/// surviving remote replica (every other rank restores locally), and the
/// final results match a failure-free run exactly.
#[test]
fn node_kill_recovers_from_remote_replica() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let truth = ResultsSink::default();
    w.job(Some(truth.clone())).runner().run().unwrap();
    let mut want = truth.lock().clone();
    want.sort();

    let seed = (0u64..10_000)
        .find(|&s| {
            let f = StochasticFaults::kills(s, time::secs(60));
            let (at, _) = f.first_kill(0, w.n);
            at > time::secs(2) && at < time::secs(5)
        })
        .expect("some seed kills mid-run");
    let faults = StochasticFaults::kills(seed, time::secs(60));
    let results = ResultsSink::default();
    let report = replicated(w.job(Some(results.clone())))
        .runner()
        .ckpt(cfg(vec![time::secs(1), time::secs(3), time::secs(5)]))
        .supervised(SupervisePolicy::default())
        .stochastic(&faults)
    .unwrap();

    assert!(report.failures_survived() >= 1);
    assert!(
        report.counters.replica_losses > 0,
        "the kill must have taken co-located replica copies down with it"
    );
    assert!(
        report.counters.remote_recoveries >= 1,
        "the dead rank's image must have been served from a remote replica"
    );
    assert!(
        report.counters.local_recoveries >= 1,
        "surviving ranks must restore from their own node's copy"
    );
    let mut got = results.lock().clone();
    got.sort();
    assert_eq!(got, want, "replicated recovery diverged from the truth");
}

/// Killing a rank's owner node AND both of its replica nodes destroys all
/// k+1 copies of its image: the epoch is no longer restartable and image
/// extraction fails with the typed [`SimError::NoRestartPoint`] — never a
/// panic, so supervisors can degrade to a cold restart.
#[test]
fn losing_every_copy_is_a_typed_no_restart_point() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let spec = replicated(w.job(None));
    // Reproduce the harness's placement draw to aim the kills: rank 0's
    // image lives on node 0 plus these two ring peers.
    let shift = draw_u64(spec.seed, Domain::Replica, u64::from(w.n));
    let peers = replica_nodes(0, w.n, 2, shift);
    let mut plan = FaultPlan::node_kill_at(time::ms(3500), 0);
    plan.push(time::ms(3501), FaultKind::NodeKill { rank: peers[0] });
    plan.push(time::ms(3502), FaultKind::NodeKill { rank: peers[1] });
    let faults = FaultConfig {
        plan,
        detect_latency: time::ms(500),
        ..FaultConfig::none()
    };

    let report =
        spec.runner().ckpt(cfg(vec![time::secs(1), time::secs(3)])).faults(&faults).run().unwrap();
    let mut killed = report.killed_ranks.clone();
    killed.sort_unstable();
    let mut expect = vec![0, peers[0], peers[1]];
    expect.sort_unstable();
    assert_eq!(killed, expect, "all three kills must land before the abort");

    // Epoch 0 was durable everywhere before the kills, but every copy of
    // rank 0's image died with the three nodes.
    let err = extract_images(&report, JOB, 0, w.n).unwrap_err();
    assert!(
        matches!(err, SimError::NoRestartPoint { .. }),
        "expected NoRestartPoint, got {err:?}"
    );
    // A rank whose owner survived still has its image (replication never
    // *reduces* durability).
    let survivor = (0..w.n).find(|r| !report.killed_ranks.contains(r)).unwrap();
    let name = gbcr_blcr::ProcessImage::object_name(JOB, 0, survivor);
    assert!(report.images.iter().any(|(k, _)| *k == name));
}

/// Without faults the three backends are interchangeable: the baseline
/// (no checkpoints, no storage traffic) is byte-identical, and
/// checkpointed runs commit the same epochs and compute identical results
/// (only the checkpoint write latencies legitimately differ).
#[test]
fn fault_free_runs_agree_across_backends() {
    let w = RandomTraffic { steps: 220, ..Default::default() };
    let failover = |mut spec: JobSpec| -> JobSpec {
        spec.storage_secondary = Some(spec.storage.clone());
        spec
    };

    // Baseline: no checkpoint schedule, so the store is never touched and
    // the backend choice must be invisible down to the last byte.
    let base_central = w.job(None).runner().run().unwrap();
    let base_failover = failover(w.job(None)).runner().run().unwrap();
    let base_replicated = replicated(w.job(None)).runner().run().unwrap();
    assert_eq!(format!("{base_central:?}"), format!("{base_failover:?}"));
    assert_eq!(format!("{base_central:?}"), format!("{base_replicated:?}"));

    // Checkpointed: same epochs, same manifests, same computed results.
    let mut results = Vec::new();
    for spec in [w.job(None), failover(w.job(None)), replicated(w.job(None))] {
        let sink = ResultsSink::default();
        let mut spec = spec;
        spec.body = w.job(Some(sink.clone())).body;
        let report =
            spec.runner().ckpt(cfg(vec![time::secs(1), time::secs(3)])).run().unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.manifest_commits, 2);
        assert_eq!(report.finished_ranks, w.n);
        let mut got = sink.lock().clone();
        got.sort();
        results.push(got);
    }
    assert_eq!(results[0], results[1], "failover results diverged from central");
    assert_eq!(results[0], results[2], "replicated results diverged from central");
}

proptest! {
    /// The ring placement never puts a replica on the owning node, never
    /// duplicates a peer, never exceeds the world, and always yields
    /// min(k, n-1) copies — for any rotation.
    #[test]
    fn ring_placement_never_targets_the_owner(
        n in 1u32..64,
        owner_raw in 0u32..64,
        k in 0u32..8,
        shift in any::<u64>(),
    ) {
        let owner = owner_raw % n;
        let peers = replica_nodes(owner, n, k, shift);
        prop_assert_eq!(peers.len(), k.min(n.saturating_sub(1)) as usize);
        prop_assert!(peers.iter().all(|&p| p != owner && p < n));
        let mut uniq = peers.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), peers.len());
    }
}
