//! Deprecated-shim regression: every legacy `run_job*` / `run_supervised*`
//! free function must produce reports **byte-identical** (via `Debug`) to
//! the equivalent [`gbcr_core::JobRunner`] chain. The shims are one-line
//! delegations, so this is an identity by construction — the test pins it
//! against regressions in either layer while the shims live out their
//! deprecation window.
#![allow(deprecated)]

use gbcr_core::{
    restart_job, run_job, run_job_faulted, run_job_with_crash, run_supervised, CkptMode,
    CkptSchedule, CoordinatorCfg, Formation, SupervisePolicy,
};
use gbcr_des::time;
use gbcr_faults::{FaultConfig, FaultPlan};
use gbcr_storage::MB;
use gbcr_workloads::MicroBench;

fn mb() -> MicroBench {
    MicroBench {
        n: 4,
        comm_group_size: 2,
        footprint: 20 * MB,
        steps: 60,
        ..Default::default()
    }
}

fn cfg(group_size: u32, at: Vec<gbcr_des::Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

#[test]
fn run_job_shim_is_byte_identical_to_runner() {
    let spec = mb().job();
    let old = run_job(&spec, None).unwrap();
    let new = spec.runner().run().unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));

    let old = run_job(&spec, Some(cfg(2, vec![time::secs(3)]))).unwrap();
    let new = spec.runner().ckpt(cfg(2, vec![time::secs(3)])).run().unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn crash_shim_is_byte_identical_to_runner() {
    let spec = mb().job();
    let c = cfg(4, vec![time::secs(2)]);
    let old = run_job_with_crash(&spec, Some(c.clone()), time::secs(4)).unwrap();
    let new = spec.runner().ckpt(c).crash_at(time::secs(4)).run().unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn faulted_shim_is_byte_identical_to_runner() {
    let spec = mb().job();
    let c = cfg(2, vec![time::secs(2)]);
    let faults = FaultConfig {
        plan: FaultPlan::node_kill_at(time::secs(5), 3),
        ..FaultConfig::none()
    };
    let old = run_job_faulted(&spec, Some(c.clone()), &faults).unwrap();
    let new = spec.runner().ckpt(c).faults(&faults).run().unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn supervised_shim_is_byte_identical_to_runner() {
    let spec = mb().job();
    let c = cfg(2, vec![time::secs(2), time::secs(4)]);
    let old = run_supervised(&spec, c.clone(), &[time::secs(6)]).unwrap();
    let new = spec
        .runner()
        .ckpt(c)
        .supervised(SupervisePolicy::immediate())
        .crashes(&[time::secs(6)])
        .unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn jobspec_builder_is_byte_identical_to_struct_construction() {
    // The builder must be a pure convenience: rebuilding a hand-filled
    // spec field by field through `JobSpec::builder` yields a run with a
    // byte-identical report.
    let spec = mb().job();
    let built = gbcr_core::JobSpec::builder(spec.name.clone(), spec.mpi.n, spec.body.clone())
        .seed(spec.seed)
        .mpi(spec.mpi.clone())
        .storage(spec.storage.clone())
        .write_retry(spec.write_retry.clone())
        .backend(spec.backend)
        .blcr(spec.blcr.clone())
        .build();
    let c = cfg(2, vec![time::secs(2)]);
    let old = spec.runner().ckpt(c.clone()).run().unwrap();
    let new = built.runner().ckpt(c).run().unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn restart_runs_through_runner_restart_path() {
    // restart_job (not deprecated) routes through the same runner
    // internals; a crash → restart round-trip must still complete and the
    // runner's RestartSpec handling must preserve the lost-nodes-then-
    // preload order (the footgun the runner now owns).
    let spec = mb().job();
    let c = cfg(4, vec![time::secs(2)]);
    let crashed = spec.runner().ckpt(c.clone()).crash_at(time::secs(4)).run().unwrap();
    let images =
        gbcr_core::extract_images(&crashed, "micro", 0, 4).expect("epoch 0 images");
    let restored = restart_job(
        &spec,
        Some(c),
        gbcr_core::RestartSpec {
            job: "micro".into(),
            epoch: 0,
            images,
            lost_nodes: Vec::new(),
        },
    )
    .unwrap();
    assert_eq!(restored.finished_ranks, 4);
}
