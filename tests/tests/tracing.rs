//! Golden tests for the structured tracing pipeline: the 4-rank smoke's
//! exported Chrome/Perfetto JSON must be schema-valid with properly
//! nested spans and full protocol-phase coverage, and tracing must be a
//! pure observer — a traced run's simulation results are identical to an
//! untraced run of the same job.

use gbcr_bench::trace::{check_chrome_json, trace_smoke, COORDINATOR_PHASES};
use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg, Formation, JobSpec,
    PhaseDeadlines,
};
use gbcr_des::trace::perfetto;
use gbcr_des::{time, TraceLevel};
use gbcr_storage::MB;
use gbcr_workloads::MicroBench;

fn smoke_spec() -> (JobSpec, CoordinatorCfg) {
    let mb = MicroBench {
        n: 4,
        comm_group_size: 2,
        footprint: 40 * MB,
        steps: 60,
        ..Default::default()
    };
    let cfg = CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 2 },
        schedule: CkptSchedule::once(time::secs(3)),
        incremental: false,
        deadlines: PhaseDeadlines::none(),
        election: Default::default(),
    };
    (mb.job(), cfg)
}

/// The exported smoke trace is valid Perfetto JSON: it parses back, every
/// span row nests, all five coordinator phases are present and covered by
/// the epoch span, and connection/storage activity has spans.
#[test]
fn smoke_trace_exports_valid_perfetto_json() {
    let report = trace_smoke();
    let data = report.trace.as_deref().expect("traced run records data");
    let json = perfetto::to_chrome_json(data);

    let trace = perfetto::parse_chrome_json(&json).expect("exported JSON parses back");
    assert!(trace.well_nested(), "span rows must nest or be disjoint");

    // One epoch span on the coordinator row, covering every phase span.
    let epochs: Vec<_> = trace.spans_named("epoch").collect();
    assert_eq!(epochs.len(), 1, "one checkpoint epoch in the smoke");
    let (e0, e1) = (epochs[0].ts_ns, epochs[0].ts_ns + epochs[0].dur_ns);
    for phase in COORDINATOR_PHASES {
        let spans: Vec<_> = trace.spans_named(phase).collect();
        assert!(!spans.is_empty(), "missing coordinator phase {phase}");
        for s in spans {
            assert!(
                s.ts_ns >= e0 && s.ts_ns + s.dur_ns <= e1,
                "{phase} span [{}, {}] escapes epoch [{e0}, {e1}]",
                s.ts_ns,
                s.ts_ns + s.dur_ns
            );
        }
    }
    // Two groups of two ranks -> two phase.checkpoint windows, and every
    // rank writes one image through the storage model.
    assert_eq!(trace.spans_named("phase.checkpoint").count(), 2);
    assert_eq!(trace.spans_named("storage.write").count(), 4);
    assert!(trace.spans_named("net.connect").next().is_some());
    assert!(trace.spans_named("net.teardown").next().is_some());
    assert!(trace.spans_named("rank.checkpoint").count() == 4);

    // The bundled checker agrees with the explicit assertions above.
    let chk = check_chrome_json(&json).expect("valid");
    assert!(chk.ok(), "{chk:?}");
}

/// Tracing is a pure observer: a run traced at `Full` produces exactly
/// the same simulation results as an untraced run of the same job.
#[test]
fn traced_run_is_identical_to_untraced() {
    let (spec, cfg) = smoke_spec();
    let plain = spec.runner().ckpt(cfg.clone()).run().expect("untraced run");
    let traced = spec.runner().ckpt(cfg).traced(TraceLevel::Full).run().expect("traced run");

    assert_eq!(plain.completion, traced.completion);
    assert_eq!(plain.events, traced.events, "tracing must not schedule events");
    assert_eq!(plain.defer_stats, traced.defer_stats);
    assert_eq!(plain.logged_bytes, traced.logged_bytes);
    assert_eq!(plain.epochs.len(), traced.epochs.len());
    for (a, b) in plain.epochs.iter().zip(&traced.epochs) {
        assert_eq!(a.individuals, b.individuals);
        assert_eq!(a.requested_at, b.requested_at);
        assert_eq!(a.all_ranks_done_at, b.all_ranks_done_at);
    }
    assert_eq!(plain.images, traced.images);

    // And only the traced run carries trace data.
    assert!(plain.trace.is_none() && plain.phase_stats.is_empty());
    assert!(traced.trace.is_some() && !traced.phase_stats.is_empty());
}

/// `Phases` level keeps protocol spans but drops the per-message MPI and
/// scheduler detail `Full` adds.
#[test]
fn phases_level_drops_per_message_detail() {
    let (spec, cfg) = smoke_spec();
    let r = spec.runner().ckpt(cfg).traced(TraceLevel::Phases).run().expect("traced run");
    let data = r.trace.as_deref().expect("trace recorded");
    assert!(!data.spans_named("rank.checkpoint").is_empty());
    assert!(data.spans_named("mpi.send").is_empty(), "no per-message spans at Phases");
    assert!(data.spans_named("mpi.recv").is_empty());
    assert!(data.instants_in("sched.wake").is_empty(), "no scheduler detail at Phases");
}
