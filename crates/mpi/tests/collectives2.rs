//! The extended collective set: sendrecv, gather, scatter, reduce,
//! alltoall — against sequential oracles, on world and sub-communicators.

use bytes::Bytes;
use gbcr_des::Sim;
use gbcr_mpi::{Msg, MpiConfig, World};

#[test]
fn sendrecv_ring_shift() {
    let n = 6u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        sim.spawn(format!("r{r}"), move |p| {
            let right = (m.rank() + 1) % m.size();
            let left = (m.rank() + m.size() - 1) % m.size();
            let got = m.sendrecv(p, right, 5, Msg::u64(u64::from(m.rank())), Some(left), 5);
            assert_eq!(got.as_u64(), u64::from(left));
        });
    }
    sim.run().unwrap();
}

#[test]
fn gather_collects_at_every_root() {
    for n in [2u32, 3, 5, 8] {
        for root in 0..n as usize {
            let mut sim = Sim::new(0);
            let world = World::new(sim.handle(), MpiConfig::new(n));
            for r in 0..n {
                let m = world.attach(r);
                let comm = world.world_comm();
                sim.spawn(format!("r{r}"), move |p| {
                    let res = m.gather(p, &comm, root, Msg::u64(u64::from(m.rank()) * 3));
                    if comm.index_of(m.rank()) == Some(root) {
                        let vals: Vec<u64> =
                            res.expect("root gets blocks").iter().map(Msg::as_u64).collect();
                        let want: Vec<u64> = (0..u64::from(n)).map(|i| i * 3).collect();
                        assert_eq!(vals, want, "n={n} root={root}");
                    } else {
                        assert!(res.is_none());
                    }
                });
            }
            sim.run().unwrap();
        }
    }
}

#[test]
fn gather_preserves_simulated_sizes() {
    let n = 4u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            let mine = Msg::with_size(Bytes::from(vec![r as u8; 8]), 5_000_000);
            let res = m.gather(p, &comm, 0, mine);
            if m.rank() == 0 {
                for (i, b) in res.unwrap().iter().enumerate() {
                    assert!(b.size >= 5_000_000, "block {i} lost its size");
                    assert_eq!(b.data, Bytes::from(vec![i as u8; 8]));
                }
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn scatter_distributes_blocks() {
    for n in [2u32, 4, 7] {
        let mut sim = Sim::new(0);
        let world = World::new(sim.handle(), MpiConfig::new(n));
        for r in 0..n {
            let m = world.attach(r);
            let comm = world.world_comm();
            sim.spawn(format!("r{r}"), move |p| {
                let blocks = (m.rank() == 1).then(|| {
                    (0..u64::from(n)).map(|i| Msg::u64(i * i)).collect::<Vec<_>>()
                });
                let mine = m.scatter(p, &comm, 1, blocks);
                let me = u64::from(m.rank());
                assert_eq!(mine.as_u64(), me * me, "n={n} rank={me}");
            });
        }
        sim.run().unwrap();
    }
}

#[test]
fn reduce_sum_matches_oracle() {
    let n = 8u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            let res = m.reduce_sum(p, &comm, 3, f64::from(m.rank()) + 0.5);
            if comm.index_of(m.rank()) == Some(3) {
                let want: f64 = (0..8).map(|i| f64::from(i) + 0.5).sum();
                assert!((res.unwrap() - want).abs() < 1e-9);
            } else {
                assert!(res.is_none());
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn alltoall_personalized_exchange() {
    for n in [2u32, 3, 6, 8] {
        let mut sim = Sim::new(0);
        let world = World::new(sim.handle(), MpiConfig::new(n));
        for r in 0..n {
            let m = world.attach(r);
            let comm = world.world_comm();
            sim.spawn(format!("r{r}"), move |p| {
                // blocks[i] = 1000·me + i
                let blocks: Vec<Msg> = (0..u64::from(n))
                    .map(|i| Msg::u64(1000 * u64::from(m.rank()) + i))
                    .collect();
                let got = m.alltoall(p, &comm, blocks);
                for (i, b) in got.iter().enumerate() {
                    // block from member i addressed to me
                    assert_eq!(
                        b.as_u64(),
                        1000 * i as u64 + u64::from(m.rank()),
                        "n={n} rank={} from={i}",
                        m.rank()
                    );
                }
            });
        }
        sim.run().unwrap();
    }
}

#[test]
fn extended_collectives_work_on_subcommunicators() {
    let n = 8u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let members: Vec<u32> = if r % 2 == 0 { vec![0, 2, 4, 6] } else { vec![1, 3, 5, 7] };
        let comm = world.comm(members);
        sim.spawn(format!("r{r}"), move |p| {
            let me = comm.index_of(m.rank()).unwrap();
            // reduce on odd/even comms concurrently
            let res = m.reduce_sum(p, &comm, 0, f64::from(m.rank()));
            if me == 0 {
                let want: f64 = comm.members().iter().map(|&x| f64::from(x)).sum();
                assert!((res.unwrap() - want).abs() < 1e-9);
            }
            // alltoall inside the subcomm
            let blocks: Vec<Msg> =
                (0..4).map(|i| Msg::u64(u64::from(m.rank()) * 10 + i)).collect();
            let got = m.alltoall(p, &comm, blocks);
            for (i, b) in got.iter().enumerate() {
                assert_eq!(b.as_u64(), u64::from(comm.member(i)) * 10 + me as u64);
            }
        });
    }
    sim.run().unwrap();
}
