//! Point-to-point semantics: eager vs rendezvous, matching rules,
//! non-overtaking, unexpected messages, wildcard receives.

use bytes::Bytes;
use gbcr_des::{time, Sim};
use gbcr_mpi::{Mpi, MpiConfig, Msg, World};
use parking_lot::Mutex;
use std::sync::Arc;

fn two_rank_world(sim: &Sim) -> (Mpi, Mpi, World) {
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    (m0, m1, world)
}

#[test]
fn eager_send_recv_delivers_payload() {
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 5, Msg::bytes(&b"hello"[..]));
    });
    sim.spawn("r1", move |p| {
        let m = m1.recv(p, Some(0), 5);
        assert_eq!(m.data, Bytes::from_static(b"hello"));
    });
    sim.run().unwrap();
}

#[test]
fn rendezvous_transfers_large_messages() {
    let mut sim = Sim::new(0);
    let (m0, m1, w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        // 15 MB >> eager threshold: RTS/CTS/DATA path.
        m0.send(p, 1, 9, Msg::with_size(&b"big-marker"[..], 15_000_000));
    });
    sim.spawn("r1", move |p| {
        let m = m1.recv(p, Some(0), 9);
        assert_eq!(m.size, 15_000_000);
        assert_eq!(m.data, Bytes::from_static(b"big-marker"));
        // 15 MB at 1.5 GB/s = 10 ms minimum.
        assert!(p.now() >= time::ms(10));
    });
    sim.run().unwrap();
    // eager would be 1 message; rendezvous is RTS + CTS + DATA.
    assert_eq!(w.net_stats().messages, 3);
}

#[test]
fn eager_send_completes_without_receiver() {
    // MPI_Send on an eager message returns after the buffer copy even if
    // the receiver never posts — the message parks in its unexpected queue.
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    let done_at = Arc::new(Mutex::new(0u64));
    let d = done_at.clone();
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 1, Msg::bytes(&b"fire-and-forget"[..]));
        *d.lock() = p.now();
    });
    sim.spawn("r1", move |p| {
        // Receive much later; message must be waiting in unexpected queue.
        p.sleep(time::secs(1));
        let m = m1.recv(p, Some(0), 1);
        assert_eq!(m.data, Bytes::from_static(b"fire-and-forget"));
    });
    sim.run().unwrap();
    assert!(*done_at.lock() < time::ms(100), "eager send should not block on recv");
}

#[test]
fn rendezvous_send_blocks_until_receiver_posts() {
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 1, Msg::bulk(1_000_000));
        // Receiver posts at t=500ms; data takes ~0.67ms after CTS.
        assert!(p.now() >= time::ms(500));
    });
    sim.spawn("r1", move |p| {
        p.sleep(time::ms(500));
        let m = m1.recv(p, Some(0), 1);
        assert_eq!(m.size, 1_000_000);
    });
    sim.run().unwrap();
}

#[test]
fn non_overtaking_same_src_same_tag() {
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        for i in 0..10u64 {
            m0.send(p, 1, 3, Msg::u64(i));
        }
    });
    sim.spawn("r1", move |p| {
        for i in 0..10u64 {
            assert_eq!(m1.recv(p, Some(0), 3).as_u64(), i);
        }
    });
    sim.run().unwrap();
}

#[test]
fn tags_discriminate() {
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 10, Msg::u64(10));
        m0.send(p, 1, 20, Msg::u64(20));
    });
    sim.spawn("r1", move |p| {
        // Receive in reverse tag order: matching must be by tag, not FIFO.
        assert_eq!(m1.recv(p, Some(0), 20).as_u64(), 20);
        assert_eq!(m1.recv(p, Some(0), 10).as_u64(), 10);
    });
    sim.run().unwrap();
}

#[test]
fn wildcard_source_receives_from_anyone() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(3));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let m2 = world.attach(2);
    sim.spawn("r1", move |p| {
        p.sleep(time::ms(1));
        m1.send(p, 0, 7, Msg::u64(1));
    });
    sim.spawn("r2", move |p| {
        p.sleep(time::ms(2));
        m2.send(p, 0, 7, Msg::u64(2));
    });
    sim.spawn("r0", move |p| {
        let a = m0.recv(p, None, 7).as_u64();
        let b = m0.recv(p, None, 7).as_u64();
        assert_eq!([a, b], [1, 2], "wildcard receives in arrival order");
    });
    sim.run().unwrap();
}

#[test]
fn isend_wait_and_test() {
    let mut sim = Sim::new(0);
    let (m0, m1, _w) = two_rank_world(&sim);
    sim.spawn("r0", move |p| {
        let r1 = m0.isend(p, 1, 1, Msg::bulk(5_000_000));
        let r2 = m0.isend(p, 1, 2, Msg::u64(1));
        // Eager isend is already complete.
        assert!(m0.test(p, r2).is_some());
        m0.wait(p, r1);
    });
    sim.spawn("r1", move |p| {
        let big = m1.irecv(p, Some(0), 1);
        let small = m1.irecv(p, Some(0), 2);
        assert_eq!(m1.wait(p, small).unwrap().as_u64(), 1);
        assert_eq!(m1.wait(p, big).unwrap().size, 5_000_000);
    });
    sim.run().unwrap();
}

#[test]
fn deterministic_trace_across_runs() {
    fn run(seed: u64) -> u64 {
        let mut sim = Sim::new(seed);
        let world = World::new(sim.handle(), MpiConfig::new(4));
        for r in 0..4u32 {
            let m = world.attach(r);
            sim.spawn(format!("r{r}"), move |p| {
                let right = (m.rank() + 1) % m.size();
                let left = (m.rank() + m.size() - 1) % m.size();
                for i in 0..50u64 {
                    let s = m.isend(p, right, 1, Msg::u64(i));
                    let got = m.recv(p, Some(left), 1);
                    assert_eq!(got.as_u64(), i);
                    m.wait(p, s);
                }
            });
        }
        sim.run().unwrap()
    }
    assert_eq!(run(1), run(1));
}

#[test]
fn first_send_establishes_connection_lazily() {
    let mut sim = Sim::new(0);
    let (m0, m1, w) = two_rank_world(&sim);
    let w2 = w.clone();
    sim.spawn("r0", move |p| {
        assert!(m0.stats().connected_peers.is_empty());
        m0.send(p, 1, 1, Msg::u64(0));
        assert_eq!(m0.stats().connected_peers, vec![1]);
        assert!(m0.conn_is_active(1));
    });
    sim.spawn("r1", move |p| {
        m1.recv(p, Some(0), 1);
    });
    sim.run().unwrap();
    assert_eq!(w2.net_stats().connects, 1);
}

#[test]
fn traffic_stats_track_per_peer_counts() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(3));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let m2 = world.attach(2);
    let m0c = m0.clone();
    sim.spawn("r0", move |p| {
        m0c.send(p, 1, 1, Msg::u64(0));
        m0c.send(p, 1, 1, Msg::u64(1));
        m0c.send(p, 2, 1, Msg::bulk(100));
    });
    sim.spawn("r1", move |p| {
        m1.recv(p, Some(0), 1);
        m1.recv(p, Some(0), 1);
    });
    sim.spawn("r2", move |p| {
        m2.recv(p, Some(0), 1);
    });
    sim.run().unwrap();
    let t = m0.stats().traffic;
    assert_eq!(t.per_peer, vec![(1, 2, 16), (2, 1, 100)]);
}
