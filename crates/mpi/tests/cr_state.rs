//! The checkpointable-library-state machinery in isolation: export and
//! import of unexpected messages, completed-unclaimed receives, deferred
//! eager sends, sequence counters, and the duplicate-suppression
//! watermarks.

use bytes::Bytes;
use gbcr_des::{time, Sim};
use gbcr_mpi::{CrHook, MpiConfig, Msg, Rank, World};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

struct GateHook {
    barred: Mutex<HashSet<Rank>>,
}
impl GateHook {
    fn new() -> Arc<Self> {
        Arc::new(GateHook { barred: Mutex::new(HashSet::new()) })
    }
}
impl CrHook for GateHook {
    fn user_send_allowed(&self, peer: Rank) -> bool {
        !self.barred.lock().contains(&peer)
    }
}

#[test]
fn export_captures_unexpected_and_unclaimed_receives() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 10, Msg::bytes(&b"unexpected"[..]));
        m0.send(p, 1, 11, Msg::bytes(&b"claimed-later"[..]));
    });
    sim.spawn("r1", move |p| {
        p.sleep(time::ms(5));
        // Post a recv for tag 11, complete it, but never wait() on it:
        // it sits in done_recv (completed-unclaimed).
        let req = m1.irecv(p, Some(0), 11);
        m1.poke(p);
        // Tag 10 was never posted: it is in the unexpected queue.
        let boundary = m1.boundary_snapshot();
        let state = m1.export_cr_state(&boundary.0, &boundary.1);
        assert_eq!(state.inbound.len(), 2, "both receives captured: {state:?}");
        let tags: Vec<u32> = state.inbound.iter().map(|(_, t, _)| *t).collect();
        assert!(tags.contains(&10) && tags.contains(&11));
        // Export is non-destructive: the live state still works.
        let got = m1.wait(p, req).unwrap();
        assert_eq!(got.data, Bytes::from_static(b"claimed-later"));
        let got = m1.recv(p, Some(0), 10);
        assert_eq!(got.data, Bytes::from_static(b"unexpected"));
    });
    sim.run().unwrap();
}

#[test]
fn export_respects_the_boundary_for_deferred_sends() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let hook = GateHook::new();
    hook.barred.lock().insert(1);
    m0.set_hook(hook);
    sim.spawn("r0", move |p| {
        // Two eager sends *before* the boundary, one after: only the first
        // two ride in the image (the app replays the third).
        m0.send(p, 1, 1, Msg::u64(100));
        m0.send(p, 1, 1, Msg::u64(101));
        let boundary = m0.boundary_snapshot();
        m0.send(p, 1, 1, Msg::u64(102));
        let state = m0.export_cr_state(&boundary.0, &boundary.1);
        assert_eq!(state.deferred_eager.len(), 2, "{state:?}");
        assert_eq!(state.deferred_eager[0].3, 0, "original sequence numbers kept");
        assert_eq!(state.deferred_eager[1].3, 1);
        assert_eq!(state.send_seqs, vec![(1, 2)], "boundary counter, not live");
    });
    sim.run().unwrap();
}

#[test]
fn import_reinjects_inbound_and_deferred_into_a_fresh_world() {
    // Build a state by hand, import it, and verify a fresh rank pair sees
    // exactly the saved traffic.
    let exported = {
        let mut sim = Sim::new(0);
        let world = World::new(sim.handle(), MpiConfig::new(2));
        let m0 = world.attach(0);
        let _m1 = world.attach(1);
        let hook = GateHook::new();
        hook.barred.lock().insert(1);
        m0.set_hook(hook);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("r0", move |p| {
            m0.send(p, 1, 7, Msg::u64(41));
            m0.send(p, 1, 7, Msg::u64(42));
            let b = m0.boundary_snapshot();
            *o.lock() = Some(m0.export_cr_state(&b.0, &b.1));
            let _ = p;
        });
        sim.run().unwrap();
        let s = out.lock().take().unwrap();
        s
    };

    let mut sim = Sim::new(1);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    sim.spawn("r0", move |p| {
        m0.import_cr_state(p, exported);
    });
    sim.spawn("r1", move |p| {
        assert_eq!(m1.recv(p, Some(0), 7).as_u64(), 41);
        assert_eq!(m1.recv(p, Some(0), 7).as_u64(), 42);
    });
    sim.run().unwrap();
}

#[test]
fn watermark_suppresses_replayed_eager_duplicates() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let m1c = m1.clone();
    sim.spawn("r0", move |p| {
        // Pretend this rank restarted with its send counter rolled back:
        // messages 0 and 1 are replays the receiver already saw.
        m0.send(p, 1, 3, Msg::u64(0));
        m0.send(p, 1, 3, Msg::u64(1));
        m0.send(p, 1, 3, Msg::u64(2));
    });
    sim.spawn("r1", move |p| {
        // Receiver restored with watermark 2 for source 0.
        m1c.import_cr_state(
            p,
            gbcr_mpi::MpiCrState {
                inbound: vec![],
                deferred_eager: vec![],
                send_seqs: vec![],
                recv_watermarks: vec![(0, 2)],
                coll_seqs: vec![],
            },
        );
        // Only the genuinely new message (seq 2) is delivered.
        let got = m1c.recv(p, Some(0), 3);
        assert_eq!(got.as_u64(), 2);
        p.sleep(time::ms(50));
        m1c.poke(p);
        assert_eq!(m1c.stats().defer.dups_dropped, 2, "two replays dropped");
    });
    sim.run().unwrap();
}

#[test]
fn watermark_sinks_replayed_rendezvous() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    sim.spawn("r0", move |p| {
        // A replayed 5 MB rendezvous the receiver already consumed: the
        // sink-CTS must still complete the send.
        m0.send(p, 1, 9, Msg::bulk(5_000_000));
        // Completing proves the receiver granted the sink CTS.
    });
    sim.spawn("r1", move |p| {
        m1.import_cr_state(
            p,
            gbcr_mpi::MpiCrState {
                inbound: vec![],
                deferred_eager: vec![],
                send_seqs: vec![],
                recv_watermarks: vec![(0, 1)],
                coll_seqs: vec![],
            },
        );
        // Never posts a recv; just keeps the progress engine alive long
        // enough for the rendezvous to be sunk.
        m1.compute(p, time::ms(100));
        m1.poke(p);
        assert_eq!(m1.stats().defer.dups_dropped, 1);
    });
    sim.run().unwrap();
}

#[test]
fn coll_seq_counters_ride_the_boundary() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    for r in 0..2 {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            m.barrier(p, &comm);
            m.barrier(p, &comm);
            let (_, coll) = m.boundary_snapshot();
            assert_eq!(coll, vec![(comm.id(), 2)], "two collectives consumed");
        });
    }
    sim.run().unwrap();
}
