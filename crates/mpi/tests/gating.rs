//! The checkpoint-layer interposition surface: send gating, message vs
//! request buffering, deferred release, control planes, passive
//! coordination slicing.

use gbcr_des::{time, Sim};
use gbcr_mpi::{CrHook, CtrlWire, Mpi, MpiConfig, Msg, OobMsg, Rank, World};
use gbcr_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A hook whose gate is a shared set of barred destinations.
struct GateHook {
    barred: Mutex<HashSet<Rank>>,
}

impl GateHook {
    fn new() -> Arc<Self> {
        Arc::new(GateHook { barred: Mutex::new(HashSet::new()) })
    }
    fn bar(&self, r: Rank) {
        self.barred.lock().insert(r);
    }
    fn unbar(&self, r: Rank) {
        self.barred.lock().remove(&r);
    }
}

impl CrHook for GateHook {
    fn user_send_allowed(&self, peer: Rank) -> bool {
        !self.barred.lock().contains(&peer)
    }
}

#[test]
fn barred_eager_sends_are_message_buffered_and_released_in_order() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let hook = GateHook::new();
    hook.bar(1);
    m0.set_hook(hook.clone());
    let m0c = m0.clone();
    sim.spawn("r0", move |p| {
        for i in 0..5u64 {
            m0c.send(p, 1, 1, Msg::u64(i)); // eager: completes locally
        }
        assert_eq!(m0c.stats().deferred_len, 5);
        let ds = m0c.stats().defer;
        assert_eq!(ds.msg_buffered, 5);
        assert_eq!(ds.msg_buffered_bytes, 40);
        assert_eq!(ds.req_buffered, 0);
        // Open the gate and flush.
        hook.unbar(1);
        m0c.release_deferred(p);
        assert_eq!(m0c.stats().deferred_len, 0);
        assert_eq!(m0c.stats().defer.released, 5);
    });
    sim.spawn("r1", move |p| {
        for i in 0..5u64 {
            assert_eq!(m1.recv(p, Some(0), 1).as_u64(), i, "order preserved");
        }
    });
    sim.run().unwrap();
}

#[test]
fn barred_rendezvous_is_request_buffered_without_copying() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let hook = GateHook::new();
    hook.bar(1);
    m0.set_hook(hook.clone());
    let m0c = m0.clone();
    sim.spawn("r0", move |p| {
        let req = m0c.isend(p, 1, 1, Msg::bulk(50_000_000));
        // RTS deferred: request buffering, no payload bytes copied.
        let ds = m0c.stats().defer;
        assert_eq!(ds.req_buffered, 1);
        assert_eq!(ds.req_buffered_bytes, 50_000_000);
        assert_eq!(ds.msg_buffered_bytes, 0);
        // The send is incomplete while barred.
        assert!(m0c.test(p, req).is_none());
        p.sleep(time::ms(100));
        assert!(m0c.test(p, req).is_none());
        hook.unbar(1);
        m0c.release_deferred(p);
        m0c.wait(p, req);
    });
    sim.spawn("r1", move |p| {
        let m = m1.recv(p, Some(0), 1);
        assert_eq!(m.size, 50_000_000);
        assert!(p.now() > time::ms(100), "data must not flow while barred");
    });
    sim.run().unwrap();
}

#[test]
fn gate_applies_to_cts_direction_too() {
    // Receiver is barred from sending to the sender: its CTS must be
    // deferred, stalling the rendezvous even though the RTS got through.
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let hook = GateHook::new();
    hook.bar(0); // rank1 may not send to rank0
    m1.set_hook(hook.clone());
    sim.spawn("r0", move |p| {
        m0.send(p, 1, 1, Msg::bulk(1_000_000));
        assert!(p.now() >= time::ms(300), "rendezvous completed while CTS barred");
    });
    let m1c = m1.clone();
    sim.spawn("r1", move |p| {
        let req = m1c.irecv(p, Some(0), 1);
        // Let the RTS arrive, then enter the library so the progress
        // engine matches it and (tries to) reply — the CTS gets deferred.
        p.sleep(time::ms(300));
        m1c.poke(p);
        assert_eq!(m1c.stats().defer.req_buffered, 1, "CTS got request-buffered");
        hook.unbar(0);
        m1c.release_deferred(p);
        let msg = m1c.wait(p, req).unwrap();
        assert_eq!(msg.size, 1_000_000);
    });
    sim.run().unwrap();
}

#[test]
fn per_destination_fifo_is_kept_when_mixed_with_other_destinations() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(3));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let m2 = world.attach(2);
    let hook = GateHook::new();
    hook.bar(1);
    m0.set_hook(hook.clone());
    let m0c = m0.clone();
    sim.spawn("r0", move |p| {
        m0c.send(p, 1, 1, Msg::u64(100)); // deferred
        m0c.send(p, 2, 1, Msg::u64(200)); // flows immediately
        m0c.send(p, 1, 1, Msg::u64(101)); // deferred behind 100
        assert_eq!(m0c.stats().deferred_len, 2);
        assert!(m0c.has_deferred_to(1));
        assert!(!m0c.has_deferred_to(2));
        hook.unbar(1);
        m0c.release_deferred(p);
    });
    sim.spawn("r1", move |p| {
        assert_eq!(m1.recv(p, Some(0), 1).as_u64(), 100);
        assert_eq!(m1.recv(p, Some(0), 1).as_u64(), 101);
    });
    sim.spawn("r2", move |p| {
        assert_eq!(m2.recv(p, Some(0), 1).as_u64(), 200);
        assert!(p.now() < time::ms(50), "unbarred destination must not wait");
    });
    sim.run().unwrap();
}

#[test]
fn ctrl_messages_bypass_the_gate() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let hook = GateHook::new();
    hook.bar(1);
    m0.set_hook(hook);
    let got = Arc::new(AtomicU64::new(0));
    let g = got.clone();
    sim.spawn("r0", move |p| {
        m0.ctrl_send(p, 1, CtrlWire { kind: 3, a: 42, b: 7 });
    });
    struct Recorder(Arc<AtomicU64>);
    impl CrHook for Recorder {
        fn on_ctrl(&self, _p: &gbcr_des::Proc, _m: &Mpi, from: Rank, cw: CtrlWire) {
            assert_eq!(from, 0);
            self.0.store(cw.a, Ordering::Relaxed);
        }
    }
    m1.set_hook(Arc::new(Recorder(g)));
    let m1c = m1.clone();
    sim.spawn("r1", move |p| {
        p.sleep(time::ms(10));
        m1c.poke(p); // progress dispatches the ctrl message to the hook
    });
    sim.run().unwrap();
    assert_eq!(got.load(Ordering::Relaxed), 42);
}

#[test]
fn oob_messages_wake_a_computing_rank() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let noticed_at = Arc::new(AtomicU64::new(0));
    struct Notice(Arc<AtomicU64>);
    impl CrHook for Notice {
        fn on_oob(&self, p: &gbcr_des::Proc, _m: &Mpi, _from: NodeId, msg: OobMsg) {
            assert_eq!(msg.kind, 9);
            self.0.store(p.now(), Ordering::Relaxed);
        }
    }
    m1.set_hook(Arc::new(Notice(noticed_at.clone())));
    sim.spawn("r0", move |p| {
        p.sleep(time::secs(1));
        m0.oob_send(p, NodeId(1), OobMsg::new(9, 0, 0));
    });
    sim.spawn("r1", move |p| {
        m1.compute(p, time::secs(60));
    });
    sim.run().unwrap();
    let t = noticed_at.load(Ordering::Relaxed);
    assert!(t >= time::secs(1) && t < time::secs(1) + time::ms(5), "noticed at {t}");
}

#[test]
fn data_plane_ctrl_does_not_wake_compute_without_passive_mode() {
    // OS-bypass: an in-band ctrl message to a computing rank sits until the
    // rank's next library call.
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let noticed_at = Arc::new(AtomicU64::new(0));
    struct Notice(Arc<AtomicU64>);
    impl CrHook for Notice {
        fn on_ctrl(&self, p: &gbcr_des::Proc, _m: &Mpi, _from: Rank, _cw: CtrlWire) {
            self.0.store(p.now(), Ordering::Relaxed);
        }
    }
    m1.set_hook(Arc::new(Notice(noticed_at.clone())));
    sim.spawn("r0", move |p| {
        p.sleep(time::ms(100));
        m0.ctrl_send(p, 1, CtrlWire { kind: 1, a: 0, b: 0 });
    });
    sim.spawn("r1", move |p| {
        m1.compute(p, time::secs(10)); // not passive, no helper slicing
        m1.poke(p);
    });
    sim.run().unwrap();
    let t = noticed_at.load(Ordering::Relaxed);
    assert!(t >= time::secs(10), "ctrl handled during compute at {t}");
}

#[test]
fn passive_mode_bounds_ctrl_latency_to_progress_interval() {
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let noticed_at = Arc::new(AtomicU64::new(0));
    struct Notice(Arc<AtomicU64>);
    impl CrHook for Notice {
        fn on_ctrl(&self, p: &gbcr_des::Proc, _m: &Mpi, _from: Rank, _cw: CtrlWire) {
            self.0.store(p.now(), Ordering::Relaxed);
        }
    }
    m1.set_hook(Arc::new(Notice(noticed_at.clone())));
    m1.set_passive(true);
    sim.spawn("r0", move |p| {
        p.sleep(time::ms(250));
        m0.ctrl_send(p, 1, CtrlWire { kind: 1, a: 0, b: 0 });
    });
    sim.spawn("r1", move |p| {
        m1.compute(p, time::secs(10));
    });
    sim.run().unwrap();
    let t = noticed_at.load(Ordering::Relaxed);
    // Arrived ~250ms; helper checks every 100ms → noticed by ~300ms.
    assert!(t >= time::ms(250) && t <= time::ms(360), "noticed at {t}");
}

#[test]
fn helper_thread_ablation_delays_passive_coordination() {
    let mut sim = Sim::new(0);
    let mut cfg = MpiConfig::new(2);
    cfg.helper_thread = false; // §4.4 ablation
    let world = World::new(sim.handle(), cfg);
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    let noticed_at = Arc::new(AtomicU64::new(0));
    struct Notice(Arc<AtomicU64>);
    impl CrHook for Notice {
        fn on_ctrl(&self, p: &gbcr_des::Proc, _m: &Mpi, _from: Rank, _cw: CtrlWire) {
            self.0.store(p.now(), Ordering::Relaxed);
        }
    }
    m1.set_hook(Arc::new(Notice(noticed_at.clone())));
    m1.set_passive(true); // passive, but no helper thread exists
    sim.spawn("r0", move |p| {
        p.sleep(time::ms(250));
        m0.ctrl_send(p, 1, CtrlWire { kind: 1, a: 0, b: 0 });
    });
    sim.spawn("r1", move |p| {
        m1.compute(p, time::secs(10));
        m1.poke(p);
    });
    sim.run().unwrap();
    assert!(noticed_at.load(Ordering::Relaxed) >= time::secs(10));
}

#[test]
fn compute_extends_deadline_by_coordination_time() {
    // A passive rank that handles a blocking hook callback mid-compute must
    // still perform its full compute quantum afterwards.
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(2));
    let m0 = world.attach(0);
    let m1 = world.attach(1);
    struct Stall;
    impl CrHook for Stall {
        fn on_ctrl(&self, p: &gbcr_des::Proc, _m: &Mpi, _from: Rank, _cw: CtrlWire) {
            p.sleep(time::secs(2)); // simulated coordination work
        }
    }
    m1.set_hook(Arc::new(Stall));
    m1.set_passive(true);
    sim.spawn("r0", move |p| {
        p.sleep(time::ms(500));
        m0.ctrl_send(p, 1, CtrlWire { kind: 1, a: 0, b: 0 });
    });
    let done = Arc::new(AtomicBool::new(false));
    let d = done.clone();
    sim.spawn("r1", move |p| {
        let t0 = p.now();
        m1.compute(p, time::secs(5));
        let elapsed = p.now() - t0;
        assert!(
            elapsed >= time::secs(7),
            "compute finished in {} — coordination time was stolen from work",
            time::fmt(elapsed)
        );
        d.store(true, Ordering::Relaxed);
    });
    sim.run().unwrap();
    assert!(done.load(Ordering::Relaxed));
}
