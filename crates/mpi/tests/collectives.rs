//! Collective correctness against sequential oracles, over the full world
//! and over sub-communicators, for power-of-two and odd sizes.

use gbcr_des::Sim;
use gbcr_mpi::{Msg, MpiConfig, World};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn barrier_synchronizes_all_ranks() {
    for n in [2u32, 3, 5, 8, 32] {
        let mut sim = Sim::new(0);
        let world = World::new(sim.handle(), MpiConfig::new(n));
        let max_before = Arc::new(Mutex::new(0u64));
        let min_after = Arc::new(Mutex::new(u64::MAX));
        for r in 0..n {
            let m = world.attach(r);
            let comm = world.world_comm();
            let (mb, ma) = (max_before.clone(), min_after.clone());
            sim.spawn(format!("r{r}"), move |p| {
                // Stagger arrival times.
                p.sleep(gbcr_des::time::ms(u64::from(r) * 10));
                {
                    let mut g = mb.lock();
                    *g = (*g).max(p.now());
                }
                m.barrier(p, &comm);
                let mut g = ma.lock();
                *g = (*g).min(p.now());
            });
        }
        sim.run().unwrap();
        assert!(
            *min_after.lock() >= *max_before.lock(),
            "n={n}: some rank left the barrier before the last arrived"
        );
    }
}

#[test]
fn bcast_from_every_root() {
    for n in [2u32, 3, 7, 8] {
        for root in 0..n as usize {
            let mut sim = Sim::new(0);
            let world = World::new(sim.handle(), MpiConfig::new(n));
            for r in 0..n {
                let m = world.attach(r);
                let comm = world.world_comm();
                sim.spawn(format!("r{r}"), move |p| {
                    let mine =
                        (comm.index_of(m.rank()) == Some(root)).then(|| Msg::u64(0xC0FFEE));
                    let got = m.bcast(p, &comm, root, mine);
                    assert_eq!(got.as_u64(), 0xC0FFEE, "n={n} root={root} rank={r}");
                });
            }
            sim.run().unwrap();
        }
    }
}

#[test]
fn allgather_collects_in_comm_order() {
    for n in [1u32, 2, 3, 6, 8] {
        let mut sim = Sim::new(0);
        let world = World::new(sim.handle(), MpiConfig::new(n));
        for r in 0..n {
            let m = world.attach(r);
            let comm = world.world_comm();
            sim.spawn(format!("r{r}"), move |p| {
                let got = m.allgather(p, &comm, Msg::u64(u64::from(m.rank()) * 7));
                let vals: Vec<u64> = got.iter().map(Msg::as_u64).collect();
                let want: Vec<u64> = (0..u64::from(n)).map(|i| i * 7).collect();
                assert_eq!(vals, want, "n={n} rank={r}");
            });
        }
        sim.run().unwrap();
    }
}

#[test]
fn allreduce_sum_and_max() {
    let n = 8u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            let s = m.allreduce_sum(p, &comm, f64::from(m.rank()));
            assert_eq!(s, (0..8).sum::<i32>() as f64);
            let mx = m.allreduce_max(p, &comm, f64::from(m.rank()));
            assert_eq!(mx, 7.0);
        });
    }
    sim.run().unwrap();
}

#[test]
fn subcommunicators_are_independent() {
    // 8 ranks in two row-communicators of 4; concurrent collectives on the
    // two rows must not interfere.
    let n = 8u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let row: Vec<u32> = if r < 4 { (0..4).collect() } else { (4..8).collect() };
        let comm = world.comm(row);
        sim.spawn(format!("r{r}"), move |p| {
            for iter in 0..5u64 {
                let got = m.allgather(p, &comm, Msg::u64(u64::from(m.rank()) + iter));
                let base = if m.rank() < 4 { 0u64 } else { 4 };
                let want: Vec<u64> = (0..4).map(|i| base + i + iter).collect();
                assert_eq!(got.iter().map(Msg::as_u64).collect::<Vec<_>>(), want);
                m.barrier(p, &comm);
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn back_to_back_collectives_do_not_cross_match() {
    // Two immediate barriers and a bcast: the per-comm sequence numbers in
    // the collective tags keep rounds separate.
    let n = 4u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    for r in 0..n {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            m.barrier(p, &comm);
            m.barrier(p, &comm);
            let v = m.bcast(p, &comm, 2, (m.rank() == 2).then(|| Msg::u64(5)));
            assert_eq!(v.as_u64(), 5);
            m.barrier(p, &comm);
        });
    }
    sim.run().unwrap();
}

#[test]
fn large_message_allgather_uses_rendezvous() {
    let n = 4u32;
    let mut sim = Sim::new(0);
    let world = World::new(sim.handle(), MpiConfig::new(n));
    let w = world.clone();
    for r in 0..n {
        let m = world.attach(r);
        let comm = world.world_comm();
        sim.spawn(format!("r{r}"), move |p| {
            let got = m.allgather(p, &comm, Msg::bulk(2_000_000));
            assert!(got.iter().all(|b| b.size == 2_000_000));
        });
    }
    sim.run().unwrap();
    let s = w.net_stats();
    // Each of the 4 ranks does 3 ring steps; each step is RTS+CTS+DATA.
    assert_eq!(s.messages, 4 * 3 * 3);
}
