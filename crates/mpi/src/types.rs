//! Core message-passing types.

use bytes::Bytes;

/// An MPI rank within the world (0-based, dense).
pub type Rank = u32;

/// A message tag. User tags must be `<= MAX_USER_TAG`; higher values are
/// reserved for collectives.
pub type Tag = u32;

/// Largest tag available to applications.
pub const MAX_USER_TAG: Tag = 0x3FFF_FFFF;

/// Wildcard source for receives, as `Option<Rank>::None` is expressed in
/// the convenience APIs.
pub const ANY_SOURCE: Option<Rank> = None;

/// A user message: real content plus a simulated size.
///
/// Workloads usually move buffers whose *timing* matters (an HPL panel, an
/// Allgather block) but whose *content* is a few checksummable bytes;
/// `size` is the number of bytes charged on the wire while `data` is what
/// the receiver actually observes. `size >= data.len()` always holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Real payload delivered to the receiver.
    pub data: Bytes,
    /// Simulated message size in bytes.
    pub size: u64,
}

impl Msg {
    /// A message whose simulated size equals its real content length.
    pub fn bytes(data: impl Into<Bytes>) -> Self {
        let data = data.into();
        let size = data.len() as u64;
        Msg { data, size }
    }

    /// A content-free message of the given simulated size.
    pub fn bulk(size: u64) -> Self {
        Msg { data: Bytes::new(), size }
    }

    /// Real content plus simulated padding up to `size` bytes.
    pub fn with_size(data: impl Into<Bytes>, size: u64) -> Self {
        let data = data.into();
        let size = size.max(data.len() as u64);
        Msg { data, size }
    }

    /// An 8-byte message carrying one `f64`.
    pub fn f64(x: f64) -> Self {
        Msg::bytes(Bytes::copy_from_slice(&x.to_le_bytes()))
    }

    /// Reinterpret an 8-byte payload as `f64`. Panics on wrong length.
    pub fn as_f64(&self) -> f64 {
        let arr: [u8; 8] = self.data.as_ref().try_into().expect("message is not an f64");
        f64::from_le_bytes(arr)
    }

    /// An 8-byte message carrying one `u64`.
    pub fn u64(x: u64) -> Self {
        Msg::bytes(Bytes::copy_from_slice(&x.to_le_bytes()))
    }

    /// Reinterpret an 8-byte payload as `u64`. Panics on wrong length.
    pub fn as_u64(&self) -> u64 {
        let arr: [u8; 8] = self.data.as_ref().try_into().expect("message is not a u64");
        u64::from_le_bytes(arr)
    }

    /// Zero-length, zero-size message (barrier token).
    pub fn empty() -> Self {
        Msg { data: Bytes::new(), size: 0 }
    }
}

/// A restartable boundary snapshot: per-destination send-sequence counters
/// plus per-communicator collective counters.
pub type BoundarySnapshot = (Vec<(Rank, u64)>, Vec<(u32, u32)>);

/// Handle to a pending nonblocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_constructors() {
        let m = Msg::bytes(&b"abc"[..]);
        assert_eq!(m.size, 3);
        let m = Msg::bulk(1 << 20);
        assert_eq!(m.size, 1 << 20);
        assert!(m.data.is_empty());
        let m = Msg::with_size(&b"abc"[..], 2);
        assert_eq!(m.size, 3, "size clamps up to content length");
    }

    #[test]
    fn f64_and_u64_round_trip() {
        assert_eq!(Msg::f64(2.5).as_f64(), 2.5);
        assert_eq!(Msg::u64(77).as_u64(), 77);
    }

    #[test]
    #[should_panic(expected = "not an f64")]
    fn as_f64_rejects_wrong_length() {
        Msg::bytes(&b"abc"[..]).as_f64();
    }
}
