//! The interposition surface used by the checkpoint layer.

use crate::api::Mpi;
use crate::types::Rank;
use bytes::Bytes;
use gbcr_des::Proc;
use gbcr_net::NodeId;

/// A small fixed-shape control message carried **in-band** on the data
/// fabric (like MVAPICH2's internal packet types). Used for peer-to-peer
/// checkpoint coordination that must travel the same channel as user data
/// (flush markers, connection-manager requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlWire {
    /// Protocol-defined discriminator.
    pub kind: u32,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// An **out-of-band** control message (PMI/mpirun socket mesh). The OOB
/// plane stays up while data-plane connections are torn down, which is what
/// makes global coordination possible in the middle of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OobMsg {
    /// Protocol-defined discriminator.
    pub kind: u32,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Optional bulk payload (e.g. a serialized group schedule).
    pub data: Bytes,
}

impl OobMsg {
    /// Shorthand for a payload-free message.
    pub fn new(kind: u32, a: u64, b: u64) -> Self {
        OobMsg { kind, a, b, data: Bytes::new() }
    }

    /// Wire size charged on the OOB fabric.
    pub fn wire_size(&self) -> u64 {
        64 + self.data.len() as u64
    }
}

/// Hook implemented by the checkpoint/restart controller and registered on
/// each rank's runtime with [`Mpi::set_hook`].
///
/// All methods run **on the owning rank's simulated thread**, inside the
/// progress engine — exactly like MVAPICH2's C/R controller code. They may
/// block (coordinate, write images); user execution on that rank is paused
/// meanwhile, which is the blocking coordinated-checkpointing semantics.
///
/// While a hook callback is being dispatched, further unsolicited dispatch
/// is suppressed; protocol code consumes subsequent control messages
/// explicitly via [`Mpi::ctrl_recv_match`] / [`Mpi::oob_recv_match`].
pub trait CrHook: Send + Sync {
    /// Gate for user-plane traffic (eager data, RTS, CTS, RDMA data) from
    /// this rank to `peer`. Returning `false` defers the message via
    /// message/request buffering until [`Mpi::release_deferred`] is called
    /// after a later gate change. Must be fast and non-blocking.
    fn user_send_allowed(&self, peer: Rank) -> bool {
        let _ = peer;
        true
    }

    /// An unsolicited out-of-band message arrived (e.g. a checkpoint
    /// request from the global coordinator).
    fn on_oob(&self, p: &Proc, mpi: &Mpi, from: NodeId, msg: OobMsg) {
        let _ = (p, mpi, from, msg);
    }

    /// An unsolicited in-band control message arrived (e.g. a flush request
    /// from a checkpointing peer).
    fn on_ctrl(&self, p: &Proc, mpi: &Mpi, from: Rank, msg: CtrlWire) {
        let _ = (p, mpi, from, msg);
    }
}

/// A hook that gates nothing and ignores everything (the default).
pub struct NoopHook;

impl CrHook for NoopHook {}
