//! # gbcr-mpi — an MPI-like runtime over the simulated fabric
//!
//! This crate rebuilds the slice of an MPI implementation (modeled on
//! MVAPICH2) that the paper's checkpointing design lives inside:
//!
//! * **Point-to-point** sends/receives with tags, blocking and nonblocking
//!   variants, an *eager* protocol for small messages (payload copied into a
//!   communication buffer and pushed immediately) and a *zero-copy
//!   rendezvous* protocol (RTS → CTS → RDMA data) for large ones — the
//!   distinction §4.3 of the paper builds its message-vs-request buffering
//!   split on.
//! * **Unexpected/posted queues** with MPI's non-overtaking matching rules.
//! * **Collectives** (barrier, bcast, allgather, allreduce) over
//!   sub-communicators, implemented on point-to-point like a real MPI.
//! * **A progress engine** that only runs when the application enters the
//!   library (or, in *passive coordination* mode, at a bounded interval
//!   while computing — the paper's §4.4 helper thread).
//! * **Interposition hooks** ([`CrHook`]) by which the checkpoint layer
//!   (`gbcr-core`) gates user-plane traffic per destination, defers it via
//!   *message buffering* (eager messages already copied to a send buffer)
//!   or *request buffering* (rendezvous requests kept incomplete), and
//!   receives control messages on both the in-band (data fabric) and
//!   out-of-band (TCP-like) channels.
//!
//! Two fabrics are used, mirroring MVAPICH2 over InfiniBand: the **data
//! plane** is the expensive connection-oriented IB fabric whose connections
//! must be torn down around local checkpoints; the **out-of-band plane**
//! models the always-up PMI/mpirun socket mesh used for global
//! coordination. Crucially — modeling OS-bypass — data-plane arrivals do
//! *not* wake a computing rank; they wait for the progress engine.
//! Out-of-band arrivals do wake it (kernel sockets + the framework's
//! listener thread).

#![warn(missing_docs)]

mod api;
mod comm;
mod config;
mod engine;
mod hook;
mod types;
mod world;

pub use api::Mpi;
pub use comm::Comm;
pub use config::{
    polled_progress_default, set_polled_progress_default, MpiConfig, MpiConfigBuilder,
};
pub use engine::{BufferClass, DeferStats, EndpointStats, MpiCrState, TrafficStats};
pub use hook::{CrHook, CtrlWire, NoopHook, OobMsg};
pub use types::{BoundarySnapshot, Msg, Rank, Request, Tag, ANY_SOURCE, MAX_USER_TAG};
pub use world::{standby_node, World, COORDINATOR_NODE};
