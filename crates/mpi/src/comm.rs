//! Sub-communicators.

use crate::types::{Rank, Tag};
use std::sync::Arc;

/// A communicator: an ordered group of world ranks with its own collective
/// tag namespace. HPL-style workloads use row/column communicators; the
/// paper's dynamic group formation uses "user-defined communicators" as a
/// grouping heuristic.
#[derive(Debug, Clone)]
pub struct Comm {
    id: u32,
    members: Arc<Vec<Rank>>,
}

impl Comm {
    pub(crate) fn new(id: u32, members: Arc<Vec<Rank>>) -> Self {
        Comm { id, members }
    }

    /// Communicator id (stable across ranks for congruent creations).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Member world ranks in communicator order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// World rank of the member at `index`.
    pub fn member(&self, index: usize) -> Rank {
        self.members[index]
    }

    /// This world rank's index within the communicator, if a member.
    pub fn index_of(&self, rank: Rank) -> Option<usize> {
        self.members.iter().position(|&m| m == rank)
    }

    /// Whether `rank` belongs to this communicator.
    pub fn contains(&self, rank: Rank) -> bool {
        self.index_of(rank).is_some()
    }

    /// Tag for collective operation number `seq` on this communicator.
    /// Bit 31 marks collectives; bits 30..16 carry the communicator id
    /// (32 768 ids — a 10k-rank job with group communicators needs
    /// thousands); bits 15..0 the per-communicator operation sequence
    /// (wrapping — tags only disambiguate concurrent collectives).
    pub(crate) fn coll_tag(&self, seq: u32) -> Tag {
        0x8000_0000 | ((self.id & 0x7FFF) << 16) | (seq & 0xFFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(id: u32, members: Vec<Rank>) -> Comm {
        Comm::new(id, Arc::new(members))
    }

    #[test]
    fn membership_and_indexing() {
        let c = comm(3, vec![4, 8, 15]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.index_of(8), Some(1));
        assert_eq!(c.index_of(5), None);
        assert!(c.contains(15));
        assert_eq!(c.member(0), 4);
    }

    #[test]
    fn coll_tags_are_disjoint_across_comms_and_seqs() {
        let a = comm(1, vec![0, 1]);
        let b = comm(2, vec![0, 1]);
        assert_ne!(a.coll_tag(0), b.coll_tag(0));
        assert_ne!(a.coll_tag(0), a.coll_tag(1));
        // All collective tags are above the user tag space.
        assert!(a.coll_tag(0) > crate::types::MAX_USER_TAG);
    }
}
