//! The user-facing MPI facade.

use crate::comm::Comm;
use crate::engine::{EndpointStats, MpiCrState, Rt};
use crate::hook::{CrHook, CtrlWire, OobMsg};
use crate::types::{BoundarySnapshot, Msg, Rank, Request, Tag, MAX_USER_TAG};
use gbcr_des::{ArgValue, Proc, Time, Track};
use gbcr_net::NodeId;
use std::sync::Arc;

/// One rank's MPI library handle. All blocking calls take the owning
/// simulated process's [`Proc`]; calling them from any other process is a
/// programming error (the runtime is single-threaded per rank, like a
/// funneled MPI).
#[derive(Clone)]
pub struct Mpi {
    rt: Arc<Rt>,
}

impl Mpi {
    pub(crate) fn from_rt(rt: Arc<Rt>) -> Self {
        Mpi { rt }
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.rt.rank
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.rt.cfg().n
    }

    /// Record a [`gbcr_des::TraceLevel::Full`]-only span for a blocking
    /// collective on this rank's track.
    fn coll_span(&self, p: &Proc, name: &'static str, t0: Time, comm: &Comm) {
        let n = comm.size() as u64;
        p.handle().trace_span_detail(Track::Rank(self.rank()), name, t0, || {
            vec![("comm", ArgValue::U64(n))]
        });
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking send (completes when the user buffer is reusable: eager →
    /// immediately after the copy; rendezvous → when the data has left).
    pub fn send(&self, p: &Proc, dst: Rank, tag: Tag, msg: Msg) {
        assert!(tag <= MAX_USER_TAG, "tag {tag} is in the reserved range");
        let t0 = p.now();
        let bytes = msg.size;
        let eager = bytes <= self.rt.cfg().eager_threshold;
        let req = self.rt.isend(p, dst, tag, msg);
        self.rt.wait(p, req);
        p.handle().trace_span_detail(Track::Rank(self.rank()), "mpi.send", t0, || {
            vec![
                ("peer", ArgValue::U64(u64::from(dst))),
                ("bytes", ArgValue::U64(bytes)),
                ("proto", ArgValue::Str(if eager { "eager" } else { "rdv" }.to_owned())),
            ]
        });
    }

    /// Nonblocking send.
    pub fn isend(&self, p: &Proc, dst: Rank, tag: Tag, msg: Msg) -> Request {
        assert!(tag <= MAX_USER_TAG, "tag {tag} is in the reserved range");
        self.rt.isend(p, dst, tag, msg)
    }

    /// Blocking receive. `src = None` receives from any source.
    pub fn recv(&self, p: &Proc, src: Option<Rank>, tag: Tag) -> Msg {
        assert!(tag <= MAX_USER_TAG, "tag {tag} is in the reserved range");
        let t0 = p.now();
        let req = self.rt.irecv(p, src, tag);
        let msg = self.rt.wait(p, req).expect("recv request yields a message");
        let bytes = msg.size;
        p.handle().trace_span_detail(Track::Rank(self.rank()), "mpi.recv", t0, || {
            vec![("bytes", ArgValue::U64(bytes))]
        });
        msg
    }

    /// Nonblocking receive.
    pub fn irecv(&self, p: &Proc, src: Option<Rank>, tag: Tag) -> Request {
        assert!(tag <= MAX_USER_TAG, "tag {tag} is in the reserved range");
        self.rt.irecv(p, src, tag)
    }

    /// Block until `req` completes; receives yield `Some(msg)`.
    pub fn wait(&self, p: &Proc, req: Request) -> Option<Msg> {
        self.rt.wait(p, req)
    }

    /// Poll `req`; `Some(..)` if it completed (receives carry the message).
    pub fn test(&self, p: &Proc, req: Request) -> Option<Option<Msg>> {
        self.rt.test(p, req)
    }

    /// Complete a set of requests in any order.
    pub fn wait_all(&self, p: &Proc, reqs: impl IntoIterator<Item = Request>) {
        for r in reqs {
            self.rt.wait(p, r);
        }
    }

    // ------------------------------------------------------------------
    // Computation
    // ------------------------------------------------------------------

    /// Perform `dt` of local computation (see the progress-engine rules in
    /// [`crate`] docs: data-plane traffic does not interrupt compute; OOB
    /// does; passive coordination slices at the helper-thread interval).
    pub fn compute(&self, p: &Proc, dt: Time) {
        self.rt.compute(p, dt);
    }

    /// Run the progress engine once without blocking (an `MPI_Iprobe`-ish
    /// library entry).
    pub fn poke(&self, p: &Proc) {
        self.rt.progress(p);
    }

    /// Park until anything arrives on either the data or the out-of-band
    /// plane (may wake spuriously). Service loops pair this with
    /// [`Mpi::poke`] and their own exit predicate.
    pub fn wait_any_event(&self, p: &Proc) {
        self.rt.wait_event(p);
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Barrier over `comm` (dissemination algorithm: ⌈log₂ n⌉ rounds).
    pub fn barrier(&self, p: &Proc, comm: &Comm) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let t0 = p.now();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let mut k = 1usize;
        while k < n {
            let to = comm.member((me + k) % n);
            let from = comm.member((me + n - (k % n)) % n);
            let sreq = self.rt.isend(p, to, tag, Msg::empty());
            let rreq = self.rt.irecv(p, Some(from), tag);
            self.rt.wait(p, rreq);
            self.rt.wait(p, sreq);
            k <<= 1;
        }
        self.coll_span(p, "mpi.barrier", t0, comm);
    }

    /// Broadcast from `root` (communicator index) over a binomial tree.
    /// The root passes `Some(msg)`; everyone receives the message.
    pub fn bcast(&self, p: &Proc, comm: &Comm, root: usize, msg: Option<Msg>) -> Msg {
        let t0 = p.now();
        let n = comm.size();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        assert!(root < n, "bcast root out of range");
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let rel = (me + n - root) % n;
        let mut have = if rel == 0 {
            Some(msg.expect("bcast root must supply the message"))
        } else {
            None
        };
        // Receive from the parent: the highest set bit of `rel`.
        if rel != 0 {
            let parent_rel = rel & (rel - 1); // clear lowest set bit? no:
            // For a binomial bcast we receive from rel - 2^floor(log2(rel)).
            let _ = parent_rel;
            let top = 1usize << (usize::BITS - 1 - rel.leading_zeros());
            let parent = (rel - top + root) % n;
            let m = {
                let req = self.rt.irecv(p, Some(comm.member(parent)), tag);
                self.rt.wait(p, req).expect("bcast recv")
            };
            have = Some(m);
        }
        let m = have.expect("message present");
        // Forward to children: rel + 2^k for each k with 2^k > rel's top bit.
        let start = if rel == 0 {
            1usize
        } else {
            (1usize << (usize::BITS - 1 - rel.leading_zeros())) << 1
        };
        let mut k = start;
        let mut pending = Vec::new();
        while rel + k < n {
            let child = (rel + k + root) % n;
            pending.push(self.rt.isend(p, comm.member(child), tag, m.clone()));
            k <<= 1;
        }
        for r in pending {
            self.rt.wait(p, r);
        }
        self.coll_span(p, "mpi.bcast", t0, comm);
        m
    }

    /// Ring allgather: returns every member's contribution, indexed by
    /// communicator index. `n − 1` steps of neighbor traffic, like real
    /// MPI ring allgathers (MotifMiner's exchange pattern).
    pub fn allgather(&self, p: &Proc, comm: &Comm, mine: Msg) -> Vec<Msg> {
        let t0 = p.now();
        let n = comm.size();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        let mut blocks: Vec<Option<Msg>> = vec![None; n];
        blocks[me] = Some(mine.clone());
        if n == 1 {
            return blocks.into_iter().map(|b| b.expect("filled")).collect();
        }
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let right = comm.member((me + 1) % n);
        let left = comm.member((me + n - 1) % n);
        let mut cur = mine;
        for step in 1..n {
            let sreq = self.rt.isend(p, right, tag, cur);
            let rreq = self.rt.irecv(p, Some(left), tag);
            let got = self.rt.wait(p, rreq).expect("allgather recv");
            self.rt.wait(p, sreq);
            let idx = (me + n - step) % n;
            blocks[idx] = Some(got.clone());
            cur = got;
        }
        self.coll_span(p, "mpi.allgather", t0, comm);
        blocks.into_iter().map(|b| b.expect("filled")).collect()
    }

    /// Allreduce (sum) of one `f64` via allgather (fine at these scales).
    pub fn allreduce_sum(&self, p: &Proc, comm: &Comm, x: f64) -> f64 {
        self.allgather(p, comm, Msg::f64(x)).iter().map(Msg::as_f64).sum()
    }

    /// Allreduce (max) of one `f64`.
    pub fn allreduce_max(&self, p: &Proc, comm: &Comm, x: f64) -> f64 {
        self.allgather(p, comm, Msg::f64(x))
            .iter()
            .map(Msg::as_f64)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Combined send+receive with one partner each (deadlock-free even
    /// when every member shifts along a ring).
    pub fn sendrecv(
        &self,
        p: &Proc,
        dst: Rank,
        stag: Tag,
        msg: Msg,
        src: Option<Rank>,
        rtag: Tag,
    ) -> Msg {
        assert!(stag <= MAX_USER_TAG && rtag <= MAX_USER_TAG);
        let t0 = p.now();
        let sreq = self.rt.isend(p, dst, stag, msg);
        let rreq = self.rt.irecv(p, src, rtag);
        let got = self.rt.wait(p, rreq).expect("sendrecv recv");
        self.rt.wait(p, sreq);
        p.handle().trace_span_detail(Track::Rank(self.rank()), "mpi.sendrecv", t0, || {
            vec![("peer", ArgValue::U64(u64::from(dst)))]
        });
        got
    }

    /// Gather every member's contribution at `root` (communicator index).
    /// Returns `Some(blocks)` in communicator order at the root, `None`
    /// elsewhere. Linear algorithm (roots at these scales are fine).
    pub fn gather(&self, p: &Proc, comm: &Comm, root: usize, mine: Msg) -> Option<Vec<Msg>> {
        let t0 = p.now();
        let n = comm.size();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        assert!(root < n, "gather root out of range");
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let out = if me == root {
            let mut blocks: Vec<Option<Msg>> = vec![None; n];
            blocks[me] = Some(mine);
            for _ in 0..n - 1 {
                // Receive from each member; sources identify the slot.
                let req = self.rt.irecv(p, None, tag);
                let msg = self.rt.wait(p, req).expect("gather recv");
                // Source rank rides in the first 4 payload bytes.
                let idx = u32::from_le_bytes(
                    msg.data[..4].try_into().expect("gather header"),
                ) as usize;
                let body = Msg { data: msg.data.slice(4..), size: msg.size };
                assert!(blocks[idx].is_none(), "duplicate gather contribution");
                blocks[idx] = Some(body);
            }
            Some(blocks.into_iter().map(|b| b.expect("filled")).collect())
        } else {
            let mut data = Vec::with_capacity(4 + mine.data.len());
            data.extend_from_slice(&(me as u32).to_le_bytes());
            data.extend_from_slice(&mine.data);
            let wire = Msg { data: data.into(), size: mine.size.max(4) };
            let req = self.rt.isend(p, comm.member(root), tag, wire);
            self.rt.wait(p, req);
            None
        };
        self.coll_span(p, "mpi.gather", t0, comm);
        out
    }

    /// Scatter one block per member from `root`. The root passes
    /// `Some(blocks)` in communicator order; every member receives its
    /// block.
    pub fn scatter(
        &self,
        p: &Proc,
        comm: &Comm,
        root: usize,
        blocks: Option<Vec<Msg>>,
    ) -> Msg {
        let t0 = p.now();
        let n = comm.size();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        assert!(root < n, "scatter root out of range");
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let out = if me == root {
            let blocks = blocks.expect("scatter root must supply blocks");
            assert_eq!(blocks.len(), n, "one block per member");
            let mut pending = Vec::new();
            let mut mine = None;
            for (i, b) in blocks.into_iter().enumerate() {
                if i == me {
                    mine = Some(b);
                } else {
                    pending.push(self.rt.isend(p, comm.member(i), tag, b));
                }
            }
            for r in pending {
                self.rt.wait(p, r);
            }
            mine.expect("own block present")
        } else {
            let req = self.rt.irecv(p, Some(comm.member(root)), tag);
            self.rt.wait(p, req).expect("scatter recv")
        };
        self.coll_span(p, "mpi.scatter", t0, comm);
        out
    }

    /// Reduce (sum of `f64`) at `root` (communicator index). Returns
    /// `Some(sum)` at the root, `None` elsewhere.
    pub fn reduce_sum(&self, p: &Proc, comm: &Comm, root: usize, x: f64) -> Option<f64> {
        self.gather(p, comm, root, Msg::f64(x))
            .map(|blocks| blocks.iter().map(Msg::as_f64).sum())
    }

    /// Personalized all-to-all: `blocks[i]` goes to communicator member
    /// `i`; returns the blocks received, indexed by source member.
    /// Pairwise-exchange algorithm (n−1 balanced rounds).
    pub fn alltoall(&self, p: &Proc, comm: &Comm, blocks: Vec<Msg>) -> Vec<Msg> {
        let t0 = p.now();
        let n = comm.size();
        let me = comm.index_of(self.rank()).expect("caller not in communicator");
        assert_eq!(blocks.len(), n, "one block per member");
        let tag = comm.coll_tag(self.rt.next_coll_seq(comm.id()));
        let mut out: Vec<Option<Msg>> = vec![None; n];
        for (i, b) in blocks.into_iter().enumerate() {
            if i == me {
                out[me] = Some(b);
                continue;
            }
            // Stash for the round in which we exchange with member i.
            out[i] = Some(b); // temporarily hold our outgoing block
        }
        // Shifted rounds: in round r, send to (me + r) and receive from
        // (me − r) — deadlock-free with nonblocking sends and balanced
        // link usage.
        let mut received: Vec<Option<Msg>> = vec![None; n];
        received[me] = out[me].take();
        for r in 1..n {
            let to = (me + r) % n;
            let from = (me + n - r) % n;
            let outgoing = out[to].take().expect("block staged");
            let sreq = self.rt.isend(p, comm.member(to), tag, outgoing);
            let rreq = self.rt.irecv(p, Some(comm.member(from)), tag);
            let got = self.rt.wait(p, rreq).expect("alltoall recv");
            self.rt.wait(p, sreq);
            received[from] = Some(got);
        }
        self.coll_span(p, "mpi.alltoall", t0, comm);
        received.into_iter().map(|b| b.expect("filled")).collect()
    }

    // ------------------------------------------------------------------
    // Checkpoint-layer surface (not part of the application API)
    // ------------------------------------------------------------------

    /// Register the checkpoint/restart hook for this rank.
    pub fn set_hook(&self, hook: Arc<dyn CrHook>) {
        self.rt.set_hook(hook);
    }

    /// Enter/leave passive coordination (activates the helper-thread
    /// progress slicing during compute). Runtime-mutable by design: the
    /// coordinator brackets every epoch with it (see
    /// [`MpiConfig::builder`](crate::MpiConfig::builder) for the
    /// fixed-at-construction knobs).
    pub fn set_passive(&self, passive: bool) {
        self.rt.set_passive(passive);
    }

    /// Whether this rank is in passive coordination.
    pub fn is_passive(&self) -> bool {
        self.rt.is_passive()
    }

    /// Send an in-band control message (never gated).
    pub fn ctrl_send(&self, p: &Proc, peer: Rank, cw: CtrlWire) {
        self.rt.ctrl_send(p, peer, cw);
    }

    /// Consume the next in-band control message matching `pred`.
    pub fn ctrl_recv_match(
        &self,
        p: &Proc,
        pred: impl FnMut(Rank, &CtrlWire) -> bool,
    ) -> (Rank, CtrlWire) {
        self.rt.ctrl_recv_match(p, pred)
    }

    /// Send an out-of-band message to `node`.
    pub fn oob_send(&self, p: &Proc, node: NodeId, msg: OobMsg) {
        self.rt.oob_send(p, node, msg);
    }

    /// Consume the next out-of-band message matching `pred`.
    pub fn oob_recv_match(
        &self,
        p: &Proc,
        pred: impl FnMut(NodeId, &OobMsg) -> bool,
    ) -> (NodeId, OobMsg) {
        self.rt.oob_recv_match(p, pred)
    }

    /// Retry deferred sends after a gate change.
    pub fn release_deferred(&self, p: &Proc) {
        self.rt.release_deferred(p);
    }

    /// Whether deferred traffic to `peer` is queued.
    pub fn has_deferred_to(&self, peer: Rank) -> bool {
        self.rt.has_deferred_to(peer)
    }

    /// One consistent snapshot of this rank's endpoint telemetry: sent and
    /// received per-peer traffic, deferral counters and queue depth,
    /// connected peers, and logged bytes — all state-guarded fields read
    /// under a single lock acquisition. This is *the* telemetry entry
    /// point.
    pub fn stats(&self) -> EndpointStats {
        self.rt.stats()
    }

    /// Snapshot the checkpointable slice of this rank's library state.
    /// `boundary_seqs` comes from [`crate::MpiCrState::send_seqs`] captured at the
    /// application's last registered state boundary.
    pub fn export_cr_state(
        &self,
        boundary_seqs: &[(Rank, u64)],
        boundary_coll_seqs: &[(u32, u32)],
    ) -> MpiCrState {
        self.rt.export_cr_state(boundary_seqs, boundary_coll_seqs)
    }

    /// Capture a restartable boundary: returns the per-destination send
    /// sequence counters plus the per-communicator collective sequence
    /// counters, and clears the receive replay log. Call exactly when
    /// registering application state (the checkpoint client does).
    pub fn boundary_snapshot(&self) -> BoundarySnapshot {
        self.rt.boundary_snapshot()
    }

    /// Re-inject saved library state at restart (before the app body runs).
    pub fn import_cr_state(&self, p: &Proc, state: MpiCrState) {
        self.rt.import_cr_state(p, state);
    }

    /// Enable/disable sender-based message logging on this rank.
    ///
    /// This is one of the two runtime-mutable mode switches (the other is
    /// [`Mpi::set_passive`]); both are driven by the checkpoint protocol
    /// itself, never by user configuration. Whole-run logging (the
    /// uncoordinated mode) is instead selected up front via
    /// [`crate::MpiConfigBuilder::message_logging`].
    pub fn set_log_mode(&self, on: bool) {
        self.rt.set_log_mode(on);
    }

    /// Whether the data-plane connection to `peer` is active.
    pub fn conn_is_active(&self, peer: Rank) -> bool {
        self.rt.ep.is_connected(NodeId(peer))
    }

    /// Establish the data-plane connection to `peer` (initiator pays).
    pub fn conn_connect(&self, p: &Proc, peer: Rank) {
        self.rt.ep.connect(p, NodeId(peer));
    }

    /// Flush (wait for in-flight both ways) and tear down the connection to
    /// `peer`. Caller must have stopped traffic in both directions.
    pub fn conn_teardown(&self, p: &Proc, peer: Rank) {
        self.rt.ep.teardown(p, NodeId(peer));
    }

    /// Wait until the channel to `peer` is empty in both directions.
    pub fn conn_wait_drained(&self, p: &Proc, peer: Rank) {
        self.rt.ep.wait_drained(p, NodeId(peer));
    }
}
