//! Runtime configuration.

use gbcr_des::{time, Time};
use gbcr_net::NetConfig;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for [`MpiConfig::polled_progress`]. The bench
/// harness flips this to rerun the whole figure sweep in polled mode for
/// the equivalence check / ablation without threading a flag through
/// every driver.
static POLLED_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Set the process-wide default for [`MpiConfig::polled_progress`].
///
/// This is a **constructor default**, not a runtime toggle: it only
/// affects configs built afterwards (via [`MpiConfig::new`] or
/// [`MpiConfig::builder`]); worlds already constructed never change
/// mode. Per-world mode selection should use
/// [`MpiConfigBuilder::polled_progress`] — this global exists so the
/// bench harness can rerun a whole figure sweep in polled mode without
/// threading a flag through every driver.
pub fn set_polled_progress_default(on: bool) {
    POLLED_DEFAULT.store(on, Ordering::SeqCst);
}

/// Current process-wide default for [`MpiConfig::polled_progress`].
pub fn polled_progress_default() -> bool {
    POLLED_DEFAULT.load(Ordering::SeqCst)
}

/// Configuration of an MPI world.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub n: u32,
    /// Messages with `size <= eager_threshold` use the eager protocol
    /// (copied to a communication buffer, sent immediately); larger ones
    /// use zero-copy rendezvous. MVAPICH2's default on IB is in the
    /// 8–16 KiB range.
    pub eager_threshold: u64,
    /// Data-plane (InfiniBand) fabric parameters.
    pub net: NetConfig,
    /// Out-of-band (PMI/mpirun socket mesh) fabric parameters.
    pub oob: NetConfig,
    /// Bounded progress interval guaranteed by the helper thread while in
    /// passive coordination (paper §4.4 uses 100 ms).
    pub progress_interval: Time,
    /// Whether the passive-coordination helper thread exists at all.
    /// Disabling it is the §4.4 ablation: inter-group coordination then
    /// waits for the application's next MPI call.
    pub helper_thread: bool,
    /// Run the helper thread's progress slicing in the legacy *polled*
    /// style: one timer wake per `progress_interval` regardless of
    /// traffic. The default (demand-driven) elides empty slices by waking
    /// only when the fabric delivers, rounded up to the same slice
    /// boundaries — observably identical timing, far fewer events. Kept
    /// for the ablation and the equivalence test.
    pub polled_progress: bool,
    /// Memory bandwidth used to charge the copy+log cost per byte in the
    /// message-logging ablation mode (bytes/s).
    pub logging_copy_bw: f64,
    /// Start every rank with sender-based message logging on (the
    /// uncoordinated mode's whole-run logging). Constructed here rather
    /// than toggled after attach so a mode combination is a value, not a
    /// mutation sequence.
    pub message_logging: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig::new(2)
    }
}

impl MpiConfig {
    /// A world of `n` ranks with the paper's testbed parameters.
    pub fn new(n: u32) -> Self {
        MpiConfig {
            n,
            eager_threshold: 16 * 1024,
            net: NetConfig::infiniband_ddr(),
            oob: NetConfig {
                latency: time::us(40),
                bandwidth: 100.0e6,
                per_message_overhead: time::us(5),
                conn_setup_time: time::us(300),
                conn_teardown_time: time::us(50),
            },
            progress_interval: time::ms(100),
            helper_thread: true,
            polled_progress: polled_progress_default(),
            logging_copy_bw: 2.5e9,
            message_logging: false,
        }
    }

    /// Start building a configuration for `n` ranks from the testbed
    /// defaults. Mode combinations (logging, progress style, helper
    /// thread) are chosen here, before the world exists:
    ///
    /// ```
    /// use gbcr_mpi::MpiConfig;
    /// let cfg = MpiConfig::builder(8)
    ///     .message_logging(true)
    ///     .polled_progress(false)
    ///     .build();
    /// assert!(cfg.message_logging);
    /// ```
    ///
    /// Only two knobs may still change at runtime, both driven by the
    /// checkpoint protocol itself, not by user configuration:
    /// `Mpi::set_passive` (entered/left around every coordinated epoch)
    /// and `Mpi::set_log_mode` (buffering/logging mode flips it for the
    /// duration of one epoch). Everything else is fixed at `build()`.
    pub fn builder(n: u32) -> MpiConfigBuilder {
        MpiConfigBuilder { cfg: MpiConfig::new(n) }
    }

    /// Rebuild this configuration with some fields changed.
    pub fn to_builder(&self) -> MpiConfigBuilder {
        MpiConfigBuilder { cfg: self.clone() }
    }
}

/// Builder for [`MpiConfig`]; see [`MpiConfig::builder`].
#[derive(Debug, Clone)]
pub struct MpiConfigBuilder {
    cfg: MpiConfig,
}

impl MpiConfigBuilder {
    /// Eager/rendezvous protocol switch-over size, bytes.
    pub fn eager_threshold(mut self, bytes: u64) -> Self {
        self.cfg.eager_threshold = bytes;
        self
    }

    /// Data-plane fabric parameters.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.cfg.net = net;
        self
    }

    /// Out-of-band fabric parameters.
    pub fn oob(mut self, oob: NetConfig) -> Self {
        self.cfg.oob = oob;
        self
    }

    /// Bounded progress interval under passive coordination.
    pub fn progress_interval(mut self, dt: Time) -> Self {
        self.cfg.progress_interval = dt;
        self
    }

    /// Whether the passive-coordination helper thread exists (§4.4
    /// ablation when disabled).
    pub fn helper_thread(mut self, on: bool) -> Self {
        self.cfg.helper_thread = on;
        self
    }

    /// Polled (legacy) vs demand-driven progress slicing.
    pub fn polled_progress(mut self, on: bool) -> Self {
        self.cfg.polled_progress = on;
        self
    }

    /// Memory bandwidth charged per logged byte (bytes/s).
    pub fn logging_copy_bw(mut self, bw: f64) -> Self {
        self.cfg.logging_copy_bw = bw;
        self
    }

    /// Start every rank with sender-based message logging enabled.
    pub fn message_logging(mut self, on: bool) -> Self {
        self.cfg.message_logging = on;
        self
    }

    /// Finish, yielding the immutable configuration.
    pub fn build(self) -> MpiConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oob_is_slower_but_cheaper_to_connect_than_data_plane() {
        let c = MpiConfig::new(4);
        assert!(c.oob.latency > c.net.latency);
        assert!(c.oob.conn_setup_time < c.net.conn_setup_time);
    }

    #[test]
    fn builder_composes_modes_without_mutation() {
        let c = MpiConfig::builder(8)
            .message_logging(true)
            .polled_progress(true)
            .helper_thread(false)
            .eager_threshold(4 * 1024)
            .build();
        assert_eq!(c.n, 8);
        assert!(c.message_logging && c.polled_progress && !c.helper_thread);
        assert_eq!(c.eager_threshold, 4 * 1024);
        // Round-tripping through to_builder preserves everything else.
        let c2 = c.to_builder().message_logging(false).build();
        assert!(!c2.message_logging);
        assert!(c2.polled_progress && !c2.helper_thread);
    }
}
