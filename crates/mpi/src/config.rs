//! Runtime configuration.

use gbcr_des::{time, Time};
use gbcr_net::NetConfig;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for [`MpiConfig::polled_progress`]. The bench
/// harness flips this to rerun the whole figure sweep in polled mode for
/// the equivalence check / ablation without threading a flag through
/// every driver.
static POLLED_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Set the process-wide default for [`MpiConfig::polled_progress`]
/// (picked up by every `MpiConfig` constructed afterwards).
pub fn set_polled_progress_default(on: bool) {
    POLLED_DEFAULT.store(on, Ordering::SeqCst);
}

/// Current process-wide default for [`MpiConfig::polled_progress`].
pub fn polled_progress_default() -> bool {
    POLLED_DEFAULT.load(Ordering::SeqCst)
}

/// Configuration of an MPI world.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub n: u32,
    /// Messages with `size <= eager_threshold` use the eager protocol
    /// (copied to a communication buffer, sent immediately); larger ones
    /// use zero-copy rendezvous. MVAPICH2's default on IB is in the
    /// 8–16 KiB range.
    pub eager_threshold: u64,
    /// Data-plane (InfiniBand) fabric parameters.
    pub net: NetConfig,
    /// Out-of-band (PMI/mpirun socket mesh) fabric parameters.
    pub oob: NetConfig,
    /// Bounded progress interval guaranteed by the helper thread while in
    /// passive coordination (paper §4.4 uses 100 ms).
    pub progress_interval: Time,
    /// Whether the passive-coordination helper thread exists at all.
    /// Disabling it is the §4.4 ablation: inter-group coordination then
    /// waits for the application's next MPI call.
    pub helper_thread: bool,
    /// Run the helper thread's progress slicing in the legacy *polled*
    /// style: one timer wake per `progress_interval` regardless of
    /// traffic. The default (demand-driven) elides empty slices by waking
    /// only when the fabric delivers, rounded up to the same slice
    /// boundaries — observably identical timing, far fewer events. Kept
    /// for the ablation and the equivalence test.
    pub polled_progress: bool,
    /// Memory bandwidth used to charge the copy+log cost per byte in the
    /// message-logging ablation mode (bytes/s).
    pub logging_copy_bw: f64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig::new(2)
    }
}

impl MpiConfig {
    /// A world of `n` ranks with the paper's testbed parameters.
    pub fn new(n: u32) -> Self {
        MpiConfig {
            n,
            eager_threshold: 16 * 1024,
            net: NetConfig::infiniband_ddr(),
            oob: NetConfig {
                latency: time::us(40),
                bandwidth: 100.0e6,
                per_message_overhead: time::us(5),
                conn_setup_time: time::us(300),
                conn_teardown_time: time::us(50),
            },
            progress_interval: time::ms(100),
            helper_thread: true,
            polled_progress: polled_progress_default(),
            logging_copy_bw: 2.5e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oob_is_slower_but_cheaper_to_connect_than_data_plane() {
        let c = MpiConfig::new(4);
        assert!(c.oob.latency > c.net.latency);
        assert!(c.oob.conn_setup_time < c.net.conn_setup_time);
    }
}
