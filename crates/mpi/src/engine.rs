//! The per-rank runtime: protocol state machine, matching, deferral, and
//! the progress engine.
//!
//! Every `Rt` is owned by exactly one simulated process (its rank's
//! thread); the hook callbacks and all blocking helpers run on that same
//! thread, so the internal mutex is uncontended and never held across a
//! park point.

use crate::config::MpiConfig;
use crate::hook::{CrHook, CtrlWire, OobMsg};
use crate::types::{BoundarySnapshot, Msg, Rank, Request, Tag};
use crate::world::WorldShared;
use gbcr_des::{DemandWake, Proc, Time, TimerHandle};
use gbcr_net::{Endpoint, NodeId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Fixed per-message header bytes charged on the wire.
pub(crate) const WIRE_HEADER: u64 = 64;

/// Data-plane wire messages (the simulated MVAPICH2 packet types).
#[derive(Debug, Clone)]
pub(crate) enum WireMsg {
    /// Small message, payload travels immediately (copied to a comm buffer).
    Eager { tag: Tag, useq: u64, msg: Msg },
    /// Rendezvous request-to-send for a large message.
    Rts { tag: Tag, size: u64, sreq: u64, useq: u64 },
    /// Receiver grants the rendezvous; sender may start the RDMA transfer.
    Cts { sreq: u64, rreq: u64 },
    /// The rendezvous bulk data (zero-copy RDMA write in the real system).
    Data { rreq: u64, msg: Msg },
    /// Checkpoint-protocol control message riding in-band.
    Ctrl(CtrlWire),
}

impl WireMsg {
    fn wire_size(&self) -> u64 {
        match self {
            WireMsg::Eager { msg, .. } => WIRE_HEADER + msg.size,
            WireMsg::Data { msg, .. } => WIRE_HEADER + msg.size,
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::Ctrl(_) => WIRE_HEADER,
        }
    }
}

/// How a deferred operation is being held back (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferClass {
    /// *Message buffering*: the payload was already copied into a
    /// communication buffer (eager path); the buffered bytes are real.
    Message,
    /// *Request buffering*: the operation is held as an incomplete request
    /// (rendezvous RTS/CTS/data, or an uncopied small send); no payload is
    /// duplicated.
    Request,
}

/// Counters for the buffering machinery (feeds the §4.3 ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeferStats {
    /// Operations deferred under message buffering.
    pub msg_buffered: u64,
    /// Payload bytes held under message buffering.
    pub msg_buffered_bytes: u64,
    /// Operations deferred under request buffering.
    pub req_buffered: u64,
    /// User-payload bytes whose transfer was postponed by request buffering
    /// (bytes *not* copied — the saving vs. message logging).
    pub req_buffered_bytes: u64,
    /// Deferred operations later released to the network.
    pub released: u64,
    /// High-water mark of the deferred queue length.
    pub max_queue: usize,
    /// Replay duplicates suppressed by the receive watermark (restart runs
    /// only; always 0 in failure-free operation).
    pub dups_dropped: u64,
}

/// Per-peer user-plane traffic counters (input to dynamic group formation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// `(peer, messages, payload bytes)` for every peer this rank has sent
    /// user messages to, sorted by peer rank.
    pub per_peer: Vec<(Rank, u64, u64)>,
}

/// One coherent snapshot of a rank's endpoint telemetry, taken under a
/// single state lock by [`crate::Mpi::stats`]: one call, one consistent
/// view (no per-field getter can observe a torn update).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Per-peer *sent* user traffic (input to dynamic group formation).
    pub traffic: TrafficStats,
    /// Per-source *received* user-message `(peer, count, bytes)`, sorted
    /// by peer (Chandy-Lamport channel accounting).
    pub recv_per_peer: Vec<(Rank, u64, u64)>,
    /// Deferral machinery counters (§4.3 ablation).
    pub defer: DeferStats,
    /// Operations currently queued in the deferral buffer.
    pub deferred_len: usize,
    /// Peers with an `Active` data-plane connection, sorted.
    pub connected_peers: Vec<Rank>,
    /// User bytes copied into message logs so far (logging ablation).
    pub logged_bytes: u64,
}

impl EndpointStats {
    /// Cumulative user bytes received from `peer`.
    pub fn recv_bytes_from(&self, peer: Rank) -> u64 {
        self.recv_per_peer.iter().find(|(r, _, _)| *r == peer).map_or(0, |(_, _, b)| *b)
    }
}

/// The checkpointable slice of a rank's MPI-library state (what BLCR
/// captures from the process image in the real system): delivered-but-
/// unconsumed receive data plus eager messages held in the deferral queues
/// (*message buffers*). Rendezvous bookkeeping is deliberately excluded —
/// an incomplete rendezvous means the application-level send/receive had
/// not completed, so deterministic replay reissues it (see DESIGN.md §3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MpiCrState {
    /// `(src, tag, msg)` receive data present in the library at freeze
    /// time, in matchable order.
    pub inbound: Vec<(Rank, Tag, Msg)>,
    /// `(dst, tag, msg, useq)` eager messages sitting in the message
    /// buffers whose send precedes the application's registered state
    /// boundary (later ones are re-executed by the application itself).
    pub deferred_eager: Vec<(Rank, Tag, Msg, u64)>,
    /// Per-destination next send sequence number **as of the application's
    /// registered state boundary**, so replayed sends reuse their original
    /// sequence numbers.
    pub send_seqs: Vec<(Rank, u64)>,
    /// Per-source receive watermark at freeze: everything below it was
    /// delivered pre-freeze and must be suppressed if replayed.
    pub recv_watermarks: Vec<(Rank, u64)>,
    /// Per-communicator collective sequence counters **at the boundary**,
    /// so replayed collectives reuse their original tags.
    pub coll_seqs: Vec<(u32, u32)>,
}

struct PostedRecv {
    id: u64,
    src: Option<Rank>,
    tag: Tag,
}

enum Unexpected {
    Eager { src: Rank, tag: Tag, msg: Msg },
    Rts { src: Rank, tag: Tag, sreq: u64, useq: u64 },
}

struct PendingSend {
    dst: Rank,
    msg: Option<Msg>,
}

struct Deferred {
    dst: Rank,
    wire: WireMsg,
    /// Send-request id to complete when this actually reaches the wire.
    on_sent: Option<u64>,
}

pub(crate) struct RtState {
    posted: Vec<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    /// Rendezvous sends awaiting CTS, by send-request id.
    rdv_sends: HashMap<u64, PendingSend>,
    /// Rendezvous receives awaiting data, recv-request id keyed.
    done_recv: HashMap<u64, (Rank, Tag, Msg)>,
    /// `(tag, useq)` of rendezvous receives whose CTS went out, so the
    /// eventual DATA completion carries full metadata and bumps the
    /// watermark.
    rdv_recv_tags: HashMap<u64, (Tag, u64)>,
    /// Per-destination next user-message sequence number.
    next_useq: HashMap<Rank, u64>,
    /// Per-source: lowest sequence number that would be *new* (everything
    /// below was delivered before the last checkpoint freeze).
    recv_watermark: HashMap<Rank, u64>,
    /// Rendezvous sink ids: CTS was sent for a stale replayed RTS; the
    /// arriving DATA is discarded.
    sink_rreqs: HashSet<u64>,
    /// Receive data claimed by the application since its last registered
    /// state boundary. Replay after restart re-executes those receives, so
    /// their data must ride in the image (piecewise-deterministic replay).
    /// Cleared at every boundary snapshot.
    replay_log: Vec<(Rank, Tag, Msg)>,
    done_send: HashSet<u64>,
    deferred: VecDeque<Deferred>,
    ctrl_in: VecDeque<(Rank, CtrlWire)>,
    oob_in: VecDeque<(NodeId, OobMsg)>,
    next_req: u64,
    coll_seq: HashMap<u32, u32>,
    passive: bool,
    dispatching: bool,
    log_mode: bool,
    logged_bytes: u64,
    hook: Option<Arc<dyn CrHook>>,
    traffic: HashMap<Rank, (u64, u64)>,
    /// Per-source received user-message `(count, bytes)` — consumed by the
    /// Chandy-Lamport channel-state logging accounting.
    recv_traffic: HashMap<Rank, (u64, u64)>,
    defer_stats: DeferStats,
}

pub(crate) struct Rt {
    pub(crate) world: Arc<WorldShared>,
    pub(crate) rank: Rank,
    pub(crate) ep: Endpoint<WireMsg>,
    pub(crate) oob_ep: Endpoint<OobMsg>,
    /// Demand-driven progress wake shared with the data-plane endpoint
    /// while this rank is under passive coordination (see `compute`).
    pub(crate) demand: DemandWake,
    pub(crate) st: Mutex<RtState>,
}

impl Rt {
    pub(crate) fn new(world: Arc<WorldShared>, rank: Rank) -> Self {
        let ep = world.data.endpoint(NodeId(rank));
        let oob_ep = world.oob.endpoint(NodeId(rank));
        let demand = DemandWake::new(world.handle.clone());
        let log_mode = world.cfg.message_logging;
        Rt {
            world,
            rank,
            ep,
            oob_ep,
            demand,
            st: Mutex::new(RtState {
                posted: Vec::new(),
                unexpected: VecDeque::new(),
                rdv_sends: HashMap::new(),
                done_recv: HashMap::new(),
                rdv_recv_tags: HashMap::new(),
                next_useq: HashMap::new(),
                recv_watermark: HashMap::new(),
                sink_rreqs: HashSet::new(),
                replay_log: Vec::new(),
                done_send: HashSet::new(),
                deferred: VecDeque::new(),
                ctrl_in: VecDeque::new(),
                oob_in: VecDeque::new(),
                next_req: 0,
                coll_seq: HashMap::new(),
                passive: false,
                dispatching: false,
                log_mode,
                logged_bytes: 0,
                hook: None,
                traffic: HashMap::new(),
                recv_traffic: HashMap::new(),
                defer_stats: DeferStats::default(),
            }),
        }
    }

    pub(crate) fn cfg(&self) -> &MpiConfig {
        &self.world.cfg
    }

    fn alloc_req(&self) -> u64 {
        let mut st = self.st.lock();
        let id = st.next_req;
        st.next_req += 1;
        id
    }

    pub(crate) fn next_coll_seq(&self, comm_id: u32) -> u32 {
        let mut st = self.st.lock();
        let c = st.coll_seq.entry(comm_id).or_insert(0);
        let v = *c;
        *c = c.wrapping_add(1);
        v
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Nonblocking send. Eager messages complete immediately (buffer
    /// copied); rendezvous sends complete when the data leaves the NIC.
    pub(crate) fn isend(&self, p: &Proc, dst: Rank, tag: Tag, msg: Msg) -> Request {
        assert!(dst < self.cfg().n, "isend to rank {dst} out of range");
        assert_ne!(dst, self.rank, "self-sends are not supported; use local state");
        let id = self.alloc_req();
        let useq = {
            let mut st = self.st.lock();
            let t = st.traffic.entry(dst).or_insert((0, 0));
            t.0 += 1;
            t.1 += msg.size;
            let c = st.next_useq.entry(dst).or_insert(0);
            let u = *c;
            *c += 1;
            u
        };
        let log_mode = self.st.lock().log_mode;
        if log_mode {
            // Message-logging ablation (paper §2.1/§7): every outgoing
            // message is fully copied and logged, and zero-copy rendezvous
            // cannot be used. Charge the copy+log memcpy time and ship the
            // payload eagerly regardless of size.
            let copy_time =
                gbcr_des::time::transfer_time(msg.size, self.cfg().logging_copy_bw);
            p.sleep(copy_time);
            {
                let mut st = self.st.lock();
                st.logged_bytes += msg.size;
                st.done_send.insert(id);
            }
            self.enqueue_send(p, dst, WireMsg::Eager { tag, useq, msg }, None);
            return Request(id);
        }
        if msg.size <= self.cfg().eager_threshold {
            // Eager: the payload is copied into a comm buffer, so the user
            // buffer is immediately reusable regardless of deferral (this
            // is precisely what makes *message buffering* possible).
            self.st.lock().done_send.insert(id);
            self.enqueue_send(p, dst, WireMsg::Eager { tag, useq, msg }, None);
        } else {
            self.st.lock().rdv_sends.insert(id, PendingSend { dst, msg: Some(msg.clone()) });
            self.enqueue_send(
                p,
                dst,
                WireMsg::Rts { tag, size: msg.size, sreq: id, useq },
                None,
            );
        }
        Request(id)
    }

    /// Route a wire message to the network, or defer it if the hook's gate
    /// is closed for `dst` (or earlier deferred traffic to `dst` exists —
    /// FIFO per destination is part of MPI's non-overtaking guarantee).
    fn enqueue_send(&self, p: &Proc, dst: Rank, wire: WireMsg, on_sent: Option<u64>) {
        let (allowed, has_earlier) = {
            let st = self.st.lock();
            let gate = st.hook.as_ref().is_none_or(|h| h.user_send_allowed(dst));
            (gate, st.deferred.iter().any(|d| d.dst == dst))
        };
        if allowed && !has_earlier {
            self.raw_send(p, dst, wire, on_sent);
        } else {
            let mut st = self.st.lock();
            let ds = &mut st.defer_stats;
            match wire {
                WireMsg::Eager { ref msg, .. } => {
                    ds.msg_buffered += 1;
                    ds.msg_buffered_bytes += msg.size;
                }
                WireMsg::Rts { size, .. } => {
                    ds.req_buffered += 1;
                    ds.req_buffered_bytes += size;
                }
                WireMsg::Cts { .. } => ds.req_buffered += 1,
                WireMsg::Data { ref msg, .. } => {
                    ds.req_buffered += 1;
                    ds.req_buffered_bytes += msg.size;
                }
                WireMsg::Ctrl(_) => unreachable!("ctrl messages are never gated"),
            }
            st.deferred.push_back(Deferred { dst, wire, on_sent });
            let len = st.deferred.len();
            let ds = &mut st.defer_stats;
            ds.max_queue = ds.max_queue.max(len);
        }
    }

    /// Put a wire message on the fabric, (re)connecting on demand.
    /// Must be called without the state lock held: connecting parks.
    fn raw_send(&self, p: &Proc, dst: Rank, wire: WireMsg, on_sent: Option<u64>) {
        // Destination's node died (fault injection): black-hole the message
        // instead of touching the torn-down connection. The send still
        // "completes" locally — on real hardware the HCA accepts the work
        // request and only an async error event later reports the QP broken.
        if self.world.failed.lock().contains(&dst) {
            self.world
                .dropped_sends
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if let Some(id) = on_sent {
                self.st.lock().done_send.insert(id);
            }
            return;
        }
        let peer = NodeId(dst);
        if !self.ep.is_connected(peer) {
            self.ep.connect(p, peer);
        }
        let size = wire.wire_size();
        self.ep.send(peer, wire, size);
        if let Some(id) = on_sent {
            self.st.lock().done_send.insert(id);
        }
    }

    /// Retry deferred operations whose destination gate has re-opened,
    /// preserving per-destination FIFO order. Called by the checkpoint
    /// controller after every gate change.
    pub(crate) fn release_deferred(&self, p: &Proc) {
        let t0 = p.now();
        let mut released: u64 = 0;
        loop {
            // Pop one releasable operation per pass (the head for some
            // destination whose gate is open), keeping order.
            let next = {
                let mut st = self.st.lock();
                let hook = st.hook.clone();
                let gate = |dst: Rank| hook.as_ref().is_none_or(|h| h.user_send_allowed(dst));
                let mut blocked_dsts: HashSet<Rank> = HashSet::new();
                let mut pick = None;
                for (i, d) in st.deferred.iter().enumerate() {
                    if blocked_dsts.contains(&d.dst) {
                        continue;
                    }
                    if gate(d.dst) {
                        pick = Some(i);
                        break;
                    }
                    blocked_dsts.insert(d.dst);
                }
                match pick {
                    Some(i) => {
                        let d = st.deferred.remove(i).expect("index valid");
                        st.defer_stats.released += 1;
                        Some(d)
                    }
                    None => None,
                }
            };
            match next {
                Some(d) => {
                    released += 1;
                    self.raw_send(p, d.dst, d.wire, d.on_sent);
                }
                None => break,
            }
        }
        if released > 0 {
            p.handle().trace_span(
                gbcr_des::Track::Rank(self.rank),
                "mpi.release_deferred",
                t0,
                || vec![("released", gbcr_des::ArgValue::U64(released))],
            );
        }
    }

    /// Whether any deferred operation targets `peer`.
    pub(crate) fn has_deferred_to(&self, peer: Rank) -> bool {
        self.st.lock().deferred.iter().any(|d| d.dst == peer)
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Nonblocking receive post.
    pub(crate) fn irecv(&self, p: &Proc, src: Option<Rank>, tag: Tag) -> Request {
        let id = self.alloc_req();
        // Try to satisfy from the unexpected queue first (arrival order).
        let action = {
            let mut st = self.st.lock();
            let pos = st.unexpected.iter().position(|u| match u {
                Unexpected::Eager { src: s, tag: t, .. }
                | Unexpected::Rts { src: s, tag: t, .. } => {
                    *t == tag && src.is_none_or(|want| want == *s)
                }
            });
            match pos {
                Some(i) => match st.unexpected.remove(i).expect("index valid") {
                    Unexpected::Eager { src: s, tag: t, msg } => {
                        st.done_recv.insert(id, (s, t, msg));
                        None
                    }
                    Unexpected::Rts { src: s, tag: t, sreq, useq } => {
                        st.rdv_recv_tags.insert(id, (t, useq));
                        Some((s, sreq))
                    }
                },
                None => {
                    st.posted.push(PostedRecv { id, src, tag });
                    None
                }
            }
        };
        if let Some((s, sreq)) = action {
            // Grant the rendezvous: CTS back to the sender (gated).
            self.enqueue_send(p, s, WireMsg::Cts { sreq, rreq: id }, None);
        }
        Request(id)
    }

    /// Block until `req` completes. Returns the message for receives,
    /// `None` for sends.
    pub(crate) fn wait(&self, p: &Proc, req: Request) -> Option<Msg> {
        loop {
            self.progress(p);
            {
                let mut st = self.st.lock();
                if let Some((src, tag, m)) = st.done_recv.remove(&req.0) {
                    st.replay_log.push((src, tag, m.clone()));
                    return Some(m);
                }
                if st.done_send.remove(&req.0) {
                    return None;
                }
            }
            self.wait_event(p);
        }
    }

    /// Nonblocking completion check. Returns the result if complete.
    pub(crate) fn test(&self, p: &Proc, req: Request) -> Option<Option<Msg>> {
        self.progress(p);
        let mut st = self.st.lock();
        if let Some((src, tag, m)) = st.done_recv.remove(&req.0) {
            st.replay_log.push((src, tag, m.clone()));
            return Some(Some(m));
        }
        if st.done_send.remove(&req.0) {
            return Some(None);
        }
        None
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// Drain both fabrics, run protocol handling, then dispatch unsolicited
    /// control traffic to the hook (unless a dispatch is already running on
    /// this rank — protocol code consumes follow-up messages explicitly).
    /// Returns whether anything was handled at all — `compute` uses this to
    /// anchor its slice lattice at the last instant progress did work.
    pub(crate) fn progress(&self, p: &Proc) -> bool {
        let mut worked = false;
        loop {
            let mut any = false;
            while let Some((from, wire)) = self.ep.try_recv() {
                any = true;
                self.handle_wire(p, from.0, wire);
            }
            while let Some((from, msg)) = self.oob_ep.try_recv() {
                any = true;
                self.st.lock().oob_in.push_back((from, msg));
            }
            // Hook dispatch: one unsolicited message at a time.
            let dispatch = {
                let mut st = self.st.lock();
                if st.dispatching || st.hook.is_none() {
                    None
                } else if let Some((from, cw)) = st.ctrl_in.pop_front() {
                    st.dispatching = true;
                    Some(DispatchItem::Ctrl(from, cw))
                } else if let Some((from, om)) = st.oob_in.pop_front() {
                    st.dispatching = true;
                    Some(DispatchItem::Oob(from, om))
                } else {
                    None
                }
            };
            if let Some(item) = dispatch {
                let hook = self.st.lock().hook.clone().expect("hook present");
                let mpi = crate::api::Mpi::from_rt(self.self_arc());
                match item {
                    DispatchItem::Ctrl(from, cw) => hook.on_ctrl(p, &mpi, from, cw),
                    DispatchItem::Oob(from, om) => hook.on_oob(p, &mpi, from, om),
                }
                self.st.lock().dispatching = false;
                any = true;
            }
            if !any {
                return worked;
            }
            worked = true;
        }
    }

    fn handle_wire(&self, p: &Proc, from: Rank, wire: WireMsg) {
        match wire {
            WireMsg::Eager { tag, useq, msg } => {
                let mut st = self.st.lock();
                let wm = st.recv_watermark.entry(from).or_insert(0);
                if useq < *wm {
                    // A replayed duplicate of a message delivered before the
                    // checkpoint this run restarted from.
                    st.defer_stats.dups_dropped += 1;
                    return;
                }
                *wm = useq + 1;
                let rt = st.recv_traffic.entry(from).or_insert((0, 0));
                rt.0 += 1;
                rt.1 += msg.size;
                match Self::match_posted(&mut st.posted, from, tag) {
                    Some(id) => {
                        st.done_recv.insert(id, (from, tag, msg));
                    }
                    None => st.unexpected.push_back(Unexpected::Eager { src: from, tag, msg }),
                }
            }
            WireMsg::Rts { tag, size, sreq, useq } => {
                let matched = {
                    let mut st = self.st.lock();
                    let wm = *st.recv_watermark.entry(from).or_insert(0);
                    if useq < wm {
                        // Stale replayed rendezvous: the data was already
                        // consumed before the restored checkpoint. Complete
                        // the sender by granting a sink CTS and discarding
                        // the data on arrival.
                        st.defer_stats.dups_dropped += 1;
                        drop(st);
                        let sink = self.alloc_req();
                        self.st.lock().sink_rreqs.insert(sink);
                        self.enqueue_send(p, from, WireMsg::Cts { sreq, rreq: sink }, None);
                        return;
                    }
                    match Self::match_posted(&mut st.posted, from, tag) {
                        Some(id) => {
                            st.rdv_recv_tags.insert(id, (tag, useq));
                            Some(id)
                        }
                        None => {
                            let _ = size;
                            st.unexpected.push_back(Unexpected::Rts { src: from, tag, sreq, useq });
                            None
                        }
                    }
                };
                if let Some(rreq) = matched {
                    self.enqueue_send(p, from, WireMsg::Cts { sreq, rreq }, None);
                }
            }
            WireMsg::Cts { sreq, rreq } => {
                let pending = self.st.lock().rdv_sends.remove(&sreq);
                let pending = pending.unwrap_or_else(|| {
                    panic!("rank {}: CTS for unknown send request {sreq}", self.rank)
                });
                let msg = pending.msg.expect("pending send has payload");
                debug_assert_eq!(pending.dst, from);
                self.enqueue_send(p, from, WireMsg::Data { rreq, msg }, Some(sreq));
            }
            WireMsg::Data { rreq, msg } => {
                let mut st = self.st.lock();
                if st.sink_rreqs.remove(&rreq) {
                    return; // discarded duplicate rendezvous payload
                }
                let (tag, useq) =
                    st.rdv_recv_tags.remove(&rreq).expect("DATA for unknown rendezvous recv");
                let wm = st.recv_watermark.entry(from).or_insert(0);
                *wm = (*wm).max(useq + 1);
                let rt = st.recv_traffic.entry(from).or_insert((0, 0));
                rt.0 += 1;
                rt.1 += msg.size;
                st.done_recv.insert(rreq, (from, tag, msg));
            }
            WireMsg::Ctrl(cw) => {
                self.st.lock().ctrl_in.push_back((from, cw));
            }
        }
    }

    /// First posted receive matching `(from, tag)`, removed from the list.
    fn match_posted(posted: &mut Vec<PostedRecv>, from: Rank, tag: Tag) -> Option<u64> {
        let idx = posted
            .iter()
            .position(|r| r.tag == tag && r.src.is_none_or(|want| want == from))?;
        Some(posted.remove(idx).id)
    }

    /// Park until anything arrives on either plane (or a stale wake fires).
    /// Registrations are withdrawn on return so that later deliveries can
    /// never wake this rank outside a genuine wait (OS-bypass fidelity).
    pub(crate) fn wait_event(&self, p: &Proc) {
        if self.ep.pending() > 0 || self.oob_ep.pending() > 0 {
            return;
        }
        self.ep.register_waiter(p.id());
        self.oob_ep.register_waiter(p.id());
        p.park();
        self.ep.unregister_waiter(p.id());
        self.oob_ep.unregister_waiter(p.id());
    }

    // ------------------------------------------------------------------
    // Compute with bounded-progress slicing
    // ------------------------------------------------------------------

    /// Perform `dt` of local computation. Data-plane arrivals do **not**
    /// interrupt computation (OS-bypass); out-of-band messages do (socket +
    /// listener thread). In passive coordination mode with the helper
    /// thread enabled, the progress engine additionally runs on every
    /// crossed slice boundary `anchor + k·progress_interval` (paper §4.4;
    /// the anchor is the last instant progress did work). Time spent
    /// coordinating extends the compute deadline: coordination steals the
    /// CPU, it does not do the application's work.
    ///
    /// Two slicing strategies share this loop (DESIGN.md §3.1):
    ///
    /// * **polled** (`cfg.polled_progress`): one cancellable timer wake per
    ///   boundary, scheduled at park time, regardless of traffic.
    /// * **demand-driven** (default): no boundary wake is pre-scheduled;
    ///   instead [`DemandWake`] is armed across the park, and a fabric
    ///   delivery schedules the wake at the *next* boundary after it.
    ///   Boundaries with no traffic are elided — observably identical
    ///   timing, far fewer events.
    ///
    /// In both modes the pending wake (boundary or deadline) is cancelled
    /// and rescheduled on resume, so no stale wake chains survive an
    /// out-of-band interruption.
    pub(crate) fn compute(&self, p: &Proc, dt: Time) {
        let mut deadline = p.now().saturating_add(dt);
        let mut anchor = p.now();
        let polled = self.cfg().polled_progress;
        let interval = self.cfg().progress_interval;
        let mut wake: Option<(Time, TimerHandle)> = None;
        loop {
            let t0 = p.now();
            let did = self.progress(p);
            let now = p.now();
            deadline += now - t0;
            if did {
                anchor = now;
            }
            if now >= deadline {
                break;
            }
            if self.oob_ep.pending() > 0 {
                continue;
            }
            let sliced = {
                let st = self.st.lock();
                st.passive && self.cfg().helper_thread
            };
            self.oob_ep.register_waiter(p.id());
            let target = if sliced && polled {
                next_boundary(anchor, interval, now).min(deadline)
            } else {
                deadline
            };
            match &wake {
                Some((t, _)) if *t == target => {}
                _ => {
                    if let Some((_, h)) = wake.take() {
                        h.cancel();
                    }
                    wake = Some((target, p.handle().schedule_wake_cancellable(target, p.id())));
                }
            }
            if sliced && !polled {
                self.demand.arm(p.id(), anchor, interval, deadline);
            }
            p.park();
            self.demand.disarm();
            self.oob_ep.unregister_waiter(p.id());
        }
        if let Some((_, h)) = wake.take() {
            h.cancel();
        }
    }

    // ------------------------------------------------------------------
    // Control plane (used by the checkpoint layer)
    // ------------------------------------------------------------------

    /// Send an in-band control message to a peer rank. Never gated, but
    /// requires (and will establish) an active data-plane connection.
    pub(crate) fn ctrl_send(&self, p: &Proc, peer: Rank, cw: CtrlWire) {
        self.raw_send(p, peer, WireMsg::Ctrl(cw), None);
    }

    /// Send an out-of-band message to an arbitrary node (a rank's OOB
    /// endpoint or the coordinator).
    pub(crate) fn oob_send(&self, p: &Proc, node: NodeId, msg: OobMsg) {
        if !self.oob_ep.is_connected(node) {
            self.oob_ep.connect(p, node);
        }
        let size = msg.wire_size();
        self.oob_ep.send(node, msg, size);
    }

    /// Block until an in-band control message matching `pred` is available
    /// and consume it. Non-matching messages stay queued in order.
    pub(crate) fn ctrl_recv_match(
        &self,
        p: &Proc,
        mut pred: impl FnMut(Rank, &CtrlWire) -> bool,
    ) -> (Rank, CtrlWire) {
        loop {
            self.progress(p);
            {
                let mut st = self.st.lock();
                if let Some(i) = st.ctrl_in.iter().position(|(r, c)| pred(*r, c)) {
                    return st.ctrl_in.remove(i).expect("index valid");
                }
            }
            self.wait_event(p);
        }
    }

    /// Blocking consume of an out-of-band message matching `pred`.
    pub(crate) fn oob_recv_match(
        &self,
        p: &Proc,
        mut pred: impl FnMut(NodeId, &OobMsg) -> bool,
    ) -> (NodeId, OobMsg) {
        loop {
            self.progress(p);
            {
                let mut st = self.st.lock();
                if let Some(i) = st.oob_in.iter().position(|(n, m)| pred(*n, m)) {
                    return st.oob_in.remove(i).expect("index valid");
                }
            }
            self.wait_event(p);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint-support accessors
    // ------------------------------------------------------------------

    pub(crate) fn set_hook(&self, hook: Arc<dyn CrHook>) {
        self.st.lock().hook = Some(hook);
    }

    /// Enter/leave passive coordination. Entry installs this rank's
    /// [`DemandWake`] as the data-plane delivery hook so sliced `compute`
    /// can run demand-driven; exit removes it (and drops any leftover
    /// arming) so deliveries outside passive mode never touch compute.
    pub(crate) fn set_passive(&self, passive: bool) {
        self.st.lock().passive = passive;
        if passive {
            self.ep.set_compute_hook(self.demand.clone());
        } else {
            self.ep.clear_compute_hook();
            self.demand.disarm();
        }
    }

    pub(crate) fn is_passive(&self) -> bool {
        self.st.lock().passive
    }

    /// Peers with an `Active` data-plane connection, sorted.
    pub(crate) fn connected_peers(&self) -> Vec<Rank> {
        (0..self.cfg().n)
            .filter(|&r| r != self.rank && self.ep.is_connected(NodeId(r)))
            .collect()
    }

    /// One consistent telemetry snapshot: every state-guarded counter is
    /// read under a single lock acquisition, so cross-field invariants
    /// (e.g. `defer.deferred_sends >= deferred_len`) hold in the result.
    pub(crate) fn stats(&self) -> EndpointStats {
        let connected_peers = self.connected_peers();
        let st = self.st.lock();
        let mut per_peer: Vec<(Rank, u64, u64)> =
            st.traffic.iter().map(|(r, (m, b))| (*r, *m, *b)).collect();
        per_peer.sort_by_key(|e| e.0);
        let mut recv_per_peer: Vec<(Rank, u64, u64)> =
            st.recv_traffic.iter().map(|(r, (m, b))| (*r, *m, *b)).collect();
        recv_per_peer.sort_by_key(|e| e.0);
        EndpointStats {
            traffic: TrafficStats { per_peer },
            recv_per_peer,
            defer: st.defer_stats,
            deferred_len: st.deferred.len(),
            connected_peers,
            logged_bytes: st.logged_bytes,
        }
    }

    /// Snapshot the per-destination send sequence counters **at an
    /// application state boundary** (so replayed sends reuse their original
    /// sequence numbers) and clear the receive replay log (everything
    /// consumed before this boundary is committed in the registered state).
    pub(crate) fn boundary_snapshot(&self) -> BoundarySnapshot {
        let mut st = self.st.lock();
        st.replay_log.clear();
        let mut v: Vec<(Rank, u64)> = st.next_useq.iter().map(|(r, s)| (*r, *s)).collect();
        v.sort_by_key(|e| e.0);
        let mut c: Vec<(u32, u32)> = st.coll_seq.iter().map(|(k, s)| (*k, *s)).collect();
        c.sort_by_key(|e| e.0);
        (v, c)
    }

    /// Snapshot the checkpointable library state (non-destructive; the
    /// process keeps running in the failure-free case). `boundary_seqs` is
    /// the send-sequence snapshot taken at the application's registered
    /// state boundary: deferred eager sends at or beyond it are *not*
    /// exported (the application re-executes them on replay).
    pub(crate) fn export_cr_state(
        &self,
        boundary_seqs: &[(Rank, u64)],
        boundary_coll_seqs: &[(u32, u32)],
    ) -> MpiCrState {
        let st = self.st.lock();
        let boundary = |dst: Rank| -> u64 {
            boundary_seqs
                .iter()
                .find(|(r, _)| *r == dst)
                .map_or(0, |(_, s)| *s)
        };
        let mut inbound: Vec<(Rank, Tag, Msg)> = Vec::new();
        // Receives the application already claimed since its boundary come
        // first (replay will re-execute them), then completed-but-unclaimed
        // receives (matched before anything still sitting unexpected with
        // the same src/tag) in request-allocation order, then unexpected.
        inbound.extend(st.replay_log.iter().cloned());
        let mut done: Vec<(&u64, &(Rank, Tag, Msg))> = st.done_recv.iter().collect();
        done.sort_by_key(|(id, _)| **id);
        inbound.extend(done.into_iter().map(|(_, e)| e.clone()));
        inbound.extend(st.unexpected.iter().filter_map(|u| match u {
            Unexpected::Eager { src, tag, msg } => Some((*src, *tag, msg.clone())),
            Unexpected::Rts { .. } => None, // replay reissues the rendezvous
        }));
        let deferred_eager = st
            .deferred
            .iter()
            .filter_map(|d| match &d.wire {
                WireMsg::Eager { tag, useq, msg } if *useq < boundary(d.dst) => {
                    Some((d.dst, *tag, msg.clone(), *useq))
                }
                _ => None, // incomplete or post-boundary: replayed by the app
            })
            .collect();
        let mut recv_watermarks: Vec<(Rank, u64)> =
            st.recv_watermark.iter().map(|(r, s)| (*r, *s)).collect();
        recv_watermarks.sort_by_key(|e| e.0);
        MpiCrState {
            inbound,
            deferred_eager,
            send_seqs: boundary_seqs.to_vec(),
            recv_watermarks,
            coll_seqs: boundary_coll_seqs.to_vec(),
        }
    }

    /// Re-inject saved library state into a fresh runtime at restart, before
    /// the application body runs: sequence counters and watermarks are
    /// restored, inbound data becomes unexpected messages, and buffered
    /// eager messages are put back on the wire with their original sequence
    /// numbers (gates are open in a fresh world).
    pub(crate) fn import_cr_state(&self, p: &Proc, state: MpiCrState) {
        {
            let mut st = self.st.lock();
            assert!(
                st.posted.is_empty() && st.unexpected.is_empty(),
                "import_cr_state must run before any MPI activity"
            );
            for (r, seq) in &state.send_seqs {
                st.next_useq.insert(*r, *seq);
            }
            for (r, wm) in &state.recv_watermarks {
                st.recv_watermark.insert(*r, *wm);
            }
            for (c, seq) in &state.coll_seqs {
                st.coll_seq.insert(*c, *seq);
            }
            for (src, tag, msg) in state.inbound {
                st.unexpected.push_back(Unexpected::Eager { src, tag, msg });
            }
        }
        for (dst, tag, msg, useq) in state.deferred_eager {
            self.enqueue_send(p, dst, WireMsg::Eager { tag, useq, msg }, None);
        }
    }

    /// Enable/disable the message-logging ablation mode.
    pub(crate) fn set_log_mode(&self, on: bool) {
        self.st.lock().log_mode = on;
    }

    // Back-reference so progress() can build an `Mpi` facade for hook
    // dispatch. Set once by `World::attach`.
    pub(crate) fn self_arc(&self) -> Arc<Rt> {
        self.world
            .rts
            .lock()
            .get(&self.rank)
            .expect("runtime registered in world")
            .clone()
    }
}

enum DispatchItem {
    Ctrl(Rank, CtrlWire),
    Oob(NodeId, OobMsg),
}

/// Smallest lattice point `anchor + k·interval` strictly after `now`
/// (`k ≥ 1`). With `interval == 0` slicing is meaningless; callers get
/// `Time::MAX` so the deadline clamp wins.
fn next_boundary(anchor: Time, interval: Time, now: Time) -> Time {
    if interval == 0 {
        return Time::MAX;
    }
    debug_assert!(anchor <= now);
    anchor + interval * ((now - anchor) / interval + 1)
}
