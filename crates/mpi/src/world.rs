//! The MPI world: fabrics, communicator registry, rank attachment.

use crate::api::Mpi;
use crate::comm::Comm;
use crate::config::MpiConfig;
use crate::engine::{Rt, WireMsg};
use crate::hook::OobMsg;
use crate::types::Rank;
use gbcr_des::SimHandle;
use gbcr_net::{Endpoint, Fabric, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Out-of-band node id of the global checkpoint coordinator (the `mpirun`
/// console in MVAPICH2 terms). This is a *service address*: whichever
/// process currently holds the coordinator role binds an endpoint here, so
/// rank-side protocol code addresses "the coordinator" without knowing
/// which node is playing it after a failover.
pub const COORDINATOR_NODE: NodeId = NodeId(u32::MAX);

/// Out-of-band node id of rank `r`'s election standby — the lightweight
/// agent that watches the coordinator's lease and runs the failover
/// election for its rank. Standbys get their own addresses (descending
/// from just below [`COORDINATOR_NODE`]) so lease/election traffic never
/// mixes into the rank protocol mailboxes.
pub fn standby_node(rank: Rank) -> NodeId {
    NodeId(u32::MAX - 1 - rank)
}

pub(crate) struct WorldShared {
    pub(crate) handle: SimHandle,
    pub(crate) cfg: MpiConfig,
    pub(crate) data: Fabric<WireMsg>,
    pub(crate) oob: Fabric<OobMsg>,
    pub(crate) comms: Mutex<Vec<Arc<Vec<Rank>>>>,
    pub(crate) rts: Mutex<HashMap<Rank, Arc<Rt>>>,
    /// Ranks whose node has died (fault injection), sorted. Sends to these
    /// ranks are black-holed by the engine until the job is torn down.
    pub(crate) failed: Mutex<Vec<Rank>>,
    /// Messages black-holed because their destination was failed.
    pub(crate) dropped_sends: AtomicU64,
}

/// An MPI job of `cfg.n` ranks sharing a data fabric and an out-of-band
/// fabric. Clone freely.
///
/// ```
/// use gbcr_des::Sim;
/// use gbcr_mpi::{MpiConfig, Msg, World};
///
/// let mut sim = Sim::new(0);
/// let world = World::new(sim.handle(), MpiConfig::new(4));
/// for r in 0..4 {
///     let mpi = world.attach(r);
///     let comm = world.world_comm();
///     sim.spawn(format!("rank{r}"), move |p| {
///         let sum = mpi.allreduce_sum(p, &comm, f64::from(mpi.rank()));
///         assert_eq!(sum, 6.0); // 0+1+2+3
///     });
/// }
/// sim.run().unwrap();
/// ```
#[derive(Clone)]
pub struct World {
    pub(crate) shared: Arc<WorldShared>,
}

impl World {
    /// Create a world attached to a simulation.
    pub fn new(handle: SimHandle, cfg: MpiConfig) -> Self {
        assert!(cfg.n >= 1, "world needs at least one rank");
        let data = Fabric::new(handle.clone(), cfg.net.clone());
        let oob = Fabric::new(handle.clone(), cfg.oob.clone());
        World {
            shared: Arc::new(WorldShared {
                handle,
                cfg,
                data,
                oob,
                comms: Mutex::new(Vec::new()),
                rts: Mutex::new(HashMap::new()),
                failed: Mutex::new(Vec::new()),
                dropped_sends: AtomicU64::new(0),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.shared.cfg.n
    }

    /// The world's configuration.
    pub fn config(&self) -> &MpiConfig {
        &self.shared.cfg
    }

    /// The simulation handle this world lives in.
    pub fn handle(&self) -> &SimHandle {
        &self.shared.handle
    }

    /// Create this rank's runtime. Call exactly once per rank, from (or
    /// before) the rank's own simulated process.
    pub fn attach(&self, rank: Rank) -> Mpi {
        assert!(rank < self.shared.cfg.n, "rank {rank} out of range");
        let rt = Arc::new(Rt::new(self.shared.clone(), rank));
        let prev = self.shared.rts.lock().insert(rank, rt.clone());
        assert!(prev.is_none(), "rank {rank} attached twice");
        Mpi::from_rt(rt)
    }

    /// Look up an already-attached rank's runtime facade (used by the
    /// restart machinery and tests).
    pub fn attached(&self, rank: Rank) -> Option<Mpi> {
        self.shared.rts.lock().get(&rank).cloned().map(Mpi::from_rt)
    }

    /// Intern a communicator over `members` (must be non-empty, unique,
    /// in-range). Every rank calling with the same member list receives a
    /// communicator with the same id — mirroring collectively-created MPI
    /// communicators.
    pub fn comm(&self, members: Vec<Rank>) -> Comm {
        assert!(!members.is_empty(), "empty communicator");
        for &m in &members {
            assert!(m < self.shared.cfg.n, "member {m} out of range");
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate communicator member");
        let mut comms = self.shared.comms.lock();
        let id = match comms.iter().position(|c| ***c == members) {
            Some(i) => i,
            None => {
                comms.push(Arc::new(members.clone()));
                comms.len() - 1
            }
        };
        assert!(id < 32_768, "communicator id space exhausted");
        Comm::new(id as u32, comms[id].clone())
    }

    /// The communicator over all ranks.
    pub fn world_comm(&self) -> Comm {
        self.comm((0..self.shared.cfg.n).collect())
    }

    /// Raw out-of-band endpoint for a non-rank participant (the global
    /// coordinator).
    pub fn oob_endpoint(&self, node: NodeId) -> Endpoint<OobMsg> {
        self.shared.oob.endpoint(node)
    }

    /// Data-fabric statistics (messages, bytes, connects, teardowns).
    pub fn net_stats(&self) -> gbcr_net::NetStats {
        self.shared.data.stats()
    }

    // ------------------------------------------------------------------
    // Fault injection (driven by `gbcr-faults` through the core sink)
    // ------------------------------------------------------------------

    /// Record that `rank`'s node has died: its data-plane links to every
    /// peer and its out-of-band links (peers + coordinator) are forcibly
    /// torn down, and all future sends addressed to it are black-holed.
    /// This is the "detection" half of the fail-stop model — survivors
    /// observe broken connections and lost messages, never a half-alive
    /// peer. Idempotent.
    pub fn mark_failed(&self, rank: Rank) {
        assert!(rank < self.shared.cfg.n, "rank {rank} out of range");
        {
            let mut f = self.shared.failed.lock();
            if f.contains(&rank) {
                return;
            }
            f.push(rank);
            f.sort_unstable();
        }
        for peer in 0..self.shared.cfg.n {
            if peer != rank {
                self.shared.data.force_disconnect(NodeId(rank), NodeId(peer));
                self.shared.oob.force_disconnect(NodeId(rank), NodeId(peer));
            }
        }
        self.shared.oob.force_disconnect(NodeId(rank), COORDINATOR_NODE);
        self.shared
            .handle
            .trace_instant(|| gbcr_des::Event::NodeFailed { rank });
    }

    /// Record that the node hosting the checkpoint coordinator has died:
    /// its out-of-band links to every rank are forcibly torn down. The
    /// ranks themselves keep running — this is a control-plane loss, not a
    /// data-plane one, so nothing is black-holed and no rank is marked
    /// failed. The next OOB send a rank makes toward [`COORDINATOR_NODE`]
    /// lazily re-establishes the link — reaching whichever process has
    /// bound the coordinator service address by then (the elected
    /// successor, under failover).
    pub fn mark_coordinator_failed(&self) {
        for r in 0..self.shared.cfg.n {
            self.shared.oob.force_disconnect(COORDINATOR_NODE, NodeId(r));
            self.shared.oob.force_disconnect(COORDINATOR_NODE, standby_node(r));
        }
    }

    /// Ranks marked failed so far, sorted.
    pub fn failed_ranks(&self) -> Vec<Rank> {
        self.shared.failed.lock().clone()
    }

    /// Whether `rank` has been marked failed.
    pub fn is_failed(&self, rank: Rank) -> bool {
        self.shared.failed.lock().contains(&rank)
    }

    /// Transiently flap the data-plane link between two live ranks: the
    /// connection is forcibly dropped (in-flight traffic still lands) and
    /// the next send across it pays connection setup again. Returns whether
    /// a teardown was actually initiated.
    pub fn flap_link(&self, a: Rank, b: Rank) -> bool {
        assert!(a < self.shared.cfg.n && b < self.shared.cfg.n && a != b);
        self.shared.data.force_disconnect(NodeId(a), NodeId(b))
    }

    /// Messages black-holed because their destination had failed.
    pub fn dropped_sends(&self) -> u64 {
        self.shared.dropped_sends.load(Ordering::Relaxed)
    }

    /// Record one message black-holed because its destination node failed
    /// (used by senders outside the engine, e.g. the C/R coordinator).
    pub fn note_dropped_send(&self) {
        self.shared.dropped_sends.fetch_add(1, Ordering::Relaxed);
    }
}
