//! The local checkpoint/restart service (the BLCR stand-in).

use crate::image::ProcessImage;
use gbcr_des::{time, Proc, Time};
use gbcr_storage::{
    CentralStore, CheckpointStore, FailoverWriter, RetryPolicy, Storage, StoredObject,
};
use std::sync::Arc;

/// Timing parameters of the local checkpointer.
#[derive(Debug, Clone)]
pub struct LocalCrConfig {
    /// Fixed cost to freeze the process and gather its state before any
    /// byte reaches storage (BLCR quiesce + VM walk). The paper reports
    /// storage access dominating (>95 %), so this is small but nonzero.
    pub freeze_overhead: Time,
    /// Fixed cost to thaw the process after the image is durable.
    pub thaw_overhead: Time,
}

impl Default for LocalCrConfig {
    fn default() -> Self {
        LocalCrConfig { freeze_overhead: time::ms(200), thaw_overhead: time::ms(50) }
    }
}

/// Performs BLCR-style single-process snapshots through a pluggable
/// [`CheckpointStore`] backend. One instance per MPI process (cheap,
/// clonable).
#[derive(Clone)]
pub struct LocalCheckpointer {
    store: Arc<dyn CheckpointStore>,
    cfg: LocalCrConfig,
}

impl LocalCheckpointer {
    /// Create a checkpointer writing to `storage` alone. With one healthy
    /// target the write path is exactly [`Storage::write`].
    pub fn new(storage: Storage, cfg: LocalCrConfig) -> Self {
        Self::with_writer(FailoverWriter::new(vec![storage], RetryPolicy::default()), cfg)
    }

    /// Create a checkpointer writing through a retry/failover writer
    /// (primary target first) — the central-array backend.
    pub fn with_writer(writer: FailoverWriter, cfg: LocalCrConfig) -> Self {
        Self::with_store(Arc::new(CentralStore::new(writer)), cfg)
    }

    /// Create a checkpointer over any checkpoint-store backend.
    pub fn with_store(store: Arc<dyn CheckpointStore>, cfg: LocalCrConfig) -> Self {
        LocalCheckpointer { store, cfg }
    }

    /// The checkpoint-store backend.
    pub fn store(&self) -> &Arc<dyn CheckpointStore> {
        &self.store
    }

    /// Timing configuration.
    pub fn config(&self) -> &LocalCrConfig {
        &self.cfg
    }

    /// Take a snapshot of the calling process: freeze, write `image` (the
    /// transfer is charged for `image.footprint` bytes, processor-shared
    /// with every other concurrent writer), thaw. Blocks for the whole
    /// duration — this is the paper's *Individual Checkpoint Time* minus
    /// coordination.
    ///
    /// Returns the storage object name the image was saved under.
    pub fn checkpoint(&self, p: &Proc, job: &str, image: ProcessImage) -> String {
        use gbcr_des::{ArgValue, Event, Track};
        let name = ProcessImage::object_name(job, image.epoch, image.rank);
        let t0 = p.now();
        p.sleep(self.cfg.freeze_overhead);
        let rank = image.rank;
        let epoch = image.epoch;
        let footprint = image.footprint;
        let payload = image.encode();
        let obj = StoredObject::new(payload, footprint);
        if self.store.write_image(p, rank, &name, obj).is_err() {
            // No target/copy accepted the write (retry budgets exhausted,
            // or every node's store unavailable): the image is lost and
            // this epoch will never manifest. The run continues — the
            // previous manifest stays the restart point.
            p.handle()
                .trace_instant(|| Event::BlcrImageLost { rank, name: name.clone() });
        }
        p.sleep(self.cfg.thaw_overhead);
        let h = p.handle();
        h.trace_span(Track::Rank(rank), "blcr.checkpoint", t0, || {
            vec![("epoch", ArgValue::U64(epoch)), ("bytes", ArgValue::U64(footprint))]
        });
        h.trace_instant(|| Event::BlcrCheckpoint { rank, name: name.clone() });
        name
    }

    /// Load and verify the image for `(job, epoch, rank)`, charging the
    /// read through the storage model. Panics if the image is missing or
    /// corrupt — a restart from a bad checkpoint cannot proceed.
    pub fn restart(&self, p: &Proc, job: &str, epoch: u64, rank: u32) -> ProcessImage {
        use gbcr_des::{ArgValue, Event, Track};
        let name = ProcessImage::object_name(job, epoch, rank);
        let t0 = p.now();
        let obj = self.store.read_image(p, rank, &name);
        // Incremental images need the preceding chain read back too (last
        // full image plus intermediate increments), charged as one bulk
        // read of the recorded chain size against the copy that held the
        // image.
        if let Ok(peeked) = ProcessImage::decode(obj.payload.clone()) {
            if peeked.restore_extra > 0 {
                self.store.read_chain(p, rank, &name, peeked.restore_extra);
            }
        }
        let img = ProcessImage::decode(obj.payload)
            .unwrap_or_else(|e| panic!("corrupt checkpoint image '{name}': {e}"));
        assert_eq!(img.rank, rank, "image rank mismatch in '{name}'");
        assert_eq!(img.epoch, epoch, "image epoch mismatch in '{name}'");
        let h = p.handle();
        h.trace_span(Track::Rank(rank), "blcr.restart", t0, || {
            vec![("epoch", ArgValue::U64(epoch))]
        });
        h.trace_instant(|| Event::BlcrRestart { rank, name: name.clone() });
        img
    }

    /// Whether a complete image set exists for `(job, epoch)` across
    /// `ranks` processes.
    pub fn epoch_complete(&self, job: &str, epoch: u64, ranks: u32) -> bool {
        (0..ranks).all(|r| {
            let name = ProcessImage::object_name(job, epoch, r);
            self.store.contains(&name)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gbcr_des::Sim;
    use gbcr_storage::{StorageConfig, MB};

    fn img(rank: u32, epoch: u64, footprint: u64) -> ProcessImage {
        ProcessImage {
            rank,
            epoch,
            taken_at: 0,
            footprint,
            restore_extra: 0,
            app_state: Bytes::from(format!("state-of-{rank}")),
        }
    }

    #[test]
    fn checkpoint_then_restart_round_trips() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let cr = LocalCheckpointer::new(storage, LocalCrConfig::default());
        sim.spawn("rank0", move |p| {
            let image = img(0, 1, 100 * MB);
            cr.checkpoint(p, "job", image.clone());
            let mut back = cr.restart(p, "job", 1, 0);
            back.taken_at = image.taken_at;
            assert_eq!(back, image);
        });
        sim.run().unwrap();
    }

    #[test]
    fn checkpoint_time_is_dominated_by_storage() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let cr = LocalCheckpointer::new(storage, LocalCrConfig::default());
        sim.spawn("rank0", move |p| {
            let t0 = p.now();
            cr.checkpoint(p, "job", img(0, 1, 1150 * MB));
            let elapsed = time::as_secs_f64(p.now() - t0);
            // 1150 MB at 115 MB/s = 10s storage; overheads = 0.25s.
            assert!(elapsed > 10.0 && elapsed < 10.5, "got {elapsed}");
            let storage_frac = 10.0 / elapsed;
            assert!(storage_frac > 0.95, "storage should dominate (papers' >95%)");
        });
        sim.run().unwrap();
    }

    #[test]
    fn epoch_complete_tracks_all_ranks() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let cr = LocalCheckpointer::new(storage.clone(), LocalCrConfig::default());
        let cr2 = cr.clone();
        sim.spawn("writer", move |p| {
            for r in 0..3 {
                assert!(!cr2.epoch_complete("job", 5, 3));
                cr2.checkpoint(p, "job", img(r, 5, MB));
            }
            assert!(cr2.epoch_complete("job", 5, 3));
        });
        sim.run().unwrap();
        assert!(cr.epoch_complete("job", 5, 3));
        assert!(!cr.epoch_complete("job", 6, 3));
    }

    #[test]
    #[should_panic(expected = "corrupt checkpoint image")]
    fn corrupt_image_panics_on_restart() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let cr = LocalCheckpointer::new(storage.clone(), LocalCrConfig::default());
        sim.spawn("rank0", move |p| {
            cr.checkpoint(p, "job", img(0, 1, MB));
            // Corrupt the stored object in place.
            let name = ProcessImage::object_name("job", 1, 0);
            let obj = storage.remove(&name).unwrap();
            let mut v = obj.payload.to_vec();
            v[10] ^= 0xff;
            storage.write(
                p,
                0,
                &name,
                StoredObject::new(Bytes::from(v), obj.virtual_size),
            );
            cr.restart(p, "job", 1, 0);
        });
        let err = sim.run().unwrap_err();
        panic!("{err}");
    }
}
