//! A compact, dependency-free binary codec for checkpoint payloads.
//!
//! Little-endian fixed-width integers, length-prefixed byte strings, and a
//! [`Checkpointable`] trait that application state implements to ride inside
//! a [`crate::ProcessImage`]. Deliberately minimal: the simulation never
//! needs schema evolution, only a faithful round-trip with corruption
//! detection (done at the image layer via FNV-1a).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the read required.
    Truncated {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag or magic value did not match expectations.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, had {remaining}")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the encoded buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }
    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }
    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }
    /// Write a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }
    /// Write an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }
    /// Write a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }
    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.put_slice(v);
    }
    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
    /// Write a length-prefixed sequence of [`Checkpointable`] items.
    pub fn put_seq<T: Checkpointable>(&mut self, items: &[T]) {
        self.put_u64(items.len() as u64);
        for it in items {
            it.save(self);
        }
    }
}

/// Sequential decoder over an encoded buffer.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Decode from the given buffer.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.len() < n {
            Err(CodecError::Truncated { needed: n, remaining: self.buf.len() })
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }
    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }
    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }
    /// Read an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }
    /// Read a bool; any nonzero byte is an error (corruption guard).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool out of range")),
        }
    }
    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.get_u64()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len))
    }
    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Corrupt("invalid utf-8"))
    }
    /// Read a length-prefixed sequence of [`Checkpointable`] items.
    pub fn get_seq<T: Checkpointable>(&mut self) -> Result<Vec<T>, CodecError> {
        let n = self.get_u64()? as usize;
        // Guard absurd lengths so corrupt input cannot OOM the decoder.
        if n > self.remaining() {
            return Err(CodecError::Corrupt("sequence length exceeds input"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::restore(self)?);
        }
        Ok(v)
    }
}

/// Application state that can ride inside a checkpoint image.
///
/// Workloads implement this for their iteration state; the checkpoint
/// framework serializes it into the image payload and hands it back on
/// restart.
pub trait Checkpointable: Sized {
    /// Serialize `self` into the encoder.
    fn save(&self, enc: &mut Encoder);
    /// Rebuild from the decoder.
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError>;

    /// Convenience: encode to a standalone buffer.
    fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::new();
        self.save(&mut e);
        e.finish()
    }

    /// Convenience: decode from a standalone buffer, requiring full
    /// consumption.
    fn from_bytes(buf: Bytes) -> Result<Self, CodecError> {
        let mut d = Decoder::new(buf);
        let v = Self::restore(&mut d)?;
        if d.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes after value"));
        }
        Ok(v)
    }
}

impl Checkpointable for u64 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_u64()
    }
}

impl Checkpointable for u32 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_u32()
    }
}

impl Checkpointable for i64 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_i64()
    }
}

impl Checkpointable for f64 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_f64()
    }
}

impl Checkpointable for bool {
    fn save(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_bool()
    }
}

impl Checkpointable for String {
    fn save(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_str()
    }
}

impl<T: Checkpointable> Checkpointable for Vec<T> {
    fn save(&self, enc: &mut Encoder) {
        enc.put_seq(self);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_seq()
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn save(&self, enc: &mut Encoder) {
        self.0.save(enc);
        self.1.save(enc);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok((A::restore(dec)?, B::restore(dec)?))
    }
}

/// FNV-1a 64-bit hash, used as the image checksum.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX);
        e.put_i64(-42);
        e.put_f64(std::f64::consts::PI);
        e.put_bool(true);
        e.put_str("héllo");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), std::f64::consts::PI);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.put_u64(1);
        let buf = e.finish();
        let mut d = Decoder::new(buf.slice(0..4));
        assert!(matches!(d.get_u64(), Err(CodecError::Truncated { needed: 8, remaining: 4 })));
    }

    #[test]
    fn bool_out_of_range_is_corrupt() {
        let mut d = Decoder::new(Bytes::from_static(&[2]));
        assert_eq!(d.get_bool(), Err(CodecError::Corrupt("bool out of range")));
    }

    #[test]
    fn seq_round_trips_and_guards_length() {
        let v: Vec<u64> = (0..100).collect();
        let b = v.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(b).unwrap(), v);

        // Claimed length far beyond input.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let mut d = Decoder::new(e.finish());
        assert!(matches!(d.get_seq::<u64>(), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut e = Encoder::new();
        e.put_u64(5);
        e.put_u8(9); // extra
        assert!(matches!(u64::from_bytes(e.finish()), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn tuple_and_nested_vec() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let b = v.to_bytes();
        assert_eq!(Vec::<(u64, String)>::from_bytes(b).unwrap(), v);
    }

    #[test]
    fn fnv1a_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }
}
