//! # gbcr-blcr — local process checkpoint/restart
//!
//! The paper uses the Berkeley Lab Checkpoint/Restart (BLCR) kernel module
//! to snapshot a single MPI process during the *Local Checkpointing* phase:
//! the process is frozen, its address space is written to a file on the
//! central storage system, and it resumes (or is later restarted from the
//! file). No such tooling exists for this reproduction, so this crate
//! provides the simulated equivalent with the same externally visible
//! behaviour:
//!
//! * **Freeze cost**: a fixed quiesce overhead (registers, signal state,
//!   pinned-page bookkeeping) before bytes start flowing.
//! * **Image write**: `footprint` bytes charged through the shared
//!   [`gbcr_storage::Storage`] model — this is the >95 %-of-delay term the
//!   paper measures.
//! * **Real restartability**: the image carries the application's
//!   *registered state* (serialized with this crate's compact binary
//!   [`codec`]), so a restarted run demonstrably resumes from the saved
//!   state — integration tests restart a killed job and verify it produces
//!   the same answer as an uninterrupted run.
//!
//! The codec is hand-rolled (≈200 lines) instead of pulling `serde` plus a
//! format crate; images are framed with a magic, a version, and an FNV-1a
//! checksum so corruption is detected at restore time.

#![warn(missing_docs)]

pub mod codec;
mod image;
mod local;

pub use codec::{Checkpointable, CodecError, Decoder, Encoder};
pub use image::ProcessImage;
pub use local::{LocalCheckpointer, LocalCrConfig};
