//! Framed checkpoint images.

use crate::codec::{fnv1a, CodecError, Decoder, Encoder};
use bytes::Bytes;

const MAGIC: u32 = 0x4743_4B50; // "GCKP"
const VERSION: u8 = 1;

/// A single process's checkpoint image: framed metadata plus the
/// application's registered state. The `footprint` is the simulated image
/// size (the process memory footprint); only `app_state` occupies real
/// memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessImage {
    /// MPI rank of the checkpointed process.
    pub rank: u32,
    /// Global checkpoint epoch this image belongs to.
    pub epoch: u64,
    /// Virtual time (ns) at which the snapshot was taken.
    pub taken_at: u64,
    /// Simulated image size in bytes: the full memory footprint, or just
    /// the dirty bytes for an incremental image.
    pub footprint: u64,
    /// Extra bytes a restore must read besides this image: the preceding
    /// chain (last full image plus later increments). Zero for full images.
    pub restore_extra: u64,
    /// Serialized application state (see [`crate::Checkpointable`]).
    pub app_state: Bytes,
}

impl ProcessImage {
    /// Frame the image: magic, version, fields, then an FNV-1a checksum of
    /// everything before it.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_u32(MAGIC);
        e.put_u8(VERSION);
        e.put_u32(self.rank);
        e.put_u64(self.epoch);
        e.put_u64(self.taken_at);
        e.put_u64(self.footprint);
        e.put_u64(self.restore_extra);
        e.put_bytes(&self.app_state);
        let body = e.finish();
        let mut framed = Encoder::new();
        framed.put_bytes(&body);
        framed.put_u64(fnv1a(&body));
        framed.finish()
    }

    /// Parse and verify a framed image.
    pub fn decode(buf: Bytes) -> Result<Self, CodecError> {
        let mut d = Decoder::new(buf);
        let body = d.get_bytes()?;
        let sum = d.get_u64()?;
        if d.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes after image frame"));
        }
        if fnv1a(&body) != sum {
            return Err(CodecError::Corrupt("image checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        if d.get_u32()? != MAGIC {
            return Err(CodecError::Corrupt("bad image magic"));
        }
        if d.get_u8()? != VERSION {
            return Err(CodecError::Corrupt("unsupported image version"));
        }
        let img = ProcessImage {
            rank: d.get_u32()?,
            epoch: d.get_u64()?,
            taken_at: d.get_u64()?,
            footprint: d.get_u64()?,
            restore_extra: d.get_u64()?,
            app_state: d.get_bytes()?,
        };
        if d.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes inside image body"));
        }
        Ok(img)
    }

    /// Canonical storage object name for a given job, epoch, and rank.
    pub fn object_name(job: &str, epoch: u64, rank: u32) -> String {
        format!("ckpt/{job}/e{epoch}/r{rank}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProcessImage {
        ProcessImage {
            rank: 3,
            epoch: 2,
            taken_at: 123_456_789,
            footprint: 180_000_000,
            restore_extra: 0,
            app_state: Bytes::from_static(b"iteration=17"),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let img = sample();
        assert_eq!(ProcessImage::decode(img.encode()).unwrap(), img);
    }

    #[test]
    fn bit_flip_is_detected() {
        let buf = sample().encode();
        for i in 0..buf.len() {
            let mut v = buf.to_vec();
            v[i] ^= 0x40;
            assert!(
                ProcessImage::decode(Bytes::from(v)).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn object_names_are_unique_per_rank_and_epoch() {
        let a = ProcessImage::object_name("job", 1, 0);
        let b = ProcessImage::object_name("job", 1, 1);
        let c = ProcessImage::object_name("job", 2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, "ckpt/job/e1/r0");
    }
}
