//! Fabric behaviour: FIFO delivery, serialization, connection life-cycle,
//! drain semantics, timing model.

use gbcr_des::{time, Sim};
use gbcr_net::{ConnState, Fabric, NetConfig, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);

fn test_cfg() -> NetConfig {
    NetConfig {
        latency: time::us(2),
        bandwidth: 1.0e9,
        per_message_overhead: 0,
        conn_setup_time: time::ms(1),
        conn_teardown_time: time::us(100),
    }
}

#[test]
fn connect_charges_setup_to_initiator_only() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        assert_eq!(p.now(), time::ms(1));
        assert!(ep.is_connected(B));
        // Idempotent, free the second time.
        ep.connect(p, B);
        assert_eq!(p.now(), time::ms(1));
    });
    sim.run().unwrap();
    assert_eq!(fabric.stats().connects, 1);
    assert_eq!(fabric.conn_state(A, B), ConnState::Active);
}

#[test]
fn concurrent_connects_only_one_pays() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    for (name, me, peer) in [("a", A, B), ("b", B, A)] {
        let f = fabric.clone();
        sim.spawn(name, move |p| {
            let ep = f.endpoint(me);
            ep.connect(p, peer);
            assert_eq!(p.now(), time::ms(1));
        });
    }
    sim.run().unwrap();
    assert_eq!(fabric.stats().connects, 1);
}

#[test]
fn messages_arrive_fifo_with_latency_and_serialization() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let got = Arc::new(Mutex::new(Vec::new()));
    let f = fabric.clone();
    sim.spawn("sender", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        // two 1 MB messages back to back: serialization 1ms each at 1GB/s
        ep.send(B, 1, 1_000_000);
        ep.send(B, 2, 1_000_000);
    });
    let f = fabric.clone();
    let g = got.clone();
    sim.spawn("receiver", move |p| {
        let ep = f.endpoint(B);
        for _ in 0..2 {
            let (from, m) = ep.recv_wait(p);
            assert_eq!(from, A);
            g.lock().push((p.now(), m));
        }
    });
    sim.run().unwrap();
    let got = got.lock().clone();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].1, 1);
    assert_eq!(got[1].1, 2);
    // send time = 1ms (after connect); first arrives at 1ms+1ms+2us
    assert_eq!(got[0].0, time::ms(2) + time::us(2));
    // second serialized after the first: 1ms later
    assert_eq!(got[1].0, time::ms(3) + time::us(2));
}

#[test]
fn bidirectional_links_do_not_serialize_against_each_other() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let times = Arc::new(Mutex::new(Vec::new()));
    for (name, me, peer) in [("a", A, B), ("b", B, A)] {
        let f = fabric.clone();
        let t = times.clone();
        sim.spawn(name, move |p| {
            let ep = f.endpoint(me);
            ep.connect(p, peer);
            ep.send(peer, me.0, 1_000_000);
            let (_, _) = ep.recv_wait(p);
            t.lock().push(p.now());
        });
    }
    sim.run().unwrap();
    // Both 1MB messages cross simultaneously; both arrive at the same time.
    let times = times.lock().clone();
    assert_eq!(times[0], times[1]);
}

#[test]
fn teardown_waits_for_drain_and_blocks_sends() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        ep.send(B, 7, 10_000_000); // 10ms serialization
        assert_eq!(ep.in_flight(B), (1, 0));
        ep.teardown(p, B);
        // teardown completed only after the 10ms in-flight drained
        assert!(p.now() >= time::ms(11));
        assert_eq!(ep.in_flight(B), (0, 0));
        assert!(!ep.is_connected(B));
    });
    let f = fabric.clone();
    sim.spawn("b", move |p| {
        let ep = f.endpoint(B);
        let (from, m) = ep.recv_wait(p);
        assert_eq!((from, m), (A, 7));
    });
    sim.run().unwrap();
    assert_eq!(fabric.stats().teardowns, 1);
    assert_eq!(fabric.conn_state(A, B), ConnState::Disconnected);
}

#[test]
fn reconnect_after_teardown_works() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        ep.teardown(p, B);
        ep.connect(p, B);
        assert!(ep.is_connected(B));
        ep.send(B, 1, 8);
    });
    let f = fabric.clone();
    sim.spawn("b", move |p| {
        let ep = f.endpoint(B);
        let (_, m) = ep.recv_wait(p);
        assert_eq!(m, 1);
    });
    sim.run().unwrap();
    assert_eq!(fabric.stats().connects, 2);
    assert_eq!(fabric.stats().teardowns, 1);
}

#[test]
#[should_panic(expected = "non-active connection")]
fn send_on_torn_down_connection_panics() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    sim.spawn("a", move |p| {
        let ep = fabric.endpoint(A);
        ep.connect(p, B);
        ep.teardown(p, B);
        ep.send(B, 1, 8);
    });
    let err = sim.run().unwrap_err();
    panic!("{err}");
}

#[test]
fn recv_timeout_returns_none_when_quiet() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    sim.spawn("b", move |p| {
        let ep = fabric.endpoint(B);
        let r = ep.recv_timeout(p, time::ms(5));
        assert!(r.is_none());
        assert_eq!(p.now(), time::ms(5));
    });
    sim.run().unwrap();
}

#[test]
fn recv_timeout_returns_message_when_it_arrives_first() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        ep.send(B, 42, 8);
    });
    sim.spawn("b", move |p| {
        let ep = fabric.endpoint(B);
        let r = ep.recv_timeout(p, time::secs(1));
        assert_eq!(r.map(|(_, m)| m), Some(42));
        assert!(p.now() < time::ms(2));
    });
    sim.run().unwrap();
}

#[test]
fn wait_drained_with_nothing_in_flight_is_instant() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    sim.spawn("a", move |p| {
        let ep = fabric.endpoint(A);
        ep.connect(p, B);
        ep.wait_drained(p, B);
        assert_eq!(p.now(), time::ms(1));
    });
    sim.run().unwrap();
}

#[test]
fn stats_count_messages_and_bytes() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        for i in 0..5 {
            ep.send(B, i, 100);
        }
    });
    let f = fabric.clone();
    sim.spawn("b", move |p| {
        let ep = f.endpoint(B);
        for _ in 0..5 {
            ep.recv_wait(p);
        }
    });
    sim.run().unwrap();
    let s = fabric.stats();
    assert_eq!(s.messages, 5);
    assert_eq!(s.bytes, 500);
}

/// A waiter whose `recv_timeout` ended via the deadline timer must be
/// deregistered on the way out: a later delivery to the endpoint must not
/// wake the (by then computing-forever) rank. A stale registration would
/// have delivered a spurious wake here — OS-bypass hardware never
/// interrupts the host CPU like that.
#[test]
fn timer_expired_waiter_gets_no_spurious_delivery_wake() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let woken = Arc::new(Mutex::new(false));
    let f = fabric.clone();
    let w = woken.clone();
    sim.spawn("rx", move |p| {
        let ep = f.endpoint(B);
        assert!(ep.recv_timeout(p, time::ms(5)).is_none());
        // "Computing": parked with no registration anywhere. The delivery
        // at ~10 ms must not resume this process.
        p.park();
        *w.lock() = true;
    });
    let f = fabric.clone();
    sim.spawn("tx", move |p| {
        let ep = f.endpoint(A);
        p.sleep(time::ms(10));
        ep.connect(p, B);
        ep.send(B, 7, 8);
    });
    let err = sim.run().unwrap_err();
    assert!(
        matches!(&err, gbcr_des::SimError::Deadlock { blocked, .. }
            if blocked == &vec!["rx".to_string()]),
        "rx must stay parked forever, got {err}"
    );
    assert!(!*woken.lock(), "delivery woke a rank whose wait had timed out");
    assert_eq!(fabric.endpoint(B).pending(), 1, "message stays queued");
}

/// A forced disconnect (link flap) on an idle connection drops it to
/// `Disconnected` immediately; the next `put`-style user reconnects through
/// the normal setup path and pays the setup cost again.
#[test]
fn force_disconnect_idle_drops_and_allows_reconnect() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        ep.send(B, 1, 64);
        // Park past the flap at 5 ms, then rebuild and send again.
        p.sleep(time::ms(10));
        assert!(!ep.is_connected(B), "flap must have torn the link down");
        ep.connect(p, B);
        ep.send(B, 2, 64);
    });
    let f = fabric.clone();
    sim.spawn("b", move |p| {
        let ep = f.endpoint(B);
        assert_eq!(ep.recv_wait(p).1, 1);
        assert_eq!(ep.recv_wait(p).1, 2);
    });
    let f = fabric.clone();
    sim.handle().call_at(time::ms(5), move |_| {
        assert!(f.force_disconnect(A, B));
    });
    sim.run().unwrap();
    let s = fabric.stats();
    assert_eq!(s.forced_down, 1);
    assert_eq!(s.connects, 2, "reconnect after the flap pays setup again");
    assert_eq!(s.messages, 2, "both sends land");
}

/// A flap with traffic in flight must let the posted bytes land (Draining),
/// then complete the drop once the wire is empty — never losing a message
/// that was already serialized onto the link.
#[test]
fn force_disconnect_with_in_flight_drains_first() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        // ~1 ms of serialization per message at 1 GB/s.
        for i in 0..3 {
            ep.send(B, i, 1_000_000);
        }
    });
    let f = fabric.clone();
    sim.spawn("b", move |p| {
        let ep = f.endpoint(B);
        for want in 0..3 {
            assert_eq!(ep.recv_wait(p).1, want);
        }
    });
    // Fires mid-transfer: connection must drain before dropping.
    let f = fabric.clone();
    sim.handle().call_at(time::ms(1) + time::us(500), move |h| {
        assert!(f.force_disconnect(A, B));
        assert_eq!(f.conn_state(A, B), ConnState::Draining);
        // Second flap on an already-draining connection is a no-op.
        assert!(!f.force_disconnect(A, B));
        let _ = h;
    });
    sim.run().unwrap();
    assert_eq!(fabric.conn_state(A, B), ConnState::Disconnected);
    let s = fabric.stats();
    assert_eq!(s.messages, 3, "in-flight messages still land");
    assert_eq!(s.forced_down, 1);
}

/// Flapping a connection that never existed, or one that is already down,
/// initiates nothing.
#[test]
fn force_disconnect_noop_cases() {
    let mut sim = Sim::new(0);
    let fabric: Fabric<u32> = Fabric::new(sim.handle(), test_cfg());
    assert!(!fabric.force_disconnect(A, B), "unknown connection");
    let f = fabric.clone();
    sim.spawn("a", move |p| {
        let ep = f.endpoint(A);
        ep.connect(p, B);
        ep.teardown(p, B);
        assert!(!ep.fabric().force_disconnect(A, B), "already disconnected");
    });
    sim.run().unwrap();
    assert_eq!(fabric.stats().forced_down, 0);
}
