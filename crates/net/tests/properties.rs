//! Fabric property tests: per-direction FIFO under arbitrary traffic,
//! in-flight accounting, timing monotonicity.

use gbcr_des::{time, Sim};
use gbcr_net::{Fabric, NetConfig, NodeId};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn cfg() -> NetConfig {
    NetConfig {
        latency: time::us(3),
        bandwidth: 1.0e9,
        per_message_overhead: time::us(1),
        conn_setup_time: time::ms(1),
        conn_teardown_time: time::us(100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Messages between the same ordered pair are delivered in send order
    /// no matter how sizes and timing gaps vary (per-direction FIFO), and
    /// every message sent is delivered exactly once.
    #[test]
    fn per_direction_fifo_under_arbitrary_traffic(
        plan in prop::collection::vec((0u8..6, 1u64..4_000_000, 0u64..500), 1..40),
    ) {
        let n = 4u32;
        let mut sim = Sim::new(0);
        let fabric: Fabric<(u32, u64)> = Fabric::new(sim.handle(), cfg());
        // One sender drives traffic to 3 receivers with arbitrary sizes
        // and inter-send gaps (encoded by `plan`: dst selector, size, gap).
        let f = fabric.clone();
        let plan2 = plan.clone();
        sim.spawn("sender", move |p| {
            let ep = f.endpoint(NodeId(0));
            for d in 1..n {
                ep.connect(p, NodeId(d));
            }
            let mut seqs = [0u64; 4];
            for (sel, size, gap_us) in plan2 {
                let dst = 1 + u32::from(sel) % (n - 1);
                ep.send(NodeId(dst), (dst, seqs[dst as usize]), size);
                seqs[dst as usize] += 1;
                p.sleep(time::us(gap_us));
            }
        });
        let per_dst: Vec<usize> = (1..n)
            .map(|d| {
                plan.iter().filter(|(sel, _, _)| 1 + u32::from(*sel) % (n - 1) == d).count()
            })
            .collect();
        let got: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(vec![Vec::new(); n as usize]));
        for d in 1..n {
            let f = fabric.clone();
            let g = got.clone();
            let expect = per_dst[(d - 1) as usize];
            sim.spawn(format!("recv{d}"), move |p| {
                let ep = f.endpoint(NodeId(d));
                for _ in 0..expect {
                    let (from, (dst, seq)) = ep.recv_wait(p);
                    // Plain asserts: a panic inside a simulated process
                    // surfaces as SimError::ProcessPanicked and fails the
                    // proptest case.
                    assert_eq!(from, NodeId(0));
                    assert_eq!(dst, d);
                    g.lock()[d as usize].push(seq);
                }
            });
        }
        sim.run().unwrap();
        let got = got.lock();
        for d in 1..n as usize {
            let want: Vec<u64> = (0..per_dst[d - 1] as u64).collect();
            prop_assert_eq!(&got[d], &want, "direction 0->{} reordered", d);
        }
    }

    /// Serialization: total delivery time of a back-to-back burst is at
    /// least the sum of the serialization times (the link is not magic).
    #[test]
    fn burst_respects_link_bandwidth(sizes in prop::collection::vec(1u64..2_000_000, 1..16)) {
        let mut sim = Sim::new(0);
        let fabric: Fabric<u32> = Fabric::new(sim.handle(), cfg());
        let total: u64 = sizes.iter().sum();
        let k = sizes.len();
        let f = fabric.clone();
        sim.spawn("a", move |p| {
            let ep = f.endpoint(NodeId(0));
            ep.connect(p, NodeId(1));
            for (i, s) in sizes.iter().enumerate() {
                ep.send(NodeId(1), i as u32, *s);
            }
        });
        let done_at = Arc::new(Mutex::new(0u64));
        let d = done_at.clone();
        sim.spawn("b", move |p| {
            let ep = fabric.endpoint(NodeId(1));
            for _ in 0..k {
                ep.recv_wait(p);
            }
            *d.lock() = p.now();
        });
        sim.run().unwrap();
        let elapsed = *done_at.lock() - time::ms(1); // minus connect
        let floor = time::transfer_time(total, 1.0e9);
        prop_assert!(
            elapsed >= floor,
            "burst of {total} B delivered in {} < serialization floor {}",
            time::fmt(elapsed),
            time::fmt(floor)
        );
    }
}
