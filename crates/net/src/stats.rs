//! Fabric-wide counters.

/// Counters accumulated over the lifetime of a [`crate::Fabric`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes delivered (sum of `wire_size`).
    pub bytes: u64,
    /// Successful connection establishments (including re-establishments).
    pub connects: u64,
    /// Connection teardowns.
    pub teardowns: u64,
    /// Forced disconnects (fault injection): link flaps plus dead-node
    /// connection teardowns, counted when the forced drain completes.
    pub forced_down: u64,
}
