//! The fabric: endpoints, connections, and the transfer engine.

use crate::config::NetConfig;
use crate::stats::NetStats;
use gbcr_des::trace::FlapStage;
use gbcr_des::{ArgValue, DemandWake, Event, Proc, ProcId, SimHandle, Time, TimerHandle, Track};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifier of a network endpoint (for MPI, equal to the global rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Life-cycle state of one connection (queue pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// No connection exists (initial, or after teardown).
    Disconnected,
    /// One side is performing the out-of-band parameter exchange.
    Connecting,
    /// Fully established; sends are permitted.
    Active,
    /// Being flushed and torn down; no new sends, in-flight may still land.
    Draining,
}

struct ConnInner {
    state: ConnState,
    /// While `Connecting`: the virtual time at which setup completes and
    /// the connection becomes `Active`. A concurrent connector sleeps
    /// until this instant and the first arrival flips the state — no
    /// waiter-list wake crosses the connection (which, under the parallel
    /// scheduler, would be a sub-lookahead cross-shard wake).
    active_at: Time,
    /// In-flight message counts per direction; index 0 is low→high rank.
    in_flight: [usize; 2],
    /// Link serialization horizon per direction (FIFO per direction).
    busy_until: [Time; 2],
    /// Processes parked waiting for a state change or a drain.
    waiters: Vec<ProcId>,
    /// A forced disconnect (fault injection) hit this connection while
    /// messages were in flight: the delivery engine completes the
    /// transition to `Disconnected` once both directions drain.
    flap_pending: bool,
}

impl ConnInner {
    fn new() -> Self {
        ConnInner {
            state: ConnState::Disconnected,
            active_at: 0,
            in_flight: [0, 0],
            busy_until: [0, 0],
            waiters: Vec::new(),
            flap_pending: false,
        }
    }
}

struct EpState<M> {
    queue: VecDeque<(NodeId, M)>,
    waiters: Vec<ProcId>,
    /// Demand-driven compute wake: poked on every delivery so a rank in
    /// sliced `compute()` runs progress at the next slice boundary instead
    /// of polling (see [`gbcr_des::DemandWake`]). Installed only while the
    /// owning rank is under passive coordination.
    hook: Option<DemandWake>,
}

type ConnMap = HashMap<(NodeId, NodeId), Arc<Mutex<ConnInner>>>;

struct Inner<M> {
    handle: SimHandle,
    cfg: NetConfig,
    eps: Mutex<HashMap<NodeId, Arc<Mutex<EpState<M>>>>>,
    conns: Mutex<ConnMap>,
    stats: Mutex<NetStats>,
}

/// The simulated interconnect. Clone freely; all clones are the same fabric.
///
/// ```
/// use gbcr_des::Sim;
/// use gbcr_net::{Fabric, NetConfig, NodeId};
///
/// let mut sim = Sim::new(0);
/// let fabric: Fabric<&'static str> = Fabric::new(sim.handle(), NetConfig::infiniband_ddr());
/// let f = fabric.clone();
/// sim.spawn("a", move |p| {
///     let ep = f.endpoint(NodeId(0));
///     ep.connect(p, NodeId(1)); // initiator pays the out-of-band setup
///     ep.send(NodeId(1), "hello", 64);
///     ep.teardown(p, NodeId(1)); // waits for the channel to drain
/// });
/// let f = fabric.clone();
/// sim.spawn("b", move |p| {
///     let ep = f.endpoint(NodeId(1));
///     assert_eq!(ep.recv_wait(p).1, "hello");
/// });
/// sim.run().unwrap();
/// assert_eq!(fabric.stats().teardowns, 1);
/// ```
pub struct Fabric<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric { inner: self.inner.clone() }
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Direction index within a connection keyed `(low, high)`.
fn dir(from: NodeId, to: NodeId) -> usize {
    usize::from(from > to)
}

impl<M: Send + 'static> Fabric<M> {
    /// Create a fabric bound to a simulation.
    pub fn new(handle: SimHandle, cfg: NetConfig) -> Self {
        Fabric {
            inner: Arc::new(Inner {
                handle,
                cfg,
                eps: Mutex::new(HashMap::new()),
                conns: Mutex::new(HashMap::new()),
                stats: Mutex::new(NetStats::default()),
            }),
        }
    }

    /// The fabric's timing configuration.
    pub fn config(&self) -> &NetConfig {
        &self.inner.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.lock().clone()
    }

    /// Obtain (creating if necessary) the endpoint for `node`.
    pub fn endpoint(&self, node: NodeId) -> Endpoint<M> {
        let mut eps = self.inner.eps.lock();
        eps.entry(node).or_insert_with(|| {
            Arc::new(Mutex::new(EpState {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                hook: None,
            }))
        });
        Endpoint { fabric: self.clone(), node }
    }

    /// Connection state between two nodes.
    pub fn conn_state(&self, a: NodeId, b: NodeId) -> ConnState {
        self.inner
            .conns
            .lock()
            .get(&key(a, b))
            .map_or(ConnState::Disconnected, |c| c.lock().state)
    }

    fn conn(&self, a: NodeId, b: NodeId) -> Arc<Mutex<ConnInner>> {
        self.inner
            .conns
            .lock()
            .entry(key(a, b))
            .or_insert_with(|| Arc::new(Mutex::new(ConnInner::new())))
            .clone()
    }

    fn ep(&self, node: NodeId) -> Arc<Mutex<EpState<M>>> {
        self.inner
            .eps
            .lock()
            .entry(node)
            .or_insert_with(|| {
                Arc::new(Mutex::new(EpState {
                    queue: VecDeque::new(),
                    waiters: Vec::new(),
                    hook: None,
                }))
            })
            .clone()
    }

    fn wake_all(&self, waiters: &mut Vec<ProcId>) {
        for w in waiters.drain(..) {
            self.inner.handle.wake(w);
        }
    }

    /// Forcibly take down the connection between `a` and `b` — the fault
    /// injector's entry point for link flaps and dead-node teardowns. Unlike
    /// [`Endpoint::teardown`] this never blocks (it runs from an event
    /// callback, not a process) and charges no teardown cost: the cable was
    /// yanked, nobody executed a disconnect protocol.
    ///
    /// An idle `Active` connection drops to `Disconnected` immediately; one
    /// with traffic in flight moves to `Draining` with a flap marker and the
    /// delivery engine completes the drop once both directions drain (the
    /// wire already carries those bytes — they still land, matching how a
    /// real HCA completes posted work before reporting the QP broken).
    /// Connections that are `Disconnected`, mid-setup, or already being torn
    /// down by a process are left alone. Returns whether a transition was
    /// initiated; parked waiters are woken so they re-observe the state.
    pub fn force_disconnect(&self, a: NodeId, b: NodeId) -> bool {
        let Some(conn) = self.inner.conns.lock().get(&key(a, b)).cloned() else {
            return false;
        };
        let mut c = conn.lock();
        match c.state {
            ConnState::Disconnected | ConnState::Connecting | ConnState::Draining => false,
            ConnState::Active => {
                if c.in_flight == [0, 0] {
                    c.state = ConnState::Disconnected;
                    let mut ws = std::mem::take(&mut c.waiters);
                    drop(c);
                    self.inner.stats.lock().forced_down += 1;
                    self.wake_all(&mut ws);
                    self.inner.handle.trace_instant(|| Event::NetFlap {
                        a: a.0,
                        b: b.0,
                        stage: FlapStage::Idle,
                    });
                } else {
                    c.state = ConnState::Draining;
                    c.flap_pending = true;
                    let mut ws = std::mem::take(&mut c.waiters);
                    drop(c);
                    self.wake_all(&mut ws);
                    self.inner.handle.trace_instant(|| Event::NetFlap {
                        a: a.0,
                        b: b.0,
                        stage: FlapStage::Draining,
                    });
                }
                true
            }
        }
    }
}

/// One node's attachment to the fabric. All blocking operations take the
/// calling [`Proc`].
pub struct Endpoint<M> {
    fabric: Fabric<M>,
    node: NodeId,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint { fabric: self.fabric.clone(), node: self.node }
    }
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }

    /// Establish (or re-establish) the connection to `peer`, blocking the
    /// caller for the out-of-band setup cost. Idempotent: returns
    /// immediately if already active; if another process is mid-setup or
    /// mid-teardown, waits for it and retries.
    pub fn connect(&self, p: &Proc, peer: NodeId) {
        assert_ne!(self.node, peer, "cannot connect to self");
        let conn = self.fabric.conn(self.node, peer);
        loop {
            let sleep_for: Time;
            {
                let mut c = conn.lock();
                match c.state {
                    ConnState::Active => return,
                    ConnState::Connecting => {
                        // Another process is mid-setup. Sleep until its
                        // recorded completion instant and re-observe
                        // instead of parking on the waiter list: the
                        // flip-time waiter wake would be a sub-lookahead
                        // cross-shard wake under the parallel scheduler.
                        // Whoever reaches `active_at` first performs the
                        // flip (normally the initiator; a concurrent
                        // connector completes an initiator that died
                        // mid-setup).
                        if p.now() >= c.active_at {
                            c.state = ConnState::Active;
                            let mut ws = std::mem::take(&mut c.waiters);
                            drop(c);
                            self.fabric.inner.stats.lock().connects += 1;
                            self.fabric.wake_all(&mut ws);
                            return;
                        }
                        sleep_for = c.active_at - p.now();
                    }
                    ConnState::Draining => {
                        c.waiters.push(p.id());
                        drop(c);
                        p.park();
                        continue;
                    }
                    ConnState::Disconnected => {
                        c.state = ConnState::Connecting;
                        c.active_at = p.now() + self.fabric.inner.cfg.conn_setup_time;
                        drop(c);
                        let t0 = p.now();
                        p.sleep(self.fabric.inner.cfg.conn_setup_time);
                        let mut c = conn.lock();
                        if c.state == ConnState::Connecting {
                            c.state = ConnState::Active;
                            let mut ws = std::mem::take(&mut c.waiters);
                            drop(c);
                            self.fabric.inner.stats.lock().connects += 1;
                            self.fabric.wake_all(&mut ws);
                        }
                        let h = &self.fabric.inner.handle;
                        h.trace_span(Track::Node(self.node.0), "net.connect", t0, || {
                            vec![("peer", ArgValue::U64(u64::from(peer.0)))]
                        });
                        h.trace_instant(|| Event::NetConnect { a: self.node.0, b: peer.0 });
                        return;
                    }
                }
            }
            p.sleep(sleep_for);
        }
    }

    /// Whether the connection to `peer` is currently `Active`.
    pub fn is_connected(&self, peer: NodeId) -> bool {
        self.fabric.conn_state(self.node, peer) == ConnState::Active
    }

    /// Flush and tear down the connection to `peer`: waits until both
    /// directions are drained, then charges the teardown cost. Idempotent
    /// on already-disconnected connections. The caller is responsible for
    /// having stopped new sends on both sides (the checkpoint protocols in
    /// `gbcr-core` guarantee this).
    pub fn teardown(&self, p: &Proc, peer: NodeId) {
        let t0 = p.now();
        let conn = self.fabric.conn(self.node, peer);
        loop {
            {
                let mut c = conn.lock();
                match c.state {
                    ConnState::Disconnected => return,
                    ConnState::Active => {
                        c.state = ConnState::Draining;
                        break;
                    }
                    // The peer (e.g. another member of the same checkpoint
                    // group) is already tearing this connection down: wait
                    // for it to finish and return.
                    ConnState::Draining => c.waiters.push(p.id()),
                    ConnState::Connecting => panic!(
                        "teardown {}<->{} raced with connection setup",
                        self.node, peer
                    ),
                }
            }
            p.park();
        }
        // Wait for both directions to drain.
        let t_drain = p.now();
        loop {
            {
                let mut c = conn.lock();
                if c.in_flight == [0, 0] {
                    drop(c);
                    break;
                }
                c.waiters.push(p.id());
            }
            p.park();
        }
        let h = self.fabric.inner.handle.clone();
        h.trace_span(Track::Node(self.node.0), "net.drain", t_drain, || {
            vec![("peer", ArgValue::U64(u64::from(peer.0)))]
        });
        p.sleep(self.fabric.inner.cfg.conn_teardown_time);
        let mut c = conn.lock();
        debug_assert_eq!(c.state, ConnState::Draining);
        c.state = ConnState::Disconnected;
        self.fabric.inner.stats.lock().teardowns += 1;
        let mut ws = std::mem::take(&mut c.waiters);
        drop(c);
        self.fabric.wake_all(&mut ws);
        h.trace_span(Track::Node(self.node.0), "net.teardown", t0, || {
            vec![("peer", ArgValue::U64(u64::from(peer.0)))]
        });
        h.trace_instant(|| Event::NetTeardown { a: self.node.0, b: peer.0 });
    }

    /// Send `msg` to `peer`, charging `wire_size` bytes on the link. Never
    /// blocks: delivery is scheduled (FIFO per direction, serialized by link
    /// bandwidth, plus wire latency). Panics if the connection is not
    /// active — higher layers must buffer instead of sending during
    /// checkpoint coordination; reaching this panic means the consistency
    /// protocol is broken.
    pub fn send(&self, peer: NodeId, msg: M, wire_size: u64) {
        assert_ne!(self.node, peer, "no self-send at the fabric level");
        let inner = &self.fabric.inner;
        let now = inner.handle.now();
        let conn = self.fabric.conn(self.node, peer);
        let arrival = {
            let mut c = conn.lock();
            assert_eq!(
                c.state,
                ConnState::Active,
                "send {} -> {} on non-active connection",
                self.node,
                peer
            );
            let d = dir(self.node, peer);
            let start = c.busy_until[d].max(now) + inner.cfg.per_message_overhead;
            let done_serializing = start + inner.cfg.serialize_time(wire_size);
            c.busy_until[d] = done_serializing;
            c.in_flight[d] += 1;
            done_serializing + inner.cfg.latency
        };
        let fabric = self.fabric.clone();
        let from = self.node;
        // Keyed on the destination node: under the parallel scheduler the
        // delivery callback executes on the shard owning `peer`, so the
        // receive-side wakes it performs stay shard-local.
        inner.handle.call_at_keyed(u64::from(peer.0), arrival, move |h| {
            fabric.deliver(h, from, peer, msg, wire_size);
        });
    }

    /// Pop the next delivered message, if any.
    pub fn try_recv(&self) -> Option<(NodeId, M)> {
        self.fabric.ep(self.node).lock().queue.pop_front()
    }

    /// Block until a message is available, then pop it.
    pub fn recv_wait(&self, p: &Proc) -> (NodeId, M) {
        let ep = self.fabric.ep(self.node);
        loop {
            {
                let mut e = ep.lock();
                if let Some(m) = e.queue.pop_front() {
                    return m;
                }
                e.waiters.push(p.id());
            }
            p.park();
        }
    }

    /// Block until a message is available **or** the deadline passes;
    /// returns `None` on timeout. Used by progress engines that must also
    /// meet timer obligations. On every exit path the deadline timer is
    /// cancelled and the waiter registration removed — a timed-out waiter
    /// must never linger on the endpoint's list, or a later delivery would
    /// wake a rank that went back to computing (OS-bypass hardware never
    /// interrupts the host CPU that way).
    pub fn recv_timeout(&self, p: &Proc, deadline: Time) -> Option<(NodeId, M)> {
        let ep = self.fabric.ep(self.node);
        let mut timer: Option<TimerHandle> = None;
        let out = loop {
            {
                let mut e = ep.lock();
                if let Some(m) = e.queue.pop_front() {
                    break Some(m);
                }
                if p.now() >= deadline {
                    break None;
                }
                if !e.waiters.contains(&p.id()) {
                    e.waiters.push(p.id());
                }
            }
            if timer.is_none() {
                timer = Some(p.handle().schedule_wake_cancellable(deadline, p.id()));
            }
            p.park();
        };
        if let Some(t) = timer {
            t.cancel();
        }
        ep.lock().waiters.retain(|&w| w != p.id());
        out
    }

    /// Register the calling process to be woken on the next delivery to
    /// this endpoint, without consuming anything. Used to park on several
    /// endpoints at once (e.g. an MPI rank waiting on both its data-plane
    /// and out-of-band endpoints). The registration is one-shot and may
    /// produce spurious wakes; pair with a predicate loop.
    pub fn register_waiter(&self, pid: ProcId) {
        let ep = self.fabric.ep(self.node);
        let mut e = ep.lock();
        if !e.waiters.contains(&pid) {
            e.waiters.push(pid);
        }
    }

    /// Remove a previously registered waiter that was not consumed by a
    /// delivery (e.g. the wait ended via a timer). Keeping the lists clean
    /// matters for fidelity: a stale registration would let a data-plane
    /// delivery wake a *computing* rank, which OS-bypass hardware never
    /// does.
    pub fn unregister_waiter(&self, pid: ProcId) {
        self.fabric.ep(self.node).lock().waiters.retain(|&w| w != pid);
    }

    /// Install a demand-driven compute wake: every delivery to this
    /// endpoint pokes `hook` (see [`gbcr_des::DemandWake`]). Replaces any
    /// previous hook. Installed on passive-coordination entry by the MPI
    /// runtime; the hook itself only acts while its owner is parked.
    pub fn set_compute_hook(&self, hook: DemandWake) {
        self.fabric.ep(self.node).lock().hook = Some(hook);
    }

    /// Remove the demand-driven compute wake (passive-coordination exit).
    pub fn clear_compute_hook(&self) {
        self.fabric.ep(self.node).lock().hook = None;
    }

    /// Number of delivered-but-unconsumed messages.
    pub fn pending(&self) -> usize {
        self.fabric.ep(self.node).lock().queue.len()
    }

    /// In-flight message counts on the connection to `peer`:
    /// `(outbound, inbound)`.
    pub fn in_flight(&self, peer: NodeId) -> (usize, usize) {
        let conn = self.fabric.conn(self.node, peer);
        let c = conn.lock();
        let d = dir(self.node, peer);
        (c.in_flight[d], c.in_flight[1 - d])
    }

    /// Block until both directions of the connection to `peer` are drained.
    /// Only meaningful once both sides have stopped sending.
    pub fn wait_drained(&self, p: &Proc, peer: NodeId) {
        let conn = self.fabric.conn(self.node, peer);
        loop {
            {
                let mut c = conn.lock();
                if c.in_flight == [0, 0] {
                    return;
                }
                c.waiters.push(p.id());
            }
            p.park();
        }
    }
}

impl<M: Send + 'static> Fabric<M> {
    fn deliver(&self, h: &SimHandle, from: NodeId, to: NodeId, msg: M, wire_size: u64) {
        {
            let conn = self.conn(from, to);
            let mut c = conn.lock();
            debug_assert!(
                matches!(c.state, ConnState::Active | ConnState::Draining),
                "delivery on {:?} connection {from}->{to}",
                c.state
            );
            let d = dir(from, to);
            c.in_flight[d] -= 1;
            if c.in_flight == [0, 0] {
                // A forced disconnect hit this connection mid-transfer:
                // finish the drop now that the wire is empty.
                let flapped = c.flap_pending;
                if flapped {
                    debug_assert_eq!(c.state, ConnState::Draining);
                    c.state = ConnState::Disconnected;
                    c.flap_pending = false;
                }
                let mut ws = std::mem::take(&mut c.waiters);
                drop(c);
                if flapped {
                    self.inner.stats.lock().forced_down += 1;
                    h.trace_instant(|| Event::NetFlap {
                        a: from.0,
                        b: to.0,
                        stage: FlapStage::Drained,
                    });
                }
                self.wake_all(&mut ws);
            }
        }
        {
            let ep = self.ep(to);
            let mut e = ep.lock();
            e.queue.push_back((from, msg));
            let mut ws = std::mem::take(&mut e.waiters);
            let hook = e.hook.clone();
            drop(e);
            self.wake_all(&mut ws);
            if let Some(h) = hook {
                h.poke();
            }
        }
        let mut stats = self.inner.stats.lock();
        stats.messages += 1;
        stats.bytes += wire_size;
        drop(stats);
        h.trace_instant_detail(|| Event::NetDeliver { from: from.0, to: to.0, bytes: wire_size });
    }
}
