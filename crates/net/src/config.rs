//! Fabric timing parameters.

use gbcr_des::{time, Time};

/// Timing model of the simulated interconnect.
///
/// Defaults approximate the paper's testbed: Mellanox DDR InfiniBand HCAs
/// (≈1.5 GB/s per link, ≈2 µs latency) with out-of-band connection
/// establishment in the low milliseconds (§2.2: "the cost for connection
/// management is much higher as compared to using the TCP/IP protocol").
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way wire latency per message.
    pub latency: Time,
    /// Per-direction link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Fixed CPU/NIC overhead charged on the sending link per message.
    pub per_message_overhead: Time,
    /// Cost for the *initiating* side to establish (or re-establish) a
    /// connection, covering the out-of-band parameter exchange and QP
    /// state transitions.
    pub conn_setup_time: Time,
    /// Cost to tear a connection down once the channel is drained.
    pub conn_teardown_time: Time,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: time::us(2),
            bandwidth: 1.5e9,
            per_message_overhead: time::us(1) / 2,
            conn_setup_time: time::ms(2),
            conn_teardown_time: time::us(500),
        }
    }
}

impl NetConfig {
    /// The paper's testbed defaults.
    pub fn infiniband_ddr() -> Self {
        Self::default()
    }

    /// A much slower, cheaper-to-connect network (for contrast experiments:
    /// the paper argues group-based checkpointing matters *more* on
    /// InfiniBand because connection management and message rates are high).
    pub fn gigabit_ethernet() -> Self {
        NetConfig {
            latency: time::us(50),
            bandwidth: 125.0e6,
            per_message_overhead: time::us(10),
            conn_setup_time: time::us(200),
            conn_teardown_time: time::us(50),
        }
    }

    /// This fabric derated to a static fair share among `k` co-tenants:
    /// bandwidth drops to `1/k`, every other parameter (latency, per
    /// message overhead, connection costs) is per-endpoint and unchanged.
    /// The cluster harness's bandwidth-tax model of a fully-bisectional
    /// link carrying `k` jobs at once; `k = 0` or `1` is a no-op.
    pub fn shared_among(&self, k: u64) -> Self {
        NetConfig {
            bandwidth: self.bandwidth / (k.max(1) as f64),
            ..self.clone()
        }
    }

    /// Time to serialize `bytes` onto the link (excludes latency).
    pub fn serialize_time(&self, bytes: u64) -> Time {
        time::transfer_time(bytes, self.bandwidth)
    }

    /// The conservative-scheduler lookahead this fabric provides: a
    /// message handed to the fabric at time `t` is delivered no earlier
    /// than `t + lookahead`. Delivery time is
    /// `max(busy, t) + overhead + serialize + latency ≥ t + latency`, so
    /// the wire latency is a sound (and tight, for empty messages on an
    /// idle link) lower bound.
    pub fn lookahead(&self) -> Time {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_time_scales_linearly() {
        let c = NetConfig::default();
        let t1 = c.serialize_time(1_500_000);
        assert_eq!(t1, time::ms(1)); // 1.5MB at 1.5GB/s = 1ms
        assert_eq!(c.serialize_time(0), 0);
    }

    #[test]
    fn ib_connects_cost_more_than_ethernet() {
        assert!(NetConfig::infiniband_ddr().conn_setup_time
            > NetConfig::gigabit_ethernet().conn_setup_time);
    }
}
