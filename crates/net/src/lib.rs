//! # gbcr-net — connection-oriented InfiniBand-like simulated fabric
//!
//! InfiniBand's properties that the paper's design depends on (§2.2):
//!
//! * **Connection-oriented**: most MPI implementations use the RC (reliable
//!   connection) model; every pair of communicating processes holds an
//!   explicit connection (queue pair).
//! * **Expensive connection management**: establishing a connection needs an
//!   out-of-band exchange of queue-pair parameters, far more costly than a
//!   TCP handshake; checkpointing therefore requires *explicitly tearing
//!   down* connections before a local snapshot and rebuilding them after
//!   (the NIC caches communication context that cannot be saved by a
//!   process-level checkpointer).
//! * **OS-bypass**: delivery happens without the remote CPU, so flushing
//!   in-transit messages is an explicit protocol step.
//!
//! This crate models exactly those properties: a [`Fabric`] of reliable,
//! FIFO, per-direction-serialized connections with configurable latency,
//! bandwidth, and connection setup/teardown costs; per-connection in-flight
//! tracking so a channel can be *drained* (flushed); and an
//! `Active / Connecting / TornDown` per-connection state machine where
//! either side may initiate reconnection (the paper's client/server
//! connection manager in `gbcr-core` builds on this).
//!
//! The fabric is generic over the message type `M`, so the MPI layer ships
//! typed wire messages without serialization. Every message carries a
//! `wire_size`: eager messages charge their buffer size, rendezvous (RDMA)
//! transfers charge the full user-buffer size — zero-copy is a time model,
//! not a memory model, here.

#![warn(missing_docs)]

mod config;
mod fabric;
mod stats;

pub use config::NetConfig;
pub use fabric::{ConnState, Endpoint, Fabric, NodeId};
pub use stats::NetStats;
