//! # gbcr-storage — central parallel-filesystem model (PVFS2-like)
//!
//! The paper's whole motivation is the *storage bottleneck*: checkpoint
//! images must land on a reliable central storage system whose aggregate
//! throughput is fixed, so the more processes writing concurrently, the less
//! bandwidth each obtains (paper §3.1, Figure 1). This crate models that
//! system as a **processor-sharing** server:
//!
//! * the aggregate effective rate with `k` active streams is
//!   `min(k · single_client_bw, aggregate_bw) / (1 + congestion · (k − 1))`,
//! * every active stream receives an equal share of that rate,
//! * rates are recomputed event-wise whenever a stream starts or finishes
//!   (the classic event-driven PS-queue construction, using cancelable
//!   completion timers).
//!
//! The default [`StorageConfig`] is calibrated to the paper's testbed: four
//! PVFS2 servers over IPoIB with ≈140 MB/s aggregate throughput and
//! ≈115 MB/s for a single client, which reproduces Figure 1 by construction
//! — `bench/src/bin/fig1.rs` regenerates the curve.
//!
//! Checkpoint images are stored as named [`StoredObject`]s that carry a
//! small *real* payload (the serialized application state) plus a *virtual
//! size* (the process memory footprint). Transfer time is charged for the
//! virtual size while only the payload occupies host memory, so a simulated
//! 32 × 1 GB checkpoint costs nothing real.

#![warn(missing_docs)]

mod backend;
mod config;
mod failover;
mod model;
mod object;
mod replicated;
mod stats;

pub use backend::{owner_rank, replica_nodes, CentralStore, CheckpointStore, WriteTicket};
pub use config::StorageConfig;
pub use failover::{FailoverWriter, RetryPolicy};
pub use model::{Storage, StreamId, StreamKind, WriteFault, WriteFaultFn};
pub use object::StoredObject;
pub use replicated::{ReplicatedCfg, ReplicatedStore};
pub use stats::{StorageStats, TransferRecord};

/// One megabyte (10^6 bytes) — the unit used throughout the paper's figures.
pub const MB: u64 = 1_000_000;
/// One gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;
