//! Storage system configuration and the bandwidth-sharing law.

use gbcr_des::{time, Time};

/// Parameters of the central storage model.
///
/// The default values reproduce the paper's testbed (four PVFS2 servers on
/// SATA disks, IPoIB transport): a single client obtains ≈115 MB/s and the
/// aggregate saturates at ≈140 MB/s (Figure 1). `Thunderbird`-style systems
/// (§3.1: 6 GB/s for 4480 nodes) can be modeled by changing two numbers.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Number of storage servers (documentation/reporting only; the
    /// bandwidth law below already reflects their combined capacity).
    pub servers: u32,
    /// Peak aggregate throughput in bytes/s when enough clients are active.
    pub aggregate_bw: f64,
    /// Maximum throughput a single client stream can drive, bytes/s.
    /// (A single client cannot saturate a parallel file system.)
    pub single_client_bw: f64,
    /// Mild congestion coefficient: with `k` active streams the deliverable
    /// aggregate is divided by `1 + congestion · (k − 1)`. Models the
    /// "system noise, network congestion, and unbalanced share" the paper
    /// mentions. `0.0` disables it.
    pub congestion: f64,
    /// Fixed per-operation latency (metadata round trip, file create).
    pub per_op_latency: Time,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            servers: 4,
            aggregate_bw: 140.0e6,
            single_client_bw: 115.0e6,
            congestion: 0.002,
            per_op_latency: time::ms(2),
        }
    }
}

impl StorageConfig {
    /// The paper's testbed (default): 4 PVFS2 servers, ≈140 MB/s aggregate.
    pub fn paper_testbed() -> Self {
        Self::default()
    }

    /// The Thunderbird-scale system quoted in §3.1: 6 GB/s aggregate for a
    /// 4480-node cluster (1.37 MB/s per node if all checkpoint at once).
    pub fn thunderbird() -> Self {
        StorageConfig {
            servers: 64,
            aggregate_bw: 6.0e9,
            single_client_bw: 400.0e6,
            congestion: 0.0005,
            per_op_latency: time::ms(5),
        }
    }

    /// One node's in-memory (diskless) checkpoint store: a ramdisk-speed
    /// device private to that node, so there is no cross-client contention
    /// to model (`congestion = 0`) and the per-op cost is a local mmap
    /// round-trip rather than a parallel-filesystem metadata RPC. Used per
    /// node by the ReStore-style replicated backend; writes land at memory
    /// bandwidth instead of queueing on the shared central array.
    pub fn node_local() -> Self {
        StorageConfig {
            servers: 1,
            aggregate_bw: 2.0e9,
            single_client_bw: 2.0e9,
            congestion: 0.0,
            per_op_latency: time::us(100),
        }
    }

    /// Deliverable aggregate rate (bytes/s) with `k` concurrent streams.
    pub fn aggregate_rate(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let unconstrained = (k as f64 * self.single_client_bw).min(self.aggregate_bw);
        unconstrained / (1.0 + self.congestion * (k as f64 - 1.0))
    }

    /// Fair-share per-stream rate (bytes/s) with `k` concurrent streams.
    pub fn per_stream_rate(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.aggregate_rate(k) / k as f64
    }

    /// Idealized storage access time for `n` processes of footprint `s`
    /// bytes checkpointing concurrently — the paper's `T = N × S / B`
    /// estimate from §3.1 (ignores congestion and ramp effects).
    pub fn ideal_access_time(&self, n: u64, s: u64) -> Time {
        time::transfer_time(n * s, self.aggregate_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure_1_anchors() {
        let c = StorageConfig::default();
        // 1 client: limited by the single-client ceiling.
        assert!((c.per_stream_rate(1) - 115.0e6).abs() < 1e3);
        // 2+ clients: aggregate saturates near 140 MB/s.
        assert!(c.aggregate_rate(2) > 138.0e6);
        // 32 clients: ~4.3 MB/s each (paper quotes 4.38 before congestion).
        let per32 = c.per_stream_rate(32);
        assert!(per32 > 4.0e6 && per32 < 4.5e6, "got {per32}");
    }

    #[test]
    fn per_stream_rate_is_monotone_nonincreasing() {
        let c = StorageConfig::default();
        let mut prev = f64::INFINITY;
        for k in 1..=128 {
            let r = c.per_stream_rate(k);
            assert!(r <= prev + 1e-9, "per-stream rate rose at k={k}");
            assert!(r > 0.0);
            prev = r;
        }
    }

    #[test]
    fn aggregate_rate_zero_clients_is_zero() {
        let c = StorageConfig::default();
        assert_eq!(c.aggregate_rate(0), 0.0);
        assert_eq!(c.per_stream_rate(0), 0.0);
    }

    #[test]
    fn ideal_access_time_matches_paper_example() {
        // §3.1: Thunderbird, 1 GB/process on 8960 CPUs at 6 GB/s ≈ 1493 s.
        let c = StorageConfig::thunderbird();
        let t = c.ideal_access_time(8960, crate::GB);
        let secs = gbcr_des::time::as_secs_f64(t);
        assert!((secs - 1493.0).abs() < 2.0, "got {secs}");
    }
}
