//! Diskless peer-replicated in-memory checkpoint store (ReStore-style).
//!
//! Instead of pushing every epoch image through one shared PVFS-like
//! array, each rank writes its image to its *own node's* in-memory store
//! (ramdisk speed, no cross-client contention) and fans out `k` remote
//! replica copies over the fabric to the ring peers chosen by
//! [`replica_nodes`]. A node crash destroys that node's store — the local
//! image *and* any replica copies it held for peers — so restart reads
//! each image from the nearest surviving copy: owner node first, then the
//! replicas in placement order. Only when all `k + 1` copies died is the
//! image gone (the manifest then fails validation and the supervisor
//! reports the existing typed `NoRestartPoint`).
//!
//! Determinism: replica placement is a pure function of
//! `(owner, n, k, shift)` with `shift` drawn once per job from the
//! stream-isolated fault RNG; fan-out and recovery probing iterate peers
//! in placement order; merged statistics sort records by
//! `(start, end, client, bytes)`. Two runs with the same seed are
//! byte-identical.

use crate::backend::{owner_rank, replica_nodes, CheckpointStore, WriteTicket};
use crate::config::StorageConfig;
use crate::model::{Storage, StreamId, WriteFaultFn};
use crate::object::StoredObject;
use crate::stats::StorageStats;
use gbcr_des::{time, ArgValue, Event, Proc, SimHandle, Time, Track};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the replicated backend.
#[derive(Debug, Clone)]
pub struct ReplicatedCfg {
    /// Per-node in-memory device model (default: [`StorageConfig::node_local`]).
    pub node: StorageConfig,
    /// Remote replica copies per image (`k`). Clamped to `n - 1`.
    pub replicas: u32,
    /// Ring-placement rotation, drawn once per job from the stream-isolated
    /// RNG (keeps placement reproducible without hardcoding "next node").
    pub shift: u64,
    /// One-way fabric cost charged per replica push / remote recovery read
    /// (RDMA transfer setup to a peer's memory).
    pub replica_rtt: Time,
}

impl Default for ReplicatedCfg {
    fn default() -> Self {
        ReplicatedCfg {
            node: StorageConfig::node_local(),
            replicas: 2,
            shift: 0,
            replica_rtt: time::us(25),
        }
    }
}

#[derive(Default)]
struct ReplicaCounters {
    replicas_written: AtomicU64,
    replica_bytes: AtomicU64,
    remote_recoveries: AtomicU64,
    local_recoveries: AtomicU64,
    replica_losses: AtomicU64,
}

/// Meta/outage accounting that has no single home device.
#[derive(Default)]
struct ExtraStats {
    unavailable_writes: u64,
    manifest_commits: u64,
    torn_manifests: u64,
}

struct PendingWrite {
    owner: u32,
    name: String,
    object: StoredObject,
}

/// The diskless replicated backend: `n` per-node in-memory stores, `k`
/// remote replicas per image, nearest-surviving-copy recovery.
pub struct ReplicatedStore {
    cfg: ReplicatedCfg,
    handle: SimHandle,
    nodes: Vec<Storage>,
    /// Nodes that crashed: their *initial* image seeding is skipped on a
    /// restarted simulation (the replacement node comes up empty), but new
    /// writes and recovery re-seeding go through normally.
    lost: Mutex<HashSet<u32>>,
    write_fault: Mutex<Option<WriteFaultFn>>,
    meta_fault: Mutex<Option<WriteFaultFn>>,
    pending: Mutex<HashMap<(u32, StreamId), PendingWrite>>,
    counters: ReplicaCounters,
    extra: Mutex<ExtraStats>,
}

impl ReplicatedStore {
    /// Build the backend with one in-memory store per node.
    pub fn new(handle: SimHandle, cfg: ReplicatedCfg, n: u32) -> Self {
        assert!(n > 0, "replicated store needs at least one node");
        let nodes =
            (0..n).map(|_| Storage::new(handle.clone(), cfg.node.clone())).collect();
        ReplicatedStore {
            cfg,
            handle,
            nodes,
            lost: Mutex::new(HashSet::new()),
            write_fault: Mutex::new(None),
            meta_fault: Mutex::new(None),
            pending: Mutex::new(HashMap::new()),
            counters: ReplicaCounters::default(),
            extra: Mutex::new(ExtraStats::default()),
        }
    }

    /// Effective replica count (`k` clamped to `n - 1`).
    pub fn replicas(&self) -> u32 {
        self.cfg.replicas.min(self.nodes.len() as u32 - 1)
    }

    /// The ring rotation in force.
    pub fn shift(&self) -> u64 {
        self.cfg.shift
    }

    /// Per-node device handles (tests poke at individual nodes).
    pub fn nodes(&self) -> &[Storage] {
        &self.nodes
    }

    fn owner_of(&self, client: u32, name: &str) -> u32 {
        let n = self.nodes.len() as u32;
        owner_rank(name).filter(|r| *r < n).unwrap_or(client % n)
    }

    fn peers_of(&self, owner: u32) -> Vec<u32> {
        replica_nodes(owner, self.nodes.len() as u32, self.cfg.replicas, self.cfg.shift)
    }

    /// Fan `object` out to the owner's ring peers, blocking until every
    /// accepted copy is durable. Shared by the blocking write path and the
    /// deferred (Chandy-Lamport) finish path.
    fn push_replicas(&self, p: &Proc, client: u32, name: &str, object: &StoredObject, owner: u32) {
        let peers = self.peers_of(owner);
        if peers.is_empty() {
            return;
        }
        let fanout_start = p.now();
        let mut streams: Vec<(u32, StreamId)> = Vec::new();
        for peer in peers {
            let store = &self.nodes[peer as usize];
            if store.in_outage() {
                p.sleep(store.config().per_op_latency);
                self.extra.lock().unavailable_writes += 1;
                self.handle.trace_instant(|| Event::StorageUnavailable {
                    client,
                    name: name.to_owned(),
                });
                continue;
            }
            p.sleep(self.cfg.replica_rtt);
            let id = store.start_write(p, client, name, object.clone());
            self.handle.trace_instant(|| Event::StorageReplicate {
                client,
                peer,
                name: name.to_owned(),
            });
            streams.push((peer, id));
        }
        for (peer, id) in &streams {
            self.nodes[*peer as usize].wait(p, *id);
        }
        if !streams.is_empty() {
            let pushed = streams.len() as u64;
            self.counters.replicas_written.fetch_add(pushed, Ordering::Relaxed);
            self.counters
                .replica_bytes
                .fetch_add(pushed * object.virtual_size, Ordering::Relaxed);
            let bytes = pushed * object.virtual_size;
            self.handle.trace_span(Track::Storage(client), "storage.replicate", fanout_start, || {
                vec![("replicas", ArgValue::U64(pushed)), ("bytes", ArgValue::U64(bytes))]
            });
        }
    }
}

impl CheckpointStore for ReplicatedStore {
    fn write_image(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> Result<(), ()> {
        let owner = self.owner_of(client, name);
        // One fault draw per logical image, applied to the local copy only:
        // a torn or failed local write is exactly what the remote replicas
        // exist to mask (the bytes being pushed come from the sender's own
        // memory, not the torn copy).
        let fault = {
            let hook = self.write_fault.lock();
            hook.as_ref().and_then(|h| h(client, name))
        };
        let owner_store = &self.nodes[owner as usize];
        let mut accepted = false;
        let mut local_stream = None;
        if owner_store.in_outage() {
            p.sleep(owner_store.config().per_op_latency);
            self.extra.lock().unavailable_writes += 1;
            self.handle
                .trace_instant(|| Event::StorageUnavailable { client, name: name.to_owned() });
        } else {
            accepted = true;
            local_stream =
                Some(owner_store.start_write_faulted(p, client, name, object.clone(), fault));
        }
        let peers_up = self
            .peers_of(owner)
            .iter()
            .any(|peer| !self.nodes[*peer as usize].in_outage());
        if let Some(id) = local_stream {
            owner_store.wait(p, id);
        }
        self.push_replicas(p, client, name, &object, owner);
        if accepted || peers_up {
            Ok(())
        } else {
            Err(())
        }
    }

    fn begin_write_image(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> WriteTicket {
        let owner = self.owner_of(client, name);
        let fault = {
            let hook = self.write_fault.lock();
            hook.as_ref().and_then(|h| h(client, name))
        };
        let id =
            self.nodes[owner as usize].start_write_faulted(p, client, name, object.clone(), fault);
        self.pending
            .lock()
            .insert((client, id), PendingWrite { owner, name: name.to_owned(), object });
        WriteTicket { stream: id }
    }

    fn finish_write_image(&self, p: &Proc, client: u32, ticket: WriteTicket) {
        let pending = self
            .pending
            .lock()
            .remove(&(client, ticket.stream))
            .expect("finish_write_image without matching begin");
        self.nodes[pending.owner as usize].wait(p, ticket.stream);
        self.push_replicas(p, client, &pending.name, &pending.object, pending.owner);
    }

    fn read_image(&self, p: &Proc, client: u32, name: &str) -> StoredObject {
        let owner = self.owner_of(client, name);
        if self.nodes[owner as usize].contains(name) {
            self.counters.local_recoveries.fetch_add(1, Ordering::Relaxed);
            return self.nodes[owner as usize].read(p, client, name);
        }
        for peer in self.peers_of(owner) {
            if self.nodes[peer as usize].contains(name) {
                let started = p.now();
                p.sleep(self.cfg.replica_rtt);
                let obj = self.nodes[peer as usize].read(p, client, name);
                self.counters.remote_recoveries.fetch_add(1, Ordering::Relaxed);
                self.handle.trace_instant(|| Event::StorageRecoverRemote {
                    client,
                    peer,
                    name: name.to_owned(),
                });
                let bytes = obj.virtual_size;
                self.handle.trace_span(
                    Track::Storage(client),
                    "storage.recover_remote",
                    started,
                    || vec![("peer", ArgValue::U64(peer as u64)), ("bytes", ArgValue::U64(bytes))],
                );
                // Re-seed the (replacement) owner node so subsequent chain
                // reads and epochs see a local copy; the object is already
                // durable, so this costs nothing.
                self.nodes[owner as usize].preload(name, obj.clone());
                return obj;
            }
        }
        panic!("storage object '{name}' does not exist on any target");
    }

    fn read_chain(&self, p: &Proc, client: u32, name: &str, bytes: u64) {
        let owner = self.owner_of(client, name);
        if self.nodes[owner as usize].contains(name) {
            self.nodes[owner as usize].read_bulk(p, client, bytes);
            return;
        }
        for peer in self.peers_of(owner) {
            if self.nodes[peer as usize].contains(name) {
                p.sleep(self.cfg.replica_rtt);
                self.nodes[peer as usize].read_bulk(p, client, bytes);
                return;
            }
        }
        panic!("storage object '{name}' does not exist on any target");
    }

    fn contains(&self, name: &str) -> bool {
        self.nodes.iter().any(|s| s.contains(name))
    }

    fn peek(&self, name: &str) -> Option<StoredObject> {
        self.nodes.iter().find_map(|s| s.peek(name))
    }

    fn commit_meta(&self, client: u32, name: &str, object: StoredObject) -> bool {
        let fault = {
            let hook = self.meta_fault.lock();
            hook.as_ref().and_then(|h| h(client, name))
        };
        use crate::model::WriteFault;
        match fault {
            Some(WriteFault::Torn) | Some(WriteFault::Fail) => {
                self.extra.lock().torn_manifests += 1;
                self.handle
                    .trace_instant(|| Event::StorageTornMeta { client, name: name.to_owned() });
                false
            }
            None | Some(WriteFault::Slow(_)) => {
                // The manifest is tiny control metadata: replicate it to
                // every live node so it survives any single crash, exactly
                // one logical commit regardless of node count.
                let mut placed = 0usize;
                for store in &self.nodes {
                    if store.in_outage() {
                        continue;
                    }
                    store.preload(name, object.clone());
                    placed += 1;
                }
                if placed == 0 {
                    self.extra.lock().unavailable_writes += 1;
                    self.handle.trace_instant(|| Event::StorageUnavailable {
                        client,
                        name: name.to_owned(),
                    });
                    false
                } else {
                    self.extra.lock().manifest_commits += 1;
                    self.handle
                        .trace_instant(|| Event::StorageCommit { client, name: name.to_owned() });
                    true
                }
            }
        }
    }

    fn preload(&self, name: &str, object: StoredObject) {
        let lost = self.lost.lock();
        let n = self.nodes.len() as u32;
        match owner_rank(name).filter(|r| *r < n) {
            Some(owner) => {
                let mut targets = vec![owner];
                targets.extend(self.peers_of(owner));
                for t in targets {
                    if !lost.contains(&t) {
                        self.nodes[t as usize].preload(name, object.clone());
                    }
                }
            }
            None => {
                for (i, store) in self.nodes.iter().enumerate() {
                    if !lost.contains(&(i as u32)) {
                        store.preload(name, object.clone());
                    }
                }
            }
        }
    }

    fn export_objects(&self) -> Vec<(String, StoredObject)> {
        let mut merged: BTreeMap<String, StoredObject> = BTreeMap::new();
        for store in &self.nodes {
            for (name, obj) in store.export_objects() {
                merged.entry(name).or_insert(obj);
            }
        }
        merged.into_iter().collect()
    }

    fn storage_stats(&self) -> StorageStats {
        let mut out = StorageStats::default();
        for store in &self.nodes {
            let s = store.stats();
            out.records.extend(s.records);
            out.torn_writes += s.torn_writes;
            out.failed_writes += s.failed_writes;
            out.slowed_writes += s.slowed_writes;
            out.unavailable_writes += s.unavailable_writes;
            out.manifest_commits += s.manifest_commits;
            out.torn_manifests += s.torn_manifests;
        }
        out.records.sort_by(|a, b| {
            (a.start, a.end, a.client, a.bytes).cmp(&(b.start, b.end, b.client, b.bytes))
        });
        let extra = self.extra.lock();
        out.unavailable_writes += extra.unavailable_writes;
        out.manifest_commits += extra.manifest_commits;
        out.torn_manifests += extra.torn_manifests;
        out.replicas_written = self.counters.replicas_written.load(Ordering::Relaxed);
        out.replica_bytes = self.counters.replica_bytes.load(Ordering::Relaxed);
        out.remote_recoveries = self.counters.remote_recoveries.load(Ordering::Relaxed);
        out.local_recoveries = self.counters.local_recoveries.load(Ordering::Relaxed);
        out.replica_losses = self.counters.replica_losses.load(Ordering::Relaxed);
        out
    }

    fn node_failed(&self, node: u32) {
        let Some(store) = self.nodes.get(node as usize) else { return };
        let dropped = store.wipe();
        let lost_replicas = dropped
            .iter()
            .filter(|(name, _)| matches!(owner_rank(name), Some(r) if r != node))
            .count() as u64;
        self.counters.replica_losses.fetch_add(lost_replicas, Ordering::Relaxed);
        self.lost.lock().insert(node);
        let objects = dropped.len() as u64;
        self.handle.trace_instant(|| Event::StorageNodeLost { node, objects });
    }

    fn set_outage(&self, target: usize, until: Time) {
        if let Some(store) = self.nodes.get(target) {
            store.set_outage_until(until);
        }
    }

    fn set_derate(&self, derate: f64) {
        for store in &self.nodes {
            store.set_derate(derate);
        }
    }

    fn set_write_fault_hook(&self, hook: Option<WriteFaultFn>) {
        *self.write_fault.lock() = hook;
    }

    fn set_meta_fault_hook(&self, hook: Option<WriteFaultFn>) {
        *self.meta_fault.lock() = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MB;
    use gbcr_des::Sim;
    use std::sync::Arc;

    fn store(sim: &mut Sim, n: u32, k: u32) -> Arc<ReplicatedStore> {
        let cfg = ReplicatedCfg { replicas: k, ..ReplicatedCfg::default() };
        Arc::new(ReplicatedStore::new(sim.handle(), cfg, n))
    }

    #[test]
    fn write_lands_on_owner_and_ring_peers() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 2);
        let s = st.clone();
        sim.spawn("w", move |p| {
            s.write_image(p, 1, "ckpt/j/e0/r1", StoredObject::bulk(10 * MB)).unwrap();
        });
        sim.run().unwrap();
        assert!(st.nodes()[1].contains("ckpt/j/e0/r1"), "owner copy");
        // shift 0, owner 1 -> peers 2, 3.
        assert!(st.nodes()[2].contains("ckpt/j/e0/r1"));
        assert!(st.nodes()[3].contains("ckpt/j/e0/r1"));
        assert!(!st.nodes()[0].contains("ckpt/j/e0/r1"));
        let stats = st.storage_stats();
        assert_eq!(stats.replicas_written, 2);
        assert_eq!(stats.replica_bytes, 2 * 10 * MB);
    }

    #[test]
    fn recovery_prefers_local_then_replica_order() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 2);
        let s = st.clone();
        sim.spawn("rw", move |p| {
            s.write_image(p, 1, "ckpt/j/e0/r1", StoredObject::bulk(MB)).unwrap();
            s.read_image(p, 1, "ckpt/j/e0/r1");
            // Kill the owner node: next read must come from a replica.
            s.node_failed(1);
            s.read_image(p, 1, "ckpt/j/e0/r1");
        });
        sim.run().unwrap();
        let stats = st.storage_stats();
        assert_eq!(stats.local_recoveries, 1);
        assert_eq!(stats.remote_recoveries, 1);
        // The remote read re-seeded the owner node.
        assert!(st.nodes()[1].contains("ckpt/j/e0/r1"));
    }

    #[test]
    fn node_failure_counts_lost_replica_copies() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 2);
        let s = st.clone();
        sim.spawn("w", move |p| {
            // Node 2 holds its own image plus replicas of ranks 0 and 1.
            s.write_image(p, 0, "ckpt/j/e0/r0", StoredObject::bulk(MB)).unwrap();
            s.write_image(p, 1, "ckpt/j/e0/r1", StoredObject::bulk(MB)).unwrap();
            s.write_image(p, 2, "ckpt/j/e0/r2", StoredObject::bulk(MB)).unwrap();
            s.node_failed(2);
        });
        sim.run().unwrap();
        let stats = st.storage_stats();
        assert_eq!(stats.replica_losses, 2, "r0 and r1 copies died with node 2");
        assert!(!st.nodes()[2].contains("ckpt/j/e0/r2"));
    }

    #[test]
    #[should_panic(expected = "does not exist on any target")]
    fn all_copies_dead_panics_on_read() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 1);
        let s = st.clone();
        sim.spawn("rw", move |p| {
            s.write_image(p, 0, "ckpt/j/e0/r0", StoredObject::bulk(MB)).unwrap();
            s.node_failed(0);
            s.node_failed(1); // shift 0: rank 0's only replica is node 1
            s.read_image(p, 0, "ckpt/j/e0/r0");
        });
        let err = sim.run().unwrap_err();
        panic!("{err}");
    }

    #[test]
    fn preload_skips_lost_nodes_until_reseeded() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 1);
        st.node_failed(0);
        CheckpointStore::preload(&*st, "ckpt/j/e0/r0", StoredObject::bulk(MB));
        assert!(!st.nodes()[0].contains("ckpt/j/e0/r0"), "lost node comes up empty");
        assert!(st.nodes()[1].contains("ckpt/j/e0/r0"), "replica preloaded");
        let s = st.clone();
        sim.spawn("r", move |p| {
            s.read_image(p, 0, "ckpt/j/e0/r0");
        });
        sim.run().unwrap();
        assert_eq!(st.storage_stats().remote_recoveries, 1);
        assert!(st.nodes()[0].contains("ckpt/j/e0/r0"), "recovery re-seeded the node");
    }

    #[test]
    fn manifests_replicate_to_every_node() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 3, 1);
        assert!(st.commit_meta(u32::MAX, "manifest/j/e0", StoredObject::bulk(64)));
        for node in st.nodes() {
            assert!(node.contains("manifest/j/e0"));
        }
        let stats = st.storage_stats();
        assert_eq!(stats.manifest_commits, 1, "one logical commit");
        drop(sim);
    }

    #[test]
    fn deferred_write_fans_out_on_finish() {
        let mut sim = Sim::new(0);
        let st = store(&mut sim, 4, 2);
        let s = st.clone();
        sim.spawn("w", move |p| {
            let t = s.begin_write_image(p, 0, "ckpt/j/e0/r0", StoredObject::bulk(MB));
            assert_eq!(s.storage_stats().replicas_written, 0, "no fan-out before finish");
            s.finish_write_image(p, 0, t);
        });
        sim.run().unwrap();
        assert_eq!(st.storage_stats().replicas_written, 2);
        assert!(st.nodes()[1].contains("ckpt/j/e0/r0"));
        assert!(st.nodes()[2].contains("ckpt/j/e0/r0"));
    }
}
