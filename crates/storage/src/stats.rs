//! Transfer accounting for experiments (Figure 1 and checkpoint-time
//! breakdowns).

use crate::model::StreamKind;
use gbcr_des::{time, Time};

/// One completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// Client identifier supplied by the caller (usually an MPI rank).
    pub client: u32,
    /// Read or write.
    pub kind: StreamKind,
    /// Simulated bytes moved.
    pub bytes: u64,
    /// When the stream entered the server (after per-op latency).
    pub start: Time,
    /// When the last byte was transferred.
    pub end: Time,
}

impl TransferRecord {
    /// Mean bandwidth over the stream's lifetime, bytes/s.
    pub fn mean_bandwidth(&self) -> f64 {
        if self.end <= self.start {
            return 0.0;
        }
        self.bytes as f64 / time::as_secs_f64(self.end - self.start)
    }
}

/// Aggregated view over all completed transfers.
#[derive(Debug, Clone, Default)]
pub struct StorageStats {
    /// All completed transfers in completion order.
    pub records: Vec<TransferRecord>,
    /// Writes that ran to completion but were never published (fault
    /// injection: torn checkpoint images).
    pub torn_writes: u64,
    /// Writes that errored out immediately (fault injection).
    pub failed_writes: u64,
    /// Writes that moved inflated byte counts through a degraded server
    /// (fault injection).
    pub slowed_writes: u64,
    /// Writes rejected because the server was inside an outage window
    /// (fault injection: storage-target failures).
    pub unavailable_writes: u64,
    /// Epoch manifests published atomically via [`crate::Storage::commit_meta`].
    pub manifest_commits: u64,
    /// Manifest commits that tore: the commit was attempted but the record
    /// was never published, leaving the previous manifest authoritative.
    pub torn_manifests: u64,
    /// Remote replica copies fanned out by the replicated backend (one per
    /// peer copy, not per logical image). Always 0 on the central path.
    pub replicas_written: u64,
    /// Bytes carried by those replica copies.
    pub replica_bytes: u64,
    /// Restart reads served from a remote replica because the owner node's
    /// local copy was gone.
    pub remote_recoveries: u64,
    /// Restart reads served from the owner node's own in-memory copy.
    pub local_recoveries: u64,
    /// Replica copies destroyed because the node holding them crashed
    /// (objects whose owner was some *other* rank).
    pub replica_losses: u64,
}

impl StorageStats {
    /// Total bytes across all completed transfers.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Mean per-client bandwidth (bytes/s), i.e. the average of each
    /// record's own mean bandwidth — the quantity plotted per client in
    /// Figure 1.
    pub fn mean_client_bandwidth(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(TransferRecord::mean_bandwidth).sum::<f64>()
            / self.records.len() as f64
    }

    /// High-water mark of simultaneously active transfers on this device —
    /// the depth of the checkpoint storm the processor-sharing server
    /// absorbed. Sweep-line over `[start, end)` intervals (an end at `t`
    /// frees its slot before a start at `t` claims one), so back-to-back
    /// streams don't count as concurrent. The cluster interference study
    /// reports this per shared array.
    pub fn peak_concurrent_streams(&self) -> u64 {
        let mut edges: Vec<(Time, i64)> = Vec::with_capacity(self.records.len() * 2);
        for r in &self.records {
            if r.end > r.start {
                edges.push((r.start, 1));
                edges.push((r.end, -1));
            }
        }
        edges.sort_unstable_by_key(|&(t, d)| (t, d));
        let (mut live, mut peak) = (0i64, 0i64);
        for (_, d) in edges {
            live += d;
            peak = peak.max(live);
        }
        peak as u64
    }

    /// Aggregate throughput: total bytes divided by the wall-span from the
    /// first start to the last end — the "Aggregated Throughput" series in
    /// Figure 1.
    pub fn aggregate_throughput(&self) -> f64 {
        let Some(first) = self.records.iter().map(|r| r.start).min() else {
            return 0.0;
        };
        let last = self.records.iter().map(|r| r.end).max().unwrap();
        if last <= first {
            return 0.0;
        }
        self.total_bytes() as f64 / time::as_secs_f64(last - first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u32, bytes: u64, start: Time, end: Time) -> TransferRecord {
        TransferRecord { client, kind: StreamKind::Write, bytes, start, end }
    }

    #[test]
    fn mean_bandwidth_per_record() {
        let r = rec(0, 100_000_000, 0, time::secs(1));
        assert!((r.mean_bandwidth() - 1e8).abs() < 1.0);
        let degenerate = rec(0, 5, time::secs(1), time::secs(1));
        assert_eq!(degenerate.mean_bandwidth(), 0.0);
    }

    #[test]
    fn aggregate_uses_global_span() {
        let stats = StorageStats {
            records: vec![
                rec(0, 50, 0, time::secs(1)),
                rec(1, 50, 0, time::secs(2)),
            ],
            ..StorageStats::default()
        };
        assert_eq!(stats.total_bytes(), 100);
        assert!((stats.aggregate_throughput() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn peak_streams_sweep_line() {
        let stats = StorageStats {
            records: vec![
                rec(0, 1, 0, 10),
                rec(1, 1, 5, 15),
                rec(2, 1, 10, 20),
                // Back-to-back with record 0: end-before-start at t=10 must
                // not count as overlap.
                rec(3, 1, 10, 11),
                // Zero-length stream never counts.
                rec(4, 1, 7, 7),
            ],
            ..StorageStats::default()
        };
        assert_eq!(stats.peak_concurrent_streams(), 3);
        assert_eq!(StorageStats::default().peak_concurrent_streams(), 0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StorageStats::default();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.mean_client_bandwidth(), 0.0);
        assert_eq!(s.aggregate_throughput(), 0.0);
    }
}
