//! Retry/backoff and failover across storage targets.
//!
//! A checkpoint image write that hits a storage-target outage is retried
//! with capped exponential backoff; once the retry budget on one target is
//! exhausted the writer fails over to the next target in the list. The
//! counters (`write_retries`, `failovers`) are shared across all clones of
//! a [`FailoverWriter`], so one writer cloned per rank accumulates a
//! job-wide total.
//!
//! With a single healthy target the writer is exactly [`Storage::write`]:
//! same events, same timing, no extra state — fault-free runs stay
//! byte-identical.

use crate::model::Storage;
use crate::object::StoredObject;
use gbcr_des::{Proc, Time};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capped exponential backoff for transient storage-write failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries per target before failing over (total attempts per target is
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Time,
    /// Multiplier applied per subsequent retry.
    pub backoff_factor: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: Time,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: gbcr_des::time::ms(200),
            backoff_factor: 2.0,
            max_backoff: gbcr_des::time::secs(2),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base · factor^retry`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Time {
        let mut b = self.base_backoff;
        for _ in 0..retry {
            b = ((b as f64 * self.backoff_factor) as Time).min(self.max_backoff);
        }
        b.min(self.max_backoff)
    }
}

#[derive(Default)]
struct Counters {
    write_retries: AtomicU64,
    failovers: AtomicU64,
}

/// Writes through an ordered list of storage targets with retry + failover.
/// Cheap to clone; clones share the retry/failover counters.
#[derive(Clone)]
pub struct FailoverWriter {
    targets: Vec<Storage>,
    policy: RetryPolicy,
    counters: Arc<Counters>,
}

impl FailoverWriter {
    /// Build a writer over `targets` (primary first). Panics if empty.
    pub fn new(targets: Vec<Storage>, policy: RetryPolicy) -> Self {
        assert!(!targets.is_empty(), "failover writer needs at least one target");
        FailoverWriter { targets, policy, counters: Arc::new(Counters::default()) }
    }

    /// The primary target.
    pub fn primary(&self) -> &Storage {
        &self.targets[0]
    }

    /// All targets, primary first.
    pub fn targets(&self) -> &[Storage] {
        &self.targets
    }

    /// Write `object`, retrying each target with capped exponential backoff
    /// before failing over to the next. Returns the index of the target
    /// that accepted the write, or `Err(())` when every target's budget is
    /// exhausted (the image is lost; the epoch simply never manifests).
    #[allow(clippy::result_unit_err)]
    pub fn write(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> Result<usize, ()> {
        for (i, target) in self.targets.iter().enumerate() {
            if i > 0 {
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                p.handle().trace_instant(|| gbcr_des::Event::StorageFailover {
                    client,
                    name: name.to_owned(),
                    target: i as u64,
                });
            }
            let mut retry = 0u32;
            loop {
                if target.write_checked(p, client, name, object.clone()).is_ok() {
                    return Ok(i);
                }
                if retry >= self.policy.max_retries {
                    break;
                }
                self.counters.write_retries.fetch_add(1, Ordering::Relaxed);
                p.sleep(self.policy.backoff(retry));
                retry += 1;
            }
        }
        Err(())
    }

    /// Read `name` from the first target that has it, charging transfer
    /// time there. Panics if no target has the object (restart from a
    /// missing checkpoint is a caller bug — validate via the manifest
    /// first).
    pub fn read(&self, p: &Proc, client: u32, name: &str) -> (usize, StoredObject) {
        for (i, target) in self.targets.iter().enumerate() {
            if target.contains(name) {
                return (i, target.read(p, client, name));
            }
        }
        panic!("storage object '{name}' does not exist on any target");
    }

    /// Total retries across all clones.
    pub fn write_retries(&self) -> u64 {
        self.counters.write_retries.load(Ordering::Relaxed)
    }

    /// Total failovers across all clones.
    pub fn failovers(&self) -> u64 {
        self.counters.failovers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageConfig;
    use crate::MB;
    use gbcr_des::{time, Sim};

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: time::ms(100),
            backoff_factor: 2.0,
            max_backoff: time::ms(700),
        };
        assert_eq!(p.backoff(0), time::ms(100));
        assert_eq!(p.backoff(1), time::ms(200));
        assert_eq!(p.backoff(2), time::ms(400));
        assert_eq!(p.backoff(3), time::ms(700), "capped");
        assert_eq!(p.backoff(9), time::ms(700), "stays capped");
    }

    #[test]
    fn healthy_primary_never_retries() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig { per_op_latency: 0, ..StorageConfig::default() };
        let primary = Storage::new(sim.handle(), cfg.clone());
        let secondary = Storage::new(sim.handle(), cfg);
        let w = FailoverWriter::new(vec![primary.clone(), secondary.clone()], RetryPolicy::default());
        sim.spawn("w", {
            let w = w.clone();
            move |p| {
                assert_eq!(w.write(p, 0, "img", StoredObject::bulk(115 * MB)), Ok(0));
            }
        });
        sim.run().unwrap();
        assert!(primary.contains("img"));
        assert!(!secondary.contains("img"));
        assert_eq!(w.write_retries(), 0);
        assert_eq!(w.failovers(), 0);
    }

    #[test]
    fn outage_retries_then_fails_over_to_secondary() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig { per_op_latency: 0, ..StorageConfig::default() };
        let primary = Storage::new(sim.handle(), cfg.clone());
        let secondary = Storage::new(sim.handle(), cfg);
        primary.set_outage_until(time::secs(3600)); // never recovers in-test
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: time::ms(100),
            backoff_factor: 2.0,
            max_backoff: time::secs(1),
        };
        let w = FailoverWriter::new(vec![primary.clone(), secondary.clone()], policy);
        sim.spawn("w", {
            let w = w.clone();
            move |p| {
                assert_eq!(w.write(p, 0, "img", StoredObject::bulk(115 * MB)), Ok(1));
            }
        });
        sim.run().unwrap();
        assert!(secondary.contains("img"));
        assert!(!primary.contains("img"));
        assert_eq!(w.write_retries(), 2);
        assert_eq!(w.failovers(), 1);
        assert_eq!(primary.stats().unavailable_writes, 3, "initial try + 2 retries");
    }

    #[test]
    fn short_outage_recovers_on_primary_without_failover() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig { per_op_latency: 0, ..StorageConfig::default() };
        let primary = Storage::new(sim.handle(), cfg.clone());
        let secondary = Storage::new(sim.handle(), cfg);
        primary.set_outage_until(time::ms(250));
        let w = FailoverWriter::new(vec![primary.clone(), secondary.clone()], RetryPolicy::default());
        sim.spawn("w", {
            let w = w.clone();
            move |p| {
                // Fails at t=0, backs off 200ms, fails at 200ms, backs off
                // 400ms, succeeds at 600ms.
                assert_eq!(w.write(p, 0, "img", StoredObject::bulk(MB)), Ok(0));
            }
        });
        sim.run().unwrap();
        assert!(primary.contains("img"));
        assert_eq!(w.write_retries(), 2);
        assert_eq!(w.failovers(), 0);
    }

    #[test]
    fn all_targets_down_gives_up() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig { per_op_latency: 0, ..StorageConfig::default() };
        let primary = Storage::new(sim.handle(), cfg);
        primary.set_outage_until(time::secs(3600));
        let policy = RetryPolicy { max_retries: 1, ..RetryPolicy::default() };
        let w = FailoverWriter::new(vec![primary.clone()], policy);
        sim.spawn("w", {
            let w = w.clone();
            move |p| {
                assert!(w.write(p, 0, "img", StoredObject::bulk(MB)).is_err());
            }
        });
        sim.run().unwrap();
        assert!(!primary.contains("img"));
        assert_eq!(w.write_retries(), 1);
    }

    #[test]
    fn read_finds_object_on_secondary() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig { per_op_latency: 0, ..StorageConfig::default() };
        let primary = Storage::new(sim.handle(), cfg.clone());
        let secondary = Storage::new(sim.handle(), cfg);
        secondary.preload("img", StoredObject::bulk(MB));
        let w = FailoverWriter::new(vec![primary, secondary], RetryPolicy::default());
        sim.spawn("r", move |p| {
            let (target, obj) = w.read(p, 0, "img");
            assert_eq!(target, 1);
            assert_eq!(obj.virtual_size, MB);
        });
        sim.run().unwrap();
    }
}
