//! Pluggable checkpoint-store backends.
//!
//! Everything above the storage crate (BLCR image writes, the coordinator's
//! manifest commits, the supervisor's restart reads, fault injection) talks
//! to checkpoint storage through the [`CheckpointStore`] trait. Two
//! implementations ship here:
//!
//! * [`CentralStore`] — the paper's shared PVFS2-like array, wrapping the
//!   existing [`FailoverWriter`] (one or more [`Storage`] targets with
//!   retry + failover). Every call delegates 1:1 to the legacy path, so a
//!   run through `CentralStore` is byte-identical to one built before the
//!   trait existed.
//! * [`crate::ReplicatedStore`] — a ReStore-style diskless backend: each
//!   rank's image lands in its own node's in-memory store plus `k` remote
//!   replicas, and restart reads from the nearest surviving copy.

use crate::model::{Storage, StreamId, WriteFaultFn};
use crate::object::StoredObject;
use crate::stats::StorageStats;
use gbcr_des::{Proc, Time};

/// Handle for a non-blocking image write started with
/// [`CheckpointStore::begin_write_image`]; redeem it (possibly from a
/// different simulated process) with [`CheckpointStore::finish_write_image`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteTicket {
    pub(crate) stream: StreamId,
}

/// The checkpoint storage abstraction: where epoch images and manifests
/// live, how they are written, and where restart finds them.
///
/// Contract highlights:
///
/// * `write_image` blocks until the image is as durable as the backend can
///   make it; `Err(())` means *observably* nothing accepted the write
///   (every target/copy was inside an outage window). Silent fault modes
///   (torn/failed writes) still return `Ok` — the writer cannot tell, the
///   durability promise is what broke.
/// * `read_image` panics when no copy survives anywhere: restarting from a
///   checkpoint that the manifest did not validate is a caller bug.
/// * `commit_meta` is a zero-simulated-time manifest publish (it piggybacks
///   on the protocol round that proved the images durable).
pub trait CheckpointStore: Send + Sync {
    /// Write a checkpoint image, blocking until durable. `Err(())` when no
    /// target accepted the write (outage windows everywhere).
    #[allow(clippy::result_unit_err)]
    fn write_image(&self, p: &Proc, client: u32, name: &str, object: StoredObject)
        -> Result<(), ()>;

    /// Start an image write without blocking (the Chandy-Lamport
    /// copy-on-write path overlaps the transfer with computation); pair
    /// with [`CheckpointStore::finish_write_image`].
    fn begin_write_image(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> WriteTicket;

    /// Block until a write started with `begin_write_image` is durable
    /// (including any replica fan-out the backend performs).
    fn finish_write_image(&self, p: &Proc, client: u32, ticket: WriteTicket);

    /// Read an image back, charging transfer time at whichever copy serves
    /// it. Panics if no copy exists anywhere.
    fn read_image(&self, p: &Proc, client: u32, name: &str) -> StoredObject;

    /// Charge a bulk read of `bytes` anonymous bytes at the copy that
    /// holds `name` (incremental-checkpoint chain restores account their
    /// chain members in aggregate).
    fn read_chain(&self, p: &Proc, client: u32, name: &str, bytes: u64);

    /// Whether any copy of `name` exists (no simulated time cost).
    fn contains(&self, name: &str) -> bool;

    /// Zero-time lookup of `name` on any copy.
    fn peek(&self, name: &str) -> Option<StoredObject>;

    /// Atomically publish a small metadata record (epoch manifest) with
    /// zero simulated time cost. Returns whether it became visible.
    fn commit_meta(&self, client: u32, name: &str, object: StoredObject) -> bool;

    /// Seed the namespace with an already-durable object (restart path);
    /// no simulated time cost.
    fn preload(&self, name: &str, object: StoredObject);

    /// Export the whole logical namespace, deduplicated and sorted by name
    /// (for carrying images across simulations).
    fn export_objects(&self) -> Vec<(String, StoredObject)>;

    /// Aggregated transfer/fault statistics across the backend's devices.
    fn storage_stats(&self) -> StorageStats;

    /// Write retries performed by the backend's retry machinery (0 unless
    /// the backend retries).
    fn write_retries(&self) -> u64 {
        0
    }

    /// Primary→standby failovers performed by the backend (0 unless the
    /// backend fails over).
    fn failovers(&self) -> u64 {
        0
    }

    /// A compute node crashed: destroy whatever checkpoint state was
    /// co-located with it. No-op for backends with no per-node state.
    fn node_failed(&self, node: u32) {
        let _ = node;
    }

    /// Open (or extend) an outage window on storage target `target`
    /// (fault injection). Out-of-range targets are ignored.
    fn set_outage(&self, target: usize, until: Time);

    /// Apply a bandwidth derate to the backend's devices (fault injection:
    /// brown-out). 1.0 restores full health.
    fn set_derate(&self, derate: f64);

    /// Install (or clear) the per-image write-fault decider.
    fn set_write_fault_hook(&self, hook: Option<WriteFaultFn>);

    /// Install (or clear) the manifest-commit fault decider.
    fn set_meta_fault_hook(&self, hook: Option<WriteFaultFn>);
}

/// Deterministic ring placement for replica copies: the `k` nodes after
/// `owner` on the ring of `n` nodes, rotated by `shift` (drawn once per job
/// from the stream-isolated RNG so placement is reproducible but not
/// always "the next node"). Never includes `owner`; returns fewer than `k`
/// peers only when the cluster has fewer than `k + 1` nodes.
pub fn replica_nodes(owner: u32, n: u32, k: u32, shift: u64) -> Vec<u32> {
    if n <= 1 {
        return Vec::new();
    }
    let k = k.min(n - 1);
    (0..k as u64)
        .map(|j| {
            // Offsets land in [0, n-2], so owner + 1 + offset can never
            // wrap back onto owner, and k consecutive offsets mod (n-1)
            // are pairwise distinct.
            let offset = (shift + j) % (n as u64 - 1);
            ((owner as u64 + 1 + offset) % n as u64) as u32
        })
        .collect()
}

/// Parse the owning rank out of a checkpoint-image name: images are named
/// `ckpt/{job}/e{epoch}/r{rank}`, so the trailing `/r<digits>` component
/// identifies the owner. Names without one (epoch manifests,
/// `manifest/{job}/e{epoch}`) return `None` and are treated as global
/// metadata by placement-aware backends.
pub fn owner_rank(name: &str) -> Option<u32> {
    let idx = name.rfind("/r")?;
    let digits = &name[idx + 2..];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The legacy central-array path behind the trait: a [`crate::FailoverWriter`]
/// over one or more shared [`Storage`] targets. All delegation is 1:1 with
/// the pre-trait code paths (same events, same timing, same counters).
pub struct CentralStore {
    writer: crate::failover::FailoverWriter,
}

impl CentralStore {
    /// Wrap an existing failover writer.
    pub fn new(writer: crate::failover::FailoverWriter) -> Self {
        CentralStore { writer }
    }

    /// The underlying writer (targets, retry policy, shared counters).
    pub fn writer(&self) -> &crate::failover::FailoverWriter {
        &self.writer
    }

    fn primary(&self) -> &Storage {
        self.writer.primary()
    }
}

impl CheckpointStore for CentralStore {
    fn write_image(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> Result<(), ()> {
        self.writer.write(p, client, name, object).map(|_| ())
    }

    fn begin_write_image(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> WriteTicket {
        WriteTicket { stream: self.primary().start_write(p, client, name, object) }
    }

    fn finish_write_image(&self, p: &Proc, _client: u32, ticket: WriteTicket) {
        self.primary().wait(p, ticket.stream);
    }

    fn read_image(&self, p: &Proc, client: u32, name: &str) -> StoredObject {
        self.writer.read(p, client, name).1
    }

    fn read_chain(&self, p: &Proc, client: u32, name: &str, bytes: u64) {
        for target in self.writer.targets() {
            if target.contains(name) {
                target.read_bulk(p, client, bytes);
                return;
            }
        }
        panic!("storage object '{name}' does not exist on any target");
    }

    fn contains(&self, name: &str) -> bool {
        self.writer.targets().iter().any(|t| t.contains(name))
    }

    fn peek(&self, name: &str) -> Option<StoredObject> {
        self.writer.targets().iter().find_map(|t| t.peek(name))
    }

    fn commit_meta(&self, client: u32, name: &str, object: StoredObject) -> bool {
        self.primary().commit_meta(client, name, object)
    }

    fn preload(&self, name: &str, object: StoredObject) {
        self.primary().preload(name, object);
    }

    fn export_objects(&self) -> Vec<(String, StoredObject)> {
        // Primary wins on name collisions (it is authoritative; a standby
        // only holds copies the primary rejected during an outage).
        let mut out = self.primary().export_objects();
        for standby in &self.writer.targets()[1..] {
            for (name, obj) in standby.export_objects() {
                if !out.iter().any(|(n, _)| *n == name) {
                    out.push((name, obj));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn storage_stats(&self) -> StorageStats {
        self.primary().stats()
    }

    fn write_retries(&self) -> u64 {
        self.writer.write_retries()
    }

    fn failovers(&self) -> u64 {
        self.writer.failovers()
    }

    fn set_outage(&self, target: usize, until: Time) {
        if let Some(t) = self.writer.targets().get(target) {
            t.set_outage_until(until);
        }
    }

    fn set_derate(&self, derate: f64) {
        self.primary().set_derate(derate);
    }

    fn set_write_fault_hook(&self, hook: Option<WriteFaultFn>) {
        self.primary().set_write_fault_hook(hook);
    }

    fn set_meta_fault_hook(&self, hook: Option<WriteFaultFn>) {
        self.primary().set_meta_fault_hook(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_placement_skips_owner_and_wraps() {
        assert_eq!(replica_nodes(0, 4, 2, 0), vec![1, 2]);
        assert_eq!(replica_nodes(3, 4, 2, 0), vec![0, 1]);
        // Rotated by shift.
        assert_eq!(replica_nodes(0, 4, 2, 1), vec![2, 3]);
        // shift wraps within the n-1 non-owner offsets: offset 2 then 0.
        assert_eq!(replica_nodes(0, 4, 2, 2), vec![3, 1]);
    }

    #[test]
    fn ring_placement_clamps_k_to_cluster_size() {
        assert_eq!(replica_nodes(1, 3, 10, 0), vec![2, 0]);
        assert_eq!(replica_nodes(0, 1, 3, 7), Vec::<u32>::new());
        assert_eq!(replica_nodes(0, 2, 3, 5), vec![1]);
    }

    #[test]
    fn owner_rank_parses_image_names_only() {
        assert_eq!(owner_rank("ckpt/job/e3/r12"), Some(12));
        assert_eq!(owner_rank("ckpt/job/e0/r0"), Some(0));
        assert_eq!(owner_rank("manifest/job/e3"), None);
        assert_eq!(owner_rank("ckpt/job/e3/r"), None);
        assert_eq!(owner_rank("ckpt/job/e3/r1x"), None);
        assert_eq!(owner_rank("plain"), None);
    }
}
