//! Event-driven processor-sharing transfer engine.
//!
//! Invariants maintained by [`Storage`]:
//!
//! 1. Between two membership changes, every active stream progresses at the
//!    same rate `aggregate_rate(k)/k`.
//! 2. On any change (stream added / completed), all streams are *settled*
//!    (their remaining byte counts updated for the elapsed interval) before
//!    the new rate takes effect.
//! 3. Exactly one completion timer is outstanding at a time; it is cancelled
//!    and re-issued on every change (stale-timer invalidation).

use crate::config::StorageConfig;
use crate::object::StoredObject;
use crate::stats::{StorageStats, TransferRecord};
use gbcr_des::{time, ArgValue, Event, Proc, ProcId, SimHandle, Time, TimerHandle, Track};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an in-flight or completed transfer stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(u64);

/// Direction of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Client pushes bytes to the storage system (checkpoint save).
    Write,
    /// Client pulls bytes from the storage system (restart load).
    Read,
}

/// A fault applied to one write, decided by the installed write-fault hook
/// (see [`Storage::set_write_fault_hook`]). The writer itself never learns
/// the difference — exactly like a crashed filesystem server: the client's
/// syscalls return, the durability promise is what breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// The transfer moves `factor ×` the bytes through the shared server
    /// (degraded path, e.g. a failed-over PVFS2 server pair), so it takes
    /// `factor ×` as long under the same contention. Must be ≥ 1.
    Slow(f64),
    /// The transfer runs to completion and charges full time, but the
    /// object is never published: a torn image that restart must treat as
    /// missing.
    Torn,
    /// The write errors out immediately: no bytes move, nothing is
    /// published.
    Fail,
}

/// Decides, per write, whether a fault applies: `(client, object name)` →
/// fault. Must be deterministic in its inputs for reproducible runs.
pub type WriteFaultFn = Arc<dyn Fn(u32, &str) -> Option<WriteFault> + Send + Sync>;

struct Stream {
    id: StreamId,
    client: u32,
    kind: StreamKind,
    total: u64,
    remaining: f64,
    started: Time,
    waiters: Vec<ProcId>,
    /// For writes: object to publish on completion.
    publish: Option<(String, StoredObject)>,
}

struct State {
    streams: Vec<Stream>,
    next_id: u64,
    last_settle: Time,
    timer: Option<TimerHandle>,
    objects: HashMap<String, StoredObject>,
    completed: HashMap<StreamId, TransferRecord>,
    stats: StorageStats,
    /// Bandwidth derate applied on top of the configured rates (fault
    /// injection: a storage brown-out). 1.0 = healthy; multiplying by 1.0
    /// is IEEE-exact, so a healthy run is byte-identical to one built
    /// before this field existed.
    derate: f64,
    /// Per-write fault decider (fault injection); `None` = healthy.
    write_fault: Option<WriteFaultFn>,
    /// Fault decider for metadata commits ([`Storage::commit_meta`]).
    /// Separate slot from `write_fault` so image tearing and manifest
    /// tearing are independently injectable.
    meta_fault: Option<WriteFaultFn>,
    /// The server rejects new checked writes until this instant (fault
    /// injection: a storage-target outage). In-flight streams are not
    /// interrupted — the outage models losing the front-end, not the data
    /// already moving through the back-end.
    outage_until: Time,
}

/// The shared central storage system. Cheap to clone; all clones refer to
/// the same simulated device.
///
/// ```
/// use gbcr_des::{time, Sim};
/// use gbcr_storage::{Storage, StorageConfig, StoredObject, MB};
///
/// let mut sim = Sim::new(0);
/// let storage = Storage::new(sim.handle(), StorageConfig::paper_testbed());
/// // Two concurrent writers share the ~140 MB/s aggregate fairly.
/// for c in 0..2u32 {
///     let s = storage.clone();
///     sim.spawn(format!("client{c}"), move |p| {
///         s.write(p, c, &format!("img{c}"), StoredObject::bulk(70 * MB));
///     });
/// }
/// let end = sim.run().unwrap();
/// assert!((time::as_secs_f64(end) - 1.0).abs() < 0.05); // 140 MB / 140 MB/s
/// ```
#[derive(Clone)]
pub struct Storage {
    cfg: Arc<StorageConfig>,
    handle: SimHandle,
    state: Arc<Mutex<State>>,
}

impl Storage {
    /// Attach a storage system with the given configuration to a simulation.
    pub fn new(handle: SimHandle, cfg: StorageConfig) -> Self {
        Storage {
            cfg: Arc::new(cfg),
            handle,
            state: Arc::new(Mutex::new(State {
                streams: Vec::new(),
                next_id: 0,
                last_settle: 0,
                timer: None,
                objects: HashMap::new(),
                completed: HashMap::new(),
                stats: StorageStats::default(),
                derate: 1.0,
                write_fault: None,
                meta_fault: None,
                outage_until: 0,
            })),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &StorageConfig {
        &self.cfg
    }

    /// Number of currently active streams.
    pub fn active_streams(&self) -> usize {
        self.state.lock().streams.len()
    }

    /// Current fair-share rate each active stream receives, bytes/s.
    pub fn current_per_stream_rate(&self) -> f64 {
        self.cfg.per_stream_rate(self.active_streams())
    }

    /// Snapshot of completed-transfer statistics.
    pub fn stats(&self) -> StorageStats {
        self.state.lock().stats.clone()
    }

    /// Forget accumulated statistics (between experiment phases).
    pub fn clear_stats(&self) {
        self.state.lock().stats.records.clear();
    }

    /// Look up a stored object by name (no simulated time cost; use
    /// [`Storage::read`] to charge transfer time).
    pub fn peek(&self, name: &str) -> Option<StoredObject> {
        self.state.lock().objects.get(name).cloned()
    }

    /// Whether an object exists.
    pub fn contains(&self, name: &str) -> bool {
        self.state.lock().objects.contains_key(name)
    }

    /// Remove an object, returning it if present (no simulated time cost).
    pub fn remove(&self, name: &str) -> Option<StoredObject> {
        self.state.lock().objects.remove(name)
    }

    /// Insert an object directly into the namespace with no simulated time
    /// cost. Used to seed a fresh simulation's storage with the checkpoint
    /// images of a previous run (the restart path) — the images are already
    /// durable; only reading them back costs time.
    pub fn preload(&self, name: &str, object: StoredObject) {
        self.state.lock().objects.insert(name.to_owned(), object);
    }

    /// Export the whole namespace (for carrying images across simulations).
    pub fn export_objects(&self) -> Vec<(String, StoredObject)> {
        let mut v: Vec<(String, StoredObject)> = self
            .state
            .lock()
            .objects
            .iter()
            .map(|(k, o)| (k.clone(), o.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Names of all stored objects, sorted (deterministic order).
    pub fn object_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.lock().objects.keys().cloned().collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Blocking API (call from simulated processes)
    // ------------------------------------------------------------------

    /// Write `object` under `name`, blocking the calling simulated process
    /// until the last byte is on the server. Charges per-op latency plus
    /// the processor-shared transfer of `object.virtual_size` bytes.
    pub fn write(&self, p: &Proc, client: u32, name: &str, object: StoredObject) {
        let id = self.start_write(p, client, name, object);
        self.wait(p, id);
    }

    /// Read the object stored under `name`, blocking until the transfer
    /// completes. Panics if the object does not exist (restart from a
    /// missing checkpoint is a caller bug).
    pub fn read(&self, p: &Proc, client: u32, name: &str) -> StoredObject {
        let obj = self
            .peek(name)
            .unwrap_or_else(|| panic!("storage object '{name}' does not exist"));
        p.sleep(self.cfg.per_op_latency);
        let id = self.add_stream(client, StreamKind::Read, obj.virtual_size, None);
        self.wait(p, id);
        obj
    }

    /// Charge a read of `bytes` anonymous bytes through the shared model
    /// (used for incremental-checkpoint chain restores, where the chain's
    /// members are accounted in aggregate).
    pub fn read_bulk(&self, p: &Proc, client: u32, bytes: u64) {
        p.sleep(self.cfg.per_op_latency);
        let id = self.add_stream(client, StreamKind::Read, bytes, None);
        self.wait(p, id);
    }

    /// Start a write without blocking; pair with [`Storage::wait`].
    ///
    /// Consults the write-fault hook (if installed): a `Slow` write moves
    /// proportionally more bytes through the shared server, a `Torn` write
    /// charges full time but never publishes the object, a `Fail` write
    /// completes instantly with nothing moved or published. The caller
    /// cannot observe the difference between `Torn` and a healthy write —
    /// that is the point.
    pub fn start_write(&self, p: &Proc, client: u32, name: &str, object: StoredObject) -> StreamId {
        let fault = {
            let st = self.state.lock();
            st.write_fault.as_ref().and_then(|h| h(client, name))
        };
        self.start_write_faulted(p, client, name, object, fault)
    }

    /// Start a write with a fault verdict already decided, bypassing this
    /// device's own write-fault hook. The replicated backend uses this to
    /// apply *one* fault draw per logical image while fanning copies out to
    /// several per-node devices; `start_write` delegates here, so the
    /// central path's event sequence is unchanged.
    pub(crate) fn start_write_faulted(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
        fault: Option<WriteFault>,
    ) -> StreamId {
        p.sleep(self.cfg.per_op_latency);
        match fault {
            None => self.add_stream(
                client,
                StreamKind::Write,
                object.virtual_size,
                Some((name.to_owned(), object)),
            ),
            Some(WriteFault::Slow(factor)) => {
                assert!(factor >= 1.0, "Slow factor must be >= 1, got {factor}");
                self.state.lock().stats.slowed_writes += 1;
                let bytes = (object.virtual_size as f64 * factor).ceil() as u64;
                self.add_stream(client, StreamKind::Write, bytes, Some((name.to_owned(), object)))
            }
            Some(WriteFault::Torn) => {
                self.state.lock().stats.torn_writes += 1;
                self.handle
                    .trace_instant(|| Event::StorageTorn { client, name: name.to_owned() });
                self.add_stream(client, StreamKind::Write, object.virtual_size, None)
            }
            Some(WriteFault::Fail) => {
                self.state.lock().stats.failed_writes += 1;
                self.handle
                    .trace_instant(|| Event::StorageFail { client, name: name.to_owned() });
                self.add_stream(client, StreamKind::Write, 0, None)
            }
        }
    }

    /// Install (or clear, with `None`) the per-write fault decider. Applies
    /// to writes started after this call.
    pub fn set_write_fault_hook(&self, hook: Option<WriteFaultFn>) {
        self.state.lock().write_fault = hook;
    }

    /// Install (or clear) the fault decider consulted by
    /// [`Storage::commit_meta`]. Kept separate from the bulk-write hook so
    /// manifest tearing and image tearing are independent fault points.
    pub fn set_meta_fault_hook(&self, hook: Option<WriteFaultFn>) {
        self.state.lock().meta_fault = hook;
    }

    /// Like [`Storage::write`], but observable: returns `Err(())` instead of
    /// silently dropping the bytes when the server is inside an outage
    /// window (see [`Storage::set_outage_until`]). The caller still pays the
    /// per-op round-trip that discovers the dead server. With no outage
    /// configured this is exactly `write` — same events, same timing.
    #[allow(clippy::result_unit_err)]
    pub fn write_checked(
        &self,
        p: &Proc,
        client: u32,
        name: &str,
        object: StoredObject,
    ) -> Result<(), ()> {
        if self.in_outage() {
            p.sleep(self.cfg.per_op_latency);
            self.state.lock().stats.unavailable_writes += 1;
            self.handle
                .trace_instant(|| Event::StorageUnavailable { client, name: name.to_owned() });
            return Err(());
        }
        self.write(p, client, name, object);
        Ok(())
    }

    /// Whether the server currently rejects new checked writes.
    pub fn in_outage(&self) -> bool {
        self.handle.now() < self.state.lock().outage_until
    }

    /// Begin (or extend) an outage window: checked writes fail until
    /// `until`. In-flight streams keep draining. Windows only ever extend —
    /// overlapping injections do not shorten an outage.
    pub fn set_outage_until(&self, until: Time) {
        let mut st = self.state.lock();
        if until > st.outage_until {
            st.outage_until = until;
        }
        drop(st);
        self.handle.trace_instant(|| Event::StorageOutage { until });
    }

    /// Crash-stop this device: drop every stored object and annul the
    /// publish side-effect of any in-flight write stream (the bytes already
    /// moving keep charging time, but nothing they carried survives — a
    /// node's RAM disappeared with the node). Returns the dropped objects
    /// sorted by name, so callers can account the losses deterministically.
    pub fn wipe(&self) -> Vec<(String, StoredObject)> {
        let mut st = self.state.lock();
        for s in &mut st.streams {
            s.publish = None;
        }
        let mut dropped: Vec<(String, StoredObject)> = st.objects.drain().collect();
        dropped.sort_by(|a, b| a.0.cmp(&b.0));
        dropped
    }

    /// Atomically publish a small metadata record (an epoch manifest) with
    /// **zero simulated time cost**: the commit piggybacks on the protocol
    /// round that proved all images durable, so it adds no events, no
    /// transfer records, and no wire bytes — fault-free runs stay
    /// byte-identical. Returns whether the record became visible: a `Torn`
    /// or `Fail` verdict from the meta-fault hook (or an outage window)
    /// suppresses publication, leaving any previous record authoritative.
    pub fn commit_meta(&self, client: u32, name: &str, object: StoredObject) -> bool {
        if self.in_outage() {
            let mut st = self.state.lock();
            st.stats.unavailable_writes += 1;
            drop(st);
            self.handle
                .trace_instant(|| Event::StorageUnavailable { client, name: name.to_owned() });
            return false;
        }
        let fault = {
            let st = self.state.lock();
            st.meta_fault.as_ref().and_then(|h| h(client, name))
        };
        match fault {
            Some(WriteFault::Torn) | Some(WriteFault::Fail) => {
                self.state.lock().stats.torn_manifests += 1;
                self.handle
                    .trace_instant(|| Event::StorageTornMeta { client, name: name.to_owned() });
                false
            }
            // Slow is meaningless for a zero-time commit; treat as healthy.
            None | Some(WriteFault::Slow(_)) => {
                let mut st = self.state.lock();
                st.objects.insert(name.to_owned(), object);
                st.stats.manifest_commits += 1;
                drop(st);
                self.handle
                    .trace_instant(|| Event::StorageCommit { client, name: name.to_owned() });
                true
            }
        }
    }

    /// Change the bandwidth derate (fault injection: storage brown-out).
    /// Active streams are settled at the old rate up to *now* before the
    /// new rate takes effect — invariant 2 of the PS engine. `1.0` restores
    /// full health.
    pub fn set_derate(&self, derate: f64) {
        assert!(
            derate.is_finite() && derate > 0.0 && derate <= 1.0,
            "derate must be in (0, 1], got {derate}"
        );
        let now = self.handle.now();
        let mut st = self.state.lock();
        self.settle(&mut st, now);
        st.derate = derate;
        self.reschedule(&mut st, now);
        self.handle.trace_instant(|| Event::StorageDerate { factor: derate });
    }

    /// The current bandwidth derate (1.0 = healthy).
    pub fn derate(&self) -> f64 {
        self.state.lock().derate
    }

    /// Block until the given stream has completed, returning its record.
    pub fn wait(&self, p: &Proc, id: StreamId) -> TransferRecord {
        loop {
            {
                let mut st = self.state.lock();
                if let Some(rec) = st.completed.get(&id).cloned() {
                    return rec;
                }
                let stream = st
                    .streams
                    .iter_mut()
                    .find(|s| s.id == id)
                    .expect("waited on unknown stream");
                stream.waiters.push(p.id());
            }
            p.park();
        }
    }

    // ------------------------------------------------------------------
    // Engine internals
    // ------------------------------------------------------------------

    fn add_stream(
        &self,
        client: u32,
        kind: StreamKind,
        bytes: u64,
        publish: Option<(String, StoredObject)>,
    ) -> StreamId {
        let now = self.handle.now();
        let mut st = self.state.lock();
        self.settle(&mut st, now);
        let id = StreamId(st.next_id);
        st.next_id += 1;
        let stream = Stream {
            id,
            client,
            kind,
            total: bytes,
            remaining: bytes as f64,
            started: now,
            waiters: Vec::new(),
            publish,
        };
        if bytes == 0 {
            // Zero-byte transfers complete instantly.
            Self::complete_stream(&self.handle, &mut st, stream, now);
        } else {
            st.streams.push(stream);
        }
        self.reschedule(&mut st, now);
        self.handle.trace_instant_detail(|| Event::StorageStart {
            client,
            kind: match kind {
                StreamKind::Write => "Write",
                StreamKind::Read => "Read",
            },
            bytes,
            id: id.0,
        });
        id
    }

    /// Advance all active streams to `now` at the rate that held since the
    /// last settle point, completing any that finished.
    fn settle(&self, st: &mut State, now: Time) {
        let k = st.streams.len();
        let dt = now.saturating_sub(st.last_settle);
        st.last_settle = now;
        if k == 0 || dt == 0 {
            return;
        }
        let rate = self.cfg.per_stream_rate(k) * st.derate;
        let progress = rate * time::as_secs_f64(dt);
        for s in &mut st.streams {
            s.remaining -= progress;
        }
        // Complete finished streams in id order (deterministic).
        let mut finished: Vec<Stream> = Vec::new();
        st.streams.retain_mut(|s| {
            if s.remaining <= 0.5 {
                finished.push(Stream {
                    id: s.id,
                    client: s.client,
                    kind: s.kind,
                    total: s.total,
                    remaining: 0.0,
                    started: s.started,
                    waiters: std::mem::take(&mut s.waiters),
                    publish: s.publish.take(),
                });
                false
            } else {
                true
            }
        });
        finished.sort_by_key(|s| s.id);
        for s in finished {
            Self::complete_stream(&self.handle, st, s, now);
        }
    }

    fn complete_stream(handle: &SimHandle, st: &mut State, mut s: Stream, now: Time) {
        let rec = TransferRecord {
            client: s.client,
            kind: s.kind,
            bytes: s.total,
            start: s.started,
            end: now,
        };
        if let Some((name, obj)) = s.publish.take() {
            st.objects.insert(name, obj);
        }
        st.stats.records.push(rec.clone());
        st.completed.insert(s.id, rec);
        for w in s.waiters.drain(..) {
            handle.wake(w);
        }
        handle.trace_span(
            Track::Storage(s.client),
            match s.kind {
                StreamKind::Write => "storage.write",
                StreamKind::Read => "storage.read",
            },
            s.started,
            || vec![("bytes", ArgValue::U64(s.total))],
        );
        handle.trace_instant_detail(|| Event::StorageDone { client: s.client, id: s.id.0 });
    }

    /// Re-issue the single outstanding completion timer for the earliest
    /// finishing stream.
    fn reschedule(&self, st: &mut State, now: Time) {
        if let Some(t) = st.timer.take() {
            t.cancel();
        }
        let k = st.streams.len();
        if k == 0 {
            return;
        }
        let rate = self.cfg.per_stream_rate(k) * st.derate;
        let min_remaining =
            st.streams.iter().map(|s| s.remaining).fold(f64::INFINITY, f64::min);
        // ceil so the earliest stream is guaranteed <= 0.5 remaining when
        // the timer fires (settle subtracts rate * dt with dt >= exact).
        let dt = ((min_remaining / rate) * time::NANOS_PER_SEC as f64).ceil().max(1.0) as Time;
        let this = self.clone();
        let timer = self.handle.call_at(now + dt, move |h| {
            let now = h.now();
            let mut st = this.state.lock();
            st.timer = None;
            this.settle(&mut st, now);
            this.reschedule(&mut st, now);
        });
        st.timer = Some(timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MB;
    use bytes::Bytes;
    use gbcr_des::Sim;

    fn write_blocking(st: &Storage, p: &Proc, client: u32, name: &str, size: u64) {
        st.write(p, client, name, StoredObject::bulk(size));
    }

    #[test]
    fn single_writer_gets_single_client_bandwidth() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "img", 115 * MB);
        });
        let end = sim.run().unwrap();
        // 115 MB at 115 MB/s = 1s, plus 2ms per-op latency.
        let secs = time::as_secs_f64(end);
        assert!((secs - 1.002).abs() < 0.001, "got {secs}");
        assert!(storage.contains("img"));
        assert_eq!(storage.active_streams(), 0);
    }

    #[test]
    fn two_writers_share_fairly() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { congestion: 0.0, per_op_latency: 0, ..StorageConfig::default() },
        );
        for i in 0..2 {
            let s = storage.clone();
            sim.spawn(format!("w{i}"), move |p| {
                write_blocking(&s, p, i, &format!("img{i}"), 70 * MB);
            });
        }
        let end = sim.run().unwrap();
        // 140 MB total at 140 MB/s aggregate = 1s.
        let secs = time::as_secs_f64(end);
        assert!((secs - 1.0).abs() < 0.01, "got {secs}");
        let stats = storage.stats();
        assert_eq!(stats.records.len(), 2);
        for r in &stats.records {
            // each ~70 MB/s
            assert!((r.mean_bandwidth() - 70.0e6).abs() < 1.0e6);
        }
    }

    #[test]
    fn late_joiner_slows_early_stream() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig {
            aggregate_bw: 100.0e6,
            single_client_bw: 100.0e6,
            congestion: 0.0,
            per_op_latency: 0,
            ..StorageConfig::default()
        };
        let storage = Storage::new(sim.handle(), cfg);
        let s1 = storage.clone();
        sim.spawn("early", move |p| {
            write_blocking(&s1, p, 0, "a", 100 * MB);
            // Alone for 0.5s (50 MB done), then shares 50 MB/s for the rest:
            // remaining 50 MB at 50 MB/s = 1s. Total 1.5s.
            assert_eq!(time::as_secs_f64(p.now()), 1.5);
        });
        let s2 = storage.clone();
        sim.spawn("late", move |p| {
            p.sleep(time::ms(500));
            write_blocking(&s2, p, 1, "b", 100 * MB);
            // Shares 50 MB/s from 0.5 to 1.5 (50MB), then alone at 100 MB/s
            // for remaining 50 MB: 0.5s. Ends at 2.0s.
            assert_eq!(time::as_secs_f64(p.now()), 2.0);
        });
        let end = sim.run().unwrap();
        assert_eq!(time::as_secs_f64(end), 2.0);
    }

    #[test]
    fn read_returns_written_payload() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        let s = storage.clone();
        sim.spawn("rw", move |p| {
            let obj = StoredObject::new(Bytes::from_static(b"state"), 10 * MB);
            s.write(p, 0, "ckpt/0", obj.clone());
            let back = s.read(p, 0, "ckpt/0");
            assert_eq!(back, obj);
        });
        sim.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn read_missing_object_panics() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(sim.handle(), StorageConfig::default());
        sim.spawn("r", move |p| {
            storage.read(p, 0, "nope");
        });
        let err = sim.run().unwrap_err();
        panic!("{err}");
    }

    #[test]
    fn zero_byte_write_completes_immediately() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "empty", 0);
            assert_eq!(p.now(), 0);
        });
        sim.run().unwrap();
        assert!(storage.contains("empty"));
    }

    #[test]
    fn nonblocking_overlap_with_wait() {
        let mut sim = Sim::new(0);
        let cfg = StorageConfig {
            aggregate_bw: 100.0e6,
            single_client_bw: 100.0e6,
            congestion: 0.0,
            per_op_latency: 0,
            ..StorageConfig::default()
        };
        let storage = Storage::new(sim.handle(), cfg);
        let s = storage.clone();
        sim.spawn("w", move |p| {
            let id = s.start_write(p, 0, "bg", StoredObject::bulk(100 * MB));
            p.sleep(time::ms(400)); // overlap compute with the transfer
            let rec = s.wait(p, id);
            assert_eq!(time::as_secs_f64(p.now()), 1.0);
            assert_eq!(rec.bytes, 100 * MB);
        });
        sim.run().unwrap();
    }

    #[test]
    fn torn_write_charges_full_time_but_never_publishes() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        storage.set_write_fault_hook(Some(Arc::new(|_, name: &str| {
            (name == "torn").then_some(WriteFault::Torn)
        })));
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "torn", 115 * MB);
            // Torn write cost exactly what a healthy one would: 1s.
            assert_eq!(time::as_secs_f64(p.now()), 1.0);
            write_blocking(&s, p, 0, "good", 115 * MB);
        });
        sim.run().unwrap();
        assert!(!storage.contains("torn"), "torn image must not be visible");
        assert!(storage.contains("good"));
        let stats = storage.stats();
        assert_eq!(stats.torn_writes, 1);
        assert_eq!(stats.records.len(), 2, "torn transfer is still accounted");
    }

    #[test]
    fn failed_write_is_instant_and_publishes_nothing() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        storage.set_write_fault_hook(Some(Arc::new(|_, _: &str| Some(WriteFault::Fail))));
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "img", 115 * MB);
            assert_eq!(p.now(), 0, "failed write returns immediately");
        });
        sim.run().unwrap();
        assert!(!storage.contains("img"));
        assert_eq!(storage.stats().failed_writes, 1);
    }

    #[test]
    fn slow_write_inflates_transfer_proportionally() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        storage.set_write_fault_hook(Some(Arc::new(|_, _: &str| Some(WriteFault::Slow(3.0)))));
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "img", 115 * MB);
            // 3× the bytes through the same 115 MB/s single-client rate.
            assert!((time::as_secs_f64(p.now()) - 3.0).abs() < 1e-6);
        });
        sim.run().unwrap();
        assert!(storage.contains("img"), "slow writes still publish");
        assert_eq!(storage.stats().slowed_writes, 1);
    }

    #[test]
    fn derate_settles_at_old_rate_then_applies() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "img", 115 * MB);
            // 0.5s at full rate (57.5 MB) + remaining 57.5 MB at half rate
            // (1s) = 1.5s total.
            assert!((time::as_secs_f64(p.now()) - 1.5).abs() < 1e-6);
        });
        let s = storage.clone();
        sim.handle().call_at(time::ms(500), move |_| s.set_derate(0.5));
        sim.run().unwrap();
        assert_eq!(storage.derate(), 0.5);
    }

    #[test]
    fn commit_meta_is_zero_time_and_tears_independently() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        storage.set_meta_fault_hook(Some(Arc::new(|_, name: &str| {
            (name == "manifest/torn").then_some(WriteFault::Torn)
        })));
        let s = storage.clone();
        sim.spawn("w", move |p| {
            assert!(s.commit_meta(u32::MAX, "manifest/good", StoredObject::bulk(64)));
            assert!(!s.commit_meta(u32::MAX, "manifest/torn", StoredObject::bulk(64)));
            assert_eq!(p.now(), 0, "metadata commits must not charge time");
            // The meta hook must not apply to bulk writes.
            write_blocking(&s, p, 0, "torn", 1);
        });
        sim.run().unwrap();
        assert!(storage.contains("manifest/good"));
        assert!(!storage.contains("manifest/torn"));
        assert!(storage.contains("torn"), "bulk writes ignore the meta hook");
        let stats = storage.stats();
        assert_eq!(stats.manifest_commits, 1);
        assert_eq!(stats.torn_manifests, 1);
        assert_eq!(stats.records.len(), 1, "commits leave no transfer records");
    }

    #[test]
    fn outage_window_fails_checked_writes_then_recovers() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: time::ms(2), ..StorageConfig::default() },
        );
        storage.set_outage_until(time::secs(1));
        let s = storage.clone();
        sim.spawn("w", move |p| {
            assert!(s.write_checked(p, 0, "img", StoredObject::bulk(115 * MB)).is_err());
            // The failed attempt still paid the per-op round-trip.
            assert_eq!(p.now(), time::ms(2));
            assert!(!s.commit_meta(0, "manifest/e0", StoredObject::bulk(8)));
            p.sleep(time::secs(1));
            assert!(s.write_checked(p, 0, "img", StoredObject::bulk(115 * MB)).is_ok());
        });
        sim.run().unwrap();
        assert!(storage.contains("img"));
        assert_eq!(storage.stats().unavailable_writes, 2);
    }

    #[test]
    fn object_listing_is_sorted_and_removal_works() {
        let mut sim = Sim::new(0);
        let storage = Storage::new(
            sim.handle(),
            StorageConfig { per_op_latency: 0, ..StorageConfig::default() },
        );
        let s = storage.clone();
        sim.spawn("w", move |p| {
            write_blocking(&s, p, 0, "b", 1);
            write_blocking(&s, p, 0, "a", 1);
        });
        sim.run().unwrap();
        assert_eq!(storage.object_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(storage.remove("a").is_some());
        assert!(storage.remove("a").is_none());
        assert_eq!(storage.object_names(), vec!["b".to_string()]);
    }
}
