//! The storage namespace: named objects with a real payload and a virtual
//! size.

use bytes::Bytes;

/// An object stored on the central storage system (a checkpoint image).
///
/// Only `payload` occupies host memory; `virtual_size` is the number of
/// bytes the transfer engine charges time for, i.e. the simulated process's
/// memory footprint. `virtual_size >= payload.len()` always holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// Real content (serialized application state for restart).
    pub payload: Bytes,
    /// Simulated on-disk size in bytes.
    pub virtual_size: u64,
}

impl StoredObject {
    /// Build an object, padding `virtual_size` up to the payload length if
    /// the caller passed something smaller.
    pub fn new(payload: Bytes, virtual_size: u64) -> Self {
        let virtual_size = virtual_size.max(payload.len() as u64);
        StoredObject { payload, virtual_size }
    }

    /// An object with no real content, only simulated bulk (pure footprint).
    pub fn bulk(virtual_size: u64) -> Self {
        StoredObject { payload: Bytes::new(), virtual_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_size_is_clamped_to_payload() {
        let o = StoredObject::new(Bytes::from(vec![0u8; 100]), 10);
        assert_eq!(o.virtual_size, 100);
        let o = StoredObject::new(Bytes::from(vec![0u8; 100]), 1000);
        assert_eq!(o.virtual_size, 1000);
    }

    #[test]
    fn bulk_has_empty_payload() {
        let o = StoredObject::bulk(1 << 30);
        assert!(o.payload.is_empty());
        assert_eq!(o.virtual_size, 1 << 30);
    }
}
