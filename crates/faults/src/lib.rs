//! # gbcr-faults — deterministic, seed-driven fault injection
//!
//! Checkpointing only pays for itself when failures happen. This crate is
//! the workspace's fault model: a byte-reproducible event source that plugs
//! into the DES and drives
//!
//! * **stochastic node failures** — per-node exponential MTBF draws from
//!   isolated RNG streams (see [`rng`]), so adding a fault domain or
//!   resampling one node never perturbs another node's failure times;
//! * **single-node kills** — one rank dies, the surviving job is aborted
//!   after a detection latency (the launcher's failure detector), and the
//!   dead node's fabric connections are force-torn;
//! * **link flaps** — a connection is forced down and must be rebuilt
//!   through the normal teardown/re-setup path on next use;
//! * **storage faults** — bandwidth derating windows plus per-image
//!   slow/failed/torn writes that produce *incomplete* checkpoint epochs
//!   the restart logic must skip.
//!
//! The crate deliberately depends only on `gbcr-des` (plus the vendored
//! `rand` shim): it schedules [`FaultPlan`] events onto the simulation and
//! delivers them through a [`FaultSink`] implemented by the harness layer
//! (`gbcr-core`), which owns the process ids, the fabrics, and the storage
//! device. Everything is a pure function of the configured seed: two runs
//! with the same seed produce byte-identical fault schedules regardless of
//! worker-thread count.

#![warn(missing_docs)]

mod inject;
mod phase;
mod plan;
pub mod rng;

pub use inject::{install, FaultConfig, FaultSink, TornWrites};
pub use phase::{PhaseAction, PhaseFault, PhaseFaults, ProtocolPhase};
pub use plan::{FaultEvent, FaultKind, FaultPlan, StochasticFaults, COORDINATOR_VICTIM};
