//! Fault plans: what goes wrong, and when.

use crate::rng::{exp_secs, stream, Domain};
use gbcr_des::{time, Time};
use rand::Rng;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kill a single rank's node. The harness is expected to abort the
    /// surviving job after its detection latency and tear the victim's
    /// connections down.
    NodeKill {
        /// The rank whose node dies.
        rank: u32,
    },
    /// Power-fail the whole cluster (every rank and the coordinator).
    ClusterKill,
    /// Kill the node hosting the checkpoint coordinator (the control
    /// plane's console). Every rank survives: this is a pure control-plane
    /// loss. With failover disabled the harness aborts the job after its
    /// detection latency (the launcher notices its console died); with
    /// lease-based election enabled the surviving ranks elect a
    /// replacement and the run continues in place.
    CoordinatorKill,
    /// Force the data-plane connection between two ranks down; it is
    /// rebuilt through the normal teardown/re-setup path on next use.
    LinkFlap {
        /// One side of the link.
        a: u32,
        /// The other side.
        b: u32,
    },
    /// Derate the central storage system's bandwidth by `factor` for
    /// `duration` of virtual time (a degraded-RAID / busy-filesystem
    /// window).
    StorageStall {
        /// Multiplier applied to the aggregate rate, in `(0, 1]`.
        factor: f64,
        /// How long the window lasts.
        duration: Time,
    },
    /// Take a storage target fully offline for `duration`: new writes fail
    /// transiently (clients retry with backoff and may fail over to a
    /// secondary target); streams already in flight keep draining.
    StorageOutage {
        /// Which storage target (0 = primary, 1 = secondary, ...).
        target: u32,
        /// How long the outage window lasts.
        duration: Time,
    },
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute virtual time of the fault.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The events, in the order they were planned (the injector sorts no
    /// further: same-time events fire in plan order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the injector arms nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A whole-cluster power failure at `t`.
    pub fn cluster_at(t: Time) -> Self {
        FaultPlan { events: vec![FaultEvent { at: t, kind: FaultKind::ClusterKill }] }
    }

    /// A single-node kill at `t`.
    pub fn node_kill_at(t: Time, rank: u32) -> Self {
        FaultPlan { events: vec![FaultEvent { at: t, kind: FaultKind::NodeKill { rank } }] }
    }

    /// A coordinator-node kill at `t`.
    pub fn coordinator_kill_at(t: Time) -> Self {
        FaultPlan { events: vec![FaultEvent { at: t, kind: FaultKind::CoordinatorKill }] }
    }

    /// Append an event.
    pub fn push(&mut self, at: Time, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }
}

/// Configuration of the stochastic fault process for a supervised run.
///
/// All randomness is drawn from [`crate::rng`] streams keyed by `seed` and
/// the attempt number, never from the simulation's RNG, so fault schedules
/// are byte-reproducible across runs and worker-thread counts.
#[derive(Debug, Clone)]
pub struct StochasticFaults {
    /// Seed for every fault stream of this run.
    pub seed: u64,
    /// Per-node mean time between failures. With `n` nodes the cluster
    /// MTBF is `node_mtbf / n` (independent exponentials).
    pub node_mtbf: Time,
    /// Failure-detector latency: the gap between a node dying and the
    /// launcher aborting the surviving ranks.
    pub detect_latency: Time,
    /// Mean time between forced link flaps across the whole cluster
    /// (`None` disables flaps).
    pub link_flap_mtbf: Option<Time>,
    /// Probability that any single checkpoint-image write is torn (runs
    /// full-length but never becomes visible). `0.0` disables.
    pub torn_write_prob: f64,
    /// Probability that any single epoch-manifest commit is torn (the
    /// commit record never becomes visible, so the previous manifest stays
    /// authoritative). `0.0` disables.
    pub torn_manifest_prob: f64,
    /// Mean time between failures of the *coordinator's* node (`None`
    /// disables control-plane kills). Drawn from its own
    /// [`Domain::Election`] stream, so enabling coordinator kills never
    /// shifts the per-node kill schedule.
    pub coord_mtbf: Option<Time>,
}

/// Sentinel "victim" reported by [`StochasticFaults::attempt_plan`] when
/// the attempt's first kill hits the coordinator rather than a rank.
pub const COORDINATOR_VICTIM: u32 = u32::MAX;

impl StochasticFaults {
    /// A kill-only process with the given seed and per-node MTBF.
    pub fn kills(seed: u64, node_mtbf: Time) -> Self {
        StochasticFaults {
            seed,
            node_mtbf,
            detect_latency: time::ms(500),
            link_flap_mtbf: None,
            torn_write_prob: 0.0,
            torn_manifest_prob: 0.0,
            coord_mtbf: None,
        }
    }

    /// The first node failure of attempt `attempt` on an `n`-node cluster:
    /// `(offset into the attempt, victim rank)`. One independent
    /// exponential per node; the earliest wins. Exponentials are
    /// memoryless, so redrawing every attempt is statistically identical
    /// to carrying per-node residual clocks across restarts (and the
    /// victim's replacement node starts fresh anyway).
    pub fn first_kill(&self, attempt: u64, n: u32) -> (Time, u32) {
        let mtbf = time::as_secs_f64(self.node_mtbf);
        let mut best = (f64::INFINITY, 0u32);
        for node in 0..n {
            let mut rng =
                stream(self.seed, Domain::NodeFailure, attempt * u64::from(n) + u64::from(node));
            let t = exp_secs(&mut rng, mtbf);
            if t < best.0 {
                best = (t, node);
            }
        }
        (time::secs_f64(best.0), best.1)
    }

    /// The coordinator-node failure time of attempt `attempt`, if
    /// control-plane kills are enabled. One exponential per attempt from
    /// the isolated [`Domain::Election`] stream.
    pub fn coordinator_kill(&self, attempt: u64) -> Option<Time> {
        self.coord_mtbf.map(|mtbf| {
            let mut rng = stream(self.seed, Domain::Election, attempt);
            time::secs_f64(exp_secs(&mut rng, time::as_secs_f64(mtbf)))
        })
    }

    /// The full fault plan for attempt `attempt`: the first kill — the
    /// earlier of the first node kill and (when enabled) the coordinator
    /// kill — plus any link flaps that land before it. Returns the plan
    /// and the kill `(offset, victim)` so the supervisor knows what it
    /// armed; a coordinator kill reports [`COORDINATOR_VICTIM`]. With
    /// `coord_mtbf` disabled this is byte-identical to the historical
    /// node-kill-only plan.
    pub fn attempt_plan(&self, attempt: u64, n: u32) -> (FaultPlan, (Time, u32)) {
        let (node_at, node_victim) = self.first_kill(attempt, n);
        let (kill_at, victim, kill) = match self.coordinator_kill(attempt) {
            Some(c) if c < node_at => (c, COORDINATOR_VICTIM, FaultKind::CoordinatorKill),
            _ => (node_at, node_victim, FaultKind::NodeKill { rank: node_victim }),
        };
        let mut plan = FaultPlan::none();
        if let Some(flap_mtbf) = self.link_flap_mtbf {
            let mean = time::as_secs_f64(flap_mtbf);
            let mut rng = stream(self.seed, Domain::LinkFlap, attempt);
            let mut t = exp_secs(&mut rng, mean);
            while time::secs_f64(t) < kill_at {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n - 1);
                let b = if b >= a { b + 1 } else { b };
                plan.push(time::secs_f64(t), FaultKind::LinkFlap { a, b });
                t += exp_secs(&mut rng, mean);
            }
        }
        plan.push(kill_at, kill);
        (plan, (kill_at, victim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_plans_replay_exactly() {
        let f = StochasticFaults {
            link_flap_mtbf: Some(time::secs(2)),
            ..StochasticFaults::kills(42, time::secs(30))
        };
        for attempt in 0..4 {
            assert_eq!(f.attempt_plan(attempt, 8), f.attempt_plan(attempt, 8));
        }
    }

    #[test]
    fn kill_times_vary_per_attempt_and_seed() {
        let f = StochasticFaults::kills(42, time::secs(30));
        let g = StochasticFaults::kills(43, time::secs(30));
        assert_ne!(f.first_kill(0, 8), f.first_kill(1, 8));
        assert_ne!(f.first_kill(0, 8), g.first_kill(0, 8));
    }

    #[test]
    fn cluster_min_scales_with_node_count() {
        // min of n exponentials ~ Exp(mtbf/n): the 64-node cluster must
        // fail much sooner on average than the 4-node one.
        let f = StochasticFaults::kills(7, time::secs(1_000));
        let avg = |n: u32| -> f64 {
            (0..200)
                .map(|a| time::as_secs_f64(f.first_kill(a, n).0))
                .sum::<f64>()
                / 200.0
        };
        let small = avg(4);
        let big = avg(64);
        assert!(big < small / 4.0, "64-node mean {big} vs 4-node mean {small}");
    }

    #[test]
    fn coordinator_kills_never_shift_the_node_schedule() {
        let base = StochasticFaults::kills(42, time::secs(30));
        let with_coord = StochasticFaults {
            coord_mtbf: Some(time::secs(90)),
            ..StochasticFaults::kills(42, time::secs(30))
        };
        for attempt in 0..16 {
            // The per-node draws are stream-isolated from the coordinator
            // draw, so enabling control-plane kills leaves them untouched.
            assert_eq!(base.first_kill(attempt, 8), with_coord.first_kill(attempt, 8));
            let (plan, (at, victim)) = with_coord.attempt_plan(attempt, 8);
            let last = plan.events.last().expect("plan ends with a kill");
            assert_eq!(last.at, at);
            match last.kind {
                FaultKind::CoordinatorKill => {
                    assert_eq!(victim, COORDINATOR_VICTIM);
                    assert!(at <= base.first_kill(attempt, 8).0);
                }
                FaultKind::NodeKill { rank } => {
                    assert_eq!((at, rank), base.first_kill(attempt, 8));
                }
                other => panic!("unexpected final event {other:?}"),
            }
        }
        // A 90 s coordinator MTBF against a 30/8 s cluster MTBF still hits
        // the coordinator first on *some* attempt.
        let hits = (0..64)
            .filter(|&a| with_coord.attempt_plan(a, 8).1 .1 == COORDINATOR_VICTIM)
            .count();
        assert!(hits > 0, "no attempt ever drew a coordinator-first kill");
    }

    #[test]
    fn flaps_never_land_after_the_kill_and_never_self_loop() {
        let f = StochasticFaults {
            link_flap_mtbf: Some(time::ms(200)),
            ..StochasticFaults::kills(9, time::secs(60))
        };
        let (plan, (kill_at, _)) = f.attempt_plan(0, 8);
        for ev in &plan.events {
            match ev.kind {
                FaultKind::LinkFlap { a, b } => {
                    assert!(ev.at < kill_at);
                    assert_ne!(a, b);
                    assert!(a < 8 && b < 8);
                }
                FaultKind::NodeKill { .. } => assert_eq!(ev.at, kill_at),
                _ => panic!("unexpected event {ev:?}"),
            }
        }
    }
}
