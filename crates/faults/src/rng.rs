//! Isolated deterministic RNG streams for fault domains.
//!
//! Every fault domain (node failures, link flaps, storage faults) and every
//! index within a domain (node id, attempt number) gets its **own**
//! generator, derived from the user seed by a SplitMix64-style finalizer.
//! Stream isolation is the determinism contract that makes the injector
//! composable: enabling link flaps cannot shift the node-failure schedule,
//! and resampling node 3's failure time cannot move node 5's. The
//! simulation's own RNG ([`gbcr_des::SimHandle::with_rng`]) is never
//! touched, so an enabled-but-never-firing injector leaves runs
//! byte-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fault domains, each with a disjoint stream family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Per-node failure (kill) times.
    NodeFailure,
    /// Link flap arrival process.
    LinkFlap,
    /// Storage-fault decisions (derating windows, write faults).
    Storage,
    /// Replica-placement draws (ring rotation) for the diskless
    /// replicated checkpoint store.
    Replica,
    /// Control-plane draws: coordinator kill times and the per-rank lease
    /// jitter used by the failover election protocol.
    Election,
}

impl Domain {
    fn tag(self) -> u64 {
        match self {
            Domain::NodeFailure => 0x4e4f_4445,
            Domain::LinkFlap => 0x4c49_4e4b,
            Domain::Storage => 0x5354_4f52,
            Domain::Replica => 0x5245_504c,
            Domain::Election => 0x454c_4543,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer, used to fold the
/// domain tag and stream index into the seed before keying the generator.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator for `(seed, domain, index)` — a pure function of its
/// arguments, independent of every other stream.
pub fn stream(seed: u64, domain: Domain, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix64(mix64(seed ^ domain.tag()) ^ index))
}

/// One raw 64-bit draw from `(seed, domain, index)` — for callers that
/// need a single deterministic value (e.g. the replica ring rotation)
/// without importing the RNG traits.
pub fn draw_u64(seed: u64, domain: Domain, index: u64) -> u64 {
    stream(seed, domain, index).next_u64()
}

/// One exponential draw with the given mean, via inverse-CDF over a draw
/// from the open unit interval (never exactly 0, so `ln` is finite).
pub fn exp_secs(rng: &mut SmallRng, mean_secs: f64) -> f64 {
    assert!(mean_secs > 0.0, "exponential mean must be positive");
    let u = ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    -mean_secs * u.ln()
}

/// Deterministic per-name Bernoulli decision (seeded FNV-1a over the name,
/// finalized by [`mix64`]). Order-independent: the verdict for a name never
/// depends on how many other decisions were taken before it, which keeps
/// torn-write injection identical whatever order ranks reach the storage
/// system in.
pub fn name_decision(seed: u64, name: &str, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let unit = (mix64(h ^ mix64(seed)) >> 11) as f64 / (1u64 << 53) as f64;
    unit < prob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_isolated() {
        let mut a1 = stream(7, Domain::NodeFailure, 3);
        let mut a2 = stream(7, Domain::NodeFailure, 3);
        let mut b = stream(7, Domain::NodeFailure, 4);
        let mut c = stream(7, Domain::LinkFlap, 3);
        let xs1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(xs1, xs2, "same (seed, domain, index) must replay exactly");
        assert_ne!(xs1, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs1, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = stream(11, Domain::NodeFailure, 0);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp_secs(&mut rng, 40.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 40.0).abs() < 1.5, "sample mean {mean} too far from 40");
    }

    #[test]
    fn name_decisions_are_stable_and_roughly_calibrated() {
        assert_eq!(name_decision(1, "img/a", 0.3), name_decision(1, "img/a", 0.3));
        assert!(!name_decision(1, "whatever", 0.0));
        let hits = (0..10_000)
            .filter(|i| name_decision(5, &format!("job/e{i}/r0"), 0.25))
            .count();
        assert!((2_000..3_000).contains(&hits), "hit rate {hits}/10000 far from 25%");
    }
}
