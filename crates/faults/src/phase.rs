//! Phase-targeted protocol faults: kill or stall a rank exactly when it
//! enters a given phase of a given checkpoint epoch.
//!
//! The coordinator's protocol is explicitly phased (suspend → flush →
//! teardown → local checkpoint → rebuild → resume), so "rank 2 dies while
//! flushing in epoch 1" is a precise, reproducible scenario rather than a
//! wall-clock race. The controller invokes the installed hook on entry to
//! each phase handler; a matching [`PhaseFault`] fires **once** and is then
//! consumed, so an aborted-and-retried epoch does not re-trip the same
//! fault (that is what lets abort-and-retry converge).

use gbcr_des::Time;
use parking_lot::Mutex;
use std::sync::Arc;

/// A point in the per-epoch checkpoint protocol, as seen by one rank's
/// controller (entry into the corresponding OOB handler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolPhase {
    /// `EPOCH_BEGIN` received: the rank is about to suspend user sends.
    Begin,
    /// `GROUP_START` received: the rank's group is being suspended.
    GroupStart,
    /// `GROUP_GO` received: flush, teardown, and the local checkpoint.
    Checkpoint,
    /// `GROUP_DONE` received: the group resumes.
    GroupDone,
    /// `EPOCH_END` received: the epoch is finalized cluster-wide.
    End,
}

/// What happens when a phase fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseAction {
    /// The rank's node dies on phase entry (fail-stop mid-protocol).
    Kill,
    /// The rank stalls for the given duration before proceeding — a
    /// straggler that trips a coordinator deadline without dying.
    Stall(Time),
}

/// One phase-targeted fault: `action` fires when `rank` enters `phase` of
/// `epoch` (and never again).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFault {
    /// The checkpoint epoch targeted (the real epoch number; retries of an
    /// aborted epoch do not re-match because the fault is consumed).
    pub epoch: u64,
    /// The protocol phase targeted.
    pub phase: ProtocolPhase,
    /// The rank targeted.
    pub rank: u32,
    /// Kill or stall.
    pub action: PhaseAction,
}

/// A consumable set of phase faults shared by all rank controllers of one
/// run. `take` removes the matched fault so each fires exactly once.
#[derive(Debug, Default)]
pub struct PhaseFaults {
    pending: Mutex<Vec<PhaseFault>>,
}

impl PhaseFaults {
    /// Wrap a list of faults for sharing across controllers.
    pub fn new(faults: Vec<PhaseFault>) -> Arc<Self> {
        Arc::new(PhaseFaults { pending: Mutex::new(faults) })
    }

    /// Consume and return the first fault matching `(rank, epoch, phase)`.
    pub fn take(&self, rank: u32, epoch: u64, phase: ProtocolPhase) -> Option<PhaseAction> {
        let mut pending = self.pending.lock();
        let i = pending
            .iter()
            .position(|f| f.rank == rank && f.epoch == epoch && f.phase == phase)?;
        Some(pending.remove(i).action)
    }

    /// How many faults have not fired yet.
    pub fn remaining(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_des::time;

    #[test]
    fn faults_fire_once_and_only_on_exact_match() {
        let faults = PhaseFaults::new(vec![
            PhaseFault {
                epoch: 1,
                phase: ProtocolPhase::Checkpoint,
                rank: 2,
                action: PhaseAction::Stall(time::secs(3)),
            },
            PhaseFault { epoch: 0, phase: ProtocolPhase::Begin, rank: 0, action: PhaseAction::Kill },
        ]);
        assert_eq!(faults.take(2, 1, ProtocolPhase::Begin), None, "wrong phase");
        assert_eq!(faults.take(2, 0, ProtocolPhase::Checkpoint), None, "wrong epoch");
        assert_eq!(faults.take(1, 1, ProtocolPhase::Checkpoint), None, "wrong rank");
        assert_eq!(
            faults.take(2, 1, ProtocolPhase::Checkpoint),
            Some(PhaseAction::Stall(time::secs(3)))
        );
        assert_eq!(faults.take(2, 1, ProtocolPhase::Checkpoint), None, "consumed");
        assert_eq!(faults.take(0, 0, ProtocolPhase::Begin), Some(PhaseAction::Kill));
        assert_eq!(faults.remaining(), 0);
    }
}
