//! The injector: arms a [`FaultPlan`] onto a simulation.

use crate::plan::{FaultKind, FaultPlan};
use crate::rng::name_decision;
use gbcr_des::{SimHandle, Time};
use std::sync::Arc;

/// How the harness layer carries faults out. Implemented by `gbcr-core`,
/// which owns the process ids, the MPI world, and the storage device; this
/// crate only decides *what* happens *when*.
pub trait FaultSink: Send + Sync {
    /// A single node (rank) dies at the current virtual time.
    fn node_kill(&self, h: &SimHandle, rank: u32);
    /// The whole cluster power-fails at the current virtual time.
    fn cluster_kill(&self, h: &SimHandle);
    /// The node hosting the checkpoint coordinator dies at the current
    /// virtual time; every rank survives.
    fn coordinator_kill(&self, h: &SimHandle);
    /// The data-plane link between two ranks is forced down.
    fn link_flap(&self, h: &SimHandle, a: u32, b: u32);
    /// Storage bandwidth is derated by `factor` until `until`.
    fn storage_stall(&self, h: &SimHandle, factor: f64, until: Time);
    /// Storage target `target` rejects new writes until `until`.
    fn storage_outage(&self, h: &SimHandle, target: u32, until: Time);
}

/// Per-image torn-write policy: each image write whose seeded
/// [`name_decision`] fires runs full-length but never becomes visible on
/// storage, leaving its epoch incomplete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TornWrites {
    /// Decision seed (mix the attempt number in so a retried epoch is not
    /// doomed to tear forever).
    pub seed: u64,
    /// Per-write tear probability.
    pub prob: f64,
}

impl TornWrites {
    /// Whether the image write under `name` tears.
    pub fn tears(&self, name: &str) -> bool {
        name_decision(self.seed, name, self.prob)
    }
}

/// Everything a single faulted run needs: the timed plan plus the
/// policy-style faults consulted at the point of use.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Timed fault events.
    pub plan: FaultPlan,
    /// Failure-detector latency applied by the sink after a node kill.
    pub detect_latency: Time,
    /// Torn-image-write policy (`None` disables).
    pub torn: Option<TornWrites>,
    /// Torn-manifest-commit policy (`None` disables). Separate from `torn`
    /// so image and manifest tearing are independent fault points.
    pub torn_manifests: Option<TornWrites>,
    /// Phase-targeted kills and straggler stalls (see [`crate::PhaseFault`]).
    pub phase_faults: Vec<crate::PhaseFault>,
}

impl FaultConfig {
    /// A config that injects nothing.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Whether this config can ever perturb a run.
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
            && self.torn.is_none_or(|t| t.prob <= 0.0)
            && self.torn_manifests.is_none_or(|t| t.prob <= 0.0)
            && self.phase_faults.is_empty()
    }
}

/// Arm every event of `plan` onto the simulation, delivering through
/// `sink`. Returns the number of events armed. Events at the same time
/// fire in plan order (the DES dispatches equal-time events in push
/// order), so installation itself is deterministic.
pub fn install(h: &SimHandle, plan: &FaultPlan, sink: Arc<dyn FaultSink>) -> usize {
    for ev in &plan.events {
        let sink = sink.clone();
        let kind = ev.kind;
        h.call_at(ev.at, move |h| match kind {
            FaultKind::NodeKill { rank } => sink.node_kill(h, rank),
            FaultKind::ClusterKill => sink.cluster_kill(h),
            FaultKind::CoordinatorKill => sink.coordinator_kill(h),
            FaultKind::LinkFlap { a, b } => sink.link_flap(h, a, b),
            FaultKind::StorageStall { factor, duration } => {
                let until = h.now().saturating_add(duration);
                sink.storage_stall(h, factor, until);
            }
            FaultKind::StorageOutage { target, duration } => {
                let until = h.now().saturating_add(duration);
                sink.storage_outage(h, target, until);
            }
        });
    }
    plan.events.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_des::{time, Sim};
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Recorder {
        log: Mutex<Vec<(Time, String)>>,
    }

    impl FaultSink for Recorder {
        fn node_kill(&self, h: &SimHandle, rank: u32) {
            self.log.lock().push((h.now(), format!("kill {rank}")));
        }
        fn cluster_kill(&self, h: &SimHandle) {
            self.log.lock().push((h.now(), "cluster".into()));
        }
        fn coordinator_kill(&self, h: &SimHandle) {
            self.log.lock().push((h.now(), "coordinator".into()));
        }
        fn link_flap(&self, h: &SimHandle, a: u32, b: u32) {
            self.log.lock().push((h.now(), format!("flap {a}-{b}")));
        }
        fn storage_stall(&self, h: &SimHandle, factor: f64, until: Time) {
            self.log.lock().push((h.now(), format!("stall {factor} until {until}")));
        }
        fn storage_outage(&self, h: &SimHandle, target: u32, until: Time) {
            self.log.lock().push((h.now(), format!("outage {target} until {until}")));
        }
    }

    #[test]
    fn events_fire_at_their_times_in_order() {
        let mut sim = Sim::new(0);
        let mut plan = FaultPlan::none();
        plan.push(time::ms(30), FaultKind::LinkFlap { a: 0, b: 1 });
        plan.push(time::ms(10), FaultKind::NodeKill { rank: 2 });
        plan.push(
            time::ms(20),
            FaultKind::StorageStall { factor: 0.5, duration: time::ms(5) },
        );
        plan.push(
            time::ms(40),
            FaultKind::StorageOutage { target: 1, duration: time::ms(5) },
        );
        plan.push(time::ms(50), FaultKind::CoordinatorKill);
        let rec = Arc::new(Recorder::default());
        assert_eq!(install(&sim.handle(), &plan, rec.clone()), 5);
        sim.run().unwrap();
        let log = rec.log.lock();
        assert_eq!(
            *log,
            vec![
                (time::ms(10), "kill 2".to_owned()),
                (time::ms(20), format!("stall 0.5 until {}", time::ms(25))),
                (time::ms(30), "flap 0-1".to_owned()),
                (time::ms(40), format!("outage 1 until {}", time::ms(45))),
                (time::ms(50), "coordinator".to_owned()),
            ]
        );
    }

    #[test]
    fn noop_configs_are_detected() {
        assert!(FaultConfig::none().is_noop());
        assert!(FaultConfig {
            torn: Some(TornWrites { seed: 1, prob: 0.0 }),
            ..FaultConfig::none()
        }
        .is_noop());
        assert!(!FaultConfig {
            plan: FaultPlan::cluster_at(time::secs(1)),
            ..FaultConfig::none()
        }
        .is_noop());
    }
}
