//! Criterion benches, one per paper figure (reduced sweeps so `cargo
//! bench` completes in minutes; the full-resolution regenerators are the
//! `fig*` binaries). Each bench measures the wall-clock cost of
//! regenerating a representative slice of the figure, which doubles as a
//! performance regression guard on the whole simulation stack.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig1_storage_sharing(c: &mut Criterion) {
    c.bench_function("fig1/storage_sharing_32_clients", |b| {
        b.iter(|| black_box(gbcr_bench::fig1::run_point(32, 100)));
    });
}

fn fig3_micro_group_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("micro_comm4_sizes_8_4", |b| {
        b.iter(|| black_box(gbcr_bench::fig3::run_with(16, &[4], &[8, 4])));
    });
    g.finish();
}

fn fig4_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("placement_two_points", |b| {
        b.iter(|| black_box(gbcr_bench::fig4::run_with(&[15, 55])));
    });
    g.finish();
}

fn fig5_hpl(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6");
    g.sample_size(10);
    g.bench_function("hpl_point50_all_vs_g4", |b| {
        b.iter(|| black_box(gbcr_bench::fig5::run_with(&[50], &[32, 4])));
    });
    g.finish();
}

fn fig7_motifminer(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("motifminer_point30_all_vs_g4", |b| {
        b.iter(|| black_box(gbcr_bench::fig7::run_with(&[30], &[32, 4])));
    });
    g.finish();
}

criterion_group!(
    figures,
    fig1_storage_sharing,
    fig3_micro_group_sizes,
    fig4_placement,
    fig5_hpl,
    fig7_motifminer
);
criterion_main!(figures);
