//! Criterion benches of the substrate layers themselves: event-engine
//! throughput, fabric message rate, storage processor-sharing engine,
//! image codec. These guard the simulator's own performance.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gbcr_blcr::ProcessImage;
use gbcr_des::{time, Sim};
use gbcr_mpi::{MpiConfig, Msg, World};
use gbcr_storage::{Storage, StorageConfig, StoredObject, MB};
use std::hint::black_box;

fn des_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_sleep_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            for i in 0..10u64 {
                sim.spawn(format!("p{i}"), move |p| {
                    for _ in 0..10_000 {
                        p.sleep(time::us(i + 1));
                    }
                });
            }
            black_box(sim.run().unwrap())
        });
    });
    g.finish();
}

fn mpi_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("20k_eager_pingpong", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let world = World::new(sim.handle(), MpiConfig::new(2));
            let m0 = world.attach(0);
            let m1 = world.attach(1);
            sim.spawn("r0", move |p| {
                for i in 0..10_000u64 {
                    m0.send(p, 1, 1, Msg::u64(i));
                    m0.recv(p, Some(1), 2);
                }
            });
            sim.spawn("r1", move |p| {
                for i in 0..10_000u64 {
                    m1.recv(p, Some(0), 1);
                    m1.send(p, 0, 2, Msg::u64(i));
                }
            });
            black_box(sim.run().unwrap())
        });
    });
    g.finish();
}

fn storage_processor_sharing(c: &mut Criterion) {
    c.bench_function("storage/64_interleaved_streams", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let storage = Storage::new(sim.handle(), StorageConfig::paper_testbed());
            for i in 0..64u32 {
                let s = storage.clone();
                sim.spawn(format!("w{i}"), move |p| {
                    p.sleep(time::ms(u64::from(i) * 7));
                    s.write(p, i, &format!("o{i}"), StoredObject::bulk(20 * MB));
                });
            }
            black_box(sim.run().unwrap())
        });
    });
}

fn image_codec(c: &mut Criterion) {
    let img = ProcessImage {
        rank: 7,
        epoch: 3,
        taken_at: 123,
        footprint: 512 * MB,
        restore_extra: 0,
        app_state: Bytes::from(vec![0xAB; 64 * 1024]),
    };
    let encoded = img.encode();
    let mut g = c.benchmark_group("blcr_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_64k_image", |b| {
        b.iter(|| black_box(img.encode()));
    });
    g.bench_function("decode_64k_image", |b| {
        b.iter(|| black_box(ProcessImage::decode(encoded.clone()).unwrap()));
    });
    g.finish();
}

criterion_group!(substrates, des_event_throughput, mpi_message_rate, storage_processor_sharing, image_codec);
criterion_main!(substrates);
