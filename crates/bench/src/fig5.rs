//! Figures 5 and 6: HPL Effective Checkpoint Delay at eight issuance
//! points for each checkpoint group size (Fig. 5), and its
//! average/min/max summary per group size (Fig. 6).

use crate::{size_label, sweep_on, Sweep, GROUP_SIZES};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_workloads::HplWorkload;

/// The eight issuance points (seconds), evenly placed across the run as in
/// the paper.
pub const POINTS: [u64; 8] = [50, 100, 150, 200, 250, 300, 350, 400];

/// Run the full Figure 5 sweep (also feeds Figure 6).
pub fn run() -> Sweep {
    run_with(&POINTS, &GROUP_SIZES)
}

/// Run with custom points/sizes (used by tests and criterion).
pub fn run_with(points_secs: &[u64], sizes: &[u32]) -> Sweep {
    run_threaded(points_secs, sizes, None)
}

/// [`run_with`] with explicit worker-thread control.
pub fn run_threaded(points_secs: &[u64], sizes: &[u32], threads: Option<usize>) -> Sweep {
    let w = HplWorkload::default();
    let points: Vec<_> = points_secs.iter().map(|&s| time::secs(s)).collect();
    sweep_on(&w.job(None), "hpl", &points, sizes, threads)
}

/// Figure 5: the full per-point matrix.
pub fn table(sw: &Sweep) -> Table {
    let sizes: Vec<u32> = {
        let mut s: Vec<u32> = sw.cells.iter().map(|c| c.group_size).collect();
        s.dedup();
        s.truncate(sw.cells.len() / sw.series(sw.n).len());
        s
    };
    let mut header: Vec<String> = vec!["issuance (s)".into()];
    header.extend(sizes.iter().map(|&g| size_label(sw.n, g)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 5 — HPL Effective Checkpoint Delay (s) at 8 issuance points",
        &header_refs,
    );
    let points: Vec<f64> = {
        let mut p: Vec<f64> = sw.series(sizes[0]).iter().map(|c| c.at_secs).collect();
        p.dedup();
        p
    };
    for at in points {
        let mut row = vec![format!("{at:.0}")];
        for &g in &sizes {
            let cell = sw
                .cells
                .iter()
                .find(|c| c.group_size == g && (c.at_secs - at).abs() < 1e-9)
                .expect("cell");
            row.push(format!("{:.1}", cell.effective));
        }
        t.row(&row);
    }
    t
}

/// Figure 6: average with min/max whiskers per checkpoint group size.
pub fn summary_table(sw: &Sweep, title: &str) -> Table {
    let mut sizes: Vec<u32> = sw.cells.iter().map(|c| c.group_size).collect();
    sizes.dedup();
    sizes.truncate(sw.cells.len() / sw.series(sw.n).len());
    let mut t = Table::new(
        title,
        &["ckpt group", "avg effective (s)", "min (s)", "max (s)", "reduction vs All"],
    );
    for &g in &sizes {
        let (min, max) = sw.min_max_effective(g);
        t.row(&[
            size_label(sw.n, g),
            format!("{:.1}", sw.avg_effective(g)),
            format!("{min:.1}"),
            format!("{max:.1}"),
            format!("{:.0}%", sw.avg_reduction(g) * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    /// Reduced sweep (3 points × 3 sizes) checking the headline shape:
    /// groups of 4 clearly beat the regular protocol, with a large
    /// best-point reduction.
    #[test]
    fn grouped_hpl_beats_regular_with_large_best_point_reduction() {
        let sw = run_with(&[50, 150, 300], &[32, 4, 1]);
        assert!(
            sw.avg_reduction(4) > 0.30,
            "avg reduction for g=4 too small: {:.2}",
            sw.avg_reduction(4)
        );
        assert!(
            sw.max_reduction(4) > paper::fig56::MAX_REDUCTION_G4 - 0.10,
            "best-point reduction {:.2} below paper's {:.2} band",
            sw.max_reduction(4),
            paper::fig56::MAX_REDUCTION_G4
        );
        // Size 1 clearly worse than 4 (storage under-utilization).
        assert!(sw.avg_effective(1) > 1.2 * sw.avg_effective(4));
    }
}
