//! Figure 8 (extension): availability under a stochastic fail-stop
//! process, sweeping checkpoint interval × per-node MTBF and comparing the
//! empirically best interval against the Young and Daly closed forms.
//!
//! Every cell is one supervised stochastic run
//! ([`gbcr_core::SupervisedRunner::stochastic`]): per-node
//! exponential failure clocks kill a rank, the launcher aborts the
//! survivors after the detection latency, and the supervisor restarts from
//! the last complete epoch with backoff until the job finishes. All
//! randomness comes from `gbcr-faults` streams keyed by the cell seed, so
//! the whole sweep is byte-reproducible across runs and worker counts.

use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg,
    Formation, PhaseDeadlines, StoreBackend, SupervisePolicy,
};
use gbcr_des::{time, SimError, Time};
use gbcr_faults::{
    rng::mix64, FaultConfig, PhaseAction, PhaseFault, ProtocolPhase, StochasticFaults,
};
use gbcr_metrics::{
    daly_interval, measure, run_cells, sum_counters, AdvisorInputs, FaultAccounting,
    RecoveryCounters, Table,
};
use gbcr_workloads::{random::ResultsSink, RandomTraffic};

/// Seed every cell's fault streams are derived from.
pub const SEED: u64 = 0xF1_68;

/// Checkpoint intervals swept (milliseconds).
pub const INTERVALS_MS: [u64; 4] = [1_000, 2_000, 4_000, 8_000];

/// Per-node MTBFs swept (seconds). Cluster MTBF is `mtbf / n`.
pub const NODE_MTBFS_S: [u64; 3] = [30, 120, 480];

/// Replicated supervised runs per cell; replica seeds are shared across
/// interval rows (common random numbers), so columns compare like with
/// like and single-draw variance is averaged out.
pub const REPLICAS: usize = 5;

/// Which checkpoint-store stack the sweep's jobs write through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The paper's single shared central array.
    #[default]
    Central,
    /// Central primary plus an identically-configured secondary behind
    /// the retry/failover writer.
    Failover,
    /// Diskless peer replication: node-local image plus two remote ring
    /// copies, recovery from the nearest surviving copy.
    Replicated,
}

impl Backend {
    /// Parse a `--backend` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "central" => Some(Backend::Central),
            "failover" => Some(Backend::Failover),
            "replicated" => Some(Backend::Replicated),
            _ => None,
        }
    }

    /// The flag/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Central => "central",
            Backend::Failover => "failover",
            Backend::Replicated => "replicated",
        }
    }

    fn apply(self, spec: &mut gbcr_core::JobSpec) {
        match self {
            Backend::Central => {}
            Backend::Failover => spec.storage_secondary = Some(spec.storage.clone()),
            Backend::Replicated => spec.backend = StoreBackend::Replicated { replicas: 2 },
        }
    }
}

/// One measured cell of the interval × MTBF sweep.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Checkpoint interval, seconds.
    pub interval_secs: f64,
    /// Per-node MTBF, seconds.
    pub node_mtbf_secs: f64,
    /// Aggregate accounting over the replicas that finished (mean wall,
    /// summed failures/attempts); `None` when every replica exhausted its
    /// retry budget.
    pub acct: Option<FaultAccounting>,
    /// Replicas run for this cell.
    pub replicas: usize,
    /// Replicas that gave up ([`gbcr_des::SimError::RetriesExhausted`]).
    pub gave_up: usize,
    /// Mean restart backoff across finishing replicas, seconds.
    pub backoff_secs: f64,
    /// Mean restart-storm latency (every rank's image read back plus state
    /// re-injection) over the attempts that restored from a checkpoint,
    /// seconds; 0 when no attempt restored. The backend comparison metric.
    pub recovery_s: f64,
    /// Recovery-protocol counters summed over the finishing replicas.
    pub counters: RecoveryCounters,
}

impl FaultCell {
    /// Mean attempts per finishing replica.
    pub fn mean_attempts(&self) -> f64 {
        match &self.acct {
            Some(a) => a.attempts as f64 / (self.replicas - self.gave_up) as f64,
            None => 0.0,
        }
    }
}

/// The full fault sweep for one workload.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// World size.
    pub n: u32,
    /// Checkpoint-store backend the jobs wrote through.
    pub backend: Backend,
    /// Base seed of the fault streams.
    pub seed: u64,
    /// Failure-free bare completion (the "useful" seconds of every cell).
    pub useful_secs: f64,
    /// Measured Effective Checkpoint Delay of one checkpoint, seconds (the
    /// δ fed to Young/Daly).
    pub delta_secs: f64,
    /// Swept intervals, seconds.
    pub intervals: Vec<f64>,
    /// Swept per-node MTBFs, seconds.
    pub mtbfs: Vec<f64>,
    /// Cells in `intervals × mtbfs` row-major order.
    pub cells: Vec<FaultCell>,
}

impl FaultSweep {
    /// The cell at (interval index, MTBF index).
    pub fn cell(&self, ii: usize, mi: usize) -> &FaultCell {
        &self.cells[ii * self.mtbfs.len() + mi]
    }

    /// The swept interval with the highest availability for one MTBF
    /// column (ties break toward the shorter interval).
    pub fn best_interval(&self, mi: usize) -> f64 {
        let mut best = (f64::NEG_INFINITY, 0.0);
        for ii in 0..self.intervals.len() {
            let c = self.cell(ii, mi);
            let a = c.acct.as_ref().map_or(f64::NEG_INFINITY, |a| a.availability);
            if a > best.0 {
                best = (a, c.interval_secs);
            }
        }
        best.1
    }
}

fn spec_for(n: u32) -> (gbcr_core::JobSpec, &'static str) {
    // Long enough (~12 s bare) that the supervisor's restart backoff does
    // not dominate the availability signal.
    let w = RandomTraffic { n, steps: 400, ..RandomTraffic::default() };
    (w.job(None), "random-traffic")
}

fn cfg_for(job: &str, n: u32, at: Vec<Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: (n / 2).max(1) },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

/// Periodic issuance points: `interval, 2·interval, …` strictly inside the
/// bare run (a point past completion would never fire).
fn periodic(interval: Time, horizon: Time) -> Vec<Time> {
    let mut at = Vec::new();
    let mut t = interval;
    while t < horizon {
        at.push(t);
        t += interval;
    }
    at
}

/// Run the full sweep on the central backend.
pub fn run() -> FaultSweep {
    run_threaded(8, &INTERVALS_MS, &NODE_MTBFS_S, REPLICAS, None, Backend::Central)
}

/// Run with an explicit grid, replica count, worker-thread control and
/// checkpoint-store backend. Every `(cell, replica)` run fans out over the
/// [`run_cells`] pool; seeds depend only on the grid values, so results
/// are identical on 1 or N workers — and the fault seeds ignore the
/// backend, so backend sweeps face the *same* failure processes.
pub fn run_threaded(
    n: u32,
    intervals_ms: &[u64],
    node_mtbfs_s: &[u64],
    replicas: usize,
    threads: Option<usize>,
    backend: Backend,
) -> FaultSweep {
    assert!(replicas > 0);
    let (mut spec, job) = spec_for(n);
    backend.apply(&mut spec);
    let useful = spec.runner().run().expect("bare run").completion;
    // δ for the closed forms: one checkpoint issued mid-run.
    let delta = measure(&spec, cfg_for(job, n, Vec::new()), useful / 2)
        .expect("delay measurement")
        .effective_secs();

    let grid: Vec<(u64, u64)> = intervals_ms
        .iter()
        .flat_map(|&i| node_mtbfs_s.iter().map(move |&m| (i, m)))
        .collect();
    let runs = run_cells(grid.len() * replicas, threads, |k| {
        let (ims, mtbf_s) = grid[k / replicas];
        let rep = (k % replicas) as u64;
        let interval = time::ms(ims);
        // Common random numbers per (MTBF, replica): the seed ignores the
        // interval, so every interval row faces the *same* failure
        // processes and "best swept interval" compares like with like.
        let faults = StochasticFaults::kills(
            SEED ^ mix64(mtbf_s) ^ mix64(rep + 1),
            time::secs(mtbf_s),
        );
        let cfg = cfg_for(job, n, periodic(interval, useful));
        let policy = SupervisePolicy::default();
        match spec.runner().ckpt(cfg).supervised(policy).stochastic(&faults) {
            Ok(report) => Some(report),
            Err(SimError::RetriesExhausted { .. }) => None,
            Err(e) => panic!("fault sweep cell ({ims} ms, {mtbf_s} s) failed: {e}"),
        }
    });

    let cells = grid
        .iter()
        .enumerate()
        .map(|(c, &(ims, mtbf_s))| {
            let reps = &runs[c * replicas..(c + 1) * replicas];
            let finished: Vec<_> = reps.iter().flatten().collect();
            let gave_up = replicas - finished.len();
            let acct = (!finished.is_empty()).then(|| {
                let mean_wall = finished
                    .iter()
                    .map(|r| time::as_secs_f64(r.total_wall))
                    .sum::<f64>()
                    / finished.len() as f64;
                FaultAccounting::from_run(
                    mean_wall,
                    time::as_secs_f64(useful),
                    n,
                    finished.iter().map(|r| r.failures_survived()).sum(),
                    finished.iter().map(|r| r.attempts.len()).sum(),
                )
            });
            let backoff_secs = if finished.is_empty() {
                0.0
            } else {
                finished
                    .iter()
                    .map(|r| time::as_secs_f64(r.total_backoff))
                    .sum::<f64>()
                    / finished.len() as f64
            };
            let (rsum, rcnt) = finished
                .iter()
                .flat_map(|r| r.attempts.iter())
                .filter(|a| a.restore_wall > 0)
                .fold((0.0, 0usize), |(s, c), a| {
                    (s + time::as_secs_f64(a.restore_wall), c + 1)
                });
            FaultCell {
                interval_secs: time::as_secs_f64(time::ms(ims)),
                node_mtbf_secs: mtbf_s as f64,
                acct,
                replicas,
                gave_up,
                backoff_secs,
                recovery_s: if rcnt == 0 { 0.0 } else { rsum / rcnt as f64 },
                counters: sum_counters(finished.iter().copied()),
            }
        })
        .collect();

    FaultSweep {
        n,
        backend,
        seed: SEED,
        useful_secs: time::as_secs_f64(useful),
        delta_secs: delta,
        intervals: intervals_ms.iter().map(|&i| i as f64 / 1e3).collect(),
        mtbfs: node_mtbfs_s.iter().map(|&m| m as f64).collect(),
        cells,
    }
}

/// Availability matrix: `avail% (attempts)` per (interval × MTBF) cell.
pub fn table(sw: &FaultSweep) -> Table {
    let mut header: Vec<String> = vec!["interval (s)".into()];
    header.extend(sw.mtbfs.iter().map(|m| format!("MTBF/node {m:.0}s")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 8 — availability under node failures, n={}{} (avail % / mean attempts)",
            sw.n,
            backend_suffix(sw),
        ),
        &header_refs,
    );
    for (ii, &iv) in sw.intervals.iter().enumerate() {
        let mut row = vec![format!("{iv:.1}")];
        for mi in 0..sw.mtbfs.len() {
            let c = sw.cell(ii, mi);
            row.push(match &c.acct {
                Some(a) if c.gave_up > 0 => format!(
                    "{:.1} / {:.1} ({} gave up)",
                    a.availability * 100.0,
                    c.mean_attempts(),
                    c.gave_up
                ),
                Some(a) => {
                    format!("{:.1} / {:.1}", a.availability * 100.0, c.mean_attempts())
                }
                None => "gave up".into(),
            });
        }
        t.row(&row);
    }
    t
}

/// Lost-work matrix (node-seconds burned on overhead + recomputation +
/// restarts).
pub fn lost_work_table(sw: &FaultSweep) -> Table {
    let mut header: Vec<String> = vec!["interval (s)".into()];
    header.extend(sw.mtbfs.iter().map(|m| format!("MTBF/node {m:.0}s")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Figure 8 — lost work, n={}{} (node-seconds)", sw.n, backend_suffix(sw)),
        &header_refs,
    );
    for (ii, &iv) in sw.intervals.iter().enumerate() {
        let mut row = vec![format!("{iv:.1}")];
        for mi in 0..sw.mtbfs.len() {
            let c = sw.cell(ii, mi);
            row.push(match &c.acct {
                Some(a) => format!("{:.1}", a.lost_work),
                None => "gave up".into(),
            });
        }
        t.row(&row);
    }
    t
}

/// `", backend=<name>"` for non-default backends; empty for central, so
/// historical central-only outputs render byte-identically.
fn backend_suffix(sw: &FaultSweep) -> String {
    match sw.backend {
        Backend::Central => String::new(),
        b => format!(", backend={}", b.name()),
    }
}

/// Per-MTBF closed-form comparison: Young and Daly `T_opt` from the
/// measured δ against the best swept interval.
pub fn optimal_table(sw: &FaultSweep) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 8 — optimal interval vs closed forms (δ = {:.2}s measured)",
            sw.delta_secs
        ),
        &[
            "MTBF/node (s)",
            "cluster MTBF (s)",
            "Young T_opt (s)",
            "Daly T_opt (s)",
            "best swept (s)",
        ],
    );
    for (mi, &m) in sw.mtbfs.iter().enumerate() {
        let cluster = m / f64::from(sw.n);
        let inputs = AdvisorInputs {
            effective_delay: sw.delta_secs,
            mtbf: cluster,
            restart_read: 0.0,
        };
        t.row(&[
            format!("{m:.0}"),
            format!("{cluster:.1}"),
            format!("{:.2}", gbcr_metrics::young_interval(inputs).interval),
            format!("{:.2}", daly_interval(inputs).interval),
            format!("{:.1}", sw.best_interval(mi)),
        ]);
    }
    t
}

/// The `"faults"` JSON block `make_all --faults` embeds in its run record.
pub fn json_block(sw: &FaultSweep) -> String {
    let mut j = String::from("{\n");
    j.push_str(&format!("    \"n\": {},\n", sw.n));
    j.push_str(&format!("    \"backend\": \"{}\",\n", sw.backend.name()));
    j.push_str(&format!("    \"seed\": {},\n", sw.seed));
    j.push_str(&format!("    \"useful_s\": {:.3},\n", sw.useful_secs));
    j.push_str(&format!("    \"delta_s\": {:.3},\n", sw.delta_secs));
    j.push_str("    \"cells\": [\n");
    for (i, c) in sw.cells.iter().enumerate() {
        let comma = if i + 1 == sw.cells.len() { "" } else { "," };
        match &c.acct {
            Some(a) => j.push_str(&format!(
                "      {{\"interval_s\": {:.1}, \"node_mtbf_s\": {:.0}, \
                 \"availability\": {:.4}, \"lost_work_node_s\": {:.1}, \
                 \"goodput\": {:.2}, \"failures\": {}, \"attempts\": {}, \
                 \"replicas\": {}, \"gave_up\": {}, \"backoff_s\": {:.1}, \
                 \"protocol_aborts\": {}, \"epoch_retries\": {}, \
                 \"manifest_commits\": {}, \"write_retries\": {}, \
                 \"failovers\": {}, \"torn_writes\": {}, \
                 \"dropped_sends\": {}, \"recovery_s\": {:.3}, \
                 \"replicas_written\": {}, \"replica_bytes\": {}, \
                 \"remote_recoveries\": {}, \"local_recoveries\": {}, \
                 \"replica_losses\": {}, \"coordinator_kills\": {}, \
                 \"elections_held\": {}, \"terms\": {}, \
                 \"heartbeats_missed\": {}, \"leader_migrations\": {}, \
                 \"time_to_new_leader_s\": {:.3}}}{comma}\n",
                c.interval_secs,
                c.node_mtbf_secs,
                a.availability,
                a.lost_work,
                a.goodput,
                a.failures,
                a.attempts,
                c.replicas,
                c.gave_up,
                c.backoff_secs,
                c.counters.protocol_aborts,
                c.counters.epoch_retries,
                c.counters.manifest_commits,
                c.counters.write_retries,
                c.counters.failovers,
                c.counters.torn_writes,
                c.counters.dropped_sends,
                c.recovery_s,
                c.counters.replicas_written,
                c.counters.replica_bytes,
                c.counters.remote_recoveries,
                c.counters.local_recoveries,
                c.counters.replica_losses,
                c.counters.coordinator_kills,
                c.counters.elections_held,
                c.counters.terms,
                c.counters.heartbeats_missed,
                c.counters.leader_migrations,
                time::as_secs_f64(c.counters.time_to_new_leader),
            )),
            None => j.push_str(&format!(
                "      {{\"interval_s\": {:.1}, \"node_mtbf_s\": {:.0}, \
                 \"replicas\": {}, \"gave_up\": {}}}{comma}\n",
                c.interval_secs, c.node_mtbf_secs, c.replicas, c.gave_up,
            )),
        }
    }
    j.push_str("    ]\n  }");
    j
}

/// The seeded 4-rank kill/restart smoke run `scripts/tier1.sh` gates on:
/// returns `(attempts, failures)` so the golden line stays greppable.
pub fn smoke() -> (usize, usize) {
    smoke_on(Backend::Central)
}

/// [`smoke`] on an explicit backend (the CI fault-smoke matrix reruns it
/// under central and replicated).
pub fn smoke_on(backend: Backend) -> (usize, usize) {
    let sw = run_threaded(4, &[1_000], &[40], 1, Some(2), backend);
    let a = sw.cells[0].acct.as_ref().expect("smoke cell finishes");
    (a.attempts, a.failures)
}

/// The seeded replicated-backend kill/recovery smoke `scripts/tier1.sh`
/// gates on: the same stochastic-kill cell as [`smoke`], run under the
/// central and the replicated backend against *identical* failure draws.
/// Returns `(attempts, failures, local, remote, replica_writes, faster)`
/// where `local`/`remote` split the restart reads by which copy served
/// them, `replica_writes` counts remote fan-out copies, and `faster` is
/// whether the replicated restart storm beat central's mean latency.
pub fn replicated_smoke() -> (usize, usize, u64, u64, u64, bool) {
    let central = run_threaded(4, &[1_000], &[40], 1, Some(2), Backend::Central);
    let repl = run_threaded(4, &[1_000], &[40], 1, Some(2), Backend::Replicated);
    let cell = &repl.cells[0];
    let a = cell.acct.as_ref().expect("replicated smoke cell finishes");
    let faster = cell.recovery_s > 0.0 && cell.recovery_s < central.cells[0].recovery_s;
    (
        a.attempts,
        a.failures,
        cell.counters.local_recoveries,
        cell.counters.remote_recoveries,
        cell.counters.replicas_written,
        faster,
    )
}

/// The seeded mid-protocol straggler smoke `scripts/tier1.sh` gates on:
/// rank 2 stalls 8 s on entry to its epoch-1 checkpoint, the coordinator's
/// group deadline trips, the epoch aborts and retries, and the run
/// completes with per-rank results **byte-identical** to the fault-free
/// run. Returns `(protocol_aborts, epoch_retries, manifest_commits,
/// results_match)` for the golden line.
pub fn abort_smoke() -> (u64, u64, u64, bool) {
    let n = 4;
    let w = RandomTraffic { n, steps: 220, ..RandomTraffic::default() };
    let cfg = || CoordinatorCfg {
        deadlines: PhaseDeadlines::new(time::secs(2), time::secs(5)),
        election: Default::default(),
        ..cfg_for("abort-smoke", n, vec![time::secs(1), time::secs(3)])
    };

    let truth = ResultsSink::default();
    let clean = w.job(Some(truth.clone())).runner().ckpt(cfg()).run().expect("fault-free run");
    assert_eq!(clean.protocol_aborts, 0, "no deadline may trip fault-free");
    let mut want = truth.lock().clone();
    want.sort();

    let faults = FaultConfig {
        phase_faults: vec![PhaseFault {
            epoch: 1,
            phase: ProtocolPhase::Checkpoint,
            rank: 2,
            action: PhaseAction::Stall(time::secs(8)),
        }],
        ..FaultConfig::none()
    };
    let results = ResultsSink::default();
    let report = w
        .job(Some(results.clone()))
        .runner()
        .ckpt(cfg())
        .faults(&faults)
        .run()
        .expect("straggler run");
    assert_eq!(report.finished_ranks, n, "abort-and-retry must let the job finish");
    let mut got = results.lock().clone();
    got.sort();
    (report.protocol_aborts, report.epoch_retries, report.manifest_commits, got == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_thread_invariant_and_replays_exactly() {
        let a = run_threaded(4, &[1_000, 2_000], &[60], 2, Some(1), Backend::Central);
        let b = run_threaded(4, &[1_000, 2_000], &[60], 2, Some(4), Backend::Central);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(table(&a).render(), table(&b).render());
    }

    #[test]
    fn replicated_restart_beats_central_at_shortest_mtbf() {
        // The acceptance gate for the diskless backend: at the sweep's
        // shortest MTBF (most restarts) the replicated restart storm —
        // node-local reads plus at most one remote replica fetch — must be
        // strictly faster than 4 ranks hammering the shared central array.
        let central = run_threaded(4, &[1_000], &[30], 2, Some(2), Backend::Central);
        let repl = run_threaded(4, &[1_000], &[30], 2, Some(2), Backend::Replicated);
        let (c, r) = (central.cell(0, 0), repl.cell(0, 0));
        assert!(c.recovery_s > 0.0, "central cell must actually restart");
        assert!(r.recovery_s > 0.0, "replicated cell must actually restart");
        assert!(
            r.recovery_s < c.recovery_s,
            "replicated restart {}s not below central {}s",
            r.recovery_s,
            c.recovery_s
        );
        assert!(r.counters.replicas_written > 0, "fan-out must have happened");
    }

    #[test]
    fn short_mtbf_burns_more_work_than_long_mtbf() {
        let sw = run_threaded(4, &[1_000], &[30, 480], 3, Some(2), Backend::Central);
        let short = sw.cell(0, 0).acct.as_ref().expect("short-MTBF cell finishes");
        let long = sw.cell(0, 1).acct.as_ref().expect("long-MTBF cell finishes");
        assert!(
            short.availability <= long.availability,
            "30s-MTBF availability {} above 480s-MTBF {}",
            short.availability,
            long.availability
        );
        assert!(short.attempts >= long.attempts);
    }
}
