//! Figure 1: bandwidth per client (and aggregate throughput) versus the
//! number of clients concurrently writing checkpoint files.

use gbcr_des::Sim;
use gbcr_metrics::Table;
use gbcr_storage::{Storage, StorageConfig, StoredObject, MB};

/// One x-point of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Concurrent writers.
    pub clients: u32,
    /// Mean per-client bandwidth, MB/s.
    pub per_client_mbs: f64,
    /// Aggregate throughput over the whole span, MB/s.
    pub aggregate_mbs: f64,
}

/// Client counts the paper sweeps.
pub const CLIENT_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Run one x-point: `clients` concurrent writers, each pushing
/// `mb_per_client` MB to the shared storage.
pub fn run_point(clients: u32, mb_per_client: u64) -> Row {
    let mut sim = Sim::new(0);
    let storage = Storage::new(sim.handle(), StorageConfig::paper_testbed());
    for c in 0..clients {
        let s = storage.clone();
        sim.spawn(format!("client{c}"), move |p| {
            s.write(p, c, &format!("file{c}"), StoredObject::bulk(mb_per_client * MB));
        });
    }
    sim.run().expect("storage benchmark runs to completion");
    let stats = storage.stats();
    Row {
        clients,
        per_client_mbs: stats.mean_client_bandwidth() / MB as f64,
        aggregate_mbs: stats.aggregate_throughput() / MB as f64,
    }
}

/// The full Figure 1 sweep.
pub fn run() -> Vec<Row> {
    CLIENT_COUNTS.iter().map(|&c| run_point(c, 500)).collect()
}

/// Render the sweep as the paper's series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Figure 1 — Bandwidth per Client to Storage with Different Number of Clients",
        &["clients", "per-client MB/s", "aggregate MB/s"],
    );
    for r in rows {
        t.row(&[
            r.clients.to_string(),
            format!("{:.2}", r.per_client_mbs),
            format!("{:.1}", r.aggregate_mbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn per_client_bandwidth_decreases_with_clients() {
        let rows = run();
        for w in rows.windows(2) {
            assert!(
                w[1].per_client_mbs < w[0].per_client_mbs,
                "per-client bandwidth must fall: {w:?}"
            );
        }
    }

    #[test]
    fn matches_paper_anchors() {
        let rows = run();
        let at32 = rows.iter().find(|r| r.clients == 32).unwrap();
        assert!(
            (at32.per_client_mbs - paper::fig1::PER_CLIENT_AT_32).abs() < 0.6,
            "32-client per-client bandwidth {} vs paper {}",
            at32.per_client_mbs,
            paper::fig1::PER_CLIENT_AT_32
        );
        let at8 = rows.iter().find(|r| r.clients == 8).unwrap();
        assert!(
            (at8.aggregate_mbs - paper::fig1::AGGREGATE_MBS).abs() < 5.0,
            "aggregate at 8 clients {} vs paper ~{}",
            at8.aggregate_mbs,
            paper::fig1::AGGREGATE_MBS
        );
    }
}
