//! Figure 3: Effective Checkpoint Delay versus checkpoint group size, for
//! several communication group sizes (§6.1 micro-benchmark; 32 ranks,
//! 180 MB/process).

use crate::{size_label, sweep_many, Sweep, GROUP_SIZES};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_workloads::MicroBench;

/// Communication group sizes the paper sweeps (1 = embarrassingly
/// parallel).
pub const COMM_SIZES: [u32; 5] = [16, 8, 4, 2, 1];

/// The figure's data: one sweep per communication group size.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// `(comm_group_size, sweep at a single issuance point)`.
    pub by_comm: Vec<(u32, Sweep)>,
}

/// Micro-benchmark used for one communication group size.
pub fn bench(comm: u32, n: u32) -> MicroBench {
    MicroBench { n, comm_group_size: comm, ..Default::default() }
}

/// Run the figure. `n` is the world size (paper: 32); `comm_sizes` and
/// `ckpt_sizes` default to the paper's choices via [`run`]. All
/// `comm_sizes × ckpt_sizes` runs (plus one baseline per comm size) go
/// through the parallel harness as one fan-out.
pub fn run_with(n: u32, comm_sizes: &[u32], ckpt_sizes: &[u32]) -> Fig3 {
    run_threaded(n, comm_sizes, ckpt_sizes, None)
}

/// [`run_with`] with explicit worker-thread control.
pub fn run_threaded(
    n: u32,
    comm_sizes: &[u32],
    ckpt_sizes: &[u32],
    threads: Option<usize>,
) -> Fig3 {
    let at = [time::secs(30)];
    let workloads: Vec<_> =
        comm_sizes.iter().map(|&c| (bench(c, n).job(), "micro")).collect();
    let sweeps = sweep_many(&workloads, &at, ckpt_sizes, threads);
    Fig3 { by_comm: comm_sizes.iter().copied().zip(sweeps).collect() }
}

/// The paper's full Figure 3.
pub fn run() -> Fig3 {
    run_with(32, &COMM_SIZES, &GROUP_SIZES)
}

/// Render the figure's series.
pub fn table(fig: &Fig3) -> Table {
    let n = fig.by_comm[0].1.n;
    let mut header: Vec<String> = vec!["ckpt group".into()];
    for (c, _) in &fig.by_comm {
        header.push(if *c == 1 {
            "embarrassingly-par".into()
        } else {
            format!("comm-group {c}")
        });
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 3 — Effective Checkpoint Delay (s) vs Checkpoint Group Size",
        &header_refs,
    );
    let sizes: Vec<u32> =
        fig.by_comm[0].1.cells.iter().map(|c| c.group_size).collect();
    for g in sizes {
        let mut row = vec![size_label(n, g)];
        for (_, sw) in &fig.by_comm {
            let cell = sw.cells.iter().find(|c| c.group_size == g).expect("cell");
            row.push(format!("{:.1}", cell.effective));
        }
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down figure run exercising the paper's three claims:
    /// halving above the comm-group size, flattening below it, and
    /// degradation at size 1.
    #[test]
    fn shape_matches_paper_claims_at_reduced_scale() {
        let fig = run_with(16, &[4], &[16, 8, 4, 2, 1]);
        let sw = &fig.by_comm[0].1;
        let eff = |g: u32| sw.cells.iter().find(|c| c.group_size == g).unwrap().effective;
        // Halving while the checkpoint group covers >= 1 comm group.
        assert!(eff(8) < 0.62 * eff(16), "16→8: {} vs {}", eff(8), eff(16));
        assert!(eff(4) < 0.62 * eff(8), "8→4: {} vs {}", eff(4), eff(8));
        // Below the comm group size the delay flattens (or worsens).
        assert!(eff(2) > 0.85 * eff(4), "2 should not keep halving: {} vs {}", eff(2), eff(4));
        // Size 1 under-utilizes the parallel file system.
        assert!(eff(1) > eff(4), "1 should be worse than 4: {} vs {}", eff(1), eff(4));
    }
}
