//! The traced 4-rank smoke cell and the Perfetto export/validation
//! helpers shared by the `gbcr`, `fig8` and `make_all` binaries.
//!
//! `scripts/tier1.sh` gates on [`check_chrome_json`]'s verdict over the
//! exported smoke trace: the file must parse as Chrome/Perfetto trace
//! JSON, every span row must nest, all five coordinator protocol phases
//! must be present and covered by their epoch span, and the connection
//! lifecycle and storage writes must have spans.

use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg, Formation, PhaseDeadlines, RunReport,
};
use gbcr_des::trace::{perfetto, PhaseStat};
use gbcr_des::{time, TraceData, TraceLevel};
use gbcr_metrics::Table;
use gbcr_storage::MB;
use gbcr_workloads::MicroBench;

/// The five coordinator protocol phases every epoch records, in order.
pub const COORDINATOR_PHASES: [&str; 5] =
    ["phase.begin", "phase.group_start", "phase.checkpoint", "phase.group_done", "phase.end"];

/// Run the seeded 4-rank trace smoke: MicroBench over two comm groups,
/// one buffered group-based checkpoint (group size 2), traced at
/// [`TraceLevel::Full`]. Deterministic; the returned report carries the
/// recorded trace in [`RunReport::trace`].
pub fn trace_smoke() -> RunReport {
    let mb = MicroBench {
        n: 4,
        comm_group_size: 2,
        footprint: 40 * MB,
        steps: 60,
        ..Default::default()
    };
    let cfg = CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 2 },
        schedule: CkptSchedule::once(time::secs(3)),
        incremental: false,
        deadlines: PhaseDeadlines::none(),
        election: Default::default(),
    };
    mb.job().runner().ckpt(cfg).traced(TraceLevel::Full).run().expect("trace smoke run")
}

/// Verdict of [`check_chrome_json`] over an exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Complete (`ph == 'X'`) spans in the file.
    pub spans: usize,
    /// All five coordinator phases present, each covered by an epoch span.
    pub phases_ok: bool,
    /// Connection lifecycle spans (`net.connect` + `net.teardown`) present.
    pub net_ok: bool,
    /// Storage write spans present.
    pub storage_ok: bool,
    /// Every (pid, tid) row's spans nest or are disjoint.
    pub nested: bool,
}

impl TraceCheck {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.phases_ok && self.net_ok && self.storage_ok && self.nested
    }
}

/// Parse and structurally validate an exported Chrome/Perfetto trace.
/// Errors only on malformed JSON/schema; semantic shortfalls (a missing
/// phase, an overlap) land as `false` fields in the verdict.
pub fn check_chrome_json(json: &str) -> Result<TraceCheck, String> {
    let trace = perfetto::parse_chrome_json(json)?;
    let nested = trace.well_nested();
    let epochs: Vec<(u64, u64)> =
        trace.spans_named("epoch").map(|e| (e.ts_ns, e.ts_ns + e.dur_ns)).collect();
    let phases_ok = COORDINATOR_PHASES.iter().all(|name| {
        let mut spans = trace.spans_named(name).peekable();
        spans.peek().is_some()
            && spans.all(|s| {
                epochs.iter().any(|&(t0, t1)| s.ts_ns >= t0 && s.ts_ns + s.dur_ns <= t1)
            })
    });
    let net_ok = trace.spans_named("net.connect").next().is_some()
        && trace.spans_named("net.teardown").next().is_some();
    let storage_ok = trace.spans_named("storage.write").next().is_some();
    Ok(TraceCheck { spans: trace.spans().count(), phases_ok, net_ok, storage_ok, nested })
}

/// Per-phase latency table (the histogram summary embedded in reports).
pub fn phase_table(stats: &[PhaseStat]) -> Table {
    let mut t = Table::new(
        "Per-phase span latencies".to_owned(),
        &["span", "count", "mean", "min", "max", "total"],
    );
    for s in stats {
        t.row(&[
            s.name.clone(),
            s.count.to_string(),
            time::fmt(s.mean_ns()),
            time::fmt(s.min_ns),
            time::fmt(s.max_ns),
            time::fmt(s.total_ns),
        ]);
    }
    t
}

/// Render the human-readable trace summary a `--trace` run prints: the
/// span-based per-epoch phase breakdown plus the per-phase latency table.
pub fn summary(data: &TraceData, stats: &[PhaseStat]) -> String {
    let mut out = gbcr_metrics::render_epoch_trace(data, 72);
    out.push('\n');
    out.push_str(&phase_table(stats).render());
    out
}

/// Export a recorded trace as Chrome/Perfetto JSON at `path`, returning
/// the serialized text (for immediate validation without a re-read).
pub fn export(data: &TraceData, path: &str) -> std::io::Result<String> {
    let json = perfetto::to_chrome_json(data);
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trace_passes_every_check() {
        let report = trace_smoke();
        let data = report.trace.as_deref().expect("traced run records data");
        let json = perfetto::to_chrome_json(data);
        let chk = check_chrome_json(&json).expect("valid trace JSON");
        assert!(chk.ok(), "smoke verdict: {chk:?}");
        assert!(!report.phase_stats.is_empty());
        let s = summary(data, &report.phase_stats);
        assert!(s.contains("epoch 0") && s.contains("phase.checkpoint"), "{s}");
    }
}
