//! Seed the sweep cost registry from a previous run's `--json` record.
//!
//! `make_all --json` persists per-cell costs so the *next* run can
//! dispatch cells longest-expected-first (LPT) from its very first sweep.
//! Every committed `BENCH_harness.json` nevertheless carried
//! `lpt_seeded_cells: 0` — two independent defects, both fixed here:
//!
//! 1. **Path resolution.** The record path (default
//!    `BENCH_harness.json`) was resolved against the *current working
//!    directory only*, so any regeneration not launched exactly at the
//!    repo root silently read nothing and started cold. A relative path
//!    that does not exist in the cwd now falls back to the workspace
//!    root, and `make_all` reports a cold start on stderr instead of
//!    staying silent.
//! 2. **Parser fragility.** The original parser split the `"cells"`
//!    array on `'{'` and cut each fragment at the first `'}'` — which
//!    silently skipped every cell carrying a nested `"phases": [{...}]`
//!    array (written by `--trace` runs), because the cell's own closing
//!    brace is then not the first one after its opening brace. This
//!    parser is nesting-aware: it walks the array tracking brace depth
//!    and JSON string state, extracts each *balanced* top-level cell
//!    object, and reads `key`/`wall_ms`/`events` from it (those fields
//!    are written before `phases`, so first-occurrence lookup is exact).
//!    Malformed entries are still skipped — worst case that cell is
//!    scheduled as unknown, never an error.

/// Seed [`gbcr_metrics`]'s cost registry from the record at `path`,
/// falling back to `<workspace root>/<path>` for relative paths that do
/// not resolve from the current directory. Returns the number of cells
/// seeded; a missing or unparseable file seeds nothing.
pub fn seed_costs_from(path: &str) -> usize {
    let text = std::fs::read_to_string(path).or_else(|e| {
        if std::path::Path::new(path).is_relative() {
            // crates/bench/../.. == the workspace root.
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(path);
            std::fs::read_to_string(root)
        } else {
            Err(e)
        }
    });
    let Ok(text) = text else { return 0 };
    seed_costs_from_str(&text)
}

/// Seed the cost registry from an in-memory `--json` record.
pub fn seed_costs_from_str(text: &str) -> usize {
    let Some(cells_at) = text.find("\"cells\"") else { return 0 };
    let mut seeded = 0;
    for obj in balanced_objects(&text[cells_at..]) {
        let key = field(obj, "key").map(|v| v.trim_matches('"').to_owned());
        let wall = field(obj, "wall_ms").and_then(|v| v.parse::<f64>().ok());
        let events = field(obj, "events").and_then(|v| v.parse::<u64>().ok());
        if let (Some(key), Some(wall), Some(events)) = (key, wall, events) {
            gbcr_metrics::seed_cell_cost(&key, wall, events);
            seeded += 1;
        }
    }
    seeded
}

/// Every balanced top-level `{...}` object in `text`, nested braces
/// included, string literals (with escapes) respected.
fn balanced_objects(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    let (mut in_str, mut escaped) = (false, false);
    for (i, c) in text.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    out.push(&text[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// First occurrence of `"name": value` in `obj`, value returned raw
/// (still quoted for strings). Cell-level fields precede any nested
/// `phases` array in the written record, so first occurrence is the
/// cell's own field.
fn field<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let at = obj.find(&format!("\"{name}\""))?;
    let rest = &obj[at..];
    let colon = rest.find(':')?;
    let val = rest[colon + 1..].trim_start();
    let end = val.find([',', '}']).unwrap_or(val.len());
    Some(val[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the `lpt_seeded_cells: 0` bug: a previous-run
    /// record whose cells carry nested `phases` arrays (a traced run)
    /// must still seed every cell.
    #[test]
    fn traced_record_with_nested_phases_seeds_all_cells() {
        let json = r#"{
  "threads": 1,
  "cells": [
    {"key": "t/seedmod/plain", "wall_ms": 81.7, "events": 16788},
    {"key": "t/seedmod/traced", "wall_ms": 256.5, "events": 40145, "phases": [{"name": "phase.checkpoint", "count": 2, "mean_ns": 50, "min_ns": 40, "max_ns": 60, "total_ns": 100}, {"name": "phase.drain", "count": 1, "mean_ns": 9, "min_ns": 9, "max_ns": 9, "total_ns": 9}]},
    {"key": "t/seedmod/traced2", "wall_ms": 12.0, "events": 777, "phases": [{"name": "phase.commit", "count": 3, "mean_ns": 4, "min_ns": 1, "max_ns": 7, "total_ns": 12}]}
  ]
}"#;
        let seeded = seed_costs_from_str(json);
        assert_eq!(seeded, 3, "phases-bearing cells must not be skipped");
        assert_eq!(
            gbcr_metrics::cell_cost("t/seedmod/traced"),
            Some(gbcr_metrics::CellCost { wall_ms: 256.5, events: 40145 })
        );
        assert_eq!(
            gbcr_metrics::cell_cost("t/seedmod/plain"),
            Some(gbcr_metrics::CellCost { wall_ms: 81.7, events: 16788 })
        );
    }

    #[test]
    fn plain_record_roundtrips_and_malformed_cells_are_skipped() {
        let json = r#""cells": [
    {"key": "t/seedmod/a", "wall_ms": 1.5, "events": 10},
    {"key": "t/seedmod/broken", "wall_ms": "oops"},
    {"wall_ms": 3.0, "events": 9},
    {"key": "t/seedmod/b", "wall_ms": 2.0, "events": 20}
  ]"#;
        assert_eq!(seed_costs_from_str(json), 2);
        assert_eq!(
            gbcr_metrics::cell_cost("t/seedmod/b"),
            Some(gbcr_metrics::CellCost { wall_ms: 2.0, events: 20 })
        );
        assert_eq!(gbcr_metrics::cell_cost("t/seedmod/broken"), None);
    }

    #[test]
    fn missing_file_or_no_cells_seeds_nothing() {
        assert_eq!(seed_costs_from("/nonexistent/gbcr-seed-test.json"), 0);
        assert_eq!(seed_costs_from_str("{\"threads\": 4}"), 0);
    }

    #[test]
    fn escaped_quotes_in_keys_do_not_derail_the_scan() {
        let json = r#""cells": [
    {"key": "t/seedmod/we\"ird{", "wall_ms": 4.0, "events": 40},
    {"key": "t/seedmod/after", "wall_ms": 5.0, "events": 50}
  ]"#;
        assert_eq!(seed_costs_from_str(json), 2);
        assert_eq!(
            gbcr_metrics::cell_cost("t/seedmod/after"),
            Some(gbcr_metrics::CellCost { wall_ms: 5.0, events: 50 })
        );
    }
}
