//! Petascale scale study: group-based vs whole-cluster checkpointing from
//! 256 to 10 240 ranks.
//!
//! The paper demonstrates its central claim — group-based checkpointing's
//! advantage grows with job size — only up to the 32–128 ranks a
//! thread-per-rank engine could afford. The pooled coroutine executor
//! (see `gbcr-des`) lifts that ceiling: every rank is a resumable task on
//! a worker pool of at most `min(ncpu, 8)` OS threads, so this module
//! sweeps the same fixed-footprint micro-benchmark out to the
//! petascale-study regime of Cao et al. Each sweep point also records
//! simulator-cost telemetry (wall time, events, spawn cost, peak OS
//! threads) so the executor's scaling shows up in BENCH_harness.json next
//! to the model outputs.

use crate::static_cfg;
use gbcr_des::time;
use gbcr_metrics::{run_sweep, SweepGroup, Table};
use gbcr_storage::MB;
use gbcr_workloads::MicroBench;
use std::time::Instant;

/// The full sweep: up through the 10k+ regime.
pub const SIZES_FULL: [u32; 4] = [256, 1024, 4096, 10_240];

/// Tier-1 smoke sizes (wall-clock budgeted in CI).
pub const SIZES_SMOKE: [u32; 2] = [256, 1024];

/// One job size of the scale sweep: the model outputs (effective delays)
/// plus the simulator-cost telemetry for that size's three runs
/// (baseline, whole-cluster, group-based).
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// World size.
    pub ranks: u32,
    /// Whole-cluster (`All(n)`) effective checkpoint delay, seconds.
    pub eff_all: f64,
    /// Group-based (g=8) effective checkpoint delay, seconds.
    pub eff_group: f64,
    /// Wall milliseconds for this size's three runs.
    pub wall_ms: f64,
    /// Simulated events dispatched across the three runs.
    pub events: u64,
    /// Progress wakes elided across the three runs.
    pub elided_wakes: u64,
    /// Simulated processes spawned across the three runs.
    pub procs_spawned: u64,
    /// Peak OS threads any single run used for process execution (the
    /// pool size under the pooled executor).
    pub peak_live_threads: u64,
    /// Which executor backend ran the processes.
    pub executor: &'static str,
    /// Which event scheduler ran the runs (`serial` or `parallel`; the
    /// name reflects what actually executed after any fallback).
    pub sched: &'static str,
    /// Shard/window telemetry summed over the three runs (all zeros
    /// under the serial scheduler).
    pub sched_telemetry: gbcr_des::SchedTelemetry,
    /// Wall milliseconds spent spawning processes, summed over the runs.
    pub spawn_ms: f64,
}

impl ScaleCell {
    /// Delay reduction of group-based over whole-cluster, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        1.0 - self.eff_group / self.eff_all
    }
}

/// The sweep workload: the paper's §6.1 micro-benchmark shape
/// (communication groups of eight, 180 MB/process) with a step count
/// short enough that a 10k-rank run stays tier-2 affordable.
pub fn workload(n: u32) -> MicroBench {
    MicroBench {
        n,
        comm_group_size: 8,
        footprint: 180 * MB,
        steps: 40,
        step_compute: time::ms(500),
        ..Default::default()
    }
}

/// Run the sweep: per size, one baseline plus whole-cluster and
/// group-based checkpointed runs. Sizes are run one at a time (not one
/// big fan-out) so each gets its own wall-clock attribution.
pub fn run(sizes: &[u32], threads: Option<usize>) -> Vec<ScaleCell> {
    sizes
        .iter()
        .map(|&n| {
            let mb = workload(n);
            let group = SweepGroup::labeled(
                mb.job(),
                vec![static_cfg("micro", n, time::secs(5)), static_cfg("micro", 8, time::secs(5))],
                format!("scale/n{n}"),
            );
            let t0 = Instant::now();
            let gr = run_sweep(std::slice::from_ref(&group), threads)
                .expect("scale study runs")
                .pop()
                .expect("one group");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let eff = |i: usize| {
                time::as_secs_f64(gr.runs[i].completion.saturating_sub(gr.baseline.completion))
            };
            let all = std::iter::once(&gr.baseline).chain(&gr.runs);
            let mut events = 0;
            let mut elided_wakes = 0;
            let mut procs_spawned = 0;
            let mut peak_live_threads = 0;
            let mut spawn_ns = 0;
            let mut tel = gbcr_des::SchedTelemetry::default();
            for r in all {
                events += r.events;
                elided_wakes += r.elided_wakes;
                procs_spawned += r.procs_spawned;
                peak_live_threads = peak_live_threads.max(r.exec_threads);
                spawn_ns += r.spawn_cost_ns.0;
                let t = r.sched_telemetry;
                tel.shards = tel.shards.max(t.shards);
                tel.windows += t.windows;
                tel.fenced_windows += t.fenced_windows;
                tel.horizon_stalls += t.horizon_stalls;
                tel.occupancy_sum += t.occupancy_sum;
                tel.cross_msgs += t.cross_msgs;
                tel.local_msgs += t.local_msgs;
            }
            ScaleCell {
                ranks: n,
                eff_all: eff(0),
                eff_group: eff(1),
                wall_ms,
                events,
                elided_wakes,
                procs_spawned,
                peak_live_threads,
                executor: gr.baseline.executor.name(),
                sched: gr.baseline.sched.name(),
                sched_telemetry: tel,
                spawn_ms: spawn_ns as f64 / 1e6,
            }
        })
        .collect()
}

/// The model-output table (the delays the paper's claim is about).
/// Deterministic — byte-identical across executors, thread counts and
/// progress modes.
pub fn table(cells: &[ScaleCell]) -> Table {
    let mut t = Table::new(
        "Scale study — effective delay (s) vs job size (180 MB/proc, 140 MB/s storage)",
        &["ranks", "regular All(n)", "group-based g=8", "reduction"],
    );
    for c in cells {
        t.row(&[
            c.ranks.to_string(),
            format!("{:.1}", c.eff_all),
            format!("{:.1}", c.eff_group),
            format!("{:.0}%", c.reduction() * 100.0),
        ]);
    }
    t
}

/// The simulator-cost table (wall time, events, executor telemetry).
/// *Not* deterministic — never part of the byte-identity checks.
pub fn cost_table(cells: &[ScaleCell]) -> Table {
    let mut t = Table::new(
        "Scale study — simulator cost per job size (3 runs each)",
        &[
            "ranks",
            "wall ms",
            "events",
            "procs",
            "peak exec threads",
            "spawn ms",
            "executor",
            "sched",
            "windows",
            "occ",
            "xmsg",
        ],
    );
    for c in cells {
        let tel = &c.sched_telemetry;
        t.row(&[
            c.ranks.to_string(),
            format!("{:.0}", c.wall_ms),
            c.events.to_string(),
            c.procs_spawned.to_string(),
            c.peak_live_threads.to_string(),
            format!("{:.1}", c.spawn_ms),
            c.executor.to_owned(),
            c.sched.to_owned(),
            tel.windows.to_string(),
            format!("{:.2}", tel.avg_occupancy()),
            format!("{:.3}", tel.cross_ratio()),
        ]);
    }
    t
}

/// The `scale` block for BENCH_harness.json.
pub fn json_block(cells: &[ScaleCell]) -> String {
    let mut j = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let tel = &c.sched_telemetry;
        j.push_str(&format!(
            "    {{\"ranks\": {}, \"wall_ms\": {:.1}, \"events\": {}, \
             \"elided_wakes\": {}, \"procs_spawned\": {}, \
             \"peak_live_threads\": {}, \"spawn_ms\": {:.1}, \
             \"executor\": \"{}\", \"sched\": \"{}\", \"shards\": {}, \
             \"windows\": {}, \"fenced_windows\": {}, \"horizon_stalls\": {}, \
             \"avg_occupancy\": {:.2}, \"cross_msg_ratio\": {:.3}, \
             \"eff_all_s\": {:.1}, \"eff_group_s\": {:.1}}}{comma}\n",
            c.ranks,
            c.wall_ms,
            c.events,
            c.elided_wakes,
            c.procs_spawned,
            c.peak_live_threads,
            c.spawn_ms,
            c.executor,
            c.sched,
            tel.shards,
            tel.windows,
            tel.fenced_windows,
            tel.horizon_stalls,
            tel.avg_occupancy(),
            tel.cross_ratio(),
            c.eff_all,
            c.eff_group,
        ));
    }
    j.push_str("  ]");
    j
}
