//! Figure 9 (extension): control-plane availability under coordinator
//! churn, comparing a **static** control plane (a dead coordinator takes
//! the whole job down and the supervisor restarts it from the last
//! complete epoch) against lease-based **failover** (the lowest-ranked
//! surviving standby wins a term-numbered election, reconstructs the
//! coordinator state from the storage manifests and resumes in place —
//! zero supervisor restarts).
//!
//! Every cell is one supervised stochastic run
//! ([`gbcr_core::SupervisedRunner::stochastic`]) whose fault
//! process kills only the *coordinator's* node: `coord_mtbf` is the swept
//! exponential and the per-node kill clock is pushed out to 10⁵ s so rank
//! failures never fire. Cell seeds ignore the plane, so both planes face
//! the *same* coordinator-kill draws (common random numbers) and the
//! availability gap is purely the recovery path.

use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg,
    ElectionCfg, Formation, SupervisePolicy,
};
use gbcr_des::{time, SimError, Time};
use gbcr_faults::{rng::mix64, FaultConfig, FaultPlan, StochasticFaults};
use gbcr_metrics::{run_cells, sum_counters, FaultAccounting, RecoveryCounters, Table};
use gbcr_workloads::{random::ResultsSink, RandomTraffic};

/// Seed every cell's fault streams and election jitter derive from.
pub const SEED: u64 = 0xF1_69;

/// Coordinator MTBFs swept (seconds). The bare job is ~12 s, so the
/// shortest column kills the coordinator in most replicas.
pub const COORD_MTBFS_S: [u64; 3] = [20, 60, 240];

/// Checkpoint interval for every cell (milliseconds); fixed so the sweep
/// isolates the control-plane axis.
pub const INTERVAL_MS: u64 = 2_000;

/// Supervised runs per cell; replica seeds are shared across planes.
pub const REPLICAS: usize = 5;

/// Which control plane a sweep runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Plane {
    /// No standbys: a coordinator kill aborts the attempt and the
    /// supervisor restarts from the last complete epoch.
    #[default]
    Static,
    /// Lease-based leader election: per-rank standbys monitor heartbeats
    /// and the lowest-ranked survivor takes over in place.
    Failover,
}

impl Plane {
    /// Parse a `--plane` flag value.
    pub fn parse(s: &str) -> Option<Plane> {
        match s {
            "static" => Some(Plane::Static),
            "failover" => Some(Plane::Failover),
            _ => None,
        }
    }

    /// The flag/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            Plane::Static => "static",
            Plane::Failover => "failover",
        }
    }

    fn election(self, jitter_seed: u64) -> ElectionCfg {
        match self {
            Plane::Static => ElectionCfg::disabled(),
            Plane::Failover => ElectionCfg::failover(jitter_seed),
        }
    }
}

/// One measured cell of the plane × coordinator-MTBF sweep.
#[derive(Debug, Clone)]
pub struct PlaneCell {
    /// Coordinator MTBF, seconds.
    pub coord_mtbf_secs: f64,
    /// Aggregate accounting over the replicas that finished; `None` when
    /// every replica exhausted its retry budget.
    pub acct: Option<FaultAccounting>,
    /// Replicas run for this cell.
    pub replicas: usize,
    /// Replicas that gave up ([`gbcr_des::SimError::RetriesExhausted`]).
    pub gave_up: usize,
    /// Supervisor restarts summed over finishing replicas (attempts
    /// beyond the first); the failover plane's headline is keeping this 0.
    pub supervisor_restarts: usize,
    /// Recovery-protocol counters summed over the finishing replicas
    /// (elections, terms, migrations, time-to-new-leader, …).
    pub counters: RecoveryCounters,
}

/// The full control-plane sweep for one plane.
#[derive(Debug, Clone)]
pub struct PlaneSweep {
    /// World size.
    pub n: u32,
    /// Control plane the jobs ran under.
    pub plane: Plane,
    /// Base seed of the fault streams.
    pub seed: u64,
    /// Failure-free bare completion (the "useful" seconds of every cell).
    pub useful_secs: f64,
    /// Swept coordinator MTBFs, seconds.
    pub mtbfs: Vec<f64>,
    /// Cells, one per MTBF.
    pub cells: Vec<PlaneCell>,
}

fn spec_for(n: u32) -> (gbcr_core::JobSpec, &'static str) {
    let w = RandomTraffic { n, steps: 400, ..RandomTraffic::default() };
    (w.job(None), "random-traffic")
}

fn cfg_for(job: &str, n: u32, at: Vec<Time>) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: (n / 2).max(1) },
        schedule: CkptSchedule { at },
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

fn periodic(interval: Time, horizon: Time) -> Vec<Time> {
    let mut at = Vec::new();
    let mut t = interval;
    while t < horizon {
        at.push(t);
        t += interval;
    }
    at
}

/// Run the full sweep under one control plane.
pub fn run() -> (PlaneSweep, PlaneSweep) {
    (
        run_threaded(8, &COORD_MTBFS_S, REPLICAS, None, Plane::Static),
        run_threaded(8, &COORD_MTBFS_S, REPLICAS, None, Plane::Failover),
    )
}

/// Run with an explicit MTBF grid, replica count, worker-thread control
/// and control plane. Cell seeds ignore the plane, so plane sweeps face
/// identical coordinator-kill draws.
pub fn run_threaded(
    n: u32,
    coord_mtbfs_s: &[u64],
    replicas: usize,
    threads: Option<usize>,
    plane: Plane,
) -> PlaneSweep {
    assert!(replicas > 0);
    let (spec, job) = spec_for(n);
    let useful = spec.runner().run().expect("bare run").completion;
    let interval = time::ms(INTERVAL_MS);

    let runs = run_cells(coord_mtbfs_s.len() * replicas, threads, |k| {
        let mtbf_s = coord_mtbfs_s[k / replicas];
        let rep = (k % replicas) as u64;
        let cell_seed = SEED ^ mix64(mtbf_s) ^ mix64(rep + 1);
        // Node kills pushed out to 10^5 s: only the coordinator clock
        // (its own Domain::Election stream) ever fires inside the run.
        let faults = StochasticFaults {
            coord_mtbf: Some(time::secs(mtbf_s)),
            ..StochasticFaults::kills(cell_seed, time::secs(100_000))
        };
        let cfg = CoordinatorCfg {
            election: plane.election(cell_seed),
            ..cfg_for(job, n, periodic(interval, useful))
        };
        let policy = SupervisePolicy::default();
        match spec.runner().ckpt(cfg).supervised(policy).stochastic(&faults) {
            Ok(report) => Some(report),
            Err(SimError::RetriesExhausted { .. }) => None,
            Err(e) => panic!("fig9 cell (mtbf {mtbf_s} s, {}) failed: {e}", plane.name()),
        }
    });

    let cells = coord_mtbfs_s
        .iter()
        .enumerate()
        .map(|(c, &mtbf_s)| {
            let reps = &runs[c * replicas..(c + 1) * replicas];
            let finished: Vec<_> = reps.iter().flatten().collect();
            let gave_up = replicas - finished.len();
            let acct = (!finished.is_empty()).then(|| {
                let mean_wall = finished
                    .iter()
                    .map(|r| time::as_secs_f64(r.total_wall))
                    .sum::<f64>()
                    / finished.len() as f64;
                FaultAccounting::from_run(
                    mean_wall,
                    time::as_secs_f64(useful),
                    n,
                    finished.iter().map(|r| r.failures_survived()).sum(),
                    finished.iter().map(|r| r.attempts.len()).sum(),
                )
            });
            PlaneCell {
                coord_mtbf_secs: mtbf_s as f64,
                acct,
                replicas,
                gave_up,
                supervisor_restarts: finished
                    .iter()
                    .map(|r| r.attempts.len().saturating_sub(1))
                    .sum(),
                counters: sum_counters(finished.iter().copied()),
            }
        })
        .collect();

    PlaneSweep {
        n,
        plane,
        seed: SEED,
        useful_secs: time::as_secs_f64(useful),
        mtbfs: coord_mtbfs_s.iter().map(|&m| m as f64).collect(),
        cells,
    }
}

/// Availability row per plane: `avail% / restarts / migrations` per
/// coordinator-MTBF column.
pub fn table(st: &PlaneSweep, fo: &PlaneSweep) -> Table {
    assert_eq!(st.mtbfs, fo.mtbfs, "planes must sweep the same MTBFs");
    let mut header: Vec<String> = vec!["control plane".into()];
    header.extend(st.mtbfs.iter().map(|m| format!("coord MTBF {m:.0}s")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 9 — availability under coordinator churn, n={} \
             (avail % / supervisor restarts / leader migrations)",
            st.n
        ),
        &header_refs,
    );
    for sw in [st, fo] {
        let mut row = vec![sw.plane.name().to_string()];
        for c in &sw.cells {
            row.push(match &c.acct {
                Some(a) => format!(
                    "{:.1} / {} / {}",
                    a.availability * 100.0,
                    c.supervisor_restarts,
                    c.counters.leader_migrations
                ),
                None => "gave up".into(),
            });
        }
        t.row(&row);
    }
    t
}

/// The `"fig9"` JSON block `make_all --fig9` embeds in its run record.
pub fn json_block(st: &PlaneSweep, fo: &PlaneSweep) -> String {
    let mut j = String::from("{\n");
    j.push_str(&format!("    \"n\": {},\n", st.n));
    j.push_str(&format!("    \"seed\": {},\n", st.seed));
    j.push_str(&format!("    \"useful_s\": {:.3},\n", st.useful_secs));
    j.push_str(&format!("    \"interval_ms\": {INTERVAL_MS},\n"));
    j.push_str("    \"cells\": [\n");
    let total = st.cells.len() + fo.cells.len();
    for (i, (sw, c)) in st
        .cells
        .iter()
        .map(|c| (st, c))
        .chain(fo.cells.iter().map(|c| (fo, c)))
        .enumerate()
    {
        let comma = if i + 1 == total { "" } else { "," };
        match &c.acct {
            Some(a) => j.push_str(&format!(
                "      {{\"plane\": \"{}\", \"coord_mtbf_s\": {:.0}, \
                 \"availability\": {:.4}, \"lost_work_node_s\": {:.1}, \
                 \"failures\": {}, \"attempts\": {}, \"replicas\": {}, \
                 \"gave_up\": {}, \"supervisor_restarts\": {}, \
                 \"coordinator_kills\": {}, \"elections_held\": {}, \
                 \"terms\": {}, \"heartbeats_missed\": {}, \
                 \"leader_migrations\": {}, \
                 \"time_to_new_leader_s\": {:.3}}}{comma}\n",
                sw.plane.name(),
                c.coord_mtbf_secs,
                a.availability,
                a.lost_work,
                a.failures,
                a.attempts,
                c.replicas,
                c.gave_up,
                c.supervisor_restarts,
                c.counters.coordinator_kills,
                c.counters.elections_held,
                c.counters.terms,
                c.counters.heartbeats_missed,
                c.counters.leader_migrations,
                time::as_secs_f64(c.counters.time_to_new_leader),
            )),
            None => j.push_str(&format!(
                "      {{\"plane\": \"{}\", \"coord_mtbf_s\": {:.0}, \
                 \"replicas\": {}, \"gave_up\": {}}}{comma}\n",
                sw.plane.name(),
                c.coord_mtbf_secs,
                c.replicas,
                c.gave_up,
            )),
        }
    }
    j.push_str("    ]\n  }");
    j
}

/// The seeded 8-rank coordinator-kill failover smoke `scripts/tier1.sh`
/// gates on: the coordinator's node dies mid-epoch-schedule, the
/// lowest-ranked standby wins the term-2 election, aborts the half-open
/// epoch, re-forms groups over the survivors and finishes the job with
/// per-rank results **byte-identical** to the fault-free run — all
/// without a supervisor restart. Returns `(terms, leader_migrations,
/// supervisor_restarts, results_match)` for the golden line.
pub fn smoke() -> (u64, u64, u64, bool) {
    let n = 8;
    let w = RandomTraffic { n, steps: 220, ..RandomTraffic::default() };
    let mk = || CoordinatorCfg {
        election: ElectionCfg::failover(SEED),
        ..cfg_for("fig9-smoke", n, vec![time::secs(1), time::secs(3), time::secs(5)])
    };

    let truth = ResultsSink::default();
    let clean = w.job(Some(truth.clone())).runner().ckpt(mk()).run().expect("fault-free run");
    assert_eq!(clean.terms, 1, "no election may run fault-free");
    assert_eq!(clean.leader_migrations, 0, "no migration may run fault-free");
    let mut want = truth.lock().clone();
    want.sort();

    let faults = FaultConfig {
        plan: FaultPlan::coordinator_kill_at(time::ms(3_500)),
        ..FaultConfig::none()
    };
    let results = ResultsSink::default();
    let report = w
        .job(Some(results.clone()))
        .runner()
        .ckpt(mk())
        .faults(&faults)
        .run()
        .expect("coordinator-kill run");
    assert_eq!(report.finished_ranks, n, "failover must let the job finish in place");
    let supervisor_restarts = u64::from(report.finished_ranks != n);
    let mut got = results.lock().clone();
    got.sort();
    (report.terms, report.leader_migrations, supervisor_restarts, got == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_availability_beats_static_at_shortest_mtbf() {
        // The acceptance gate for the survivable control plane: at the
        // sweep's shortest coordinator MTBF, in-place leader migration
        // must yield strictly higher availability than killing the job
        // and restarting it from the last complete epoch — against the
        // *same* coordinator-kill draws.
        let st = run_threaded(8, &[COORD_MTBFS_S[0]], 2, Some(2), Plane::Static);
        let fo = run_threaded(8, &[COORD_MTBFS_S[0]], 2, Some(2), Plane::Failover);
        let (s, f) = (&st.cells[0], &fo.cells[0]);
        let sa = s.acct.as_ref().expect("static cell finishes").availability;
        let fa = f.acct.as_ref().expect("failover cell finishes").availability;
        assert!(s.supervisor_restarts > 0, "static cell must actually restart");
        assert_eq!(f.supervisor_restarts, 0, "failover must never restart the job");
        assert!(f.counters.leader_migrations > 0, "failover must actually migrate");
        assert!(
            fa > sa,
            "failover availability {fa} not above static {sa} at {}s MTBF",
            COORD_MTBFS_S[0]
        );
    }

    #[test]
    fn smoke_matches_golden() {
        let (terms, migrations, restarts, results_match) = smoke();
        assert_eq!((terms, migrations, restarts), (2, 1, 0));
        assert!(results_match, "failover results must match the fault-free run");
    }
}
