//! Figure 7: MotifMiner Effective Checkpoint Delay at four issuance points
//! for each checkpoint group size (§6.3).

use crate::{size_label, sweep_on, Sweep, GROUP_SIZES};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_workloads::MotifMinerWorkload;

/// The four issuance points (seconds).
pub const POINTS: [u64; 4] = [30, 60, 90, 120];

/// Run the full Figure 7 sweep.
pub fn run() -> Sweep {
    run_with(&POINTS, &GROUP_SIZES)
}

/// Run with custom points/sizes.
pub fn run_with(points_secs: &[u64], sizes: &[u32]) -> Sweep {
    run_threaded(points_secs, sizes, None)
}

/// [`run_with`] with explicit worker-thread control.
pub fn run_threaded(points_secs: &[u64], sizes: &[u32], threads: Option<usize>) -> Sweep {
    let w = MotifMinerWorkload::default();
    let points: Vec<_> = points_secs.iter().map(|&s| time::secs(s)).collect();
    sweep_on(&w.job(None), "motifminer", &points, sizes, threads)
}

/// Render the per-point matrix.
pub fn table(sw: &Sweep) -> Table {
    let mut sizes: Vec<u32> = sw.cells.iter().map(|c| c.group_size).collect();
    sizes.dedup();
    sizes.truncate(sw.cells.len() / sw.series(sw.n).len());
    let mut header: Vec<String> = vec!["issuance (s)".into()];
    header.extend(sizes.iter().map(|&g| size_label(sw.n, g)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 7 — MotifMiner Effective Checkpoint Delay (s)",
        &header_refs,
    );
    let mut points: Vec<f64> = sw.series(sizes[0]).iter().map(|c| c.at_secs).collect();
    points.dedup();
    for at in points {
        let mut row = vec![format!("{at:.0}")];
        for &g in &sizes {
            let cell = sw
                .cells
                .iter()
                .find(|c| c.group_size == g && (c.at_secs - at).abs() < 1e-9)
                .expect("cell");
            row.push(format!("{:.1}", cell.effective));
        }
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    /// Reduced run hitting the headline point: group size 4 at the 30 s
    /// point reduces the delay on the order of the paper's 70 %, even
    /// though MotifMiner communicates globally.
    #[test]
    fn global_communication_still_benefits_at_the_early_point() {
        let sw = run_with(&[30], &[32, 4]);
        let red = sw.max_reduction(4);
        assert!(
            red > paper::fig7::MAX_REDUCTION_G4 - 0.10,
            "reduction at 30 s {:.2} well below paper's {:.2}",
            red,
            paper::fig7::MAX_REDUCTION_G4
        );
    }
}
