//! # gbcr-bench — regenerators for every figure in the paper's evaluation
//!
//! One module per figure (the paper has no numbered tables; Figures 1 and
//! 3–7 carry the evaluation; Figure 2 is a protocol diagram). Each module
//! exposes a `run()` returning structured rows plus a `table()` rendering
//! the same series the paper plots; the `fig*` binaries print them, and
//! `make_all` regenerates everything for EXPERIMENTS.md.
//!
//! Paper-reported anchor values are kept alongside in [`paper`] so every
//! table can print the measured-vs-paper comparison.

#![warn(missing_docs)]

pub mod ablations;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod paper;

use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::Time;

/// Checkpoint group sizes swept in Figures 3, 5, 6, 7 (`32` = the regular
/// coordinated baseline, "All").
pub const GROUP_SIZES: [u32; 6] = [32, 16, 8, 4, 2, 1];

/// A static-formation coordinator config with one checkpoint at `at`.
pub fn static_cfg(job: &str, group_size: u32, at: Time) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size },
        schedule: CkptSchedule::once(at),
        incremental: false,
    }
}

/// Label used for a checkpoint group size in the tables.
pub fn size_label(n: u32, g: u32) -> String {
    if g >= n {
        format!("All({n})")
    } else if g == 1 {
        "Individual(1)".to_owned()
    } else {
        format!("Group({g})")
    }
}

/// One measured cell of a (issuance time × group size) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Checkpoint issuance time, seconds.
    pub at_secs: f64,
    /// Checkpoint group size.
    pub group_size: u32,
    /// Effective Checkpoint Delay, seconds.
    pub effective: f64,
    /// Mean Individual Checkpoint Time, seconds.
    pub individual: f64,
    /// Min/max Individual across ranks, seconds.
    pub individual_min: f64,
    /// Max Individual across ranks, seconds.
    pub individual_max: f64,
    /// Total Checkpoint Time, seconds.
    pub total: f64,
}

/// A full sweep over issuance points × group sizes for one workload.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// World size.
    pub n: u32,
    /// Baseline (no-checkpoint) completion, seconds.
    pub baseline_secs: f64,
    /// Measured cells, in `points × sizes` order.
    pub cells: Vec<Cell>,
}

impl Sweep {
    /// All cells for one group size, ordered by issuance point.
    pub fn series(&self, group_size: u32) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.group_size == group_size).collect()
    }

    /// Mean effective delay for one group size.
    pub fn avg_effective(&self, group_size: u32) -> f64 {
        let s = self.series(group_size);
        s.iter().map(|c| c.effective).sum::<f64>() / s.len() as f64
    }

    /// Min/max effective delay for one group size.
    pub fn min_max_effective(&self, group_size: u32) -> (f64, f64) {
        let s = self.series(group_size);
        let min = s.iter().map(|c| c.effective).fold(f64::INFINITY, f64::min);
        let max = s.iter().map(|c| c.effective).fold(0.0, f64::max);
        (min, max)
    }

    /// Average reduction of a group size relative to the regular (`All`)
    /// baseline, as a fraction in `[0, 1]`.
    pub fn avg_reduction(&self, group_size: u32) -> f64 {
        1.0 - self.avg_effective(group_size) / self.avg_effective(self.n)
    }

    /// Largest single-point reduction for a group size.
    pub fn max_reduction(&self, group_size: u32) -> f64 {
        self.series(group_size)
            .iter()
            .zip(self.series(self.n))
            .map(|(g, all)| 1.0 - g.effective / all.effective)
            .fold(0.0, f64::max)
    }
}

/// Run a sweep: one baseline run plus one checkpointed run per
/// (point, size) pair. `job` must match the spec's image namespace.
pub fn sweep(
    spec: &gbcr_core::JobSpec,
    job: &str,
    points: &[Time],
    sizes: &[u32],
) -> Sweep {
    let baseline = gbcr_core::run_job(spec, None).expect("baseline run");
    let mut cells = Vec::with_capacity(points.len() * sizes.len());
    for &at in points {
        for &g in sizes {
            let ck = gbcr_core::run_job(spec, Some(static_cfg(job, g, at)))
                .expect("checkpointed run");
            let ep = ck.epochs.first().unwrap_or_else(|| {
                panic!("checkpoint at {} never ran", gbcr_des::time::fmt(at))
            });
            cells.push(Cell {
                at_secs: gbcr_des::time::as_secs_f64(at),
                group_size: g,
                effective: gbcr_des::time::as_secs_f64(
                    ck.completion.saturating_sub(baseline.completion),
                ),
                individual: gbcr_des::time::as_secs_f64(ep.mean_individual()),
                individual_min: gbcr_des::time::as_secs_f64(
                    ep.individuals.iter().map(|(_, t)| *t).min().unwrap_or(0),
                ),
                individual_max: gbcr_des::time::as_secs_f64(ep.max_individual()),
                total: gbcr_des::time::as_secs_f64(ep.total_time()),
            });
        }
    }
    Sweep { n: spec.mpi.n, baseline_secs: gbcr_des::time::as_secs_f64(baseline.completion), cells }
}
