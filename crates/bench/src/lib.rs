//! # gbcr-bench — regenerators for every figure in the paper's evaluation
//!
//! One module per figure (the paper has no numbered tables; Figures 1 and
//! 3–7 carry the evaluation; Figure 2 is a protocol diagram). Each module
//! exposes a `run()` returning structured rows plus a `table()` rendering
//! the same series the paper plots; the `fig*` binaries print them, and
//! `make_all` regenerates everything for EXPERIMENTS.md.
//!
//! Paper-reported anchor values are kept alongside in [`paper`] so every
//! table can print the measured-vs-paper comparison.

#![warn(missing_docs)]

pub mod ablations;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod paper;
pub mod scale;
pub mod seed;
pub mod trace;

use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::Time;
use gbcr_metrics::{run_sweep, GroupReports, SweepGroup};

/// Checkpoint group sizes swept in Figures 3, 5, 6, 7 (`32` = the regular
/// coordinated baseline, "All").
pub const GROUP_SIZES: [u32; 6] = [32, 16, 8, 4, 2, 1];

/// A static-formation coordinator config with one checkpoint at `at`.
pub fn static_cfg(job: &str, group_size: u32, at: Time) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size },
        schedule: CkptSchedule::once(at),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

/// Label used for a checkpoint group size in the tables.
pub fn size_label(n: u32, g: u32) -> String {
    if g >= n {
        format!("All({n})")
    } else if g == 1 {
        "Individual(1)".to_owned()
    } else {
        format!("Group({g})")
    }
}

/// One measured cell of a (issuance time × group size) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Checkpoint issuance time, seconds.
    pub at_secs: f64,
    /// Checkpoint group size.
    pub group_size: u32,
    /// Effective Checkpoint Delay, seconds.
    pub effective: f64,
    /// Mean Individual Checkpoint Time, seconds.
    pub individual: f64,
    /// Min/max Individual across ranks, seconds.
    pub individual_min: f64,
    /// Max Individual across ranks, seconds.
    pub individual_max: f64,
    /// Total Checkpoint Time, seconds.
    pub total: f64,
}

/// A full sweep over issuance points × group sizes for one workload.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// World size.
    pub n: u32,
    /// Baseline (no-checkpoint) completion, seconds.
    pub baseline_secs: f64,
    /// Measured cells, in `points × sizes` order.
    pub cells: Vec<Cell>,
    /// Simulated events dispatched across the baseline and every cell
    /// (simulator cost, not a model output).
    pub events: u64,
    /// Progress wakes elided by demand-driven compute slicing, summed the
    /// same way (always 0 in polled mode).
    pub elided_wakes: u64,
}

impl Sweep {
    /// All cells for one group size, ordered by issuance point.
    pub fn series(&self, group_size: u32) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.group_size == group_size).collect()
    }

    /// Mean effective delay for one group size.
    pub fn avg_effective(&self, group_size: u32) -> f64 {
        let s = self.series(group_size);
        s.iter().map(|c| c.effective).sum::<f64>() / s.len() as f64
    }

    /// Min/max effective delay for one group size.
    pub fn min_max_effective(&self, group_size: u32) -> (f64, f64) {
        let s = self.series(group_size);
        let min = s.iter().map(|c| c.effective).fold(f64::INFINITY, f64::min);
        let max = s.iter().map(|c| c.effective).fold(0.0, f64::max);
        (min, max)
    }

    /// Average reduction of a group size relative to the regular (`All`)
    /// baseline, as a fraction in `[0, 1]`.
    pub fn avg_reduction(&self, group_size: u32) -> f64 {
        1.0 - self.avg_effective(group_size) / self.avg_effective(self.n)
    }

    /// Largest single-point reduction for a group size.
    pub fn max_reduction(&self, group_size: u32) -> f64 {
        self.series(group_size)
            .iter()
            .zip(self.series(self.n))
            .map(|(g, all)| 1.0 - g.effective / all.effective)
            .fold(0.0, f64::max)
    }
}

/// The coordinator configs of a `points × sizes` sweep, in cell order.
fn sweep_cfgs(job: &str, points: &[Time], sizes: &[u32]) -> Vec<CoordinatorCfg> {
    let mut cfgs = Vec::with_capacity(points.len() * sizes.len());
    for &at in points {
        for &g in sizes {
            cfgs.push(static_cfg(job, g, at));
        }
    }
    cfgs
}

/// Turn one group's reports back into the `points × sizes` cell matrix,
/// preserving the exact serial cell order.
fn sweep_from_reports(n: u32, points: &[Time], sizes: &[u32], gr: GroupReports) -> Sweep {
    let baseline = gr.baseline;
    let mut events = baseline.events;
    let mut elided_wakes = baseline.elided_wakes;
    let mut runs = gr.runs.into_iter();
    let mut cells = Vec::with_capacity(points.len() * sizes.len());
    for &at in points {
        for &g in sizes {
            let ck = runs.next().expect("one checkpointed run per cell");
            events += ck.events;
            elided_wakes += ck.elided_wakes;
            let ep = ck.epochs.first().unwrap_or_else(|| {
                panic!("checkpoint at {} never ran", gbcr_des::time::fmt(at))
            });
            cells.push(Cell {
                at_secs: gbcr_des::time::as_secs_f64(at),
                group_size: g,
                effective: gbcr_des::time::as_secs_f64(
                    ck.completion.saturating_sub(baseline.completion),
                ),
                individual: gbcr_des::time::as_secs_f64(ep.mean_individual()),
                individual_min: gbcr_des::time::as_secs_f64(
                    ep.individuals.iter().map(|(_, t)| *t).min().unwrap_or(0),
                ),
                individual_max: gbcr_des::time::as_secs_f64(ep.max_individual()),
                total: gbcr_des::time::as_secs_f64(ep.total_time()),
            });
        }
    }
    Sweep {
        n,
        baseline_secs: gbcr_des::time::as_secs_f64(baseline.completion),
        cells,
        events,
        elided_wakes,
    }
}

/// Run several sweeps — one per `(spec, job)` workload — through the
/// parallel harness in a single fan-out: every baseline and checkpointed
/// run across all workloads becomes one pool task.
pub fn sweep_many(
    workloads: &[(gbcr_core::JobSpec, &str)],
    points: &[Time],
    sizes: &[u32],
    threads: Option<usize>,
) -> Vec<Sweep> {
    let groups: Vec<SweepGroup> = workloads
        .iter()
        .enumerate()
        .map(|(i, (spec, job))| {
            // Cost-registry label: enough shape information (world size,
            // issuance grid, size grid, workload index) that a cell's key
            // is stable across runs but distinct between the different
            // figure sweeps that reuse the same job name.
            let pts: Vec<String> = points
                .iter()
                .map(|&t| format!("{:.0}", gbcr_des::time::as_secs_f64(t)))
                .collect();
            let gs: Vec<String> = sizes.iter().map(|s| s.to_string()).collect();
            let label = format!(
                "{job}/n{}/w{i}/at{}/g{}",
                spec.mpi.n,
                pts.join("-"),
                gs.join("-")
            );
            SweepGroup::labeled(spec.clone(), sweep_cfgs(job, points, sizes), label)
        })
        .collect();
    let reports = run_sweep(&groups, threads).expect("sweep runs");
    workloads
        .iter()
        .zip(reports)
        .map(|((spec, _), gr)| sweep_from_reports(spec.mpi.n, points, sizes, gr))
        .collect()
}

/// Run a sweep with explicit thread control: one baseline run plus one
/// checkpointed run per (point, size) pair, fanned over the
/// [`run_sweep`] worker pool. `job` must match the spec's image
/// namespace.
pub fn sweep_on(
    spec: &gbcr_core::JobSpec,
    job: &str,
    points: &[Time],
    sizes: &[u32],
    threads: Option<usize>,
) -> Sweep {
    sweep_many(&[(spec.clone(), job)], points, sizes, threads).pop().expect("one sweep")
}

/// Run a sweep with the default thread resolution (`GBCR_THREADS` or all
/// available cores).
pub fn sweep(
    spec: &gbcr_core::JobSpec,
    job: &str,
    points: &[Time],
    sizes: &[u32],
) -> Sweep {
    sweep_on(spec, job, points, sizes, None)
}
