//! Ablations of the paper's individual design choices:
//!
//! * **helper thread** (§4.4): with the passive-coordination helper thread
//!   disabled, a checkpointing member's per-connection FLUSH round waits
//!   for computing peers' next MPI calls instead of the 100 ms progress
//!   bound.
//! * **buffering split** (§4.3): how many bytes *message* buffering copies
//!   versus how many *request* buffering keeps un-copied, against what
//!   full message logging would have copied.
//! * **logging** (§2.1/§7): the message-logging alternative's failure-free
//!   cost compared with deferral.
//! * **group formation** (§4.1): static versus dynamic formation when the
//!   application's communication groups are not rank-contiguous.

use crate::static_cfg;
use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation, JobSpec, RunReport};
use gbcr_des::{time, Time};
use gbcr_metrics::{run_sweep, GroupReports, SweepGroup, Table};
use gbcr_storage::MB;
use gbcr_workloads::{GroupLayout, MicroBench, MotifMinerWorkload};

/// Run one spec with several configs through the parallel harness,
/// returning the baseline plus the per-config reports. All ablations fan
/// their runs out this way. `label` keys the cells in the cost registry
/// (ablation-unique, so persisted costs seed the LPT dispatch correctly).
fn sweep_one(
    spec: &JobSpec,
    cfgs: Vec<CoordinatorCfg>,
    threads: Option<usize>,
    label: &str,
) -> GroupReports {
    let group = SweepGroup::labeled(spec.clone(), cfgs, label);
    run_sweep(std::slice::from_ref(&group), threads)
        .expect("ablation runs")
        .pop()
        .expect("one group in, one out")
}

/// Effective delay of a checkpointed run against its baseline, seconds.
fn eff_secs(baseline: &RunReport, ck: &RunReport) -> f64 {
    time::as_secs_f64(ck.completion.saturating_sub(baseline.completion))
}

/// Result of the helper-thread ablation.
#[derive(Debug, Clone, Copy)]
pub struct ProgressAblation {
    /// Effective delay with the helper thread (seconds).
    pub with_helper: f64,
    /// Effective delay without it (seconds).
    pub without_helper: f64,
}

/// §4.4: run a compute-heavy workload (MotifMiner's long chunks) with and
/// without the helper thread. Without it, FLUSH_ACKs from computing peers
/// arrive only at their next library call, stretching every group's
/// pre-checkpoint coordination.
pub fn progress_ablation() -> ProgressAblation {
    progress_ablation_threaded(None)
}

/// [`progress_ablation`] with explicit worker-thread control.
pub fn progress_ablation_threaded(threads: Option<usize>) -> ProgressAblation {
    // t = 130 s: the first allgather (≈115 s) has established the ring
    // connections and every rank is deep in iteration 1's compute, so the
    // members' FLUSH rounds depend on passive peers' progress.
    let groups: Vec<SweepGroup> = [true, false]
        .iter()
        .map(|&helper| {
            let mut spec = MotifMinerWorkload::default().job(None);
            spec.mpi.helper_thread = helper;
            SweepGroup::labeled(
                spec,
                vec![static_cfg("motifminer", 4, time::secs(130))],
                format!("ab-progress/helper{}", u32::from(helper)),
            )
        })
        .collect();
    let reports = run_sweep(&groups, threads).expect("ablation runs");
    let eff = |gr: &GroupReports| eff_secs(&gr.baseline, &gr.runs[0]);
    ProgressAblation { with_helper: eff(&reports[0]), without_helper: eff(&reports[1]) }
}

/// Render the §4.4 ablation.
pub fn progress_table(a: &ProgressAblation) -> Table {
    let mut t = Table::new(
        "Ablation §4.4 — passive-coordination helper thread (MotifMiner, g=4, t=130 s)",
        &["helper thread", "effective delay (s)"],
    );
    t.row(&["enabled (100 ms bound)".into(), format!("{:.1}", a.with_helper)]);
    t.row(&["disabled".into(), format!("{:.1}", a.without_helper)]);
    t
}

/// Result of the buffering-split ablation.
#[derive(Debug, Clone, Copy)]
pub struct BufferingAblation {
    /// Operations / bytes held by message buffering (copied).
    pub msg_ops: u64,
    /// Bytes message buffering copied.
    pub msg_bytes: u64,
    /// Operations request buffering kept incomplete.
    pub req_ops: u64,
    /// User bytes request buffering did **not** copy.
    pub req_bytes: u64,
}

impl BufferingAblation {
    /// Bytes full message logging would have copied for the same deferred
    /// traffic (both classes).
    pub fn logging_equivalent_bytes(&self) -> u64 {
        self.msg_bytes + self.req_bytes
    }
}

/// §4.3: run a group-based checkpoint over mixed eager/rendezvous traffic
/// and account where the deferred bytes went.
pub fn buffering_ablation() -> BufferingAblation {
    buffering_ablation_threaded(None)
}

/// [`buffering_ablation`] with explicit worker-thread control.
pub fn buffering_ablation_threaded(threads: Option<usize>) -> BufferingAblation {
    // Issue the checkpoint at a point where ranks reach their next panel's
    // cross-group communication inside the epoch, so traffic actually
    // defers (at t=50 s the whole epoch fits inside panel 0's update and
    // nothing needs buffering — which is itself the paper's best case).
    let w = gbcr_workloads::HplWorkload::default();
    let gr = sweep_one(
        &w.job(None),
        vec![static_cfg("hpl", 4, time::secs(100))],
        threads,
        "ab-buffering",
    );
    let d = &gr.runs[0].defer_stats;
    BufferingAblation {
        msg_ops: d.msg_buffered,
        msg_bytes: d.msg_buffered_bytes,
        req_ops: d.req_buffered,
        req_bytes: d.req_buffered_bytes,
    }
}

/// Render the §4.3 ablation.
pub fn buffering_table(a: &BufferingAblation) -> Table {
    let mut t = Table::new(
        "Ablation §4.3 — message vs request buffering (HPL, g=4, t=100 s)",
        &["class", "deferred ops", "bytes copied", "bytes NOT copied"],
    );
    t.row(&[
        "message buffering (small/eager)".into(),
        a.msg_ops.to_string(),
        format!("{:.1} MB", a.msg_bytes as f64 / MB as f64),
        "0".into(),
    ]);
    t.row(&[
        "request buffering (large/rendezvous)".into(),
        a.req_ops.to_string(),
        "0".into(),
        format!("{:.1} MB", a.req_bytes as f64 / MB as f64),
    ]);
    t.row(&[
        "full message logging would copy".into(),
        (a.msg_ops + a.req_ops).to_string(),
        format!("{:.1} MB", a.logging_equivalent_bytes() as f64 / MB as f64),
        "-".into(),
    ]);
    t
}

/// Result of the logging-mode ablation.
#[derive(Debug, Clone, Copy)]
pub struct LoggingAblation {
    /// Effective delay under deferral/buffering (seconds).
    pub buffering_effective: f64,
    /// Effective delay under message logging (seconds).
    pub logging_effective: f64,
    /// Bytes copied into logs during the epoch.
    pub logged_bytes: u64,
}

/// §2.1/§7: the message-logging alternative on a message-rate-heavy
/// micro-benchmark. Logging lets everything flow (no deferral stalls) but
/// copies every message and forfeits zero-copy rendezvous.
pub fn logging_ablation() -> LoggingAblation {
    logging_ablation_threaded(None)
}

/// [`logging_ablation`] with explicit worker-thread control.
pub fn logging_ablation_threaded(threads: Option<usize>) -> LoggingAblation {
    let mb = MicroBench {
        msg_size: 2 * MB, // rendezvous-sized: logging forfeits zero-copy
        step_compute: time::ms(50),
        ..Default::default()
    };
    let cfg = |mode: CkptMode| CoordinatorCfg {
        job: "micro".into(),
        mode,
        formation: Formation::Static { group_size: 8 },
        schedule: CkptSchedule::once(time::secs(10)),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let gr = sweep_one(
        &mb.job(),
        vec![cfg(CkptMode::Buffering), cfg(CkptMode::Logging)],
        threads,
        "ab-logging",
    );
    LoggingAblation {
        buffering_effective: eff_secs(&gr.baseline, &gr.runs[0]),
        logging_effective: eff_secs(&gr.baseline, &gr.runs[1]),
        logged_bytes: gr.runs[1].logged_bytes,
    }
}

/// Render the logging ablation.
pub fn logging_table(a: &LoggingAblation) -> Table {
    let mut t = Table::new(
        "Ablation §2.1/§7 — deferral (buffering) vs message logging (micro, 2 MB msgs, g=8)",
        &["mode", "effective delay (s)", "bytes logged"],
    );
    t.row(&["buffering (paper)".into(), format!("{:.1}", a.buffering_effective), "0".into()]);
    t.row(&[
        "message logging".into(),
        format!("{:.1}", a.logging_effective),
        format!("{:.0} MB", a.logged_bytes as f64 / MB as f64),
    ]);
    t
}

/// Result of the Chandy-Lamport comparator study (§2.1).
#[derive(Debug, Clone, Copy)]
pub struct ChandyLamportAblation {
    /// Effective delay, idealized non-blocking CL (seconds).
    pub cl_effective: f64,
    /// Total checkpoint time, CL (seconds).
    pub cl_total: f64,
    /// Channel-state bytes CL logged.
    pub cl_logged: u64,
    /// Effective delay, group-based g=4 (seconds).
    pub grouped_effective: f64,
    /// Total checkpoint time, group-based (seconds).
    pub grouped_total: f64,
    /// Effective delay, regular blocking All(32) (seconds).
    pub regular_effective: f64,
}

/// §2.1: an *idealized* non-blocking Chandy-Lamport checkpoint (background
/// writes, no connection teardown — infeasible on real InfiniBand) against
/// regular blocking and group-based checkpointing on the micro-benchmark.
/// CL minimizes the effective delay but leaves every process writing at
/// once (same total time as regular = long vulnerability window) and logs
/// channel state; group-based keeps the total sliced and logs nothing.
pub fn chandy_lamport_ablation() -> ChandyLamportAblation {
    chandy_lamport_ablation_threaded(None)
}

/// [`chandy_lamport_ablation`] with explicit worker-thread control.
pub fn chandy_lamport_ablation_threaded(threads: Option<usize>) -> ChandyLamportAblation {
    let mb = MicroBench::default();
    let cfg = |mode: CkptMode, g: u32| CoordinatorCfg {
        job: "micro".into(),
        mode,
        formation: Formation::Static { group_size: g },
        schedule: CkptSchedule::once(time::secs(30)),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let gr = sweep_one(
        &mb.job(),
        vec![
            cfg(CkptMode::ChandyLamport, 32),
            cfg(CkptMode::Buffering, 4),
            cfg(CkptMode::Buffering, 32),
        ],
        threads,
        "ab-chandy-lamport",
    );
    let (cl, grouped, regular) = (&gr.runs[0], &gr.runs[1], &gr.runs[2]);
    ChandyLamportAblation {
        cl_effective: eff_secs(&gr.baseline, cl),
        cl_total: time::as_secs_f64(cl.epochs[0].total_time()),
        cl_logged: cl.channel_logged_bytes,
        grouped_effective: eff_secs(&gr.baseline, grouped),
        grouped_total: time::as_secs_f64(grouped.epochs[0].total_time()),
        regular_effective: eff_secs(&gr.baseline, regular),
    }
}

/// Render the CL comparator study.
pub fn chandy_lamport_table(a: &ChandyLamportAblation) -> Table {
    let mut t = Table::new(
        "Comparator §2.1 — idealized non-blocking Chandy-Lamport vs blocking protocols (micro, 32 ranks)",
        &["protocol", "effective (s)", "total ckpt time (s)", "logs", "IB-feasible"],
    );
    t.row(&[
        "regular blocking All(32)".into(),
        format!("{:.1}", a.regular_effective),
        format!("{:.1}", a.cl_total), // same storage sharing as CL
        "none".into(),
        "yes".into(),
    ]);
    t.row(&[
        "Chandy-Lamport (idealized)".into(),
        format!("{:.1}", a.cl_effective),
        format!("{:.1}", a.cl_total),
        format!("{:.1} MB channel state", a.cl_logged as f64 / MB as f64),
        "no (NIC state, §2.2)".into(),
    ]);
    t.row(&[
        "group-based g=4 (paper)".into(),
        format!("{:.1}", a.grouped_effective),
        format!("{:.1}", a.grouped_total),
        "none".into(),
        "yes".into(),
    ]);
    t
}

/// Result of the incremental-checkpointing extension study (§8).
#[derive(Debug, Clone, Copy)]
pub struct IncrementalAblation {
    /// Second-epoch Total Checkpoint Time with full images (seconds).
    pub full_total: f64,
    /// Second-epoch Total Checkpoint Time with incremental images.
    pub incremental_total: f64,
    /// Second-epoch effective delay with full images.
    pub full_effective: f64,
    /// Second-epoch effective delay with incremental images.
    pub incremental_effective: f64,
}

/// §8 (future work, implemented): group-based + incremental checkpointing.
/// MotifMiner's candidate tables churn ~1/12 of the footprint per
/// iteration, so the second epoch's incremental images are an order of
/// magnitude smaller than full ones. (HPL is the counter-case: its
/// trailing update dirties nearly the whole footprint between epochs, so
/// incremental buys little there — both behaviors are real.)
pub fn incremental_ablation() -> IncrementalAblation {
    incremental_ablation_threaded(None)
}

/// [`incremental_ablation`] with explicit worker-thread control.
pub fn incremental_ablation_threaded(threads: Option<usize>) -> IncrementalAblation {
    let w = MotifMinerWorkload::default();
    let cfg = |incremental: bool| CoordinatorCfg {
        job: "motifminer".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: 4 },
        schedule: CkptSchedule { at: vec![time::secs(30), time::secs(150)] },
        incremental,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let gr = sweep_one(&w.job(None), vec![cfg(false), cfg(true)], threads, "ab-incremental");
    let (full, inc) = (&gr.runs[0], &gr.runs[1]);
    IncrementalAblation {
        full_total: time::as_secs_f64(full.epochs[1].total_time()),
        incremental_total: time::as_secs_f64(inc.epochs[1].total_time()),
        full_effective: eff_secs(&gr.baseline, full),
        incremental_effective: eff_secs(&gr.baseline, inc),
    }
}

/// Render the incremental extension study.
pub fn incremental_table(a: &IncrementalAblation) -> Table {
    let mut t = Table::new(
        "Extension §8 — group-based + incremental checkpointing (MotifMiner, g=4, epochs at 30/150 s)",
        &["images", "2nd-epoch total (s)", "run effective delay, both epochs (s)"],
    );
    t.row(&["full".into(), format!("{:.1}", a.full_total), format!("{:.1}", a.full_effective)]);
    t.row(&[
        "incremental".into(),
        format!("{:.1}", a.incremental_total),
        format!("{:.1}", a.incremental_effective),
    ]);
    t
}

/// Result of the group-formation ablation.
#[derive(Debug, Clone, Copy)]
pub struct FormationAblation {
    /// Effective delay with static (rank-order) groups of 4 (seconds).
    pub static_effective: f64,
    /// Effective delay with dynamically formed groups (seconds).
    pub dynamic_effective: f64,
    /// Groups the dynamic formation found.
    pub dynamic_groups: usize,
}

/// §4.1: strided communication groups (members `{i, i+8, i+16, i+24}`)
/// defeat rank-order static formation; dynamic formation recovers the true
/// groups from measured traffic.
pub fn formation_ablation() -> FormationAblation {
    formation_ablation_threaded(None)
}

/// [`formation_ablation`] with explicit worker-thread control.
pub fn formation_ablation_threaded(threads: Option<usize>) -> FormationAblation {
    let mb = MicroBench {
        comm_group_size: 4,
        layout: GroupLayout::Strided,
        ..Default::default()
    };
    let spec: JobSpec = mb.job();
    let at: Time = time::secs(30);
    let dyn_cfg = CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Dynamic {
            frequent_fraction: 0.2,
            fallback_group_size: 4,
            max_group_size: 8,
        },
        schedule: CkptSchedule::once(at),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let gr = sweep_one(&spec, vec![static_cfg("micro", 4, at), dyn_cfg], threads, "ab-formation");
    let (stat, dynr) = (&gr.runs[0], &gr.runs[1]);
    FormationAblation {
        static_effective: eff_secs(&gr.baseline, stat),
        dynamic_effective: eff_secs(&gr.baseline, dynr),
        dynamic_groups: dynr.epochs[0].plan.group_count(),
    }
}

/// Render the formation ablation.
pub fn formation_table(a: &FormationAblation) -> Table {
    let mut t = Table::new(
        "Ablation §4.1 — static vs dynamic formation (strided comm groups of 4)",
        &["formation", "effective delay (s)", "groups"],
    );
    t.row(&["static by rank (misaligned)".into(), format!("{:.1}", a.static_effective), "8".into()]);
    t.row(&[
        "dynamic (traffic closure)".into(),
        format!("{:.1}", a.dynamic_effective),
        a.dynamic_groups.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_thread_bounds_coordination_delay() {
        let a = progress_ablation();
        assert!(
            a.without_helper > a.with_helper + 5.0,
            "disabling the helper thread must visibly stretch the delay: {a:?}"
        );
    }

    #[test]
    fn request_buffering_avoids_most_copies() {
        let a = buffering_ablation();
        assert!(a.req_ops > 0, "rendezvous traffic must have been deferred: {a:?}");
        assert!(
            a.req_bytes > 4 * a.msg_bytes,
            "request buffering should dodge the bulk of the bytes: {a:?}"
        );
    }

    #[test]
    fn logging_copies_bytes_that_buffering_does_not() {
        let a = logging_ablation();
        assert!(a.logged_bytes > 100 * MB, "epoch traffic must be logged: {a:?}");
    }

    #[test]
    fn idealized_cl_minimizes_delay_but_not_total() {
        let a = chandy_lamport_ablation();
        assert!(a.cl_effective < 0.3 * a.regular_effective, "{a:?}");
        assert!(
            (a.cl_total - a.regular_effective).abs() / a.regular_effective < 0.2,
            "CL total should match the regular protocol's storage-bound time: {a:?}"
        );
        assert!(a.grouped_total > 2.0 * a.grouped_effective, "{a:?}");
    }

    #[test]
    fn incremental_shrinks_later_epochs() {
        let a = incremental_ablation();
        assert!(
            a.incremental_total < 0.75 * a.full_total,
            "incremental second epoch should be much cheaper: {a:?}"
        );
        assert!(a.incremental_effective <= a.full_effective + 1.0);
    }

    #[test]
    fn dynamic_formation_recovers_strided_groups() {
        let a = formation_ablation();
        assert_eq!(a.dynamic_groups, 8, "dynamic formation should find the 8 true groups");
        assert!(
            a.dynamic_effective < 0.75 * a.static_effective,
            "dynamic groups must beat misaligned static ones: {a:?}"
        );
    }
}
