//! Figure 10 (extension): multi-tenant checkpoint interference — P99
//! epoch latency and per-tenant goodput vs co-tenant checkpoint load.
//!
//! Every cell is one [`run_cluster`] simulation: `load` tenants (each a
//! small ring-exchange job of [`N_PER_TENANT`] ranks) share one central
//! storage array and a fair-shared fabric, under one of two deployment
//! classes:
//!
//! * **clusterwide** — every tenant checkpoints its whole job at the
//!   *same* aligned instants (the naive "everyone on the hour"
//!   deployment): the array absorbs `load × n` simultaneous image
//!   writes, so each tenant's epoch latency grows with the co-tenant
//!   load — the synchronized-storm collapse.
//! * **group** — group-based staggering: each tenant checkpoints one
//!   rank-group at a time ([`gbcr_core::Formation::Static`] of 1) and
//!   tenants' schedules are phase-staggered across the interval, so the
//!   array sees a near-constant trickle and P99 stays bounded.
//!
//! Aggregate checkpoint demand is kept below the array's capacity at
//! every load, so the contrast is pure scheduling: the same bytes move
//! either as one synchronized storm or as a spread-out trickle. Goodput
//! is each tenant's solo completion (dedicated array + full-bandwidth
//! fabric, same policy) divided by its in-cluster completion. Cluster
//! cells run traced at [`TraceLevel::Phases`]; coordinator spans carry
//! the tenant name, and [`gbcr_metrics::tenancy::span_time_by_job`]
//! attributes per-tenant phase time from the interleaved trace.

use gbcr_core::cluster::{
    percentile, run_cluster, ClusterReport, ClusterSpec, ClusterTenant, TenantPolicy,
};
use gbcr_core::StoreBackend;
use gbcr_des::{time, Time, TraceLevel};
use gbcr_metrics::{run_cells, Table};
use gbcr_blcr::LocalCrConfig;
use gbcr_workloads::{GroupLayout, MicroBench};

/// Cluster simulation seed (model outputs are independent of it).
pub const SEED: u64 = 0xF1_0A;

/// Co-tenant loads swept (concurrent tenants per cell).
pub const LOADS: [usize; 4] = [32, 64, 128, 256];

/// Ranks per tenant job.
pub const N_PER_TENANT: u32 = 2;

/// Checkpoint interval for every tenant (milliseconds).
pub const INTERVAL_MS: u64 = 1_000;

/// Scheduled epochs per tenant.
pub const EPOCHS: u32 = 2;

/// Per-rank memory footprint (bytes). Sized so the aggregate per-epoch
/// demand at the highest load (`256 × 2 × 192 KB ≈ 96 MB`) stays under
/// the array's ~140 MB/s aggregate for one interval — the contrast
/// between the classes is scheduling, not raw overload.
pub const FOOTPRINT: u64 = 192 * 1024;

/// The deployment class a cell runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Whole-job checkpoints, aligned across tenants.
    Clusterwide,
    /// One rank-group at a time, schedules phase-staggered across tenants.
    Group,
}

impl Class {
    /// The flag/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            Class::Clusterwide => "clusterwide",
            Class::Group => "group",
        }
    }
}

/// Both classes, in sweep order.
pub const CLASSES: [Class; 2] = [Class::Clusterwide, Class::Group];

/// Tenant `i`'s workload: a 2-rank ring-exchange micro job with a unique
/// name (tenant names namespace checkpoint objects on the shared array).
pub fn tenant_spec(i: usize) -> gbcr_core::JobSpec {
    let mut spec = MicroBench {
        n: N_PER_TENANT,
        comm_group_size: N_PER_TENANT,
        footprint: FOOTPRINT,
        step_compute: time::ms(10),
        steps: 250,
        msg_size: 16 * 1024,
        layout: GroupLayout::Blocked,
    }
    .job();
    spec.name = format!("t{i:03}");
    // Small cloud tenants freeze/thaw fast: with the default BLCR quiesce
    // costs (200 ms + 50 ms per process) the *fixed* overhead would dwarf
    // the 192 KB image writes and bury the storage-contention signal this
    // figure isolates.
    spec.blcr = LocalCrConfig { freeze_overhead: time::ms(2), thaw_overhead: time::ms(1) };
    spec
}

/// Tenant `i`'s checkpoint policy under `class` at co-tenant load `load`.
pub fn tenant_policy(class: Class, i: usize, load: usize) -> TenantPolicy {
    let interval = time::ms(INTERVAL_MS);
    let (group_size, offset) = match class {
        // Aligned: every tenant's whole job at t = interval, 2·interval.
        Class::Clusterwide => (N_PER_TENANT, interval),
        // Staggered: tenant i's schedule shifted by i/load of an interval,
        // and only one rank checkpoints at a time within the tenant.
        Class::Group => (1, interval + (i as Time) * interval / load as Time),
    };
    TenantPolicy {
        interval,
        offset,
        epochs: EPOCHS,
        group_size,
        backend: StoreBackend::Central,
        ckpt_bytes: FOOTPRINT * u64::from(N_PER_TENANT),
    }
}

/// The cluster a `(class, load)` cell simulates.
pub fn cluster_for(class: Class, load: usize) -> ClusterSpec {
    ClusterSpec {
        seed: SEED,
        tenants: (0..load)
            .map(|i| ClusterTenant {
                spec: tenant_spec(i),
                policy: tenant_policy(class, i, load),
            })
            .collect(),
        ..ClusterSpec::new(Vec::new())
    }
}

/// One tenant's measured row within a cell.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// In-cluster completion, seconds.
    pub completion_s: f64,
    /// Solo completion / in-cluster completion (≤ 1 under interference).
    pub goodput: f64,
    /// P99 of the tenant's own epoch latencies, milliseconds.
    pub p99_epoch_ms: f64,
    /// Traced coordinator phase time attributed to this tenant, ms.
    pub phase_ms: f64,
}

/// One measured `(class, load)` cell.
#[derive(Debug, Clone)]
pub struct LoadCell {
    /// Deployment class.
    pub class: Class,
    /// Concurrent tenants.
    pub tenants: usize,
    /// P99 epoch latency across every tenant epoch, milliseconds.
    pub p99_epoch_ms: f64,
    /// Mean epoch latency, milliseconds.
    pub mean_epoch_ms: f64,
    /// Worst epoch latency, milliseconds.
    pub max_epoch_ms: f64,
    /// Mean per-tenant goodput.
    pub goodput_mean: f64,
    /// Worst per-tenant goodput.
    pub goodput_min: f64,
    /// Peak simultaneously active transfers on the shared array — the
    /// storm depth the scheduling classes differ by.
    pub peak_streams: u64,
    /// Simulated events the cluster run dispatched (simulator cost).
    pub events: u64,
    /// Per-tenant rows, in tenant order.
    pub per_tenant: Vec<TenantRow>,
}

/// The full interference sweep.
#[derive(Debug, Clone)]
pub struct Fig10Sweep {
    /// Ranks per tenant.
    pub n_per_tenant: u32,
    /// Checkpoint interval, milliseconds.
    pub interval_ms: u64,
    /// Cluster seed.
    pub seed: u64,
    /// Swept loads.
    pub loads: Vec<usize>,
    /// Cells in (load-major, class-minor) order.
    pub cells: Vec<LoadCell>,
}

impl Fig10Sweep {
    /// The cell for `(class, load)`.
    pub fn cell(&self, class: Class, load: usize) -> &LoadCell {
        self.cells
            .iter()
            .find(|c| c.class == class && c.tenants == load)
            .expect("cell in sweep")
    }
}

fn ms(t: Time) -> f64 {
    time::as_millis_f64(t)
}

/// Run one `(class, load)` cell: simulate the cluster (traced), then each
/// tenant's solo baseline, and fold both into a [`LoadCell`].
pub fn run_cell(class: Class, load: usize) -> LoadCell {
    let spec = cluster_for(class, load);
    let report: ClusterReport =
        run_cluster(&spec, Some(TraceLevel::Phases)).expect("cluster run");
    let trace = report.trace.as_deref().expect("traced cluster run records spans");
    let phase_by_job = gbcr_metrics::tenancy::span_time_by_job(trace, "phase.");

    let mut per_tenant = Vec::with_capacity(load);
    let mut goodputs = Vec::with_capacity(load);
    let mut all_epochs: Vec<Time> = Vec::new();
    for (i, t) in report.tenants.iter().enumerate() {
        assert_eq!(
            t.finished_ranks, N_PER_TENANT,
            "tenant {} did not finish",
            t.name
        );
        let solo = tenant_spec(i)
            .runner()
            .ckpt(tenant_policy(class, i, load).ckpt_cfg(&t.name))
            .run()
            .expect("solo baseline");
        let goodput = time::as_secs_f64(solo.completion) / time::as_secs_f64(t.completion);
        goodputs.push(goodput);
        all_epochs.extend(t.epochs.iter().map(|e| e.total_time()));
        let phase_ms = phase_by_job
            .iter()
            .find(|(job, _, _)| *job == t.name)
            .map(|&(_, time, _)| ms(time))
            .unwrap_or(0.0);
        per_tenant.push(TenantRow {
            name: t.name.clone(),
            completion_s: time::as_secs_f64(t.completion),
            goodput,
            p99_epoch_ms: ms(t.p99_epoch()),
            phase_ms,
        });
    }
    LoadCell {
        class,
        tenants: load,
        p99_epoch_ms: ms(percentile(all_epochs.iter().copied(), 0.99)),
        mean_epoch_ms: if all_epochs.is_empty() {
            0.0
        } else {
            ms(all_epochs.iter().sum::<Time>()) / all_epochs.len() as f64
        },
        max_epoch_ms: ms(all_epochs.iter().copied().max().unwrap_or(0)),
        goodput_mean: goodputs.iter().sum::<f64>() / goodputs.len().max(1) as f64,
        goodput_min: goodputs.iter().copied().fold(f64::INFINITY, f64::min).min(1e9),
        peak_streams: report
            .storage_stats
            .iter()
            .map(|s| s.peak_concurrent_streams())
            .max()
            .unwrap_or(0),
        events: report.events,
        per_tenant,
    }
}

/// Run the full sweep (default loads).
pub fn run() -> Fig10Sweep {
    run_threaded(&LOADS, None)
}

/// Run with an explicit load grid and worker-thread control. Cells are
/// independent cluster simulations, fanned over the harness pool; results
/// are deterministic and thread-count independent.
pub fn run_threaded(loads: &[usize], threads: Option<usize>) -> Fig10Sweep {
    let tasks: Vec<(Class, usize)> = loads
        .iter()
        .flat_map(|&l| CLASSES.iter().map(move |&c| (c, l)))
        .collect();
    let cells = run_cells(tasks.len(), threads, |k| {
        let (class, load) = tasks[k];
        run_cell(class, load)
    });
    Fig10Sweep {
        n_per_tenant: N_PER_TENANT,
        interval_ms: INTERVAL_MS,
        seed: SEED,
        loads: loads.to_vec(),
        cells,
    }
}

/// P99/goodput per class × load.
pub fn table(sw: &Fig10Sweep) -> Table {
    let mut header: Vec<String> = vec!["class".into()];
    header.extend(sw.loads.iter().map(|l| format!("{l} tenants")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 10 — multi-tenant checkpoint interference, {} ranks/tenant \
             (P99 epoch ms / mean goodput / peak streams)",
            sw.n_per_tenant
        ),
        &header_refs,
    );
    for class in CLASSES {
        let mut row = vec![class.name().to_string()];
        for &l in &sw.loads {
            let c = sw.cell(class, l);
            row.push(format!(
                "{:.1} / {:.3} / {}",
                c.p99_epoch_ms, c.goodput_mean, c.peak_streams
            ));
        }
        t.row(&row);
    }
    t
}

/// The `"fig10"` JSON block `make_all --fig10` embeds in its run record.
/// `tenants[]` carries per-tenant rows for the highest swept load only
/// (both classes); the aggregate `cells[]` covers every load.
pub fn json_block(sw: &Fig10Sweep) -> String {
    let mut j = String::from("{\n");
    j.push_str(&format!("    \"n_per_tenant\": {},\n", sw.n_per_tenant));
    j.push_str(&format!("    \"interval_ms\": {},\n", sw.interval_ms));
    j.push_str(&format!("    \"seed\": {},\n", sw.seed));
    j.push_str(&format!(
        "    \"loads\": [{}],\n",
        sw.loads.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    j.push_str("    \"cells\": [\n");
    for (i, c) in sw.cells.iter().enumerate() {
        let comma = if i + 1 == sw.cells.len() { "" } else { "," };
        j.push_str(&format!(
            "      {{\"class\": \"{}\", \"tenants\": {}, \"p99_epoch_ms\": {:.3}, \
             \"mean_epoch_ms\": {:.3}, \"max_epoch_ms\": {:.3}, \"goodput\": {:.4}, \
             \"goodput_min\": {:.4}, \"peak_streams\": {}, \"events\": {}}}{comma}\n",
            c.class.name(),
            c.tenants,
            c.p99_epoch_ms,
            c.mean_epoch_ms,
            c.max_epoch_ms,
            c.goodput_mean,
            c.goodput_min,
            c.peak_streams,
            c.events,
        ));
    }
    j.push_str("    ],\n");
    let top = *sw.loads.iter().max().expect("non-empty loads");
    let rows: Vec<(&LoadCell, &TenantRow)> = CLASSES
        .iter()
        .flat_map(|&class| {
            let c = sw.cell(class, top);
            c.per_tenant.iter().map(move |r| (c, r))
        })
        .collect();
    j.push_str("    \"tenants\": [\n");
    for (i, (c, r)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        j.push_str(&format!(
            "      {{\"name\": \"{}\", \"class\": \"{}\", \"completion_s\": {:.4}, \
             \"goodput\": {:.4}, \"p99_epoch_ms\": {:.3}, \"phase_ms\": {:.3}}}{comma}\n",
            r.name, c.class.name(), r.completion_s, r.goodput, r.p99_epoch_ms, r.phase_ms,
        ));
    }
    j.push_str("    ]\n  }");
    j
}

/// The seeded 32-tenant smoke `scripts/tier1.sh` gates on: both classes
/// at the lowest load, asserting the group class's P99 stays strictly
/// under the clusterwide class's. Returns `(clusterwide, group)` cells
/// for the golden line.
pub fn smoke() -> (LoadCell, LoadCell) {
    let sw = run_threaded(&[32], Some(2));
    let cw = sw.cell(Class::Clusterwide, 32).clone();
    let gr = sw.cell(Class::Group, 32).clone();
    assert!(
        gr.p99_epoch_ms < cw.p99_epoch_ms,
        "group P99 {} must undercut clusterwide P99 {}",
        gr.p99_epoch_ms,
        cw.p99_epoch_ms
    );
    (cw, gr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: at the highest co-tenant load (256 concurrent
    /// tenants), group-based staggered checkpointing must hold P99 epoch
    /// latency strictly below aligned cluster-wide checkpointing — and the
    /// clusterwide class must actually collapse with load while the group
    /// class stays bounded. One sweep (lowest + highest load) covers both
    /// so the expensive 256-tenant cells simulate once.
    #[test]
    fn group_p99_beats_clusterwide_at_highest_load() {
        let (lo, hi) = (LOADS[0], *LOADS.last().unwrap());
        let sw = run_threaded(&[lo, hi], Some(2));
        let cw = sw.cell(Class::Clusterwide, hi);
        let gr = sw.cell(Class::Group, hi);
        assert_eq!(cw.per_tenant.len(), hi);
        assert_eq!(gr.per_tenant.len(), hi);
        assert!(
            gr.p99_epoch_ms < cw.p99_epoch_ms,
            "group P99 {:.1}ms not below clusterwide P99 {:.1}ms at {hi} tenants",
            gr.p99_epoch_ms,
            cw.p99_epoch_ms
        );
        // The mechanism, not just the outcome: the aligned storm must
        // actually pile deeper onto the array than the staggered trickle.
        assert!(
            gr.peak_streams < cw.peak_streams,
            "staggering should cut the storm depth ({} vs {})",
            gr.peak_streams,
            cw.peak_streams
        );
        // And the interference must cost aligned tenants real goodput.
        assert!(
            gr.goodput_mean > cw.goodput_mean,
            "group goodput {:.3} should beat clusterwide {:.3}",
            gr.goodput_mean,
            cw.goodput_mean
        );
        // Load monotonicity of the collapse: clusterwide P99 grows with
        // the co-tenant load; the group class stays bounded (within 2× of
        // its lowest-load value across an 8× load increase).
        let cw_lo = sw.cell(Class::Clusterwide, lo).p99_epoch_ms;
        let gr_lo = sw.cell(Class::Group, lo).p99_epoch_ms;
        assert!(
            cw.p99_epoch_ms > cw_lo * 2.0,
            "clusterwide must degrade with load ({cw_lo} → {})",
            cw.p99_epoch_ms
        );
        assert!(
            gr.p99_epoch_ms < gr_lo * 2.0,
            "group must stay bounded ({gr_lo} → {})",
            gr.p99_epoch_ms
        );
    }

    #[test]
    fn smoke_matches_golden() {
        let (cw, gr) = smoke();
        let line = format!(
            "{} {:.1} {:.1} {:.3} {:.3} {}/{}",
            cw.tenants,
            cw.p99_epoch_ms,
            gr.p99_epoch_ms,
            cw.goodput_mean,
            gr.goodput_mean,
            cw.peak_streams,
            gr.peak_streams
        );
        assert_eq!(line, "32 107.0 24.6 0.900 0.967 64/1");
    }
}
