//! Figure 4: checkpoint placement — Effective / Individual / Total
//! checkpoint time versus the issuance time relative to a global
//! synchronization line (§6.1; comm group = ckpt group = 8, global
//! barrier every minute).

use crate::{static_cfg, sweep_on, Sweep};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_workloads::PlacementBench;

/// Issuance times the paper sweeps (seconds); the barrier sits at 60 s and
/// 120 s.
pub const POINTS: [u64; 11] = [15, 25, 35, 45, 55, 65, 75, 85, 95, 105, 115];

/// Run the placement sweep at group size 8.
pub fn run() -> Sweep {
    run_with(&POINTS)
}

/// Run with custom issuance points (seconds).
pub fn run_with(points_secs: &[u64]) -> Sweep {
    run_threaded(points_secs, None)
}

/// [`run_with`] with explicit worker-thread control.
pub fn run_threaded(points_secs: &[u64], threads: Option<usize>) -> Sweep {
    let pb = PlacementBench::default();
    let points: Vec<_> = points_secs.iter().map(|&s| time::secs(s)).collect();
    sweep_on(&pb.job(), "placement", &points, &[8], threads)
}

/// Render the three series of the figure.
pub fn table(sw: &Sweep) -> Table {
    let mut t = Table::new(
        "Figure 4 — Checkpoint Placement (comm group 8, ckpt group 8, barrier every 60 s)",
        &["issuance (s)", "effective (s)", "individual (s)", "total (s)"],
    );
    for c in &sw.cells {
        t.row(&[
            format!("{:.0}", c.at_secs),
            format!("{:.1}", c.effective),
            format!("{:.1}", c.individual),
            format!("{:.1}", c.total),
        ]);
    }
    t
}

/// Convenience used by the ablation bench: a single placement measurement
/// at `at` seconds, returning the effective delay in seconds.
pub fn effective_at(at_secs: u64) -> f64 {
    let pb = PlacementBench::default();
    let base = pb.job().runner().run().expect("baseline");
    let ck = pb
        .job()
        .runner()
        .ckpt(static_cfg("placement", 8, time::secs(at_secs)))
        .run()
        .expect("ckpt run");
    time::as_secs_f64(ck.completion.saturating_sub(base.completion))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_lies_between_individual_and_total_and_peaks_near_barrier() {
        // Two points suffice for the shape: far from the barrier the delay
        // approaches Individual; just before it, Total.
        let sw = run_with(&[15, 55]);
        let far = &sw.cells[0];
        let near = &sw.cells[1];
        for c in [far, near] {
            assert!(c.effective >= c.individual_min - 0.5, "{c:?}");
            assert!(c.effective <= c.total + 1.0, "{c:?}");
        }
        assert!(
            near.effective > far.effective * 1.5,
            "delay near the barrier ({}) must exceed far ({})",
            near.effective,
            far.effective
        );
        assert!(
            far.effective < 0.5 * far.total,
            "far placement should be well below Total: {} vs {}",
            far.effective,
            far.total
        );
    }
}
