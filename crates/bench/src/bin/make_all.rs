//! Regenerate every figure and ablation in one pass (the EXPERIMENTS.md
//! source of truth). Prints everything to stdout; redirect to a file.
//!
//! All drivers fan their simulation cells over the parallel harness
//! (`gbcr_metrics::run_sweep`), which dispatches cells longest-first
//! using per-cell costs seeded from the previous run's `--json` record
//! (first run: unknown cells go first and get measured). Flags:
//!
//! * `--threads N` — worker pool size (default: `GBCR_THREADS` env, then
//!   all available cores). Requests above the core count run but are
//!   flagged as oversubscribed — the measured speedup is then meaningless.
//! * `--smoke` — tiny sweeps only (used by `scripts/tier1.sh`).
//! * `--serial-check` — rerun everything on one worker and verify the
//!   rendered tables are byte-identical, recording the speedup; then
//!   rerun once more in legacy *polled* progress mode and verify the
//!   tables again (demand-driven wake elision must not change any
//!   output); then rerun once more on the legacy *threaded* executor and
//!   verify once more (pooled coroutine execution must not change any
//!   output either).
//! * `--sched` — rerun everything under the *other* event scheduler
//!   (parallel conservative-window if the run defaulted to serial, and
//!   vice versa; the parallel pass forces ≥2 shards) and verify every
//!   rendered table is byte-identical, reporting per-backend wall time
//!   side by side.
//! * `--scale` — append the scale study (group-based vs whole-cluster
//!   delay from 256 ranks up; smoke sizes under `--smoke`) and emit its
//!   telemetry as the `scale` block of the `--json` record.
//! * `--json [PATH]` — write a machine-readable run record (per-figure
//!   wall ms, thread count, simulated-event totals, elided wakes,
//!   per-cell costs) to PATH (default `BENCH_harness.json`).
//! * `--trace [PATH]` — turn on phase-level span capture for every sweep
//!   cell (per-cell phase latency stats then land in the `--json` record)
//!   and export the traced 4-rank smoke as Chrome/Perfetto JSON at PATH
//!   (default `target/trace_smoke.json`). Capture only observes: every
//!   rendered table stays byte-identical to an untraced run.

use gbcr_bench::{
    ablations, fig1, fig10, fig3, fig4, fig5, fig7, fig8, fig9, scale, seed, trace, GROUP_SIZES,
};
use std::time::Instant;

struct Args {
    threads: Option<usize>,
    smoke: bool,
    serial_check: bool,
    sched_check: bool,
    faults: bool,
    fig9: bool,
    fig10: bool,
    backend: fig8::Backend,
    scale: bool,
    json: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        threads: None,
        smoke: false,
        serial_check: false,
        sched_check: false,
        faults: false,
        fig9: false,
        fig10: false,
        backend: fig8::Backend::Central,
        scale: false,
        json: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                });
                out.threads = Some(n);
            }
            "--smoke" => out.smoke = true,
            "--serial-check" => out.serial_check = true,
            "--sched" => out.sched_check = true,
            "--faults" => out.faults = true,
            "--fig9" => out.fig9 = true,
            "--fig10" => out.fig10 = true,
            "--backend" => {
                out.backend = it
                    .next()
                    .as_deref()
                    .and_then(fig8::Backend::parse)
                    .unwrap_or_else(|| {
                        eprintln!("--backend needs one of: central, failover, replicated");
                        std::process::exit(2);
                    });
            }
            "--scale" => out.scale = true,
            "--json" => {
                out.json = Some(match it.peek() {
                    Some(v) if !v.starts_with('-') => it.next().unwrap(),
                    _ => "BENCH_harness.json".to_owned(),
                });
            }
            "--trace" => {
                out.trace = Some(match it.peek() {
                    Some(v) if !v.starts_with('-') => it.next().unwrap(),
                    _ => "target/trace_smoke.json".to_owned(),
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: make_all [--threads N] [--smoke] [--serial-check] [--sched] \
                     [--faults] [--fig9] [--fig10] \
                     [--backend central|failover|replicated] [--scale] \
                     [--json [PATH]] [--trace [PATH]]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

type Renderer = Box<dyn Fn(Option<usize>) -> String>;

/// Every section of the report: name plus a renderer taking the worker
/// count. Each renderer is deterministic, so its output must not depend
/// on `threads`.
fn sections(smoke: bool) -> Vec<(&'static str, Renderer)> {
    let mut s: Vec<(&'static str, Renderer)> = Vec::new();
    s.push(("fig1", Box::new(|_| fig1::table(&fig1::run()).render())));
    if smoke {
        s.push((
            "fig3",
            Box::new(|t| fig3::table(&fig3::run_threaded(8, &[4], &[8, 4], t)).render()),
        ));
        s.push((
            "fig4",
            Box::new(|t| fig4::table(&fig4::run_threaded(&[15, 55], t)).render()),
        ));
        s.push((
            "fig5",
            Box::new(|t| fig5::table(&fig5::run_threaded(&[50, 150], &[32, 4], t)).render()),
        ));
        s.push((
            "fig7",
            Box::new(|t| fig7::table(&fig7::run_threaded(&[30], &[32, 4], t)).render()),
        ));
        return s;
    }
    s.push((
        "fig3",
        Box::new(|t| {
            fig3::table(&fig3::run_threaded(32, &fig3::COMM_SIZES, &GROUP_SIZES, t)).render()
        }),
    ));
    s.push((
        "fig4",
        Box::new(|t| fig4::table(&fig4::run_threaded(&fig4::POINTS, t)).render()),
    ));
    s.push((
        "fig5+6",
        Box::new(|t| {
            let sw = fig5::run_threaded(&fig5::POINTS, &GROUP_SIZES, t);
            let mut out = fig5::table(&sw).render();
            out.push('\n');
            out.push_str(
                &fig5::summary_table(
                    &sw,
                    "Figure 6 — HPL Effective Checkpoint Delay per group size (avg with min/max)",
                )
                .render(),
            );
            out
        }),
    ));
    s.push((
        "fig7",
        Box::new(|t| {
            let sw = fig7::run_threaded(&fig7::POINTS, &GROUP_SIZES, t);
            let mut out = fig7::table(&sw).render();
            out.push('\n');
            out.push_str(
                &fig5::summary_table(
                    &sw,
                    "Figure 7 summary — MotifMiner average effective delay per group size",
                )
                .render(),
            );
            out
        }),
    ));
    s.push((
        "ablation-progress",
        Box::new(|t| ablations::progress_table(&ablations::progress_ablation_threaded(t)).render()),
    ));
    s.push((
        "ablation-buffering",
        Box::new(|t| {
            ablations::buffering_table(&ablations::buffering_ablation_threaded(t)).render()
        }),
    ));
    s.push((
        "ablation-logging",
        Box::new(|t| ablations::logging_table(&ablations::logging_ablation_threaded(t)).render()),
    ));
    s.push((
        "ablation-formation",
        Box::new(|t| {
            ablations::formation_table(&ablations::formation_ablation_threaded(t)).render()
        }),
    ));
    s.push((
        "comparator-chandy-lamport",
        Box::new(|t| {
            ablations::chandy_lamport_table(&ablations::chandy_lamport_ablation_threaded(t))
                .render()
        }),
    ));
    s.push((
        "extension-incremental",
        Box::new(|t| {
            ablations::incremental_table(&ablations::incremental_ablation_threaded(t)).render()
        }),
    ));
    s
}

/// Run every section on `threads` workers; returns the rendered sections,
/// per-section wall milliseconds, and per-section simulated-event counts
/// (sections run one at a time, so global-counter deltas attribute
/// exactly).
fn render_all(
    secs: &[(&'static str, Renderer)],
    threads: Option<usize>,
) -> (Vec<String>, Vec<f64>, Vec<u64>) {
    let mut outputs = Vec::with_capacity(secs.len());
    let mut walls = Vec::with_capacity(secs.len());
    let mut events = Vec::with_capacity(secs.len());
    for (_, render) in secs {
        let t0 = Instant::now();
        let e0 = gbcr_des::total_events_processed();
        outputs.push(render(threads));
        events.push(gbcr_des::total_events_processed() - e0);
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (outputs, walls, events)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = parse_args();
    let threads = gbcr_metrics::resolve_threads(args.threads);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let oversubscribed = threads > cores;
    if oversubscribed {
        eprintln!(
            "warning: {threads} workers requested on a {cores}-core host — \
             oversubscribed; wall times and speedup will not reflect real parallelism"
        );
    }
    let seeded = args.json.as_deref().map_or(0, seed::seed_costs_from);
    if seeded > 0 {
        eprintln!("seeded {seeded} cell costs from previous run (LPT dispatch)");
    } else if let Some(path) = &args.json {
        eprintln!(
            "no cell costs seeded (no readable previous record at {path}) — \
             cold LPT dispatch, unknown cells first"
        );
    }
    if args.trace.is_some() {
        // Phase-level capture for every sweep cell; the tracer only
        // observes, so every table below is still byte-identical to an
        // untraced run (the serial/polled checks verify exactly that).
        gbcr_des::trace::set_capture_default(gbcr_des::TraceLevel::Phases);
        eprintln!("phase-level span capture on for every cell");
    }
    let secs = sections(args.smoke);

    println!("=== gbcr: full evaluation reproduction ({threads} worker threads) ===\n");
    let events0 = gbcr_des::total_events_processed();
    let elided0 = gbcr_des::total_wakes_elided();
    let spawned0 = gbcr_des::total_procs_spawned();
    let t0 = Instant::now();
    let (outputs, walls, section_events) = render_all(&secs, Some(threads));
    let parallel_secs = t0.elapsed().as_secs_f64();
    let total_events = gbcr_des::total_events_processed() - events0;
    let total_elided = gbcr_des::total_wakes_elided() - elided0;
    let total_spawned = gbcr_des::total_procs_spawned() - spawned0;
    for out in &outputs {
        println!("{out}");
    }
    eprintln!(
        "total wall time: {parallel_secs:.2}s on {threads} threads \
         ({total_events} simulated events, {total_elided} progress wakes elided)"
    );

    // The fault sweep is opt-in (`--faults`): it exercises the gbcr-faults
    // injector, so keeping it out of the default run preserves the
    // injector-disabled guarantee that every table above is byte-identical
    // to the recorded bench_results.txt.
    let mut faults: Option<(gbcr_bench::fig8::FaultSweep, f64)> = None;
    if args.faults {
        let t0 = Instant::now();
        let sw = if args.smoke {
            fig8::run_threaded(4, &[1_000, 2_000], &[60], 2, Some(threads), args.backend)
        } else {
            fig8::run_threaded(
                8,
                &fig8::INTERVALS_MS,
                &fig8::NODE_MTBFS_S,
                fig8::REPLICAS,
                Some(threads),
                args.backend,
            )
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{}", fig8::table(&sw).render());
        println!("{}", fig8::lost_work_table(&sw).render());
        println!("{}", fig8::optimal_table(&sw).render());
        faults = Some((sw, wall_ms));
    }

    // The control-plane sweep is opt-in (`--fig9`): like `--faults` it
    // exercises the injector, and it runs every cell twice (static plane
    // and lease-based failover) against identical coordinator-kill draws.
    let mut fig9_sweeps: Option<(fig9::PlaneSweep, fig9::PlaneSweep, f64)> = None;
    if args.fig9 {
        let t0 = Instant::now();
        let (mtbfs, replicas): (&[u64], usize) =
            if args.smoke { (&[20, 60], 2) } else { (&fig9::COORD_MTBFS_S, fig9::REPLICAS) };
        let st = fig9::run_threaded(8, mtbfs, replicas, Some(threads), fig9::Plane::Static);
        let fo = fig9::run_threaded(8, mtbfs, replicas, Some(threads), fig9::Plane::Failover);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{}", fig9::table(&st, &fo).render());
        fig9_sweeps = Some((st, fo, wall_ms));
    }

    // The interference study is opt-in (`--fig10`): each cell is a whole
    // multi-tenant cluster simulation (up to 512 concurrent ranks) plus a
    // solo baseline per tenant — tier-2 cost at the full load grid.
    let mut fig10_sweep: Option<(fig10::Fig10Sweep, f64)> = None;
    if args.fig10 {
        let t0 = Instant::now();
        let loads: &[usize] = if args.smoke { &[32] } else { &fig10::LOADS };
        let sw = fig10::run_threaded(loads, Some(threads));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{}", fig10::table(&sw).render());
        fig10_sweep = Some((sw, wall_ms));
    }

    // The scale study is opt-in (`--scale`): its 10k-rank points are
    // tier-2 cost, and its cost table is intentionally nondeterministic
    // (wall times), so it stays outside the identity-checked sections.
    let mut scale_cells: Option<(Vec<scale::ScaleCell>, f64)> = None;
    if args.scale {
        let sizes: &[u32] =
            if args.smoke { &scale::SIZES_SMOKE } else { &scale::SIZES_FULL };
        let t0 = Instant::now();
        let cells = scale::run(sizes, Some(threads));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        print!("{}", scale::table(&cells).render());
        println!();
        print!("{}", scale::cost_table(&cells).render());
        scale_cells = Some((cells, wall_ms));
    }

    let mut serial = None;
    let mut polled: Option<(bool, u64)> = None;
    let mut executor_check: Option<bool> = None;
    if args.serial_check {
        eprintln!("serial check: rerunning everything on 1 worker...");
        let t1 = Instant::now();
        let (serial_outputs, _, _) = render_all(&secs, Some(1));
        let serial_secs = t1.elapsed().as_secs_f64();
        let identical = serial_outputs == outputs;
        if identical {
            eprintln!(
                "serial check: tables byte-identical; {serial_secs:.2}s serial vs \
                 {parallel_secs:.2}s on {threads} threads ({:.2}x)",
                serial_secs / parallel_secs
            );
        } else {
            for (i, (name, _)) in secs.iter().enumerate() {
                if serial_outputs[i] != outputs[i] {
                    eprintln!(
                        "serial check FAILED: section {name} differs between 1 and \
                         {threads} threads"
                    );
                }
            }
        }
        serial = Some((serial_secs, identical));

        eprintln!("polled check: rerunning everything in polled progress mode...");
        gbcr_mpi::set_polled_progress_default(true);
        let pe0 = gbcr_des::total_events_processed();
        let (polled_outputs, _, _) = render_all(&secs, Some(threads));
        let polled_events = gbcr_des::total_events_processed() - pe0;
        gbcr_mpi::set_polled_progress_default(false);
        let polled_identical = polled_outputs == outputs;
        if polled_identical {
            eprintln!(
                "polled check: tables byte-identical; {polled_events} events polled \
                 vs {total_events} demand-driven ({:.1}% fewer)",
                100.0 * (1.0 - total_events as f64 / polled_events as f64)
            );
        } else {
            for (i, (name, _)) in secs.iter().enumerate() {
                if polled_outputs[i] != outputs[i] {
                    eprintln!(
                        "polled check FAILED: section {name} differs between polled \
                         and demand-driven progress"
                    );
                }
            }
        }
        polled = Some((polled_identical, polled_events));

        eprintln!("executor check: rerunning everything on the threaded backend...");
        gbcr_des::set_executor_default(gbcr_des::ExecKind::Threaded);
        let (threaded_outputs, _, _) = render_all(&secs, Some(threads));
        gbcr_des::set_executor_default(gbcr_des::ExecKind::Pooled);
        let threaded_identical = threaded_outputs == outputs;
        if threaded_identical {
            eprintln!(
                "executor check: tables byte-identical between pooled and threaded \
                 execution"
            );
        } else {
            for (i, (name, _)) in secs.iter().enumerate() {
                if threaded_outputs[i] != outputs[i] {
                    eprintln!(
                        "executor check FAILED: section {name} differs between pooled \
                         and threaded executors"
                    );
                }
            }
        }
        executor_check = Some(threaded_identical);
        if !identical || !polled_identical || !threaded_identical {
            std::process::exit(1);
        }
    }

    // Scheduler A/B (`--sched`): rerun every section under the *other*
    // event scheduler and require byte-identical tables. The parallel
    // pass forces at least two shards so the conservative-window path
    // actually executes even on a single-core host.
    let main_sched = gbcr_des::sched_default();
    let mut sched_check: Option<(gbcr_des::SchedKind, f64)> = None;
    if args.sched_check {
        let other = match main_sched {
            gbcr_des::SchedKind::Serial => gbcr_des::SchedKind::Parallel,
            gbcr_des::SchedKind::Parallel => gbcr_des::SchedKind::Serial,
        };
        let shards = gbcr_des::shard_count_default().max(2);
        eprintln!("sched check: rerunning everything on the {} scheduler...", other.name());
        gbcr_des::set_sched_default(other);
        if other == gbcr_des::SchedKind::Parallel {
            gbcr_des::set_shard_count_default(shards);
        }
        let t2 = Instant::now();
        let (sched_outputs, _, _) = render_all(&secs, Some(threads));
        let sched_secs = t2.elapsed().as_secs_f64();
        gbcr_des::set_sched_default(main_sched);
        gbcr_des::set_shard_count_default(0);
        if sched_outputs == outputs {
            eprintln!(
                "sched check: tables byte-identical; {} {parallel_secs:.2}s vs {} \
                 {sched_secs:.2}s ({:.2}x)",
                main_sched.name(),
                other.name(),
                parallel_secs / sched_secs
            );
        } else {
            for (i, (name, _)) in secs.iter().enumerate() {
                if sched_outputs[i] != outputs[i] {
                    eprintln!(
                        "sched check FAILED: section {name} differs between the {} and {} \
                         schedulers",
                        main_sched.name(),
                        other.name()
                    );
                }
            }
            std::process::exit(1);
        }
        sched_check = Some((other, sched_secs));
    }

    let mut trace_exported: Option<(String, trace::TraceCheck)> = None;
    if let Some(path) = &args.trace {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let report = trace::trace_smoke();
        let data = report.trace.as_deref().expect("traced run records data");
        let json = trace::export(data, path).expect("write trace file");
        let chk = trace::check_chrome_json(&json).expect("exported trace must parse");
        eprintln!(
            "wrote {path}: {} spans, phases_ok={} net_ok={} storage_ok={} nested={}",
            chk.spans, chk.phases_ok, chk.net_ok, chk.storage_ok, chk.nested
        );
        if !chk.ok() {
            eprintln!("trace export FAILED validation");
            std::process::exit(1);
        }
        trace_exported = Some((path.clone(), chk));
    }

    if let Some(path) = &args.json {
        let mut j = String::from("{\n");
        j.push_str(&format!("  \"threads\": {threads},\n"));
        j.push_str(&format!("  \"host_cores\": {cores},\n"));
        j.push_str(&format!("  \"oversubscribed\": {oversubscribed},\n"));
        j.push_str(&format!("  \"smoke\": {},\n", args.smoke));
        j.push_str(&format!("  \"total_wall_ms\": {:.1},\n", parallel_secs * 1e3));
        j.push_str(&format!("  \"total_events\": {total_events},\n"));
        j.push_str(&format!("  \"total_elided_wakes\": {total_elided},\n"));
        j.push_str(&format!("  \"total_procs_spawned\": {total_spawned},\n"));
        j.push_str(&format!(
            "  \"executor\": \"{}\",\n",
            gbcr_des::executor_default().name()
        ));
        j.push_str(&format!("  \"pool_threads\": {},\n", gbcr_des::pool_threads()));
        j.push_str(&format!("  \"sched\": \"{}\",\n", main_sched.name()));
        j.push_str(&format!("  \"lpt_seeded_cells\": {seeded},\n"));
        if let Some((other, sched_secs)) = sched_check {
            j.push_str(&format!("  \"sched_check_backend\": \"{}\",\n", other.name()));
            j.push_str(&format!("  \"sched_check_wall_ms\": {:.1},\n", sched_secs * 1e3));
            j.push_str(&format!(
                "  \"sched_check_speedup\": {:.2},\n",
                parallel_secs / sched_secs
            ));
            j.push_str("  \"sched_check_identical\": true,\n");
        }
        if let Some((serial_secs, serial_identical)) = serial {
            let (polled_identical, polled_events) = polled.expect("polled pass ran");
            let threaded_identical = executor_check.expect("executor pass ran");
            j.push_str(&format!("  \"serial_wall_ms\": {:.1},\n", serial_secs * 1e3));
            j.push_str(&format!("  \"speedup\": {:.2},\n", serial_secs / parallel_secs));
            j.push_str(&format!("  \"polled_total_events\": {polled_events},\n"));
            j.push_str(&format!("  \"executor_identical\": {threaded_identical},\n"));
            j.push_str(&format!(
                "  \"tables_identical\": {},\n",
                serial_identical && polled_identical && threaded_identical
            ));
        }
        if let Some((cells, wall_ms)) = &scale_cells {
            j.push_str(&format!("  \"scale_wall_ms\": {wall_ms:.1},\n"));
            j.push_str(&format!("  \"scale\": {},\n", scale::json_block(cells)));
        }
        if let Some((sw, wall_ms)) = &faults {
            j.push_str(&format!("  \"faults_wall_ms\": {wall_ms:.1},\n"));
            j.push_str(&format!("  \"faults\": {},\n", fig8::json_block(sw)));
        }
        if let Some((st, fo, wall_ms)) = &fig9_sweeps {
            j.push_str(&format!("  \"fig9_wall_ms\": {wall_ms:.1},\n"));
            j.push_str(&format!("  \"fig9\": {},\n", fig9::json_block(st, fo)));
        }
        if let Some((sw, wall_ms)) = &fig10_sweep {
            j.push_str(&format!("  \"fig10_wall_ms\": {wall_ms:.1},\n"));
            j.push_str(&format!("  \"fig10\": {},\n", fig10::json_block(sw)));
        }
        if let Some((trace_path, chk)) = &trace_exported {
            j.push_str(&format!(
                "  \"trace\": {{\"path\": \"{}\", \"spans\": {}, \"valid\": {}}},\n",
                json_escape(trace_path),
                chk.spans,
                chk.ok()
            ));
        }
        // Per-figure cost records: wall time plus the simulated-event
        // count (host-independent work measure), the scheduler backend,
        // and the core count, so perf trajectories are comparable across
        // machines.
        j.push_str("  \"figures\": [\n");
        for (i, (((name, _), wall), ev)) in
            secs.iter().zip(&walls).zip(&section_events).enumerate()
        {
            let comma = if i + 1 == secs.len() { "" } else { "," };
            j.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {wall:.1}, \"events\": {ev}, \
                 \"sched\": \"{}\", \"host_cores\": {cores}}}{comma}\n",
                json_escape(name),
                main_sched.name()
            ));
        }
        j.push_str("  ],\n");
        // Per-cell costs: next run seeds its LPT dispatch from these.
        // Recorded from the *last* run of each cell in this process (the
        // serial/polled reruns overwrite — same cells, same costs modulo
        // noise, so dispatch quality is unaffected).
        j.push_str("  \"cells\": [\n");
        let cells = gbcr_metrics::cell_costs_snapshot();
        for (i, (key, c)) in cells.iter().enumerate() {
            let comma = if i + 1 == cells.len() { "" } else { "," };
            j.push_str(&format!(
                "    {{\"key\": \"{}\", \"wall_ms\": {:.1}, \"events\": {}",
                json_escape(key),
                c.wall_ms,
                c.events
            ));
            // Per-phase latency stats, present when the run was traced
            // (`--trace` sets the phase-level capture default).
            if let Some(phases) = gbcr_metrics::cell_phases(key) {
                j.push_str(", \"phases\": [");
                for (p, s) in phases.iter().enumerate() {
                    let pc = if p + 1 == phases.len() { "" } else { ", " };
                    j.push_str(&format!(
                        "{{\"name\": \"{}\", \"count\": {}, \"mean_ns\": {}, \
                         \"min_ns\": {}, \"max_ns\": {}, \"total_ns\": {}}}{pc}",
                        json_escape(&s.name),
                        s.count,
                        s.mean_ns(),
                        s.min_ns,
                        s.max_ns,
                        s.total_ns
                    ));
                }
                j.push(']');
            }
            j.push_str(&format!("}}{comma}\n"));
        }
        j.push_str("  ]\n}\n");
        std::fs::write(path, &j).expect("write json record");
        eprintln!("wrote {path}");
    }
}
