//! Regenerate every figure and ablation in one pass (the EXPERIMENTS.md
//! source of truth). Prints everything to stdout; redirect to a file.
fn main() {
    println!("=== gbcr: full evaluation reproduction ===\n");
    let t0 = std::time::Instant::now();

    let rows = gbcr_bench::fig1::run();
    println!("{}", gbcr_bench::fig1::table(&rows).render());

    let fig3 = gbcr_bench::fig3::run();
    println!("{}", gbcr_bench::fig3::table(&fig3).render());

    let fig4 = gbcr_bench::fig4::run();
    println!("{}", gbcr_bench::fig4::table(&fig4).render());

    let fig5 = gbcr_bench::fig5::run();
    println!("{}", gbcr_bench::fig5::table(&fig5).render());
    println!(
        "{}",
        gbcr_bench::fig5::summary_table(
            &fig5,
            "Figure 6 — HPL Effective Checkpoint Delay per group size (avg with min/max)"
        )
        .render()
    );

    let fig7 = gbcr_bench::fig7::run();
    println!("{}", gbcr_bench::fig7::table(&fig7).render());
    println!(
        "{}",
        gbcr_bench::fig5::summary_table(
            &fig7,
            "Figure 7 summary — MotifMiner average effective delay per group size"
        )
        .render()
    );

    let p = gbcr_bench::ablations::progress_ablation();
    println!("{}", gbcr_bench::ablations::progress_table(&p).render());
    let b = gbcr_bench::ablations::buffering_ablation();
    println!("{}", gbcr_bench::ablations::buffering_table(&b).render());
    let l = gbcr_bench::ablations::logging_ablation();
    println!("{}", gbcr_bench::ablations::logging_table(&l).render());
    let f = gbcr_bench::ablations::formation_ablation();
    println!("{}", gbcr_bench::ablations::formation_table(&f).render());
    let cl = gbcr_bench::ablations::chandy_lamport_ablation();
    println!("{}", gbcr_bench::ablations::chandy_lamport_table(&cl).render());
    let inc = gbcr_bench::ablations::incremental_ablation();
    println!("{}", gbcr_bench::ablations::incremental_table(&inc).render());

    eprintln!("total wall time: {:?}", t0.elapsed());
}
