//! Regenerate Figure 4: checkpoint placement vs the synchronization line.
fn main() {
    let sw = gbcr_bench::fig4::run();
    print!("{}", gbcr_bench::fig4::table(&sw).render());
    println!("\npaper shape: Effective lies between Individual and Total, rising toward the barrier (60 s, 120 s)");
}
