//! Regenerate Figure 5: HPL effective delay at 8 issuance points per group
//! size (also prints the Figure 6 summary; `fig6` reruns just the summary).
fn main() {
    let sw = gbcr_bench::fig5::run();
    print!("{}", gbcr_bench::fig5::table(&sw).render());
    println!();
    print!(
        "{}",
        gbcr_bench::fig5::summary_table(
            &sw,
            "Figure 6 — HPL Effective Checkpoint Delay per group size (avg with min/max)"
        )
        .render()
    );
    println!(
        "\npaper anchors: up to {:.0}% reduction for Group(4) at 50 s; average reductions {:?}",
        gbcr_bench::paper::fig56::MAX_REDUCTION_G4 * 100.0,
        gbcr_bench::paper::fig56::AVG_REDUCTIONS
    );
}
