//! Regenerate Figure 6: HPL average/min/max effective delay per checkpoint
//! group size (aggregates the Figure 5 sweep).
fn main() {
    let sw = gbcr_bench::fig5::run();
    print!(
        "{}",
        gbcr_bench::fig5::summary_table(
            &sw,
            "Figure 6 — HPL Effective Checkpoint Delay per group size (avg with min/max)"
        )
        .render()
    );
    println!(
        "\npaper anchors: average reductions {:?} (sizes 4 and 8 best, matching the 8×4 grid)",
        gbcr_bench::paper::fig56::AVG_REDUCTIONS
    );
}
