//! Regenerate Figure 3: effective delay vs checkpoint group size for each
//! communication group size (32 ranks, 180 MB/process).
fn main() {
    let fig = gbcr_bench::fig3::run();
    print!("{}", gbcr_bench::fig3::table(&fig).render());
    println!(
        "\npaper anchors: All(32) ≈ {}s; halving group size halves the delay while \
         it covers a comm group; sizes 1-2 under-utilize storage",
        gbcr_bench::paper::fig3::ALL32_SECS
    );
}
