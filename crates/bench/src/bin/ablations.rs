//! Run all four design-choice ablations (§4.1, §4.3, §4.4, §2.1/§7).
fn main() {
    let p = gbcr_bench::ablations::progress_ablation();
    println!("{}", gbcr_bench::ablations::progress_table(&p).render());
    let b = gbcr_bench::ablations::buffering_ablation();
    println!("{}", gbcr_bench::ablations::buffering_table(&b).render());
    let l = gbcr_bench::ablations::logging_ablation();
    println!("{}", gbcr_bench::ablations::logging_table(&l).render());
    let f = gbcr_bench::ablations::formation_ablation();
    println!("{}", gbcr_bench::ablations::formation_table(&f).render());
    let cl = gbcr_bench::ablations::chandy_lamport_ablation();
    println!("{}", gbcr_bench::ablations::chandy_lamport_table(&cl).render());
    let inc = gbcr_bench::ablations::incremental_ablation();
    println!("{}", gbcr_bench::ablations::incremental_table(&inc).render());
}
