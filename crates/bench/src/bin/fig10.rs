//! Regenerate Figure 10: multi-tenant checkpoint interference — P99 epoch
//! latency and per-tenant goodput vs co-tenant checkpoint load, aligned
//! cluster-wide checkpointing vs group-based staggering.
//!
//! `--smoke` runs the seeded 32-tenant cell pair `scripts/tier1.sh` gates
//! on and prints only its golden line. `--threads N` controls the worker
//! pool (results must not depend on it); `--json` emits the run-record
//! JSON block instead of the table.

use gbcr_bench::fig10;

fn main() {
    let mut threads = None;
    let mut smoke = false;
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                }));
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown flag {other}\nusage: fig10 [--threads N] [--smoke] [--json]");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        let (cw, gr) = fig10::smoke();
        println!(
            "fig10 smoke: tenants={} p99_clusterwide_ms={:.1} p99_group_ms={:.1} \
             goodput_clusterwide={:.3} goodput_group={:.3} peak_streams={}/{}",
            cw.tenants,
            cw.p99_epoch_ms,
            gr.p99_epoch_ms,
            cw.goodput_mean,
            gr.goodput_mean,
            cw.peak_streams,
            gr.peak_streams,
        );
        return;
    }
    let sw = fig10::run_threaded(&fig10::LOADS, threads);
    if json {
        println!("{}", fig10::json_block(&sw));
        return;
    }
    print!("{}", fig10::table(&sw).render());
    println!(
        "\n{} ranks/tenant; interval {} ms; {} epochs/tenant; seed {:#x}",
        sw.n_per_tenant,
        sw.interval_ms,
        fig10::EPOCHS,
        sw.seed
    );
}
