//! Scalability study: the paper's core claim is that group-based
//! checkpointing "alleviates the scalability limitation" of coordinated
//! checkpointing. Sweep the job size at fixed per-process footprint and
//! fixed central storage: the regular protocol's effective delay grows
//! linearly with the rank count, while group-based delay tracks the
//! (constant) per-group write time as long as computation can overlap.
//! Also prints the Thunderbird-scale estimate from §3.1.
//!
//! All runs (one baseline plus two checkpointed per job size) fan out
//! through the parallel harness; `GBCR_THREADS` caps the worker pool.

use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::time;
use gbcr_metrics::{run_sweep, SweepGroup, Table};
use gbcr_storage::{StorageConfig, GB, MB};
use gbcr_workloads::MicroBench;

fn main() {
    let sizes = [16u32, 32, 64, 128];
    let cfg = |g: u32| CoordinatorCfg {
        job: "micro".into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size: g },
        schedule: CkptSchedule::once(time::secs(30)),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
    };
    let groups: Vec<SweepGroup> = sizes
        .iter()
        .map(|&n| {
            let mb = MicroBench {
                n,
                comm_group_size: 8,
                steps: 360,
                step_compute: time::ms(500),
                ..Default::default()
            };
            SweepGroup::new(mb.job(), vec![cfg(n), cfg(8)])
        })
        .collect();
    let reports = run_sweep(&groups, None).expect("scale study runs");

    let mut t = Table::new(
        "Scale study — effective delay (s) vs job size (180 MB/proc, 140 MB/s storage)",
        &["ranks", "regular All(n)", "group-based g=8", "reduction"],
    );
    for (&n, gr) in sizes.iter().zip(&reports) {
        let eff = |i: usize| {
            time::as_secs_f64(gr.runs[i].completion.saturating_sub(gr.baseline.completion))
        };
        let (all, grouped) = (eff(0), eff(1));
        t.row(&[
            n.to_string(),
            format!("{all:.1}"),
            format!("{grouped:.1}"),
            format!("{:.0}%", (1.0 - grouped / all) * 100.0),
        ]);
    }
    print!("{}", t.render());

    // §3.1's motivating estimate, on the Thunderbird-class storage model.
    let tb = StorageConfig::thunderbird();
    let t_est = tb.ideal_access_time(8960, GB);
    println!(
        "\n§3.1 estimate check: 8960 × 1 GB over {} GB/s ≈ {:.0} s (paper: 1493 s)",
        tb.aggregate_bw / GB as f64,
        time::as_secs_f64(t_est)
    );
    let _ = MB;
}
