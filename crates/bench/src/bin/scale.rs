//! Scalability study: the paper's core claim is that group-based
//! checkpointing "alleviates the scalability limitation" of coordinated
//! checkpointing. Sweep the job size at fixed per-process footprint and
//! fixed central storage: the regular protocol's effective delay grows
//! linearly with the rank count, while group-based delay tracks the
//! (constant) per-group write time as long as computation can overlap.
//!
//! The pooled coroutine executor lets the sweep reach the petascale-study
//! regime: the full run goes 256 → 1 024 → 4 096 → 10 240 ranks on a
//! bounded worker pool (`min(ncpu, 8)` OS threads). Also prints the
//! Thunderbird-scale estimate from §3.1. Flags:
//!
//! * `--smoke` — 256 and 1 024 ranks only (tier-1 wall budget).
//! * `--sizes a,b,c` — explicit rank counts.
//! * `--threads N` — sweep worker pool size (`GBCR_THREADS` default).
//! * `--json PATH` — write the `scale` telemetry block to PATH.
//! * `--sched` — rerun the sweep under the *other* event scheduler
//!   (parallel conservative-window vs serial; the parallel pass forces
//!   ≥2 shards), require the deterministic delay table byte-identical,
//!   and print per-backend wall time plus the serial-over-parallel
//!   speedup. On a ≥4-core host with ≥4 096-rank points the speedup must
//!   reach 2× (on smaller hosts it is recorded but not gated).

use gbcr_bench::scale;
use gbcr_des::{time, SchedKind};
use gbcr_storage::GB;

struct Args {
    sizes: Vec<u32>,
    threads: Option<usize>,
    json: Option<String>,
    sched: bool,
}

fn parse_args() -> Args {
    let mut out =
        Args { sizes: scale::SIZES_FULL.to_vec(), threads: None, json: None, sched: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => out.sizes = scale::SIZES_SMOKE.to_vec(),
            "--sizes" => {
                let spec = it.next().unwrap_or_default();
                let sizes: Option<Vec<u32>> =
                    spec.split(',').map(|s| s.trim().parse().ok()).collect();
                out.sizes = match sizes {
                    Some(s) if !s.is_empty() => s,
                    _ => {
                        eprintln!("--sizes needs a comma-separated list of rank counts");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                out.threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                }));
            }
            "--json" => {
                out.json = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            "--sched" => out.sched = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: scale [--smoke] [--sizes a,b,c] [--threads N] [--json PATH] [--sched]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let cells = scale::run(&args.sizes, args.threads);
    print!("{}", scale::table(&cells).render());
    println!();
    print!("{}", scale::cost_table(&cells).render());

    // §3.1's motivating estimate, on the Thunderbird-class storage model.
    let tb = gbcr_storage::StorageConfig::thunderbird();
    let t_est = tb.ideal_access_time(8960, GB);
    println!(
        "\n§3.1 estimate check: 8960 × 1 GB over {} GB/s ≈ {:.0} s (paper: 1493 s)",
        tb.aggregate_bw / GB as f64,
        time::as_secs_f64(t_est)
    );

    if let Some(path) = &args.json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let j = format!("{{\n  \"scale\": {}\n}}\n", scale::json_block(&cells));
        std::fs::write(path, &j).expect("write scale json");
        eprintln!("wrote {path}");
    }

    // Scheduler A/B (`--sched`): the delay table is a model output, so it
    // must be byte-identical under both schedulers; the wall times show
    // what the conservative-window backend buys on this host.
    if args.sched {
        let main_kind = gbcr_des::sched_default();
        let other = match main_kind {
            SchedKind::Serial => SchedKind::Parallel,
            SchedKind::Parallel => SchedKind::Serial,
        };
        let shards = gbcr_des::shard_count_default().max(2);
        eprintln!("scale sched check: rerunning under the {} scheduler...", other.name());
        gbcr_des::set_sched_default(other);
        if other == SchedKind::Parallel {
            gbcr_des::set_shard_count_default(shards);
        }
        let cells2 = scale::run(&args.sizes, args.threads);
        gbcr_des::set_sched_default(main_kind);
        gbcr_des::set_shard_count_default(0);
        let identical = scale::table(&cells).render() == scale::table(&cells2).render();
        let wall = |cs: &[scale::ScaleCell]| cs.iter().map(|c| c.wall_ms).sum::<f64>();
        // Orient the speedup as serial-over-parallel regardless of which
        // backend the main run used.
        let (serial_ms, parallel_ms) = match main_kind {
            SchedKind::Serial => (wall(&cells), wall(&cells2)),
            SchedKind::Parallel => (wall(&cells2), wall(&cells)),
        };
        let speedup = serial_ms / parallel_ms;
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "scale sched check: tables_identical={identical} serial_ms={serial_ms:.0} \
             parallel_ms={parallel_ms:.0} speedup={speedup:.2} host_cores={cores}"
        );
        if !identical {
            eprintln!("scale sched check FAILED: delay tables differ between schedulers");
            std::process::exit(1);
        }
        // The ≥2× acceptance gate only applies where real parallelism
        // exists; single- and dual-core hosts record the ratio unjudged.
        let max_ranks = args.sizes.iter().copied().max().unwrap_or(0);
        if cores >= 4 && max_ranks >= 4096 && speedup < 2.0 {
            eprintln!(
                "scale sched check FAILED: expected >=2x parallel speedup on a \
                 {cores}-core host at {max_ranks} ranks, got {speedup:.2}x"
            );
            std::process::exit(1);
        }
    }

    // One greppable line for scripts/tier1.sh and CI.
    let max_ranks = cells.iter().map(|c| c.ranks).max().unwrap_or(0);
    let peak = cells.iter().map(|c| c.peak_live_threads).max().unwrap_or(0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ok = cells.iter().all(|c| c.eff_all > 0.0 && c.eff_group > 0.0 && c.reduction() > 0.0);
    println!(
        "scale check: max_ranks={max_ranks} peak_exec_threads={peak} \
         executor={} sched={} host_cores={cores} monotone_reduction={ok}",
        cells.last().map_or("none", |c| c.executor),
        cells.last().map_or("none", |c| c.sched),
    );
}
