//! Scalability study: the paper's core claim is that group-based
//! checkpointing "alleviates the scalability limitation" of coordinated
//! checkpointing. Sweep the job size at fixed per-process footprint and
//! fixed central storage: the regular protocol's effective delay grows
//! linearly with the rank count, while group-based delay tracks the
//! (constant) per-group write time as long as computation can overlap.
//!
//! The pooled coroutine executor lets the sweep reach the petascale-study
//! regime: the full run goes 256 → 1 024 → 4 096 → 10 240 ranks on a
//! bounded worker pool (`min(ncpu, 8)` OS threads). Also prints the
//! Thunderbird-scale estimate from §3.1. Flags:
//!
//! * `--smoke` — 256 and 1 024 ranks only (tier-1 wall budget).
//! * `--sizes a,b,c` — explicit rank counts.
//! * `--threads N` — sweep worker pool size (`GBCR_THREADS` default).
//! * `--json PATH` — write the `scale` telemetry block to PATH.

use gbcr_bench::scale;
use gbcr_des::time;
use gbcr_storage::GB;

struct Args {
    sizes: Vec<u32>,
    threads: Option<usize>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args { sizes: scale::SIZES_FULL.to_vec(), threads: None, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => out.sizes = scale::SIZES_SMOKE.to_vec(),
            "--sizes" => {
                let spec = it.next().unwrap_or_default();
                let sizes: Option<Vec<u32>> =
                    spec.split(',').map(|s| s.trim().parse().ok()).collect();
                out.sizes = match sizes {
                    Some(s) if !s.is_empty() => s,
                    _ => {
                        eprintln!("--sizes needs a comma-separated list of rank counts");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                out.threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                }));
            }
            "--json" => {
                out.json = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: scale [--smoke] [--sizes a,b,c] [--threads N] [--json PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let cells = scale::run(&args.sizes, args.threads);
    print!("{}", scale::table(&cells).render());
    println!();
    print!("{}", scale::cost_table(&cells).render());

    // §3.1's motivating estimate, on the Thunderbird-class storage model.
    let tb = gbcr_storage::StorageConfig::thunderbird();
    let t_est = tb.ideal_access_time(8960, GB);
    println!(
        "\n§3.1 estimate check: 8960 × 1 GB over {} GB/s ≈ {:.0} s (paper: 1493 s)",
        tb.aggregate_bw / GB as f64,
        time::as_secs_f64(t_est)
    );

    if let Some(path) = &args.json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let j = format!("{{\n  \"scale\": {}\n}}\n", scale::json_block(&cells));
        std::fs::write(path, &j).expect("write scale json");
        eprintln!("wrote {path}");
    }

    // One greppable line for scripts/tier1.sh and CI.
    let max_ranks = cells.iter().map(|c| c.ranks).max().unwrap_or(0);
    let peak = cells.iter().map(|c| c.peak_live_threads).max().unwrap_or(0);
    let ok = cells.iter().all(|c| c.eff_all > 0.0 && c.eff_group > 0.0 && c.reduction() > 0.0);
    println!(
        "scale check: max_ranks={max_ranks} peak_exec_threads={peak} \
         executor={} monotone_reduction={ok}",
        cells.last().map_or("none", |c| c.executor)
    );
}
