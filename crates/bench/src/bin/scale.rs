//! Scalability study: the paper's core claim is that group-based
//! checkpointing "alleviates the scalability limitation" of coordinated
//! checkpointing. Sweep the job size at fixed per-process footprint and
//! fixed central storage: the regular protocol's effective delay grows
//! linearly with the rank count, while group-based delay tracks the
//! (constant) per-group write time as long as computation can overlap.
//! Also prints the Thunderbird-scale estimate from §3.1.

use gbcr_core::{run_job, CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_storage::{StorageConfig, GB, MB};
use gbcr_workloads::MicroBench;

fn main() {
    let mut t = Table::new(
        "Scale study — effective delay (s) vs job size (180 MB/proc, 140 MB/s storage)",
        &["ranks", "regular All(n)", "group-based g=8", "reduction"],
    );
    for n in [16u32, 32, 64, 128] {
        let mb = MicroBench {
            n,
            comm_group_size: 8,
            steps: 360,
            step_compute: time::ms(500),
            ..Default::default()
        };
        let spec = mb.job();
        let base = run_job(&spec, None).expect("baseline");
        let eff = |g: u32| {
            let cfg = CoordinatorCfg {
                job: "micro".into(),
                mode: CkptMode::Buffering,
                formation: Formation::Static { group_size: g },
                schedule: CkptSchedule::once(time::secs(30)),
                incremental: false,
            };
            let ck = run_job(&spec, Some(cfg)).expect("ckpt run");
            time::as_secs_f64(ck.completion.saturating_sub(base.completion))
        };
        let all = eff(n);
        let grouped = eff(8);
        t.row(&[
            n.to_string(),
            format!("{all:.1}"),
            format!("{grouped:.1}"),
            format!("{:.0}%", (1.0 - grouped / all) * 100.0),
        ]);
    }
    print!("{}", t.render());

    // §3.1's motivating estimate, on the Thunderbird-class storage model.
    let tb = StorageConfig::thunderbird();
    let t_est = tb.ideal_access_time(8960, GB);
    println!(
        "\n§3.1 estimate check: 8960 × 1 GB over {} GB/s ≈ {:.0} s (paper: 1493 s)",
        tb.aggregate_bw / GB as f64,
        time::as_secs_f64(t_est)
    );
    let _ = MB;
}
