//! Regenerate Figure 1: bandwidth per client vs number of clients.
fn main() {
    let rows = gbcr_bench::fig1::run();
    print!("{}", gbcr_bench::fig1::table(&rows).render());
    println!(
        "\npaper anchors: aggregate ≈ {} MB/s; per-client at 32 ≈ {} MB/s",
        gbcr_bench::paper::fig1::AGGREGATE_MBS,
        gbcr_bench::paper::fig1::PER_CLIENT_AT_32
    );
}
