//! `gbcr` — command-line front end for the whole reproduction.
//!
//! ```text
//! gbcr fig <1|3|4|5|6|7>      regenerate one paper figure
//! gbcr ablations              run the design-choice ablations
//! gbcr all                    everything (figures + ablations)
//! gbcr run [options]          one experiment, printing the §5 metrics
//!     --workload micro|placement|hpl|motifminer   (default micro)
//!     --group-size G                              (default 4)
//!     --at SECONDS                                (default 30)
//!     --mode buffering|logging|cl|uncoordinated   (default buffering)
//!     --formation static|dynamic                  (default static)
//!     --incremental                               (off by default)
//!     --trace PATH                                (write a Perfetto trace)
//! ```
//!
//! `--trace` runs the checkpointed simulation with full span tracing,
//! writes the Chrome/Perfetto trace JSON to PATH (loadable in
//! `ui.perfetto.dev`), and prints the per-epoch phase breakdown plus the
//! per-phase latency table after the §5 metrics. Tracing only observes —
//! the metrics are byte-identical with and without it.
//!
//! Argument parsing is hand-rolled to keep the dependency set at the
//! workspace's approved crates.

use gbcr_core::{
    CkptMode, CkptSchedule, CoordinatorCfg, Formation, JobSpec,
};
use gbcr_des::{time, TraceLevel};

fn usage() -> ! {
    eprint!(
        "gbcr — group-based coordinated checkpointing (ICPP'07 reproduction)\n\n\
         usage:\n\
         \u{20}  gbcr fig <1|3|4|5|6|7>   regenerate one paper figure\n\
         \u{20}  gbcr ablations           design-choice ablations (§2.1/§4.1/§4.3/§4.4/§8)\n\
         \u{20}  gbcr all                 every figure and ablation\n\
         \u{20}  gbcr run [options]       one experiment with the §5 metrics\n\n\
         run options:\n\
         \u{20}  --workload micro|placement|hpl|motifminer   workload (default micro)\n\
         \u{20}  --group-size G                              checkpoint group size (default 4)\n\
         \u{20}  --at SECONDS                                issuance time (default 30)\n\
         \u{20}  --mode buffering|logging|cl|uncoordinated   consistency mode (default buffering)\n\
         \u{20}  --formation static|dynamic                  group formation (default static)\n\
         \u{20}  --incremental                               incremental images (default off)\n\
         \u{20}  --trace PATH                                write a Perfetto trace of the\n\
         \u{20}                                              checkpointed run to PATH\n"
    );
    std::process::exit(2);
}

fn parse_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn spec_for(workload: &str) -> (JobSpec, &'static str) {
    match workload {
        "micro" => (gbcr_workloads::MicroBench::default().job(), "micro"),
        "placement" => (gbcr_workloads::PlacementBench::default().job(), "placement"),
        "hpl" => (gbcr_workloads::HplWorkload::default().job(None), "hpl"),
        "motifminer" => (gbcr_workloads::MotifMinerWorkload::default().job(None), "motifminer"),
        other => {
            eprintln!("unknown workload '{other}'");
            usage()
        }
    }
}

fn cmd_run(args: &[String]) {
    let workload = parse_flag(args, "--workload").unwrap_or("micro");
    let group_size: u32 = parse_flag(args, "--group-size")
        .unwrap_or("4")
        .parse()
        .unwrap_or_else(|_| usage());
    let at_secs: u64 =
        parse_flag(args, "--at").unwrap_or("30").parse().unwrap_or_else(|_| usage());
    let mode = match parse_flag(args, "--mode").unwrap_or("buffering") {
        "buffering" => CkptMode::Buffering,
        "logging" => CkptMode::Logging,
        "cl" => CkptMode::ChandyLamport,
        "uncoordinated" => CkptMode::Uncoordinated,
        _ => usage(),
    };
    let formation = match parse_flag(args, "--formation").unwrap_or("static") {
        "static" => Formation::Static { group_size },
        "dynamic" => Formation::Dynamic {
            frequent_fraction: 0.2,
            fallback_group_size: group_size,
            max_group_size: 16,
        },
        _ => usage(),
    };
    let incremental = args.iter().any(|a| a == "--incremental");
    let trace_path = parse_flag(args, "--trace");

    let (spec, job) = spec_for(workload);
    eprintln!("running baseline ({workload}, {} ranks)…", spec.mpi.n);
    let base = spec.runner().run().expect("baseline run");
    eprintln!(
        "baseline completion: {:.1} s — running checkpointed…",
        time::as_secs_f64(base.completion)
    );
    let cfg = CoordinatorCfg {
        job: job.into(),
        mode,
        formation,
        schedule: CkptSchedule::once(time::secs(at_secs)),
        incremental,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    };
    let ck = match trace_path {
        Some(_) => spec.runner().ckpt(cfg).traced(TraceLevel::Full).run(),
        None => spec.runner().ckpt(cfg).run(),
    }
    .expect("checkpointed run");
    let Some(ep) = ck.epochs.first() else {
        eprintln!("checkpoint at {at_secs} s never ran (job finished first)");
        std::process::exit(1);
    };

    println!("workload            : {workload} ({} ranks)", spec.mpi.n);
    println!("mode                : {mode:?}{}", if incremental { " + incremental" } else { "" });
    println!("groups              : {} (plan: {:?}…)", ep.plan.group_count(), ep.plan.members(0));
    println!("issuance            : {at_secs} s");
    println!("--- §5 metrics ---");
    println!(
        "Individual (mean)   : {:.2} s  (min {:.2}, max {:.2})",
        time::as_secs_f64(ep.mean_individual()),
        time::as_secs_f64(ep.individuals.iter().map(|(_, t)| *t).min().unwrap_or(0)),
        time::as_secs_f64(ep.max_individual()),
    );
    println!("Total               : {:.2} s", time::as_secs_f64(ep.total_time()));
    println!(
        "Effective           : {:.2} s",
        time::as_secs_f64(ck.completion.saturating_sub(base.completion))
    );
    println!("--- bookkeeping ---");
    println!(
        "deferred ops        : {} message-buffered ({} B), {} request-buffered ({} B avoided)",
        ck.defer_stats.msg_buffered,
        ck.defer_stats.msg_buffered_bytes,
        ck.defer_stats.req_buffered,
        ck.defer_stats.req_buffered_bytes,
    );
    println!("logged bytes        : {} (logging) / {} (channel state)", ck.logged_bytes, ck.channel_logged_bytes);
    println!("connection teardowns: {}", ck.net_stats.teardowns);
    println!(
        "images on storage   : {}",
        ck.images.iter().filter(|(n, _)| n.starts_with("ckpt/")).count()
    );

    if let Some(path) = trace_path {
        let data = ck.trace.as_deref().expect("traced run records data");
        gbcr_bench::trace::export(data, path).expect("write trace file");
        println!("--- trace ---");
        println!(
            "wrote {path}: {} spans, {} instants (load in ui.perfetto.dev)",
            data.spans.len(),
            data.instants.len()
        );
        print!("{}", gbcr_bench::trace::summary(data, &ck.phase_stats));
    }
}

fn cmd_fig(which: &str) {
    match which {
        "1" => print!("{}", gbcr_bench::fig1::table(&gbcr_bench::fig1::run()).render()),
        "3" => print!("{}", gbcr_bench::fig3::table(&gbcr_bench::fig3::run()).render()),
        "4" => print!("{}", gbcr_bench::fig4::table(&gbcr_bench::fig4::run()).render()),
        "5" => print!("{}", gbcr_bench::fig5::table(&gbcr_bench::fig5::run()).render()),
        "6" => print!(
            "{}",
            gbcr_bench::fig5::summary_table(
                &gbcr_bench::fig5::run(),
                "Figure 6 — HPL effective delay per group size (avg with min/max)"
            )
            .render()
        ),
        "7" => print!("{}", gbcr_bench::fig7::table(&gbcr_bench::fig7::run()).render()),
        _ => usage(),
    }
}

fn cmd_ablations() {
    let p = gbcr_bench::ablations::progress_ablation();
    println!("{}", gbcr_bench::ablations::progress_table(&p).render());
    let b = gbcr_bench::ablations::buffering_ablation();
    println!("{}", gbcr_bench::ablations::buffering_table(&b).render());
    let l = gbcr_bench::ablations::logging_ablation();
    println!("{}", gbcr_bench::ablations::logging_table(&l).render());
    let f = gbcr_bench::ablations::formation_ablation();
    println!("{}", gbcr_bench::ablations::formation_table(&f).render());
    let cl = gbcr_bench::ablations::chandy_lamport_ablation();
    println!("{}", gbcr_bench::ablations::chandy_lamport_table(&cl).render());
    let inc = gbcr_bench::ablations::incremental_ablation();
    println!("{}", gbcr_bench::ablations::incremental_table(&inc).render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fig") => cmd_fig(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        Some("ablations") => cmd_ablations(),
        Some("run") => cmd_run(&args[1..]),
        Some("all") => {
            for f in ["1", "3", "4", "5", "7"] {
                cmd_fig(f);
                println!();
            }
            cmd_ablations();
        }
        _ => usage(),
    }
}
