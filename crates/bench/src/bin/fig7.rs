//! Regenerate Figure 7: MotifMiner effective delay at 4 issuance points.
fn main() {
    let sw = gbcr_bench::fig7::run();
    print!("{}", gbcr_bench::fig7::table(&sw).render());
    print!(
        "\n{}",
        gbcr_bench::fig5::summary_table(
            &sw,
            "Figure 7 summary — MotifMiner average effective delay per group size"
        )
        .render()
    );
    println!(
        "\npaper anchors: up to {:.0}% reduction for Group(4) at 30 s; average reductions {:?}",
        gbcr_bench::paper::fig7::MAX_REDUCTION_G4 * 100.0,
        gbcr_bench::paper::fig7::AVG_REDUCTIONS
    );
}
