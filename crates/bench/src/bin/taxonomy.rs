//! The full §2.1 protocol taxonomy in one table: uncoordinated (with
//! always-on message logging), idealized non-blocking Chandy-Lamport,
//! regular blocking coordinated, and the paper's group-based coordinated
//! checkpointing — all on the same 32-rank micro-benchmark with one
//! checkpoint at t = 30 s.

use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
use gbcr_des::time;
use gbcr_metrics::Table;
use gbcr_storage::MB;
use gbcr_workloads::MicroBench;

fn main() {
    // Rendezvous-sized messages so logging costs are visible.
    let mb = MicroBench { msg_size: 2 * MB, step_compute: time::ms(150), ..Default::default() };
    let spec = mb.job();
    let base = spec.runner().run().expect("baseline");

    let mut t = Table::new(
        "§2.1 taxonomy — one checkpoint at 30 s, 32 ranks, 180 MB/process, 2 MB messages",
        &[
            "protocol",
            "effective (s)",
            "total (s)",
            "bytes logged",
            "consistent global ckpt",
        ],
    );
    let mut run = |label: &str, mode: CkptMode, g: u32, consistent: &str| {
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode,
            formation: Formation::Static { group_size: g },
            schedule: CkptSchedule::once(time::secs(30)),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let ck = spec.runner().ckpt(cfg).run().expect("ckpt run");
        let ep = &ck.epochs[0];
        let logged = ck.logged_bytes + ck.channel_logged_bytes;
        t.row(&[
            label.into(),
            format!("{:.1}", time::as_secs_f64(ck.completion.saturating_sub(base.completion))),
            format!("{:.1}", time::as_secs_f64(ep.total_time())),
            if logged == 0 { "0".into() } else { format!("{:.0} MB", logged as f64 / MB as f64) },
            consistent.into(),
        ]);
    };

    run("uncoordinated + msg logging", CkptMode::Uncoordinated, 32, "no (needs log replay)");
    run("Chandy-Lamport (idealized)", CkptMode::ChandyLamport, 32, "yes (with channel logs)");
    run("regular blocking All(32)", CkptMode::Buffering, 32, "yes");
    run("group-based g=8 (paper)", CkptMode::Buffering, 8, "yes");
    print!("{}", t.render());
    println!(
        "\nuncoordinated logs every byte for the whole run; idealized CL needs \
         NIC-state cloning InfiniBand does not offer (§2.2) and leaves all ranks \
         writing at once; group-based gets the low delay with no logs at all."
    );
}
