//! Regenerate Figure 9: availability under coordinator churn, static
//! control plane vs lease-based leader failover × coordinator MTBF.
//!
//! `--smoke` runs the seeded 8-rank coordinator-kill failover cell
//! `scripts/tier1.sh` gates on and prints only its golden `terms=` line.
//! `--threads N` controls the worker pool (the tables must not depend on
//! it); `--json` emits the run-record JSON block instead of the table.

use gbcr_bench::fig9;

fn main() {
    let mut threads = None;
    let mut smoke = false;
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                }));
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown flag {other}\nusage: fig9 [--threads N] [--smoke] [--json]");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        let (terms, migrations, supervisor_restarts, results_match) = fig9::smoke();
        println!(
            "fig9 smoke: terms={terms} migrations={migrations} \
             supervisor_restarts={supervisor_restarts} results_match={results_match}"
        );
        return;
    }
    let st = fig9::run_threaded(8, &fig9::COORD_MTBFS_S, fig9::REPLICAS, threads, fig9::Plane::Static);
    let fo =
        fig9::run_threaded(8, &fig9::COORD_MTBFS_S, fig9::REPLICAS, threads, fig9::Plane::Failover);
    if json {
        println!("{}", fig9::json_block(&st, &fo));
        return;
    }
    print!("{}", fig9::table(&st, &fo).render());
    println!(
        "\nbare completion {:.2}s; interval {} ms; fault seed {:#x}",
        st.useful_secs,
        fig9::INTERVAL_MS,
        st.seed
    );
}
