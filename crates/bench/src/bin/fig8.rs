//! Regenerate Figure 8: availability under stochastic node failures,
//! checkpoint interval × MTBF, vs the Young/Daly closed forms.
//!
//! `--smoke` runs the seeded 4-rank kill/restart cell `scripts/tier1.sh`
//! gates on and prints only its golden `attempts=` line. `--abort-smoke`
//! runs the mid-protocol straggler cell (phase deadline trips, the epoch
//! aborts and retries, results stay byte-identical) and prints its golden
//! `aborts=` line. `--trace PATH` runs the traced 4-rank smoke, exports
//! its Chrome/Perfetto JSON to PATH, validates it (schema, span nesting,
//! phase coverage) and prints the golden `trace smoke:` verdict line.
//! `--threads N` controls the worker pool (the tables must not depend on
//! it).

use gbcr_bench::{fig8, trace};

fn main() {
    let mut threads = None;
    let mut smoke = false;
    let mut abort_smoke = false;
    let mut replicated_smoke = false;
    let mut backend = fig8::Backend::Central;
    let mut trace_path = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive number");
                    std::process::exit(2);
                }));
            }
            "--smoke" => smoke = true,
            "--abort-smoke" => abort_smoke = true,
            "--replicated-smoke" => replicated_smoke = true,
            "--backend" => {
                backend = it
                    .next()
                    .as_deref()
                    .and_then(fig8::Backend::parse)
                    .unwrap_or_else(|| {
                        eprintln!("--backend needs one of: central, failover, replicated");
                        std::process::exit(2);
                    });
            }
            "--trace" => {
                trace_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: fig8 [--threads N] [--smoke] [--abort-smoke] \
                     [--replicated-smoke] [--backend central|failover|replicated] [--trace PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = trace_path {
        let report = trace::trace_smoke();
        let data = report.trace.as_deref().expect("traced run records data");
        let json = trace::export(data, &path).expect("write trace file");
        let chk = trace::check_chrome_json(&json).expect("exported trace must parse");
        println!(
            "fig8 trace smoke: spans={} phases_ok={} net_ok={} storage_ok={} nested={}",
            chk.spans, chk.phases_ok, chk.net_ok, chk.storage_ok, chk.nested
        );
        std::process::exit(i32::from(!chk.ok()));
    }
    if smoke {
        let (attempts, failures) = fig8::smoke_on(backend);
        println!("fig8 smoke: attempts={attempts} failures={failures}");
        return;
    }
    if replicated_smoke {
        let (attempts, failures, local, remote, writes, faster) = fig8::replicated_smoke();
        println!(
            "fig8 replicated smoke: attempts={attempts} failures={failures} local={local} \
             remote={remote} replica_writes={writes} faster_recovery={faster}"
        );
        return;
    }
    if abort_smoke {
        let (aborts, retries, manifests, results_match) = fig8::abort_smoke();
        println!(
            "fig8 abort smoke: aborts={aborts} retries={retries} manifests={manifests} \
             results_match={results_match}"
        );
        return;
    }
    let sw = fig8::run_threaded(
        8,
        &fig8::INTERVALS_MS,
        &fig8::NODE_MTBFS_S,
        fig8::REPLICAS,
        threads,
        backend,
    );
    print!("{}", fig8::table(&sw).render());
    print!("\n{}", fig8::lost_work_table(&sw).render());
    print!("\n{}", fig8::optimal_table(&sw).render());
    println!(
        "\nbare completion {:.2}s; δ(one checkpoint) {:.2}s; fault seed {:#x}",
        sw.useful_secs, sw.delta_secs, sw.seed
    );
}
