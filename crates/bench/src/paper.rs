//! The paper's reported numbers, kept next to our measurements so every
//! regenerated table can print a measured-vs-paper comparison.

/// Figure 1 anchors: 4 PVFS2 servers, ≈140 MB/s aggregate; per-client
/// bandwidth at 32 clients ≈ 4.38 MB/s (`140/32`); single client is
/// limited by its own path (≈115 MB/s in our calibration).
pub mod fig1 {
    /// Aggregate throughput the testbed saturated at (MB/s).
    pub const AGGREGATE_MBS: f64 = 140.0;
    /// Per-client bandwidth at 32 concurrent clients (MB/s).
    pub const PER_CLIENT_AT_32: f64 = 4.38;
}

/// Figure 3 anchors (32 ranks, 180 MB/process): the regular case takes
/// `32 × 180 / 140 ≈ 41 s`; halving the checkpoint group size halves the
/// delay while the group covers at least one communication group; below
/// that the delay flattens or rises.
pub mod fig3 {
    /// Ideal Effective Checkpoint Delay for All(32), seconds.
    pub const ALL32_SECS: f64 = 41.1;
}

/// Figure 5/6 anchors (HPL on an 8×4 grid).
pub mod fig56 {
    /// Headline: reduction for group size 4 at the 50 s point.
    pub const MAX_REDUCTION_G4: f64 = 0.78;
    /// Average reductions over the eight points for sizes 2, 4, 8, 16.
    pub const AVG_REDUCTIONS: [(u32, f64); 4] =
        [(2, 0.37), (4, 0.46), (8, 0.46), (16, 0.35)];
}

/// Figure 7 anchors (MotifMiner, 32 ranks).
pub mod fig7 {
    /// Headline: reduction for group size 4 at the 30 s point.
    pub const MAX_REDUCTION_G4: f64 = 0.70;
    /// Average reductions for sizes 16, 8, 4, 2.
    pub const AVG_REDUCTIONS: [(u32, f64); 4] =
        [(16, 0.28), (8, 0.32), (4, 0.27), (2, 0.14)];
}
