//! The parallel harness must be invisible in the output: every figure
//! driver renders byte-identical tables on 1 worker and on many.

use gbcr_bench::{ablations, fig3, fig4, fig5, fig7};

#[test]
fn figure_tables_are_byte_identical_across_thread_counts() {
    let serial = [
        fig3::table(&fig3::run_threaded(8, &[4, 2], &[8, 4], Some(1))).render(),
        fig4::table(&fig4::run_threaded(&[15, 55], Some(1))).render(),
        fig5::table(&fig5::run_threaded(&[50, 150], &[32, 4], Some(1))).render(),
        fig7::table(&fig7::run_threaded(&[30], &[32, 4], Some(1))).render(),
    ];
    let parallel = [
        fig3::table(&fig3::run_threaded(8, &[4, 2], &[8, 4], Some(8))).render(),
        fig4::table(&fig4::run_threaded(&[15, 55], Some(8))).render(),
        fig5::table(&fig5::run_threaded(&[50, 150], &[32, 4], Some(8))).render(),
        fig7::table(&fig7::run_threaded(&[30], &[32, 4], Some(8))).render(),
    ];
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "figure table {i} differs between 1 and 8 workers");
        assert!(!s.is_empty());
    }
}

#[test]
fn ablation_results_are_thread_count_invariant() {
    let s = ablations::formation_ablation_threaded(Some(1));
    let p = ablations::formation_ablation_threaded(Some(8));
    assert_eq!(s.static_effective, p.static_effective);
    assert_eq!(s.dynamic_effective, p.dynamic_effective);
    assert_eq!(s.dynamic_groups, p.dynamic_groups);
}
