//! Demand-driven vs polled progress equivalence (DESIGN.md §3.1).
//!
//! The demand-driven wake elision must be *observationally invisible*:
//! every figure table is byte-identical to the polled baseline, while the
//! simulator dispatches strictly fewer events. This runs the fig3/fig4
//! smoke cells both ways (the same cells `make_all --smoke` renders).
//!
//! Lives in its own integration-test binary because it flips the
//! process-wide polled default — nothing else may construct an
//! `MpiConfig` while that is set.

use gbcr_bench::{fig3, fig4};

fn smoke_cells() -> (String, u64, u64) {
    let f3 = fig3::run_threaded(8, &[4], &[8, 4], Some(2));
    let s4 = fig4::run_threaded(&[15, 55], Some(2));
    let tables = format!("{}\n{}", fig3::table(&f3).render(), fig4::table(&s4).render());
    let events =
        f3.by_comm.iter().map(|(_, s)| s.events).sum::<u64>() + s4.events;
    let elided =
        f3.by_comm.iter().map(|(_, s)| s.elided_wakes).sum::<u64>() + s4.elided_wakes;
    (tables, events, elided)
}

#[test]
fn demand_driven_wakes_match_polled_tables_with_fewer_events() {
    assert!(!gbcr_mpi::polled_progress_default(), "demand-driven is the default");
    let (demand_tables, demand_events, demand_elided) = smoke_cells();

    gbcr_mpi::set_polled_progress_default(true);
    let (polled_tables, polled_events, polled_elided) = smoke_cells();
    gbcr_mpi::set_polled_progress_default(false);

    assert_eq!(
        demand_tables, polled_tables,
        "wake elision changed a figure table — it must be observationally invisible"
    );
    assert!(
        demand_events < polled_events,
        "demand mode must dispatch strictly fewer events ({demand_events} vs {polled_events})"
    );
    assert!(demand_elided > 0, "smoke cells cross passive slices, some wakes must elide");
    assert_eq!(polled_elided, 0, "polled mode never elides");
}
