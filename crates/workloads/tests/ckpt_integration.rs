//! Checkpoint/restart correctness on the real workloads: a checkpointed
//! run must produce the oracle result, and a run restarted from any epoch
//! must converge to the identical answer.

use gbcr_core::{
    extract_images, restart_job, CkptMode, CkptSchedule, CoordinatorCfg, Formation,
    RestartSpec,
};
use gbcr_des::time;
use gbcr_storage::MB;
use gbcr_workloads::{hpl, HplWorkload, MotifMinerWorkload, RandomTraffic};
use parking_lot::Mutex;
use std::sync::Arc;

fn cfg(job: &str, group_size: u32, at: gbcr_des::Time) -> CoordinatorCfg {
    CoordinatorCfg {
        job: job.into(),
        mode: CkptMode::Buffering,
        formation: Formation::Static { group_size },
        schedule: CkptSchedule::once(at),
        incremental: false,
        deadlines: gbcr_core::PhaseDeadlines::none(),
        election: Default::default(),
    }
}

fn small_hpl() -> HplWorkload {
    HplWorkload {
        grid_rows: 4,
        grid_cols: 2,
        panels: 32,
        base_footprint: 30 * MB,
        factor_time: time::ms(30),
        update_time: time::ms(150),
        panel_bytes: MB,
        update_substeps: 4,
    }
}

#[test]
fn hpl_checkpointed_run_still_matches_oracle() {
    let w = small_hpl();
    let want = hpl::sequential_digest_sum(w.panels, w.grid_rows, w.grid_cols);
    let sum = Arc::new(Mutex::new(0u64));
    let report =
        w.job(Some(sum.clone())).runner().ckpt(cfg("hpl", 2, time::secs(1))).run().unwrap();
    assert_eq!(report.epochs.len(), 1);
    assert_eq!(*sum.lock(), want, "checkpointing perturbed the factorization");
}

#[test]
fn hpl_restart_mid_factorization_is_exact() {
    let w = small_hpl();
    let want = hpl::sequential_digest_sum(w.panels, w.grid_rows, w.grid_cols);

    let report = w.job(None).runner().ckpt(cfg("hpl", 4, time::secs(2))).run().unwrap();
    let images = extract_images(&report, "hpl", 0, w.n()).unwrap();

    let sum = Arc::new(Mutex::new(0u64));
    restart_job(
        &w.job(Some(sum.clone())),
        None,
        RestartSpec { job: "hpl".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(*sum.lock(), want, "restarted factorization diverged");
}

#[test]
fn hpl_restart_under_regular_protocol_is_exact() {
    let w = small_hpl();
    let want = hpl::sequential_digest_sum(w.panels, w.grid_rows, w.grid_cols);
    let report = w.job(None).runner().ckpt(cfg("hpl", 8, time::secs(2))).run().unwrap();
    let images = extract_images(&report, "hpl", 0, w.n()).unwrap();
    let sum = Arc::new(Mutex::new(0u64));
    restart_job(
        &w.job(Some(sum.clone())),
        None,
        RestartSpec { job: "hpl".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(*sum.lock(), want);
}

fn small_miner() -> MotifMinerWorkload {
    MotifMinerWorkload {
        n: 8,
        iterations: 8,
        iter_compute: time::ms(400),
        footprint: 25 * MB,
        exchange_bytes: 512 * 1024,
        atoms: 40,
        imbalance: 0.2,
    }
}

#[test]
fn motifminer_checkpoint_and_restart_are_exact() {
    let w = small_miner();
    let truth = Arc::new(Mutex::new(0u64));
    w.job(Some(truth.clone())).runner().run().unwrap();
    let want = *truth.lock();

    let mid = Arc::new(Mutex::new(0u64));
    let report =
        w.job(Some(mid.clone())).runner().ckpt(cfg("motifminer", 2, time::ms(900))).run().unwrap();
    assert_eq!(*mid.lock(), want, "checkpointing perturbed the mining result");

    let images = extract_images(&report, "motifminer", 0, w.n).unwrap();
    let restarted = Arc::new(Mutex::new(0u64));
    restart_job(
        &w.job(Some(restarted.clone())),
        None,
        RestartSpec { job: "motifminer".into(), epoch: 0, images, lost_nodes: vec![] },
    )
    .unwrap();
    assert_eq!(*restarted.lock(), want, "restarted mining diverged");
}

#[test]
fn random_traffic_restart_equivalence_across_patterns_and_group_sizes() {
    // A light property sweep: several pattern seeds × checkpoint group
    // sizes, each with a mid-run epoch and a restart. The watermark/replay
    // machinery must hold for arbitrary pairings and mixed message sizes.
    for pattern_seed in [11u64, 29, 73] {
        let w = RandomTraffic { pattern_seed, ..Default::default() };
        let truth = Arc::new(Mutex::new(Vec::new()));
        w.job(Some(truth.clone())).runner().run().unwrap();
        let mut want = truth.lock().clone();
        want.sort();

        for group_size in [2u32, 4, 8] {
            let mid = Arc::new(Mutex::new(Vec::new()));
            let report = w
                .job(Some(mid.clone()))
                .runner()
                .ckpt(cfg("random-traffic", group_size, time::ms(1700)))
                .run()
                .unwrap();
            let mut got = mid.lock().clone();
            got.sort();
            assert_eq!(got, want, "seed={pattern_seed} g={group_size}: ckpt run diverged");

            let images = extract_images(&report, "random-traffic", 0, w.n).unwrap();
            let re = Arc::new(Mutex::new(Vec::new()));
            restart_job(
                &w.job(Some(re.clone())),
                None,
                RestartSpec { job: "random-traffic".into(), epoch: 0, images, lost_nodes: vec![] },
            )
            .unwrap();
            let mut got = re.lock().clone();
            got.sort();
            assert_eq!(got, want, "seed={pattern_seed} g={group_size}: restart diverged");
        }
    }
}

#[test]
fn hpl_effective_delay_group_4_beats_regular() {
    // The headline claim at test scale: group-based beats regular for the
    // HPL-like workload.
    // The benefit needs paper-like ratios: the per-panel compute chunk must
    // be comparable to (or exceed) one group's storage-write time, so that
    // non-checkpointing groups overlap computation with the writes.
    let w = HplWorkload {
        grid_rows: 4,
        grid_cols: 2,
        panels: 16,
        base_footprint: 120 * MB,
        factor_time: time::ms(200),
        update_time: time::ms(3000),
        panel_bytes: 2 * MB,
        update_substeps: 4,
    };
    let base = w.job(None).runner().run().unwrap();
    let at = time::secs(6);
    let all = w.job(None).runner().ckpt(cfg("hpl", 8, at)).run().unwrap();
    let grouped = w.job(None).runner().ckpt(cfg("hpl", 2, at)).run().unwrap();
    let d_all = all.completion - base.completion;
    let d_grp = grouped.completion - base.completion;
    // At this toy scale (4 rows, tiny writes) the win is modest; the
    // paper-scale reproduction (32 ranks, paper parameters) lives in the
    // fig5/fig6 benches and EXPERIMENTS.md.
    assert!(
        (d_grp as f64) < 0.85 * d_all as f64,
        "grouped delay {} not clearly better than regular {}",
        time::fmt(d_grp),
        time::fmt(d_all)
    );
}
