//! An HPL-like distributed LU factorization (§6.2, Figures 5–6).
//!
//! HPL solves a dense linear system on a P×Q process grid; per panel `k`
//! the owning process *column* factors the panel, the panel is broadcast
//! along process *rows*, the current U-row travels down process *columns*,
//! and everyone applies the trailing update whose cost shrinks as
//! `(1 − k/K)²`. With the paper's 8×4 grid and a large block size the
//! communication group is effectively the process row (four ranks).
//!
//! Two things are layered on one loop:
//!
//! * **Timing**: compute and wire costs are scaled to a paper-sized
//!   problem (hundreds of MB per process, panels of several MB), giving
//!   Figures 5/6 their shape.
//! * **Numerics**: a real (small) dense matrix in block-cyclic element
//!   distribution is factored by the same communication pattern —
//!   element-granularity right-looking Gaussian elimination without
//!   pivoting on a diagonally dominant matrix. Tests check the distributed
//!   result against a sequential oracle, and restart tests check that a
//!   killed-and-restored factorization finishes bit-identically.

use gbcr_blcr::codec::{Checkpointable, Decoder, Encoder};
use gbcr_blcr::CodecError;
use gbcr_core::{JobSpec, RankCtx};
use gbcr_des::{time, Time};
use gbcr_mpi::{Comm, Mpi, Msg};
use gbcr_storage::MB;
use std::sync::Arc;

/// Configuration of the HPL-like run.
#[derive(Debug, Clone)]
pub struct HplWorkload {
    /// Process grid rows (paper: 8).
    pub grid_rows: u32,
    /// Process grid columns (paper: 4) — the effective comm group.
    pub grid_cols: u32,
    /// Number of panels (matrix dimension for the real numerics).
    pub panels: u32,
    /// Base per-process footprint in bytes; the declared footprint varies
    /// over the run (the paper observed non-constant memory footprints).
    pub base_footprint: u64,
    /// Panel factorization compute time at `k = 0`.
    pub factor_time: Time,
    /// Trailing-update compute time at `k = 0` (scales down as the
    /// factorization proceeds).
    pub update_time: Time,
    /// Simulated bytes of a full panel broadcast at `k = 0`.
    pub panel_bytes: u64,
    /// The trailing update is pipelined into this many sub-steps with an
    /// intra-row exchange between them (HPL's update streams U sub-blocks,
    /// producing continuous row traffic). This is what makes checkpoint
    /// groups smaller than a grid row pay: they split a row, so the
    /// sub-step exchange defers during the epoch.
    pub update_substeps: u32,
}

impl Default for HplWorkload {
    fn default() -> Self {
        // The paper ran HPL "with a larger block size": few panels, long
        // trailing updates — which is what lets other groups overlap a
        // whole group-by-group checkpoint epoch with computation.
        HplWorkload {
            grid_rows: 8,
            grid_cols: 4,
            panels: 8,
            base_footprint: 600 * MB,
            factor_time: time::secs(3),
            update_time: time::secs(140),
            panel_bytes: 64 * MB,
            update_substeps: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HplState {
    panel: u32,
    /// This rank's owned elements of the live matrix, row-major over its
    /// local (i, j) index space.
    local: Vec<f64>,
}

impl Checkpointable for HplState {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(self.panel);
        enc.put_u64(self.local.len() as u64);
        for &v in &self.local {
            enc.put_f64(v);
        }
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        let panel = dec.get_u32()?;
        let n = dec.get_u64()? as usize;
        let mut local = Vec::with_capacity(n);
        for _ in 0..n {
            local.push(dec.get_f64()?);
        }
        Ok(HplState { panel, local })
    }
}

/// Deterministic, diagonally dominant test matrix.
pub fn matrix_entry(n: u32, i: u32, j: u32) -> f64 {
    if i == j {
        (2 * n) as f64 + (i % 7) as f64
    } else {
        let h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5
    }
}

/// Sequential right-looking Gaussian elimination (no pivoting) — the
/// oracle the distributed run is checked against.
pub fn sequential_lu(n: u32) -> Vec<f64> {
    let n_us = n as usize;
    let mut a: Vec<f64> = (0..n_us * n_us)
        .map(|idx| matrix_entry(n, (idx / n_us) as u32, (idx % n_us) as u32))
        .collect();
    for k in 0..n_us {
        let pivot = a[k * n_us + k];
        for i in (k + 1)..n_us {
            let l = a[i * n_us + k] / pivot;
            a[i * n_us + k] = l;
            for j in (k + 1)..n_us {
                a[i * n_us + j] -= l * a[k * n_us + j];
            }
        }
    }
    a
}

/// Deterministic digest of a set of `f64`s by bit pattern.
pub fn digest(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Digest of the full sequentially factored matrix (ground truth for
/// [`HplWorkload`] runs; the distributed digests are order-normalized by
/// summing per-rank digests).
pub fn sequential_digest_sum(n: u32, grid_rows: u32, grid_cols: u32) -> u64 {
    let a = sequential_lu(n);
    let mut sum = 0u64;
    for pr in 0..grid_rows {
        for pc in 0..grid_cols {
            let mut mine = Vec::new();
            for i in (0..n).filter(|i| i % grid_rows == pr) {
                for j in (0..n).filter(|j| j % grid_cols == pc) {
                    mine.push(a[(i * n + j) as usize]);
                }
            }
            sum = sum.wrapping_add(digest(mine));
        }
    }
    sum
}

impl HplWorkload {
    /// Total ranks.
    pub fn n(&self) -> u32 {
        self.grid_rows * self.grid_cols
    }

    /// Rough baseline duration: Σ_k (factor·√s + update·s), s = (1−k/K)².
    pub fn approx_duration(&self) -> Time {
        let kk = f64::from(self.panels);
        let mut total = 0.0;
        for k in 0..self.panels {
            let s = (1.0 - f64::from(k) / kk).powi(2);
            total += self.factor_time as f64 * s.sqrt() + self.update_time as f64 * s;
        }
        total as Time
    }

    /// Footprint at panel `k`: ramps from 75 % to 125 % of the base (the
    /// paper notes the footprint is not constant during execution).
    pub fn footprint_at(&self, k: u32) -> u64 {
        let progress = f64::from(k) / f64::from(self.panels.max(1));
        (self.base_footprint as f64 * (0.75 + 0.5 * progress)) as u64
    }

    /// Build the runnable job. If `sum_out` is supplied, each rank adds its
    /// final local digest into it (checked against
    /// [`sequential_digest_sum`] in tests).
    pub fn job(&self, sum_out: Option<Arc<parking_lot::Mutex<u64>>>) -> JobSpec {
        let cfg = self.clone();
        let n = self.n();
        let body = Arc::new(move |ctx: RankCtx<'_>| {
            let RankCtx { p, mpi, world, client, restored } = ctx;
            let rank = mpi.rank();
            let (pr, pc) = (rank / cfg.grid_cols, rank % cfg.grid_cols);
            let row_comm =
                world.comm((0..cfg.grid_cols).map(|c| pr * cfg.grid_cols + c).collect());
            let col_comm =
                world.comm((0..cfg.grid_rows).map(|r| r * cfg.grid_cols + pc).collect());
            let k_total = cfg.panels;

            let mut st = match restored {
                Some(b) => HplState::from_bytes(b).expect("valid HPL state"),
                None => HplState {
                    panel: 0,
                    local: local_indices(k_total, pr, pc, cfg.grid_rows, cfg.grid_cols)
                        .map(|(i, j)| matrix_entry(k_total, i, j))
                        .collect(),
                },
            };
            let lidx = |i: u32, j: u32| -> usize {
                let li = (i / cfg.grid_rows) as usize;
                let lj = (j / cfg.grid_cols) as usize;
                let cols = (k_total - pc).div_ceil(cfg.grid_cols) as usize;
                li * cols + lj
            };

            while st.panel < k_total {
                let k = st.panel;
                client.set_footprint(cfg.footprint_at(k));
                client.set_state(st.to_bytes());
                let shrink = {
                    let f = 1.0 - f64::from(k) / f64::from(k_total);
                    f * f
                };
                // The trailing update rewrites the remaining submatrix:
                // that is the dirty set an incremental checkpoint writes.
                client.mark_dirty((cfg.footprint_at(k) as f64 * shrink) as u64);
                let owner_col = k % cfg.grid_cols;
                let owner_row = k % cfg.grid_rows;

                // --- Panel factorization in the owning process column. ---
                let mut l_col: Vec<f64> = Vec::new();
                if pc == owner_col {
                    mpi.compute(
                        p,
                        ((cfg.factor_time as f64 * shrink.sqrt()) as Time).max(time::ms(1)),
                    );
                    // Pivot travels down the process column.
                    let pivot = {
                        let root = col_comm.index_of(owner_row * cfg.grid_cols + pc).unwrap();
                        let mine = (pr == owner_row).then(|| Msg::f64(st.local[lidx(k, k)]));
                        mpi.bcast(p, &col_comm, root, mine).as_f64()
                    };
                    // Scale my below-diagonal entries of column k.
                    for i in ((k + 1)..k_total).filter(|i| i % cfg.grid_rows == pr) {
                        let v = st.local[lidx(i, k)] / pivot;
                        st.local[lidx(i, k)] = v;
                        l_col.push(v);
                    }
                }

                // --- Panel broadcast along process rows (the paper's
                //     dominant, comm-group-defining traffic). ---
                let panel_wire =
                    ((cfg.panel_bytes as f64 * shrink).max(64.0 * 1024.0)) as u64;
                let l_mine = broadcast_f64s(
                    p, &mpi, &row_comm, owner_col as usize, &l_col, panel_wire, pc == owner_col,
                );

                // --- U-row travels down process columns. ---
                let mut u_row: Vec<f64> = Vec::new();
                if pr == owner_row {
                    for j in ((k + 1)..k_total).filter(|j| j % cfg.grid_cols == pc) {
                        u_row.push(st.local[lidx(k, j)]);
                    }
                }
                let u_wire = (panel_wire / cfg.grid_cols as u64).max(16 * 1024);
                let u_mine = broadcast_f64s(
                    p,
                    &mpi,
                    &col_comm,
                    col_comm.index_of(owner_row * cfg.grid_cols + pc).unwrap(),
                    &u_row,
                    u_wire,
                    pr == owner_row,
                );

                // --- Trailing update, pipelined into sub-steps with
                //     intra-row exchange (streamed U sub-blocks). ---
                let sub = cfg.update_substeps.max(1);
                let sub_compute =
                    ((cfg.update_time as f64 * shrink / f64::from(sub)) as Time).max(time::ms(1));
                let row_n = row_comm.size();
                for s in 0..sub {
                    mpi.compute(p, sub_compute);
                    if sub > 1 && row_n > 1 {
                        let idx = row_comm.index_of(rank).unwrap();
                        let r_peer = row_comm.member((idx + 1) % row_n);
                        let l_peer = row_comm.member((idx + row_n - 1) % row_n);
                        let tag = k * 64 + s + 1_000;
                        let sr = mpi.isend(p, r_peer, tag, Msg::bulk(MB));
                        let _ = mpi.recv(p, Some(l_peer), tag);
                        mpi.wait(p, sr);
                    }
                }
                let my_rows: Vec<u32> =
                    ((k + 1)..k_total).filter(|i| i % cfg.grid_rows == pr).collect();
                let my_cols: Vec<u32> =
                    ((k + 1)..k_total).filter(|j| j % cfg.grid_cols == pc).collect();
                for (ri, &i) in my_rows.iter().enumerate() {
                    let l = l_mine[ri];
                    for (ci, &j) in my_cols.iter().enumerate() {
                        let u = u_mine[ci];
                        let v = st.local[lidx(i, j)] - l * u;
                        st.local[lidx(i, j)] = v;
                    }
                }
                st.panel += 1;
            }
            let _ = n;
            if let Some(sum) = &sum_out {
                let mut s = sum.lock();
                *s = s.wrapping_add(crate::hpl::digest(st.local.iter().copied()));
            }
        });
        JobSpec::new("hpl", n, body)
    }
}

/// Owned (i, j) pairs for a rank at grid position `(pr, pc)`, row-major.
fn local_indices(
    n: u32,
    pr: u32,
    pc: u32,
    grid_rows: u32,
    grid_cols: u32,
) -> impl Iterator<Item = (u32, u32)> {
    (0..n).filter(move |i| i % grid_rows == pr).flat_map(move |i| {
        (0..n).filter(move |j| j % grid_cols == pc).map(move |j| (i, j))
    })
}

/// Broadcast a small real `f64` vector inside a `wire_size`-byte simulated
/// payload over `comm` from `root` (communicator index).
fn broadcast_f64s(
    p: &gbcr_des::Proc,
    mpi: &Mpi,
    comm: &Comm,
    root: usize,
    values: &[f64],
    wire_size: u64,
    am_root: bool,
) -> Vec<f64> {
    let mine = am_root.then(|| {
        let mut enc = Encoder::new();
        enc.put_u64(values.len() as u64);
        for &v in values {
            enc.put_f64(v);
        }
        Msg::with_size(enc.finish(), wire_size)
    });
    let got = mpi.bcast(p, comm, root, mine);
    let mut dec = Decoder::new(got.data);
    let n = dec.get_u64().expect("panel length") as usize;
    (0..n).map(|_| dec.get_f64().expect("panel data")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn small() -> HplWorkload {
        HplWorkload {
            grid_rows: 4,
            grid_cols: 2,
            panels: 24,
            base_footprint: 20 * MB,
            factor_time: time::ms(20),
            update_time: time::ms(100),
            panel_bytes: MB,
            update_substeps: 4,
        }
    }

    #[test]
    fn distributed_lu_matches_sequential_oracle() {
        let w = small();
        let sum = Arc::new(Mutex::new(0u64));
        w.job(Some(sum.clone())).runner().run().unwrap();
        let want = sequential_digest_sum(w.panels, w.grid_rows, w.grid_cols);
        assert_eq!(*sum.lock(), want, "distributed factorization diverged from oracle");
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let n = 32;
        for i in 0..n {
            let diag = matrix_entry(n, i, i).abs();
            let off: f64 =
                (0..n).filter(|&j| j != i).map(|j| matrix_entry(n, i, j).abs()).sum();
            assert!(diag > off, "row {i} not dominant: {diag} <= {off}");
        }
    }

    #[test]
    fn footprint_varies_over_execution() {
        let w = HplWorkload::default();
        assert!(w.footprint_at(0) < w.footprint_at(w.panels / 2));
        assert!(w.footprint_at(w.panels / 2) < w.footprint_at(w.panels));
        assert_eq!(w.footprint_at(0), (600.0 * 0.75) as u64 * MB);
    }

    #[test]
    fn state_round_trips() {
        let st = HplState { panel: 3, local: vec![1.5, -2.25, 1e-9] };
        assert_eq!(HplState::from_bytes(st.to_bytes()).unwrap(), st);
    }

    #[test]
    fn approx_duration_is_sane() {
        let w = HplWorkload::default();
        let d = time::as_secs_f64(w.approx_duration());
        // 8 panels: Σ (3·√s + 140·s) with s = (1−k/8)² ≈ 459.7 s.
        assert!((d - 459.7).abs() < 1.0, "got {d}");
    }
}
