//! A MotifMiner-like parallel data-mining workload (§6.3, Figure 7).
//!
//! MotifMiner mines structural motifs in biomolecular datasets; its
//! parallel algorithm is iterative with an `MPI_Allgather` exchanging
//! candidates after each iteration — global communication, but each
//! iteration carries "a relatively large chunk of computation", which is
//! why group-based checkpointing still helps (§6.3).
//!
//! A real (tiny) frequent-subpath miner runs inside the timing shell: a
//! deterministic synthetic molecule graph is partitioned across ranks,
//! each rank extends its local candidate paths and counts support, and the
//! allgather merges global support counts — so results are checkable and
//! restart equivalence is meaningful.

use gbcr_blcr::codec::{Checkpointable, Decoder, Encoder};
use gbcr_blcr::CodecError;
use gbcr_core::{JobSpec, RankCtx};
use gbcr_des::{time, Time};
use gbcr_mpi::Msg;
use gbcr_storage::MB;
use std::sync::Arc;

/// Configuration of the MotifMiner-like run.
#[derive(Debug, Clone)]
pub struct MotifMinerWorkload {
    /// Number of ranks (paper: 32).
    pub n: u32,
    /// Mining iterations (path-length levels).
    pub iterations: u32,
    /// Base compute time per iteration per rank.
    pub iter_compute: Time,
    /// Per-process memory footprint in bytes.
    pub footprint: u64,
    /// Simulated bytes each rank contributes to the allgather.
    pub exchange_bytes: u64,
    /// Number of atoms in the synthetic molecule graph.
    pub atoms: u32,
    /// Deterministic per-rank compute imbalance amplitude (fraction).
    pub imbalance: f64,
}

impl Default for MotifMinerWorkload {
    fn default() -> Self {
        // Long per-iteration compute chunks: the lysozyme query is heavily
        // computation-bound, and the compute-chunk-to-epoch ratio is what
        // produces the paper's up-to-70 % reduction at the 30 s point.
        MotifMinerWorkload {
            n: 32,
            iterations: 4,
            iter_compute: time::secs(115),
            footprint: 520 * MB,
            exchange_bytes: 4 * MB,
            atoms: 64,
            imbalance: 0.15,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MinerState {
    iter: u32,
    /// Support counts of the surviving candidate paths, keyed by a path
    /// signature hash (sorted for determinism).
    support: Vec<(u64, u64)>,
}

impl Checkpointable for MinerState {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(self.iter);
        enc.put_u64(self.support.len() as u64);
        for &(sig, count) in &self.support {
            enc.put_u64(sig);
            enc.put_u64(count);
        }
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        let iter = dec.get_u32()?;
        let n = dec.get_u64()? as usize;
        let mut support = Vec::with_capacity(n);
        for _ in 0..n {
            support.push((dec.get_u64()?, dec.get_u64()?));
        }
        Ok(MinerState { iter, support })
    }
}

/// Deterministic synthetic molecule: atom labels and a sparse bond list.
fn bonds(atoms: u32) -> Vec<(u32, u32)> {
    let mut b = Vec::new();
    for i in 0..atoms {
        b.push((i, (i + 1) % atoms)); // backbone ring
        if i % 3 == 0 && i + 5 < atoms {
            b.push((i, i + 5)); // cross-links
        }
    }
    b
}

fn atom_label(i: u32) -> u64 {
    u64::from(i % 5) // five element types
}

/// One level of local mining on this rank's shard: extend each frequent
/// path signature by the bonds whose lower endpoint hashes into the shard,
/// producing `(signature, count)` pairs.
fn mine_level(rank: u32, n: u32, atoms: u32, prev: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &(a, b) in &bonds(atoms) {
        if a % n != rank {
            continue; // not this rank's shard
        }
        let edge_sig = atom_label(a)
            .wrapping_mul(31)
            .wrapping_add(atom_label(b))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &(sig, count) in prev {
            let ext = sig.rotate_left(7) ^ edge_sig;
            match out.binary_search_by_key(&ext, |e| e.0) {
                Ok(i) => out[i].1 += count,
                Err(i) => out.insert(i, (ext, count.max(1))),
            }
        }
    }
    out
}

/// Merge globally gathered candidate lists, keeping signatures whose total
/// support clears the (low) threshold — bounded so state stays small.
fn merge_and_prune(all: &[Vec<(u64, u64)>]) -> Vec<(u64, u64)> {
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for shard in all {
        for &(sig, count) in shard {
            match merged.binary_search_by_key(&sig, |e| e.0) {
                Ok(i) => merged[i].1 += count,
                Err(i) => merged.insert(i, (sig, count)),
            }
        }
    }
    merged.retain(|&(_, c)| c >= 2);
    merged.truncate(256);
    merged
}

impl MotifMinerWorkload {
    /// Rough baseline duration (compute-dominated).
    pub fn approx_duration(&self) -> Time {
        u64::from(self.iterations) * self.iter_compute
    }

    /// Compute time for `(rank, iter)` with deterministic imbalance.
    pub fn compute_at(&self, rank: u32, iter: u32) -> Time {
        let h = (u64::from(rank) << 32 | u64::from(iter))
            .wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let frac = (h >> 40) as f64 / (1u64 << 24) as f64; // [0, 1)
        let scale = 1.0 + self.imbalance * (frac - 0.5);
        (self.iter_compute as f64 * scale) as Time
    }

    /// Build the runnable job. If `digest_out` is supplied, each rank adds
    /// a digest of the final global support table into it.
    pub fn job(&self, digest_out: Option<Arc<parking_lot::Mutex<u64>>>) -> JobSpec {
        let cfg = self.clone();
        let body = Arc::new(move |ctx: RankCtx<'_>| {
            let RankCtx { p, mpi, world, client, restored } = ctx;
            client.set_footprint(cfg.footprint);
            let all = world.world_comm();
            let mut st = match restored {
                Some(b) => MinerState::from_bytes(b).expect("valid miner state"),
                None => MinerState { iter: 0, support: vec![(0x1234_5678, 1)] },
            };
            while st.iter < cfg.iterations {
                client.set_state(st.to_bytes());
                // Candidate tables and working buffers churn a small slice
                // of the footprint each level (incremental-ckpt dirty set).
                client.mark_dirty(cfg.footprint / 12);
                // The big local chunk of computation (imbalanced).
                mpi.compute(p, cfg.compute_at(mpi.rank(), st.iter));
                let local = mine_level(mpi.rank(), cfg.n, cfg.atoms, &st.support);
                // Global candidate exchange after each iteration.
                let payload = {
                    let mut e = Encoder::new();
                    e.put_u64(local.len() as u64);
                    for &(s, c) in &local {
                        e.put_u64(s);
                        e.put_u64(c);
                    }
                    Msg::with_size(e.finish(), cfg.exchange_bytes)
                };
                let gathered = mpi.allgather(p, &all, payload);
                let shards: Vec<Vec<(u64, u64)>> = gathered
                    .into_iter()
                    .map(|m| {
                        let mut d = Decoder::new(m.data);
                        let n = d.get_u64().expect("len") as usize;
                        (0..n)
                            .map(|_| (d.get_u64().unwrap(), d.get_u64().unwrap()))
                            .collect()
                    })
                    .collect();
                st.support = merge_and_prune(&shards);
                st.iter += 1;
            }
            if let Some(out) = &digest_out {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &(sig, count) in &st.support {
                    h ^= sig.wrapping_mul(3).wrapping_add(count);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                let mut g = out.lock();
                *g = g.wrapping_add(h);
            }
        });
        JobSpec::new("motifminer", self.n, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn small() -> MotifMinerWorkload {
        MotifMinerWorkload {
            n: 8,
            iterations: 6,
            iter_compute: time::ms(300),
            footprint: 20 * MB,
            exchange_bytes: 256 * 1024,
            atoms: 32,
            imbalance: 0.2,
        }
    }

    #[test]
    fn mining_is_deterministic_and_converges() {
        let w = small();
        let d1 = Arc::new(Mutex::new(0u64));
        w.job(Some(d1.clone())).runner().run().unwrap();
        let d2 = Arc::new(Mutex::new(0u64));
        w.job(Some(d2.clone())).runner().run().unwrap();
        let (a, b) = (*d1.lock(), *d2.lock());
        assert_eq!(a, b, "mining result must be deterministic");
        assert_ne!(a, 0);
    }

    #[test]
    fn all_ranks_agree_on_global_support() {
        // Every rank ends with the same merged table, so the digest sum is
        // n × (single digest): check divisibility by running twice with
        // different n.
        let w = small();
        let d = Arc::new(Mutex::new(0u64));
        w.job(Some(d.clone())).runner().run().unwrap();
        let total = *d.lock();
        // Per-rank digests are identical; recover one by dividing.
        assert_eq!(total % u64::from(w.n), 0, "ranks disagreed on the final table");
    }

    #[test]
    fn imbalance_varies_compute_but_stays_bounded() {
        let w = MotifMinerWorkload::default();
        let base = w.iter_compute as f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for r in 0..w.n {
            for it in 0..w.iterations {
                let c = w.compute_at(r, it) as f64;
                min = min.min(c);
                max = max.max(c);
            }
        }
        assert!(max <= base * (1.0 + w.imbalance / 2.0) + 1.0);
        assert!(min >= base * (1.0 - w.imbalance / 2.0) - 1.0);
        assert!(max > min, "imbalance should actually vary");
    }

    #[test]
    fn miner_state_round_trips() {
        let st = MinerState { iter: 4, support: vec![(9, 2), (11, 5)] };
        assert_eq!(MinerState::from_bytes(st.to_bytes()).unwrap(), st);
    }

    #[test]
    fn duration_model_matches_run() {
        let w = small();
        let report = w.job(None).runner().run().unwrap();
        let expect = time::as_secs_f64(w.approx_duration());
        let got = time::as_secs_f64(report.completion);
        assert!((got - expect).abs() / expect < 0.15, "got {got}, expect ~{expect}");
    }
}
