//! Seeded random-traffic workload for property tests.
//!
//! Generates an arbitrary but fully deterministic communication pattern:
//! each step, every rank computes a little and then exchanges with a
//! pseudo-randomly chosen partner (symmetric pairing so sends and receives
//! always match), with pseudo-random message sizes spanning the
//! eager/rendezvous boundary. Used by the consistency and restart property
//! tests to hammer the checkpoint protocols with patterns no hand-written
//! workload would produce.

use bytes::Bytes;
use gbcr_blcr::codec::{Checkpointable, Decoder, Encoder};
use gbcr_blcr::CodecError;
use gbcr_core::{JobSpec, RankCtx};
use gbcr_des::{time, Time};
use gbcr_mpi::Msg;
use gbcr_storage::MB;
use std::sync::Arc;

/// Shared collector for per-rank final results.
pub type ResultsSink = Arc<parking_lot::Mutex<Vec<(u32, u64)>>>;

/// Configuration of the random-traffic workload.
#[derive(Debug, Clone)]
pub struct RandomTraffic {
    /// Number of ranks (must be even: steps use perfect matchings).
    pub n: u32,
    /// Steps to run.
    pub steps: u64,
    /// Pattern seed (decoupled from the simulation seed).
    pub pattern_seed: u64,
    /// Per-step compute time.
    pub step_compute: Time,
    /// Per-process footprint.
    pub footprint: u64,
    /// Probability (in 1/256ths) that a step's message is rendezvous-big.
    pub big_prob: u8,
}

impl Default for RandomTraffic {
    fn default() -> Self {
        RandomTraffic {
            n: 8,
            steps: 120,
            pattern_seed: 1,
            step_compute: time::ms(30),
            footprint: 24 * MB,
            big_prob: 48,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TrafficState {
    step: u64,
    acc: u64,
}

impl Checkpointable for TrafficState {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u64(self.step);
        enc.put_u64(self.acc);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(TrafficState { step: dec.get_u64()?, acc: dec.get_u64()? })
    }
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The partner of `rank` at `step`: a rotation-based perfect matching on
/// `n` ranks (round-robin tournament schedule), keyed by the pattern seed.
pub fn partner(n: u32, seed: u64, step: u64, rank: u32) -> u32 {
    assert!(n >= 2 && n.is_multiple_of(2), "random traffic needs an even rank count");
    let round = (mix(seed.wrapping_add(step)) % u64::from(n - 1)) as u32;
    // Standard circle method: rank n−1 is fixed, others rotate.
    let m = n - 1;
    let pos = |r: u32| -> u32 {
        if r == m {
            m
        } else {
            (r + round) % m
        }
    };
    let unpos = |q: u32| -> u32 {
        if q == m {
            m
        } else {
            (q + m - round % m) % m
        }
    };
    let q = pos(rank);
    let mate_pos = if q == m {
        0
    } else if q == 0 {
        m
    } else {
        m - q
    };
    unpos(mate_pos)
}

impl RandomTraffic {
    /// Build the runnable job. If `out` is supplied, each rank adds its
    /// final accumulator (so runs can be compared for equivalence).
    pub fn job(&self, out: Option<ResultsSink>) -> JobSpec {
        let cfg = self.clone();
        let body = Arc::new(move |ctx: RankCtx<'_>| {
            let RankCtx { p, mpi, world: _, client, restored } = ctx;
            client.set_footprint(cfg.footprint);
            let mut st = match restored {
                Some(b) => TrafficState::from_bytes(b).expect("valid traffic state"),
                None => TrafficState { step: 0, acc: u64::from(mpi.rank()) ^ 0xABCD },
            };
            while st.step < cfg.steps {
                client.set_state(st.to_bytes());
                mpi.compute(p, cfg.step_compute);
                let mate = partner(cfg.n, cfg.pattern_seed, st.step, mpi.rank());
                debug_assert_eq!(
                    partner(cfg.n, cfg.pattern_seed, st.step, mate),
                    mpi.rank(),
                    "matching must be symmetric"
                );
                let tag = (st.step % 100_000) as u32;
                let big =
                    ((mix(cfg.pattern_seed ^ st.step.rotate_left(17)) & 0xFF) as u8) < cfg.big_prob;
                let size = if big { 3 * MB } else { 256 };
                let payload =
                    Msg::with_size(Bytes::copy_from_slice(&st.acc.to_le_bytes()), size);
                let s = mpi.isend(p, mate, tag, payload);
                let got = mpi.recv(p, Some(mate), tag);
                mpi.wait(p, s);
                st.acc = st
                    .acc
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(got.as_u64())
                    .wrapping_add(u64::from(mpi.rank()));
                st.step += 1;
            }
            if let Some(out) = &out {
                out.lock().push((mpi.rank(), st.acc));
            }
        });
        JobSpec::new("random-traffic", self.n, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_is_a_symmetric_permutation_without_fixpoints() {
        for n in [2u32, 4, 8, 16] {
            for step in 0..50u64 {
                for r in 0..n {
                    let m = partner(n, 7, step, r);
                    assert_ne!(m, r, "n={n} step={step} rank={r} paired with itself");
                    assert_eq!(partner(n, 7, step, m), r, "asymmetric pairing");
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a: Vec<u32> = (0..20).map(|s| partner(8, 1, s, 0)).collect();
        let b: Vec<u32> = (0..20).map(|s| partner(8, 2, s, 0)).collect();
        assert_ne!(a, b);
    }
}
