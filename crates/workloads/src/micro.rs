//! The paper's micro-benchmarks (§6.1).

use gbcr_blcr::codec::{Checkpointable, Decoder, Encoder};
use gbcr_blcr::CodecError;
use gbcr_core::{JobSpec, RankCtx};
use gbcr_des::{time, Time};
use gbcr_mpi::Msg;
use gbcr_storage::MB;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StepState {
    step: u64,
}

impl Checkpointable for StepState {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u64(self.step);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(StepState { step: dec.get_u64()? })
    }
}

/// How communication-group members are chosen from the global ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupLayout {
    /// Consecutive ranks (`{0..g}, {g..2g}, …`) — aligned with static
    /// checkpoint-group formation.
    #[default]
    Blocked,
    /// Strided ranks (`{0, n/g, 2n/g, …}`) — deliberately misaligned with
    /// rank-order formation; only dynamic formation discovers these groups
    /// (used by the group-formation ablation).
    Strided,
}

/// §6.1 micro-benchmark: "MPI processes communicate only within a
/// communication group using blocking MPI calls continuously, effectively
/// synchronizing themselves in groups."
///
/// Each step is `step_compute` of work followed by a blocking ring exchange
/// inside the communication group (`comm_group_size == 1` is the
/// embarrassingly-parallel case). The memory footprint is the paper's
/// 180 MB per process.
#[derive(Debug, Clone)]
pub struct MicroBench {
    /// Number of ranks (paper: 32).
    pub n: u32,
    /// Communication group size; 1 = embarrassingly parallel.
    pub comm_group_size: u32,
    /// Per-process memory footprint in bytes (paper: 180 MB).
    pub footprint: u64,
    /// Compute time per step.
    pub step_compute: Time,
    /// Number of steps (choose so the run outlives the checkpoint).
    pub steps: u64,
    /// Exchanged message size per step.
    pub msg_size: u64,
    /// Blocked (default) or strided communication-group membership.
    pub layout: GroupLayout,
}

impl Default for MicroBench {
    fn default() -> Self {
        MicroBench {
            n: 32,
            comm_group_size: 8,
            footprint: 180 * MB,
            step_compute: time::ms(200),
            steps: 600,
            msg_size: 64 * 1024,
            layout: GroupLayout::Blocked,
        }
    }
}

impl MicroBench {
    /// Expected baseline duration (no checkpoint): steps × compute, plus
    /// negligible communication.
    pub fn approx_duration(&self) -> Time {
        self.steps * self.step_compute
    }

    /// Build the runnable job.
    pub fn job(&self) -> JobSpec {
        let cfg = self.clone();
        assert!(cfg.comm_group_size >= 1 && cfg.n.is_multiple_of(cfg.comm_group_size));
        let body = Arc::new(move |ctx: RankCtx<'_>| {
            let RankCtx { p, mpi, world, client, restored } = ctx;
            client.set_footprint(cfg.footprint);
            let mut st = match restored {
                Some(b) => StepState::from_bytes(b).expect("valid micro state"),
                None => StepState { step: 0 },
            };
            let g = cfg.comm_group_size;
            let members: Vec<u32> = match cfg.layout {
                GroupLayout::Blocked => {
                    let base = (mpi.rank() / g) * g;
                    (base..base + g).collect()
                }
                GroupLayout::Strided => {
                    let stride = cfg.n / g;
                    let base = mpi.rank() % stride;
                    (0..g).map(|i| base + i * stride).collect()
                }
            };
            let comm = world.comm(members);
            let idx = comm.index_of(mpi.rank()).expect("member of own comm group");
            let right = comm.member((idx + 1) % comm.size());
            let left = comm.member((idx + comm.size() - 1) % comm.size());
            while st.step < cfg.steps {
                client.set_state(st.to_bytes());
                client.mark_dirty(cfg.footprint / 64);
                mpi.compute(p, cfg.step_compute);
                if g > 1 {
                    let tag = (st.step % 100_000) as u32;
                    let s = mpi.isend(p, right, tag, Msg::bulk(cfg.msg_size));
                    let _ = mpi.recv(p, Some(left), tag);
                    mpi.wait(p, s);
                }
                st.step += 1;
            }
        });
        JobSpec::new("micro", self.n, body)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlacementState {
    step: u64,
}

impl Checkpointable for PlacementState {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u64(self.step);
    }
    fn restore(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(PlacementState { step: dec.get_u64()? })
    }
}

/// §6.1 placement micro-benchmark (Figure 4): communication groups of
/// eight with a **global** `MPI_Barrier` at a fixed interval, so that the
/// distance between checkpoint issuance and the synchronization line can
/// be swept.
#[derive(Debug, Clone)]
pub struct PlacementBench {
    /// Number of ranks (paper: 32).
    pub n: u32,
    /// Communication group size (paper: 8).
    pub comm_group_size: u32,
    /// Per-process footprint (paper: 180 MB).
    pub footprint: u64,
    /// Compute per step.
    pub step_compute: Time,
    /// Steps between global barriers (`barrier_interval =
    /// steps_per_period × step_compute`; paper: one minute).
    pub steps_per_period: u64,
    /// Number of barrier periods to run.
    pub periods: u64,
}

impl Default for PlacementBench {
    fn default() -> Self {
        PlacementBench {
            n: 32,
            comm_group_size: 8,
            footprint: 180 * MB,
            step_compute: time::ms(250),
            steps_per_period: 240, // 240 × 250 ms = 60 s
            periods: 4,
        }
    }
}

impl PlacementBench {
    /// The barrier interval this configuration produces.
    pub fn barrier_interval(&self) -> Time {
        self.steps_per_period * self.step_compute
    }

    /// Expected baseline duration.
    pub fn approx_duration(&self) -> Time {
        self.periods * self.barrier_interval()
    }

    /// Build the runnable job.
    pub fn job(&self) -> JobSpec {
        let cfg = self.clone();
        assert!(cfg.n.is_multiple_of(cfg.comm_group_size));
        let body = Arc::new(move |ctx: RankCtx<'_>| {
            let RankCtx { p, mpi, world, client, restored } = ctx;
            client.set_footprint(cfg.footprint);
            let mut st = match restored {
                Some(b) => PlacementState::from_bytes(b).expect("valid placement state"),
                None => PlacementState { step: 0 },
            };
            let g = cfg.comm_group_size;
            let base = (mpi.rank() / g) * g;
            let comm = world.comm((base..base + g).collect());
            let all = world.world_comm();
            let idx = comm.index_of(mpi.rank()).expect("member");
            let right = comm.member((idx + 1) % comm.size());
            let left = comm.member((idx + comm.size() - 1) % comm.size());
            let total = cfg.steps_per_period * cfg.periods;
            while st.step < total {
                client.set_state(st.to_bytes());
                mpi.compute(p, cfg.step_compute);
                let tag = (st.step % 100_000) as u32;
                let s = mpi.isend(p, right, tag, Msg::bulk(32 * 1024));
                let _ = mpi.recv(p, Some(left), tag);
                mpi.wait(p, s);
                st.step += 1;
                // The global synchronization line (paper: every minute).
                if st.step % cfg.steps_per_period == 0 {
                    mpi.barrier(p, &all);
                }
            }
        });
        JobSpec::new("placement", self.n, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_baseline_duration_matches_model() {
        let mb = MicroBench { n: 8, comm_group_size: 4, steps: 50, ..Default::default() };
        let report = mb.job().runner().run().unwrap();
        let expect = time::as_secs_f64(mb.approx_duration());
        let got = time::as_secs_f64(report.completion);
        assert!((got - expect).abs() / expect < 0.05, "got {got}, expect ~{expect}");
    }

    #[test]
    fn micro_embarrassingly_parallel_has_no_traffic() {
        let mb = MicroBench { n: 4, comm_group_size: 1, steps: 20, ..Default::default() };
        let report = mb.job().runner().run().unwrap();
        assert_eq!(report.net_stats.messages, 0);
    }

    #[test]
    fn placement_barrier_period_shapes_run() {
        let pb = PlacementBench {
            n: 8,
            comm_group_size: 4,
            steps_per_period: 20,
            periods: 2,
            ..Default::default()
        };
        let report = pb.job().runner().run().unwrap();
        let expect = time::as_secs_f64(pb.approx_duration());
        let got = time::as_secs_f64(report.completion);
        assert!((got - expect).abs() / expect < 0.05, "got {got}, expect ~{expect}");
    }

    #[test]
    fn micro_state_round_trips() {
        let s = StepState { step: 77 };
        assert_eq!(StepState::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
