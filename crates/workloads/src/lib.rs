//! # gbcr-workloads — the paper's evaluation programs, simulated
//!
//! Four workloads drive the paper's figures, plus a random-traffic
//! generator used by the property tests:
//!
//! * [`MicroBench`] (§6.1, Figure 3): 32 ranks partitioned into
//!   *communication groups* that continuously exchange blocking messages
//!   within the group — the knob that interacts with the checkpoint group
//!   size.
//! * [`PlacementBench`] (§6.1, Figure 4): communication groups of eight
//!   plus a global `MPI_Barrier` every minute; sweeping the checkpoint
//!   issuance time against the synchronization line.
//! * [`HplWorkload`] (§6.2, Figures 5–6): a block-LU factorization on a
//!   P×Q process grid with panel broadcasts along process rows — the
//!   effective communication group is the row (Q = 4 in the paper's 8×4
//!   run). Carries a real (small) matrix so factorization results can be
//!   checksummed across checkpoint/restart runs, while wire/compute costs
//!   are scaled to the paper's problem size.
//! * [`MotifMinerWorkload`] (§6.3, Figure 7): iterative frequent-subgraph
//!   mining over a synthetic molecular graph with an `MPI_Allgather` after
//!   every iteration — global communication, but compute-dominated.
//!
//! Every workload registers its iteration state with the
//! [`gbcr_core::CkptClient`] each step, making all of them restartable;
//! tests verify checkpoint/restart result equivalence for each.

#![warn(missing_docs)]

pub mod hpl;
pub mod micro;
pub mod motifminer;
pub mod random;

pub use hpl::HplWorkload;
pub use micro::{GroupLayout, MicroBench, PlacementBench};
pub use motifminer::MotifMinerWorkload;
pub use random::RandomTraffic;
