//! Demand-driven progress wakes for sliced compute.
//!
//! The paper's §4.4 helper thread guarantees a passive rank runs its
//! progress engine at a bounded interval. The straightforward simulation
//! of that guarantee *polls*: every `progress_interval` the rank parks and
//! wakes, paying a timer event plus two baton handoffs even when there is
//! nothing to progress. Real helper threads are event-driven — they react
//! to arrivals — so the engine offers [`DemandWake`]: a registration the
//! fabric pokes on every delivery to a parked, passively-coordinating
//! rank. The poke schedules a wake at the **next slice boundary**
//! (`anchor + k·interval`, strictly after the delivery), which is exactly
//! the timestamp the polled design would have run progress at; boundaries
//! with no traffic are simply never scheduled ("elided"). Same observable
//! timing, far fewer events.
//!
//! Rules that make the emulation exact (see DESIGN.md §3.1):
//!
//! * **Boundary rounding** — a delivery at `t` wakes at the smallest
//!   `anchor + k·interval > t`. The polled engine would have parked
//!   through every earlier boundary, found nothing, and re-parked without
//!   consuming virtual time, so running progress only at the rounded-up
//!   boundary observes the identical queue state at the identical time.
//! * **Coalescing** — several deliveries before one boundary produce one
//!   scheduled wake (`scheduled` dedupes), i.e. one handoff.
//! * **Cancel on resume** — [`DemandWake::disarm`] cancels the pending
//!   wake, so a rank resumed early (an out-of-band arrival) can never be
//!   woken later at a boundary computed from a superseded anchor.
//! * **Armed only while parked** — the owning rank arms immediately
//!   before parking and disarms immediately after resuming; deliveries
//!   while the rank is running are drained by its own progress calls.

use crate::engine::SimHandle;
use crate::process::ProcId;
use crate::time::Time;
use crate::timer::TimerHandle;
use parking_lot::Mutex;
use std::sync::Arc;

struct Armed {
    pid: ProcId,
    /// Origin of the slice lattice: the last instant progress did work.
    anchor: Time,
    interval: Time,
    /// The compute deadline; a wake there already exists, so boundaries at
    /// or beyond it are never scheduled (the polled engine clamps its
    /// slice to the deadline the same way).
    limit: Time,
    /// When the current park segment began (for elision accounting).
    seg_start: Time,
    /// The one outstanding boundary wake, if any (coalescing).
    scheduled: Option<(Time, TimerHandle)>,
}

/// A wake-on-delivery registration shared between a rank's `compute()`
/// and the fabric's delivery path. Clone freely; all clones are the same
/// registration. See the module docs for the protocol.
#[derive(Clone)]
pub struct DemandWake {
    handle: SimHandle,
    st: Arc<Mutex<Option<Armed>>>,
}

impl DemandWake {
    /// Create a registration bound to a simulation.
    pub fn new(handle: SimHandle) -> Self {
        DemandWake { handle, st: Arc::new(Mutex::new(None)) }
    }

    /// Arm for one park segment: deliveries from now on schedule a wake
    /// for `pid` at the next boundary of the lattice `anchor + k·interval`
    /// (boundaries at or past `limit` are covered by the caller's deadline
    /// wake). Call immediately before parking.
    pub fn arm(&self, pid: ProcId, anchor: Time, interval: Time, limit: Time) {
        let now = self.handle.now();
        debug_assert!(anchor <= now, "anchor in the future");
        let mut st = self.st.lock();
        debug_assert!(st.is_none(), "arm without intervening disarm");
        *st = Some(Armed { pid, anchor, interval, limit, seg_start: now, scheduled: None });
    }

    /// Disarm after resuming: cancels the outstanding boundary wake (if it
    /// has not fired) and credits every boundary the park segment crossed
    /// without a scheduled wake to the simulation's elided-wake counter.
    /// No-op when not armed.
    pub fn disarm(&self) {
        let Some(a) = self.st.lock().take() else { return };
        let now = self.handle.now();
        // Boundaries the polled engine would have woken at during this
        // segment: lattice points in (seg_start, min(now, limit - 1)].
        let f = |x: Time| -> u64 {
            if x <= a.anchor || a.interval == 0 {
                0
            } else {
                (x - a.anchor) / a.interval
            }
        };
        let upper = now.min(a.limit.saturating_sub(1));
        let crossed = f(upper).saturating_sub(f(a.seg_start));
        let fired = match &a.scheduled {
            Some((t, h)) => {
                h.cancel();
                u64::from(*t <= now && *t < a.limit)
            }
            None => 0,
        };
        let elided = crossed.saturating_sub(fired);
        if elided > 0 {
            self.handle.note_elided_wakes(elided);
        }
    }

    /// Fabric-side notification: something was just delivered to the
    /// owning endpoint. Schedules (or keeps) a wake at the next boundary
    /// strictly after the current time. No-op when disarmed. Runs on the
    /// scheduler thread; never blocks.
    pub fn poke(&self) {
        let mut st = self.st.lock();
        let Some(a) = st.as_mut() else { return };
        if a.interval == 0 {
            return;
        }
        let now = self.handle.now();
        debug_assert!(now >= a.anchor);
        let boundary = a.anchor + a.interval * ((now - a.anchor) / a.interval + 1);
        if boundary >= a.limit {
            return; // the deadline wake covers it
        }
        match &a.scheduled {
            // An earlier delivery in this segment already scheduled this
            // (or an earlier) boundary; one wake serves every delivery
            // before it.
            Some((t, _)) if *t <= boundary => {}
            other => {
                if let Some((_, h)) = other {
                    h.cancel();
                }
                let h = self.handle.schedule_wake_cancellable(boundary, a.pid);
                a.scheduled = Some((boundary, h));
            }
        }
    }

    /// Whether currently armed (test support).
    pub fn is_armed(&self) -> bool {
        self.st.lock().is_some()
    }
}

impl std::fmt::Debug for DemandWake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.st.lock();
        f.debug_struct("DemandWake").field("armed", &st.is_some()).finish()
    }
}
