//! # gbcr-des — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. It provides a
//! virtual clock with nanosecond resolution, an event queue with a total
//! deterministic order, and *thread-backed simulated processes*: each
//! simulated entity (an MPI rank, a storage server, the checkpoint
//! coordinator) is an OS thread, but a baton protocol guarantees **exactly
//! one** simulated thread executes at any instant. User code is therefore
//! written as ordinary straight-line blocking code — exactly like a real MPI
//! program — while the whole run stays bit-for-bit reproducible for a given
//! seed.
//!
//! This mirrors the classic process-oriented simulation style (SimPy,
//! OMNeT++ "activities"): a process runs until it *yields* — by sleeping,
//! by blocking on a [`Signal`], or by finishing — and the scheduler then
//! dispatches the next event in `(time, sequence)` order.
//!
//! ## Why threads and not async?
//!
//! The workloads we simulate (HPL, MotifMiner, the paper's micro-benchmarks)
//! are most naturally expressed as blocking MPI programs. Backing each
//! simulated process with an OS thread keeps the user-facing API free of
//! combinators and lifetimes while the baton handoff keeps the simulation
//! sequential and deterministic. Contention on the handoff locks is nil
//! because at most one simulated thread and the scheduler are ever awake.
//!
//! ## Quick example
//!
//! ```
//! use gbcr_des::{Sim, time};
//!
//! let mut sim = Sim::new(42);
//! let sig = sim.signal("ready");
//! let sig2 = sig.clone();
//! sim.spawn("producer", move |p| {
//!     p.sleep(time::ms(10));
//!     sig2.notify_all(p);
//! });
//! sim.spawn("consumer", move |p| {
//!     sig.wait(p);
//!     assert_eq!(p.now(), time::ms(10));
//! });
//! let end = sim.run().unwrap();
//! assert_eq!(end, time::ms(10));
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod process;
mod signal;
pub mod time;
mod timer;
mod wake;

/// The structured tracing subsystem (re-exported so downstream crates
/// reach span/event types through the engine they already depend on).
pub use gbcr_trace as trace;

pub use engine::{total_events_processed, total_wakes_elided, Sim, SimHandle};
pub use error::{SimError, SimResult};
pub use gbcr_trace::{Arg, ArgValue, Event, Span, TraceData, TraceLevel, Tracer, Track};
pub use process::{Proc, ProcId};
pub use signal::Signal;
pub use time::Time;
pub use timer::TimerHandle;
pub use wake::DemandWake;
