//! # gbcr-des — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. It provides a
//! virtual clock with nanosecond resolution, an event queue with a total
//! deterministic order, and *blocking simulated processes*: each simulated
//! entity (an MPI rank, a storage server, the checkpoint coordinator) is
//! written as ordinary straight-line blocking code — exactly like a real
//! MPI program — while a handoff protocol guarantees **exactly one**
//! simulated process executes at any instant, keeping the whole run
//! bit-for-bit reproducible for a given seed.
//!
//! This mirrors the classic process-oriented simulation style (SimPy,
//! OMNeT++ "activities"): a process runs until it *yields* — by sleeping,
//! by blocking on a [`Signal`], or by finishing — and the scheduler then
//! dispatches the next event in `(time, sequence)` order.
//!
//! ## Why blocking processes and not async?
//!
//! The workloads we simulate (HPL, MotifMiner, the paper's micro-benchmarks)
//! are most naturally expressed as blocking MPI programs, so the
//! user-facing API stays free of combinators and lifetimes. Underneath,
//! two interchangeable executors provide the blocking illusion (see
//! [`DesConfig`]): the default *pooled* backend runs each process as a
//! stackful coroutine on a small shared worker pool (live OS threads
//! scale with `min(ncpu, 8)`, not rank count — this is what makes
//! 10k-rank simulations affordable), and the legacy *threaded* backend
//! dedicates an OS thread per process with a mutex+condvar baton.
//! Determinism is a property of the scheduler's total event order, not of
//! the backend, and the benchmark harness checks byte-identical output
//! across both on every run.
//!
//! ## Quick example
//!
//! ```
//! use gbcr_des::{Sim, time};
//!
//! let mut sim = Sim::new(42);
//! let sig = sim.signal("ready");
//! let sig2 = sig.clone();
//! sim.spawn("producer", move |p| {
//!     p.sleep(time::ms(10));
//!     sig2.notify_all(p);
//! });
//! sim.spawn("consumer", move |p| {
//!     sig.wait(p);
//!     assert_eq!(p.now(), time::ms(10));
//! });
//! let end = sim.run().unwrap();
//! assert_eq!(end, time::ms(10));
//! ```

#![warn(missing_docs)]

mod coro;
mod engine;
mod error;
mod exec;
mod pool;
mod process;
mod sched;
mod signal;
pub mod time;
mod timer;
mod wake;

/// The structured tracing subsystem (re-exported so downstream crates
/// reach span/event types through the engine they already depend on).
pub use gbcr_trace as trace;

pub use engine::{
    total_events_processed, total_procs_spawned, total_wakes_elided, Sim, SimHandle,
};
pub use error::{SimError, SimResult};
pub use exec::{executor_default, set_executor_default, DesConfig, ExecKind};
pub use sched::{
    sched_default, set_sched_default, set_shard_count_default, shard_count_default, SchedKind,
    SchedTelemetry,
};
pub use gbcr_trace::{Arg, ArgValue, Event, Span, TraceData, TraceLevel, Tracer, Track};
pub use pool::pool_threads;
#[doc(hidden)]
pub use process::kill_unwind_flag_set;
pub use process::{Proc, ProcId};
pub use signal::Signal;
pub use time::Time;
pub use timer::TimerHandle;
pub use wake::DemandWake;
