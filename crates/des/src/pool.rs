//! The pooled coroutine executor: simulated processes as resumable tasks
//! on a small shared worker pool.
//!
//! Each simulated process owns a [`TaskCell`] — the task-handoff cell the
//! scheduler resumes through the [`Gate`] contract — plus a lazily
//! allocated coroutine stack. `resume` queues the cell on a process-wide
//! worker pool (default `min(ncpu, 8)` threads, `GBCR_POOL_THREADS` to
//! override) and blocks until the slice ends, so live OS threads scale
//! with the pool size rather than with rank count, while the
//! one-runnable-process-at-a-time invariant is untouched: the scheduler
//! still waits out every slice before dispatching the next event.
//!
//! Determinism is likewise untouched. *Which* worker hosts a slice is
//! racy, but workers execute the slice's closed-over state and nothing
//! thread-identifying: virtual time, RNG draws, and event order all come
//! from the scheduler, which serializes slices exactly as the threaded
//! backend does. The one thread-keyed piece of state, the kill-unwind
//! TLS flag, is reset at the end of every slice-terminating unwind
//! (see [`task_entry`]) so a reused worker never carries it over.
//!
//! Memory-safety protocol for the `UnsafeCell` fields: `stack`,
//! `task_sp`, `worker_sp`, `body` and `pending` are only touched (a) by
//! the worker OS thread currently hosting the slice — which includes the
//! coroutine itself, since it runs *on* that thread — or (b) by
//! `Executor::spawn` before the cell is shared. Cross-slice visibility is
//! ordered by the `st` mutex: a worker publishes `Parked` under the lock
//! after its last access, and the next worker observes `Queued → Running`
//! under the same lock before its first access.

use crate::coro::{init_stack, switch_stacks, Stack};
use crate::exec::{
    outcome_from, ExecKind, ExecStats, Executor, Gate, ResumeError, SpawnedTask, TaskBody,
};
use crate::process::clear_kill_unwind_flag;
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Scheduler-visible state of one pooled task.
#[derive(Debug)]
enum CellState {
    /// Spawned, body not yet started.
    New,
    /// Suspended at a park point; the scheduler may resume it.
    Parked,
    /// Submitted to the pool, not yet picked up by a worker.
    Queued,
    /// A worker is executing the current slice.
    Running,
    /// Finished normally (or was killed, which is a normal end).
    DoneOk,
    /// Finished by a (non-kill) panic with the rendered payload.
    DonePanic(String),
}

/// How the coroutine left its slice; written by the coroutine (or the
/// kill-before-start shortcut) and converted into the final [`CellState`]
/// by the hosting worker *after* the stack switch back.
enum Pending {
    Parked,
    DoneOk,
    DonePanic(String),
}

/// One pooled task: handoff cell + coroutine context.
pub(crate) struct TaskCell {
    name: Arc<str>,
    killed: Arc<AtomicBool>,
    stats: Arc<ExecStats>,
    stack_bytes: usize,
    /// Backref so `resume` can queue the cell on the pool.
    me: Weak<TaskCell>,
    st: Mutex<CellState>,
    cv: Condvar,
    // Slice-local fields; see the module-level safety protocol.
    stack: UnsafeCell<Option<Stack>>,
    task_sp: UnsafeCell<usize>,
    worker_sp: UnsafeCell<usize>,
    body: UnsafeCell<Option<TaskBody>>,
    pending: UnsafeCell<Pending>,
}

// SAFETY: the `UnsafeCell` fields are confined to the worker hosting the
// current slice, with cross-slice ordering through the `st` mutex (see
// the module docs); everything else is Sync on its own.
unsafe impl Send for TaskCell {}
unsafe impl Sync for TaskCell {}

impl Gate for TaskCell {
    fn resume(&self) -> Result<(), ResumeError> {
        assert!(
            !POOL_WORKER.with(|f| f.get()),
            "cannot drive a pooled Sim from inside a simulated process; \
             use Sim::with_config(seed, DesConfig::threaded()) for nested simulations"
        );
        {
            let mut st = self.st.lock();
            match *st {
                CellState::New | CellState::Parked => *st = CellState::Queued,
                CellState::DoneOk | CellState::DonePanic(_) => return Ok(()),
                CellState::Queued | CellState::Running => {
                    return Err(ResumeError::DoubleResume)
                }
            }
        }
        pool().submit(self.me.upgrade().expect("task cell alive during resume"));
        let mut st = self.st.lock();
        while matches!(*st, CellState::Queued | CellState::Running) {
            self.cv.wait(&mut st);
        }
        match &*st {
            CellState::DonePanic(msg) => Err(ResumeError::Panicked(msg.clone())),
            _ => Ok(()),
        }
    }

    fn resume_local(&self) -> Result<(), ResumeError> {
        // Same state transition as `resume`, but the slice is hosted by
        // the *calling* thread (a parallel-scheduler shard worker or the
        // fenced-window control thread) instead of a pool worker, so any
        // thread-local scheduler context the caller set up is visible to
        // the process code. No condvar round-trip: `run_slice` returns
        // only after the slice has ended and published its state.
        {
            let mut st = self.st.lock();
            match *st {
                CellState::New | CellState::Parked => *st = CellState::Queued,
                CellState::DoneOk | CellState::DonePanic(_) => return Ok(()),
                CellState::Queued | CellState::Running => {
                    return Err(ResumeError::DoubleResume)
                }
            }
        }
        let me = self.me.upgrade().expect("task cell alive during resume");
        run_slice(&me);
        match &*self.st.lock() {
            CellState::DonePanic(msg) => Err(ResumeError::Panicked(msg.clone())),
            _ => Ok(()),
        }
    }

    fn park(&self) {
        // SAFETY: called from the coroutine, i.e. on the worker currently
        // hosting the slice; `task_sp`/`worker_sp` are valid, and the
        // worker side of the switch re-checks the stack canary.
        unsafe {
            *self.pending.get() = Pending::Parked;
            switch_stacks(self.task_sp.get(), self.worker_sp.get());
        }
    }

    fn is_done(&self) -> bool {
        matches!(*self.st.lock(), CellState::DoneOk | CellState::DonePanic(_))
    }

    fn teardown(&self) {
        {
            let mut st = self.st.lock();
            match *st {
                CellState::New => {
                    // Never started: no stack, no worker involvement.
                    // Dropping the body (which holds the Proc context)
                    // terminates the task without touching the pool, so
                    // shutdown works even from inside a pool worker — a
                    // `Sim` dropped during an unwind in a simulated
                    // process must not deadlock or trip the nested-Sim
                    // assert.
                    //
                    // SAFETY: under the `st` lock with the state still
                    // `New`, no worker has ever accessed the cell; the
                    // spawn-time write happened before the cell reached
                    // the scheduler's process table.
                    unsafe { *self.body.get() = None };
                    *st = CellState::DoneOk;
                    self.stats.task_done();
                    self.cv.notify_all();
                    return;
                }
                CellState::DoneOk | CellState::DonePanic(_) => return,
                CellState::Parked | CellState::Queued | CellState::Running => {}
            }
        }
        let _ = self.resume();
    }
}

/// Worker side: execute one slice of `cell` (first entry, resumption, or
/// the kill-before-start shortcut) and publish the resulting state.
fn run_slice(cell: &Arc<TaskCell>) {
    {
        let mut st = cell.st.lock();
        debug_assert!(matches!(*st, CellState::Queued), "slice on non-queued cell");
        *st = CellState::Running;
    }
    // SAFETY for all blocks below: this worker owns the slice-local
    // fields until it publishes a new `st` (module-level protocol).
    let started = unsafe { (*cell.stack.get()).is_some() };
    if !started && cell.killed.load(Ordering::Relaxed) {
        // Killed before ever running: terminate without invoking the
        // body. Dropping it also breaks the body→Proc→gate Arc cycle.
        unsafe { *cell.body.get() = None };
        publish(cell, Pending::DoneOk);
        return;
    }
    if !started {
        let stack = Stack::new(cell.stack_bytes);
        // SAFETY: the stack lives in the cell until the task is terminal,
        // and the cell (behind Arc) outlives the coroutine.
        let sp = unsafe { init_stack(&stack, Arc::as_ptr(cell).cast()) };
        unsafe {
            *cell.stack.get() = Some(stack);
            *cell.task_sp.get() = sp;
        }
    }
    // SAFETY: `task_sp` is a context forged by `init_stack` or saved by a
    // previous `park`, on a stack no thread is currently running on.
    unsafe { switch_stacks(cell.worker_sp.get(), cell.task_sp.get()) };
    let canary_ok = unsafe { (*cell.stack.get()).as_ref().is_none_or(Stack::canary_ok) };
    if !canary_ok {
        eprintln!(
            "fatal: simulated process '{}' overflowed its {} KiB coroutine stack; \
             raise GBCR_STACK_KB",
            cell.name,
            cell.stack_bytes / 1024
        );
        std::process::abort();
    }
    let pending = unsafe { std::mem::replace(&mut *cell.pending.get(), Pending::Parked) };
    publish(cell, pending);
}

/// Convert the slice outcome into the cell's public state and wake the
/// scheduler blocked in `resume`. Terminal outcomes free the coroutine
/// stack first — nothing will ever switch into it again.
fn publish(cell: &Arc<TaskCell>, pending: Pending) {
    let new_state = match pending {
        Pending::Parked => CellState::Parked,
        Pending::DoneOk => CellState::DoneOk,
        Pending::DonePanic(msg) => CellState::DonePanic(msg),
    };
    if matches!(new_state, CellState::DoneOk | CellState::DonePanic(_)) {
        // SAFETY: the coroutine has switched out for good (its entry
        // function never returns to this stack after writing a terminal
        // `pending`), so the stack is dead.
        unsafe { *cell.stack.get() = None };
        cell.stats.task_done();
    }
    let mut st = cell.st.lock();
    *st = new_state;
    cell.cv.notify_all();
}

/// Coroutine entry point, reached through the architecture trampoline on
/// the task's own stack. Runs the body under `catch_unwind` (so no unwind
/// ever crosses the forged trampoline frame), resets the kill-unwind TLS
/// flag of the *hosting worker* before it can pick up another task, and
/// switches out for good. Every local with a destructor is scoped to drop
/// before that final switch — the abandoned stack holds only dead bytes.
pub(crate) extern "C" fn task_entry(cell: *const ()) -> ! {
    let cell = cell.cast::<TaskCell>();
    let (task_sp, worker_sp) = {
        // SAFETY: the cell is kept alive by the `Arc` in the scheduler's
        // process table for at least as long as the task can run.
        let c = unsafe { &*cell };
        let body = unsafe { (*c.body.get()).take() }.expect("pooled task body present");
        let result = std::panic::catch_unwind(AssertUnwindSafe(body));
        // Satellite of the executor rework: a pool worker that just
        // finished a killed task must not carry the quiet-unwind TLS flag
        // into the next task it hosts, or a real panic there would have
        // its output swallowed.
        clear_kill_unwind_flag();
        let pending = match outcome_from(result) {
            Ok(()) => Pending::DoneOk,
            Err(msg) => Pending::DonePanic(msg),
        };
        // SAFETY: slice-local field, and this coroutine *is* the slice.
        unsafe { *c.pending.get() = pending };
        (c.task_sp.get(), c.worker_sp.get().cast_const())
    };
    // SAFETY: hands control back to the hosting worker's saved context;
    // the save slot is never read again (the stack is freed by `publish`).
    unsafe { switch_stacks(task_sp, worker_sp) };
    unreachable!("finished coroutine resumed")
}

/// The pooled executor: builds [`TaskCell`]s that run on the shared pool.
pub(crate) struct PooledExecutor {
    pub(crate) stack_bytes: usize,
}

impl Executor for PooledExecutor {
    fn spawn(
        &self,
        name: Arc<str>,
        killed: Arc<AtomicBool>,
        stats: Arc<ExecStats>,
        make_body: Box<dyn FnOnce(Arc<dyn Gate>) -> TaskBody + '_>,
    ) -> SpawnedTask {
        let cell = Arc::new_cyclic(|me| TaskCell {
            name,
            killed,
            stats,
            stack_bytes: self.stack_bytes,
            me: me.clone(),
            st: Mutex::new(CellState::New),
            cv: Condvar::new(),
            stack: UnsafeCell::new(None),
            task_sp: UnsafeCell::new(0),
            worker_sp: UnsafeCell::new(0),
            body: UnsafeCell::new(None),
            pending: UnsafeCell::new(Pending::Parked),
        });
        let body = make_body(cell.clone());
        // SAFETY: the cell is not yet shared with any worker.
        unsafe { *cell.body.get() = Some(body) };
        SpawnedTask { gate: cell, join: None }
    }

    fn kind(&self) -> ExecKind {
        ExecKind::Pooled
    }

    fn exec_threads(&self, _stats: &ExecStats) -> u64 {
        pool_threads() as u64
    }
}

// ---------------------------------------------------------------------------
// The process-wide worker pool.
// ---------------------------------------------------------------------------

thread_local! {
    /// Set on pool worker threads; used to turn a nested-`Sim` deadlock
    /// into an immediate, explained panic.
    static POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct Pool {
    q: Mutex<VecDeque<Arc<TaskCell>>>,
    cv: Condvar,
    threads: usize,
}

impl Pool {
    fn submit(&self, cell: Arc<TaskCell>) {
        self.q.lock().push_back(cell);
        self.cv.notify_one();
    }
}

fn worker_loop(pool: &'static Pool) {
    POOL_WORKER.with(|f| f.set(true));
    loop {
        let cell = {
            let mut q = pool.q.lock();
            loop {
                match q.pop_front() {
                    Some(c) => break c,
                    None => pool.cv.wait(&mut q),
                }
            }
        };
        run_slice(&cell);
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static WORKERS: std::sync::Once = std::sync::Once::new();
    let p = POOL.get_or_init(|| {
        let threads = std::env::var("GBCR_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
            });
        Pool { q: Mutex::new(VecDeque::new()), cv: Condvar::new(), threads }
    });
    WORKERS.call_once(|| {
        for i in 0..p.threads {
            std::thread::Builder::new()
                .name(format!("gbcr-pool-{i}"))
                .spawn(move || worker_loop(p))
                .expect("failed to spawn pool worker");
        }
    });
    p
}

/// Size of the shared coroutine worker pool (`GBCR_POOL_THREADS`, default
/// `min(ncpu, 8)`). Starting the pool is a side effect of the first call.
pub fn pool_threads() -> usize {
    pool().threads
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DropFlag(Arc<AtomicBool>);
    impl Drop for DropFlag {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    fn test_cell() -> (Arc<TaskCell>, Arc<AtomicBool>) {
        let ex = PooledExecutor { stack_bytes: 64 * 1024 };
        let stats = Arc::new(ExecStats::default());
        stats.task_spawned();
        let dropped = Arc::new(AtomicBool::new(false));
        let flag = DropFlag(dropped.clone());
        let task = ex.spawn(
            "t".into(),
            Arc::new(AtomicBool::new(false)),
            stats,
            Box::new(move |_gate| {
                Box::new(move || {
                    let _keep = &flag;
                })
            }),
        );
        // The concrete cell type is ours; recover it from the spawn path.
        let gate: Arc<dyn Gate> = task.gate;
        // SAFETY: PooledExecutor::spawn only ever builds TaskCells.
        let cell = unsafe { Arc::from_raw(Arc::into_raw(gate).cast::<TaskCell>()) };
        (cell, dropped)
    }

    /// Resuming a queued or running cell is a scheduler bug; it must
    /// surface as the typed error (not `unreachable!`, not a hang).
    #[test]
    fn task_cell_double_resume_is_typed_error() {
        let (cell, _) = test_cell();
        *cell.st.lock() = CellState::Queued;
        assert!(matches!(cell.resume(), Err(ResumeError::DoubleResume)));
        *cell.st.lock() = CellState::Running;
        assert!(matches!(cell.resume(), Err(ResumeError::DoubleResume)));
        // Terminal states keep absorbing stale resumes.
        *cell.st.lock() = CellState::DoneOk;
        assert!(cell.resume().is_ok());
    }

    /// Tearing down a never-started task terminates it in place — no pool
    /// round-trip — and drops its body (releasing the Proc context).
    #[test]
    fn teardown_of_new_cell_needs_no_pool() {
        let (cell, dropped) = test_cell();
        assert!(!cell.is_done());
        cell.teardown();
        assert!(cell.is_done());
        assert!(dropped.load(Ordering::Relaxed), "body not dropped by teardown");
        // Idempotent.
        cell.teardown();
        assert!(cell.is_done());
    }
}
