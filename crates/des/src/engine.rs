//! The event queue and scheduler loop.
//!
//! The queue is split in two for speed. Producers (processes, callbacks,
//! anything holding a [`SimHandle`]) push into a small mutex-protected
//! *injector* vector — an amortized-allocation-free append. The scheduler
//! owns the actual priority heap privately (no lock), and at the top of
//! each dispatch round swaps the injector's vector for an empty one and
//! bulk-loads it into the heap. Sequence numbers are allocated globally at
//! push time, so an event sitting in the injector is always ordered after
//! every event already in the heap and the split preserves the exact
//! `(time, seq)` total order of a single shared heap.
//!
//! Events with the same timestamp are dispatched as one batch: the
//! scheduler pops the entire equal-time run of the heap before returning
//! to the injector. Any event pushed *during* the batch carries a larger
//! sequence number than everything already popped, so batching cannot
//! reorder same-time events either.

use crate::error::{SimError, SimResult};
use crate::exec::{DesConfig, ExecKind, ExecStats, Executor, Gate, ResumeError};
use crate::process::{Proc, ProcId};
use crate::sched::{ParState, SchedKind, SchedTelemetry};
use crate::signal::Signal;
use crate::time::Time;
use crate::timer::{TimerHandle, TimerTable};
use gbcr_trace::{Arg, Event, Span, Tracer, Track};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Events dispatched across every simulation in this process, ever.
/// Flushed once per [`Sim::run`]/[`Sim::run_until`] call, not per event.
static TOTAL_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Progress wakes elided across every simulation in this process, ever
/// (see [`crate::DemandWake`]): slice boundaries a polled progress engine
/// would have woken at that the demand-driven engine never scheduled.
static TOTAL_ELIDED: AtomicU64 = AtomicU64::new(0);

/// Simulated processes spawned across every simulation in this process,
/// ever (the sibling of [`total_events_processed`] for executor work).
static TOTAL_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total events dispatched by all simulations in this process so far.
/// Monotonic; used by the benchmark harness to report aggregate engine
/// work alongside wall-clock numbers.
pub fn total_events_processed() -> u64 {
    TOTAL_EVENTS.load(Ordering::Relaxed)
}

/// Total progress wakes elided by all simulations in this process so far
/// (the demand-driven counterpart of [`total_events_processed`]).
pub fn total_wakes_elided() -> u64 {
    TOTAL_ELIDED.load(Ordering::Relaxed)
}

/// Total simulated processes spawned by all simulations in this process
/// so far.
pub fn total_procs_spawned() -> u64 {
    TOTAL_SPAWNED.load(Ordering::Relaxed)
}

/// Credit events dispatched outside the serial loop (the parallel
/// scheduler) to the process-wide total.
pub(crate) fn note_total_events(n: u64) {
    TOTAL_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// A callback executed on the scheduler thread. Must not block.
type Callback = Box<dyn FnOnce(&SimHandle) + Send + 'static>;

pub(crate) enum EventKind {
    Wake(ProcId),
    /// A wake that can be invalidated before it fires (same slab-slot
    /// generation check as `Call`, but with no boxed callback).
    CancellableWake { slot: u32, gen: u64, pid: ProcId },
    Call { slot: u32, gen: u64, f: Callback },
}

pub(crate) struct QueuedEvent {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Producer side of the event queue: an append-only vector the scheduler
/// periodically swaps out. Two vectors ping-pong between the injector and
/// the scheduler's drain buffer, so steady-state pushes reuse capacity and
/// never allocate. The `nonempty` flag lets the scheduler skip the lock
/// entirely on empty rounds.
#[derive(Default)]
pub(crate) struct Injector {
    nonempty: AtomicBool,
    pending: Mutex<Vec<QueuedEvent>>,
}

impl Injector {
    fn push(&self, ev: QueuedEvent) {
        let mut v = self.pending.lock();
        v.push(ev);
        self.nonempty.store(true, Ordering::Release);
    }

    /// Swap the pending batch into `into` (which must be empty); clears
    /// the nonempty flag. Lock-free when nothing is pending.
    pub(crate) fn drain_into(&self, into: &mut Vec<QueuedEvent>) {
        debug_assert!(into.is_empty());
        if !self.nonempty.load(Ordering::Acquire) {
            return;
        }
        let mut v = self.pending.lock();
        std::mem::swap(&mut *v, into);
        self.nonempty.store(false, Ordering::Release);
    }
}

pub(crate) struct ProcSlot {
    pub(crate) name: Arc<str>,
    pub(crate) gate: Arc<dyn Gate>,
    killed: Arc<AtomicBool>,
    /// Present only under the threaded executor, which owns one OS thread
    /// per process; pooled tasks have nothing to join.
    join: Option<JoinHandle<()>>,
}

pub(crate) struct Inner {
    pub(crate) now: AtomicU64,
    seq: AtomicU64,
    pub(crate) injector: Injector,
    pub(crate) timers: Arc<TimerTable>,
    pub(crate) procs: Mutex<Vec<ProcSlot>>,
    rng: Mutex<SmallRng>,
    tracer: Tracer,
    /// Progress wakes elided in this simulation (see [`SimHandle::note_elided_wakes`]).
    elided: AtomicU64,
    /// The execution backend for simulated processes.
    exec: Box<dyn Executor>,
    /// Spawn/teardown cost and liveness high-water marks.
    stats: Arc<ExecStats>,
    /// Epoch fence depth: while > 0 the parallel scheduler degrades to
    /// fenced (single-timestamp) windows. See [`SimHandle::fence_raise`].
    pub(crate) fence: AtomicU64,
    /// Parallel-scheduler state, present once [`Sim::enable_parallel`]
    /// succeeded (a `Sim` commits to one scheduler for its lifetime).
    pub(crate) par: OnceLock<Arc<ParState>>,
}

/// A cloneable, `Send + Sync` handle onto a running simulation.
///
/// Unlike [`Proc`], a `SimHandle` can never block, so it is safe to use from
/// scheduler-side timer callbacks as well as from inside processes. It is the
/// channel through which signals, networks and storage models schedule work.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) inner: Arc<Inner>,
}

impl SimHandle {
    /// Current virtual time. Under an active parallel run this is the
    /// executing shard's clock (thread-local); everywhere else — and
    /// always under the serial scheduler — it is the global clock.
    #[inline]
    pub fn now(&self) -> Time {
        if let Some(par) = self.inner.par.get() {
            if par.active.load(Ordering::Relaxed) {
                if let Some(t) = par.local_now() {
                    return t;
                }
            }
        }
        self.inner.now.load(Ordering::Relaxed)
    }

    fn push(&self, time: Time, kind: EventKind) {
        if let Some(par) = self.inner.par.get() {
            if par.active.load(Ordering::Relaxed) {
                par.route_by_kind(time, kind);
                return;
            }
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.injector.push(QueuedEvent { time, seq, kind });
    }

    /// Schedule a wake-up for `pid` at absolute time `at` (clamped to now).
    pub fn schedule_wake(&self, at: Time, pid: ProcId) {
        self.push(at.max(self.now()), EventKind::Wake(pid));
    }

    /// Like [`schedule_wake`](SimHandle::schedule_wake), but returns a
    /// handle that can cancel the wake before it fires. A cancelled wake
    /// still pops from the queue but resumes nobody. This is the primitive
    /// under sliced `compute()`: a slice timer superseded by an earlier
    /// resume is cancelled instead of firing stale.
    pub fn schedule_wake_cancellable(&self, at: Time, pid: ProcId) -> TimerHandle {
        let (slot, gen) = self.inner.timers.arm();
        self.push(at.max(self.now()), EventKind::CancellableWake { slot, gen, pid });
        TimerHandle::new(self.inner.timers.clone(), slot, gen)
    }

    /// Wake `pid` at the current virtual time (after already-queued events
    /// at this instant).
    pub fn wake(&self, pid: ProcId) {
        self.schedule_wake(self.now(), pid);
    }

    /// Credit `n` elided progress wakes (slice boundaries a polled engine
    /// would have dispatched that the demand-driven engine never
    /// scheduled) to this simulation and the process-wide total.
    pub fn note_elided_wakes(&self, n: u64) {
        self.inner.elided.fetch_add(n, Ordering::Relaxed);
        TOTAL_ELIDED.fetch_add(n, Ordering::Relaxed);
    }

    /// Run `f` on the scheduler thread at absolute time `at`. Returns a
    /// handle that can cancel the callback before it fires. `f` must not
    /// block (it has no `Proc`, so it *cannot* call any blocking primitive).
    pub fn call_at(
        &self,
        at: Time,
        f: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> TimerHandle {
        let (slot, gen) = self.inner.timers.arm();
        self.push(at.max(self.now()), EventKind::Call { slot, gen, f: Box::new(f) });
        TimerHandle::new(self.inner.timers.clone(), slot, gen)
    }

    /// Run `f` on the scheduler thread after `dt` of virtual time.
    pub fn call_after(
        &self,
        dt: Time,
        f: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> TimerHandle {
        self.call_at(self.now().saturating_add(dt), f)
    }

    /// Like [`call_at`](SimHandle::call_at), but tagged with a routing
    /// `key` (a simulated node id): under the parallel scheduler the
    /// callback executes on the shard owning that key, so e.g. a fabric
    /// delivery runs on the destination node's shard and its wakes stay
    /// shard-local. Identical to `call_at` under the serial scheduler.
    pub fn call_at_keyed(
        &self,
        key: u64,
        at: Time,
        f: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> TimerHandle {
        let (slot, gen) = self.inner.timers.arm();
        let at = at.max(self.now());
        let kind = EventKind::Call { slot, gen, f: Box::new(f) };
        if let Some(par) = self.inner.par.get() {
            if par.active.load(Ordering::Relaxed) {
                par.route_keyed(key, at, kind);
                return TimerHandle::new(self.inner.timers.clone(), slot, gen);
            }
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.injector.push(QueuedEvent { time: at, seq, kind });
        TimerHandle::new(self.inner.timers.clone(), slot, gen)
    }

    /// Raise the scheduler fence: until lowered again, the parallel
    /// scheduler executes degenerate single-timestamp windows (globally
    /// merged, serially dispatched). The checkpoint coordinator brackets
    /// each epoch with a raise/lower pair because the protocol's
    /// connection-teardown storms and shared-storage contention interact
    /// across shards at sub-lookahead distance. Nestable (a counter);
    /// harmless no-op under the serial scheduler.
    pub fn fence_raise(&self) {
        self.inner.fence.fetch_add(1, Ordering::Release);
    }

    /// Lower one level of the scheduler fence (see
    /// [`fence_raise`](SimHandle::fence_raise)).
    pub fn fence_lower(&self) {
        let prev = self.inner.fence.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "fence_lower without matching fence_raise");
    }

    /// Mark `pid` killed and wake it so the kill unwinds at its next yield
    /// point. Used for failure injection. No-op on finished processes.
    pub fn kill(&self, pid: ProcId) {
        // Single lock acquisition; the wake goes through the injector and
        // touches no per-process state.
        self.inner.procs.lock()[pid.index()].killed.store(true, Ordering::Relaxed);
        self.wake(pid);
    }

    /// Whether the given process has terminated (normally, by panic, or by
    /// kill).
    pub fn is_done(&self, pid: ProcId) -> bool {
        self.inner.procs.lock()[pid.index()].gate.is_done()
    }

    /// Access the simulation's seeded RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.inner.rng.lock())
    }

    /// The simulation's structured tracer (off by default; see
    /// [`gbcr_trace::Tracer`]). New simulations start at the process-wide
    /// [`gbcr_trace::capture_default`] level.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Whether anything is being captured — the one-relaxed-load fast
    /// path every instrumentation point pays when tracing is off.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.inner.tracer.enabled()
    }

    /// Whether per-message / scheduler detail is being captured
    /// ([`gbcr_trace::TraceLevel::Full`]).
    #[inline]
    pub fn trace_detailed(&self) -> bool {
        self.inner.tracer.detailed()
    }

    /// Record a typed instant event; the closure is only evaluated when
    /// tracing is enabled.
    #[inline]
    pub fn trace_instant(&self, event: impl FnOnce() -> Event) {
        if self.trace_enabled() {
            self.inner.tracer.record_instant(self.now(), event());
        }
    }

    /// Like [`trace_instant`](SimHandle::trace_instant) but only at the
    /// `Full` capture level (per-message detail).
    #[inline]
    pub fn trace_instant_detail(&self, event: impl FnOnce() -> Event) {
        if self.trace_detailed() {
            self.inner.tracer.record_instant(self.now(), event());
        }
    }

    /// Record a completed span ending *now*; the args closure is only
    /// evaluated when tracing is enabled. The caller captured `t_start`
    /// with [`now`](SimHandle::now) before doing the work — recording
    /// after the fact means there is no begin/end pairing state and an
    /// instrumentation point can never alter simulation behaviour.
    #[inline]
    pub fn trace_span(
        &self,
        track: Track,
        name: &'static str,
        t_start: Time,
        args: impl FnOnce() -> Vec<Arg>,
    ) {
        if self.trace_enabled() {
            self.inner.tracer.record_span(Span {
                track,
                name,
                t_start,
                t_end: self.now(),
                args: args(),
            });
        }
    }

    /// Like [`trace_span`](SimHandle::trace_span) but only at the `Full`
    /// capture level (per-message detail).
    #[inline]
    pub fn trace_span_detail(
        &self,
        track: Track,
        name: &'static str,
        t_start: Time,
        args: impl FnOnce() -> Vec<Arg>,
    ) {
        if self.trace_detailed() {
            self.inner.tracer.record_span(Span {
                track,
                name,
                t_start,
                t_end: self.now(),
                args: args(),
            });
        }
    }

    /// Spawn a new simulated process; it becomes runnable at the current
    /// virtual time. See [`Sim::spawn`].
    pub fn spawn(&self, name: impl Into<String>, f: impl FnOnce(&Proc) + Send + 'static) -> ProcId {
        spawn_impl(self, name.into(), f)
    }

    /// Create a named [`Signal`] bound to this simulation.
    pub fn signal(&self, name: impl Into<String>) -> Signal {
        Signal::new(name.into())
    }
}

fn spawn_impl(
    handle: &SimHandle,
    name: String,
    f: impl FnOnce(&Proc) + Send + 'static,
) -> ProcId {
    let t0 = std::time::Instant::now();
    let name: Arc<str> = name.into();
    let mut procs = handle.inner.procs.lock();
    let id = ProcId(u32::try_from(procs.len()).expect("too many processes"));
    let killed = Arc::new(AtomicBool::new(false));
    handle.inner.stats.task_spawned();
    TOTAL_SPAWNED.fetch_add(1, Ordering::Relaxed);
    // The executor creates the gate; the Proc context is built around it
    // and bound into the task body in one step.
    let ctx_handle = handle.clone();
    let ctx_name = name.clone();
    let ctx_killed = killed.clone();
    let task = handle.inner.exec.spawn(
        name.clone(),
        killed.clone(),
        handle.inner.stats.clone(),
        Box::new(move |gate| {
            let proc_ctx =
                Proc { handle: ctx_handle, id, name: ctx_name, killed: ctx_killed, gate };
            Box::new(move || f(&proc_ctx))
        }),
    );
    procs.push(ProcSlot { name, gate: task.gate, killed, join: task.join });
    if let Some(par) = handle.inner.par.get() {
        // Still under the process-table lock, so the shard-map index
        // matches the `ProcId` just assigned. Processes spawned mid-run
        // stay on the shard that spawned them.
        par.note_spawn();
    }
    drop(procs);
    handle.inner.stats.add_spawn_ns(t0.elapsed().as_nanos() as u64);
    handle.wake(id);
    id
}

/// The simulation: owns the clock, the event queue, and all simulated
/// processes. Create one, [`spawn`](Sim::spawn) processes into it, then
/// [`run`](Sim::run) it to completion.
pub struct Sim {
    pub(crate) handle: SimHandle,
    /// The scheduler-private priority heap; fed from the injector.
    pub(crate) heap: BinaryHeap<Reverse<QueuedEvent>>,
    /// Spare vector ping-ponged with the injector's pending vector.
    drain_buf: Vec<QueuedEvent>,
    /// Cache of process gates indexed by `ProcId`, refreshed from
    /// `Inner::procs` only when a wake references a process spawned since
    /// the last refresh. Keeps the wake hot path free of locks and
    /// `Arc` clones.
    gates: Vec<Arc<dyn Gate>>,
    /// Events dispatched by this simulation across all `run*` calls.
    pub(crate) events: u64,
    /// Whether [`shutdown`](Sim::shutdown) already ran.
    shut_down: bool,
}

impl Sim {
    /// Create a simulation whose RNG is seeded with `seed`, using the
    /// default execution backend (see [`DesConfig::default`]). Two
    /// simulations built identically with the same seed produce identical
    /// traces — on either backend.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, DesConfig::default())
    }

    /// Create a simulation with an explicit execution configuration.
    pub fn with_config(seed: u64, config: DesConfig) -> Self {
        let inner = Arc::new(Inner {
            now: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            injector: Injector::default(),
            timers: TimerTable::new(),
            procs: Mutex::new(Vec::new()),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            tracer: Tracer::new(gbcr_trace::capture_default()),
            elided: AtomicU64::new(0),
            exec: config.build_executor(),
            stats: Arc::new(ExecStats::default()),
            fence: AtomicU64::new(0),
            par: OnceLock::new(),
        });
        Sim {
            handle: SimHandle { inner },
            heap: BinaryHeap::new(),
            drain_buf: Vec::new(),
            gates: Vec::new(),
            events: 0,
            shut_down: false,
        }
    }

    /// A cloneable handle onto this simulation.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a simulated process running `f`. The process becomes runnable
    /// at the current virtual time (time 0 before `run`).
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce(&Proc) + Send + 'static) -> ProcId {
        self.handle.spawn(name, f)
    }

    /// Create a named [`Signal`] bound to this simulation.
    pub fn signal(&self, name: impl Into<String>) -> Signal {
        self.handle.signal(name)
    }

    /// Run until the event queue drains. Returns the final virtual time.
    ///
    /// Errors with [`SimError::Deadlock`] if the queue drains while some
    /// process is still blocked, and [`SimError::ProcessPanicked`] if any
    /// simulated process panics.
    pub fn run(&mut self) -> SimResult<Time> {
        self.run_inner(Time::MAX)
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `horizon`, whichever comes first.
    pub fn run_until(&mut self, horizon: Time) -> SimResult<Time> {
        self.run_inner(horizon)
    }

    /// Events this simulation has dispatched so far (all `run*` calls).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Progress wakes this simulation elided so far (demand-driven compute
    /// slicing; see [`crate::DemandWake`]).
    pub fn wakes_elided(&self) -> u64 {
        self.handle.inner.elided.load(Ordering::Relaxed)
    }

    /// Processes this simulation has spawned so far.
    pub fn procs_spawned(&self) -> u64 {
        self.handle.inner.stats.spawned()
    }

    /// High-water mark of simultaneously live (spawned, not yet finished)
    /// processes.
    pub fn peak_live_procs(&self) -> u64 {
        self.handle.inner.stats.peak_live()
    }

    /// Cumulative wall-clock nanoseconds spent inside `spawn` calls.
    pub fn spawn_cost_ns(&self) -> u64 {
        self.handle.inner.stats.spawn_ns()
    }

    /// Wall-clock nanoseconds spent tearing processes down; populated by
    /// [`shutdown`](Sim::shutdown) (explicitly or via `Drop`).
    pub fn teardown_cost_ns(&self) -> u64 {
        self.handle.inner.stats.teardown_ns()
    }

    /// Peak OS threads the execution backend used for simulated
    /// processes: the worker-pool size under the pooled executor, the
    /// peak live process count under the threaded one.
    pub fn exec_threads(&self) -> u64 {
        self.handle.inner.exec.exec_threads(&self.handle.inner.stats)
    }

    /// Which execution backend this simulation runs on.
    pub fn executor_kind(&self) -> ExecKind {
        self.handle.inner.exec.kind()
    }

    /// Switch this simulation onto the conservative-window parallel
    /// scheduler (see `crate::sched`). Must be called before the first
    /// `run*` call, after all initial processes are spawned:
    /// `proc_shard[pid]` assigns each existing process to a shard and
    /// `key_shard` maps [`call_at_keyed`](SimHandle::call_at_keyed)
    /// routing keys (simulated node ids) to shards. `lookahead` is the
    /// conservative window width — the minimum virtual-time latency of
    /// any cross-shard interaction (zero is safe but degrades to
    /// lockstep).
    ///
    /// Returns `false` (leaving the simulation serial) when the
    /// configuration is not eligible: fewer than 2 shards, a non-pooled
    /// executor (inline coroutine resumption is what lets a shard worker
    /// host process slices), or tracing enabled (trace records would
    /// interleave nondeterministically).
    pub fn enable_parallel(
        &mut self,
        shards: usize,
        lookahead: Time,
        proc_shard: Vec<u32>,
        key_shard: HashMap<u64, u32>,
    ) -> bool {
        if shards < 2
            || self.executor_kind() != ExecKind::Pooled
            || self.handle.inner.tracer.enabled()
        {
            return false;
        }
        assert_eq!(
            proc_shard.len(),
            self.handle.inner.procs.lock().len(),
            "enable_parallel needs a shard assignment for every spawned process"
        );
        self.handle
            .inner
            .par
            .set(Arc::new(ParState::new(shards, lookahead, proc_shard, key_shard)))
            .is_ok()
    }

    /// Which scheduler backend this simulation's runs use.
    pub fn sched_kind(&self) -> SchedKind {
        if self.handle.inner.par.get().is_some() {
            SchedKind::Parallel
        } else {
            SchedKind::Serial
        }
    }

    /// Window/shard telemetry accumulated so far (all zeros under the
    /// serial scheduler).
    pub fn sched_telemetry(&self) -> SchedTelemetry {
        self.handle.inner.par.get().map(|p| p.telemetry()).unwrap_or_default()
    }

    /// The cached gate for `pid`, extending the cache from the shared
    /// process table on a miss (i.e. once per spawn, not once per wake).
    fn gate(&mut self, pid: ProcId) -> &dyn Gate {
        if pid.index() >= self.gates.len() {
            let procs = self.handle.inner.procs.lock();
            self.gates.extend(procs[self.gates.len()..].iter().map(|s| s.gate.clone()));
        }
        &*self.gates[pid.index()]
    }

    fn resume_error(&self, pid: ProcId, err: ResumeError) -> SimError {
        resume_error_for(&self.handle.inner, pid, err)
    }

    fn run_inner(&mut self, horizon: Time) -> SimResult<Time> {
        if self.handle.inner.par.get().is_some() {
            return crate::sched::run_parallel(self, horizon);
        }
        let mut dispatched: u64 = 0;
        let inner = Arc::clone(&self.handle.inner);
        let result = 'outer: loop {
            // Bulk-load everything pushed since the last round.
            inner.injector.drain_into(&mut self.drain_buf);
            for ev in self.drain_buf.drain(..) {
                self.heap.push(Reverse(ev));
            }
            let batch_time = match self.heap.peek() {
                Some(Reverse(e)) if e.time > horizon => {
                    break 'outer Err(SimError::HorizonReached { at: horizon });
                }
                Some(Reverse(e)) => e.time,
                None => {
                    let now = self.handle.now();
                    let blocked: Vec<String> = inner
                        .procs
                        .lock()
                        .iter()
                        .filter(|p| !p.gate.is_done())
                        .map(|p| p.name.to_string())
                        .collect();
                    break 'outer if blocked.is_empty() {
                        Ok(now)
                    } else {
                        Err(SimError::Deadlock { at: now, blocked })
                    };
                }
            };
            debug_assert!(batch_time >= self.handle.now(), "time went backwards");
            inner.now.store(batch_time, Ordering::Relaxed);
            // Scheduler-dispatch instants are Full-level detail; load the
            // level once per same-timestamp batch, not once per event.
            let detail = inner.tracer.detailed();
            // Dispatch the entire same-timestamp batch without returning to
            // the injector: anything pushed mid-batch has a larger sequence
            // number than every event popped here, so it sorts after them.
            loop {
                let ev = match self.heap.peek() {
                    Some(Reverse(e)) if e.time == batch_time => {
                        self.heap.pop().expect("peeked event").0
                    }
                    _ => break,
                };
                dispatched += 1;
                match ev.kind {
                    EventKind::Wake(pid) => {
                        if detail {
                            inner
                                .tracer
                                .record_instant(batch_time, Event::SchedWake { pid: pid.0 });
                        }
                        if let Err(e) = self.gate(pid).resume() {
                            break 'outer Err(self.resume_error(pid, e));
                        }
                    }
                    EventKind::CancellableWake { slot, gen, pid } => {
                        // `retire` wins only if nobody cancelled the wake.
                        if self.handle.inner.timers.retire(slot, gen) {
                            if detail {
                                inner
                                    .tracer
                                    .record_instant(batch_time, Event::SchedTimer { pid: pid.0 });
                            }
                            if let Err(e) = self.gate(pid).resume() {
                                break 'outer Err(self.resume_error(pid, e));
                            }
                        }
                    }
                    EventKind::Call { slot, gen, f } => {
                        // `retire` wins only if the timer was not cancelled
                        // (and no stale generation reuses the slot).
                        if self.handle.inner.timers.retire(slot, gen) {
                            if detail {
                                inner.tracer.record_instant(batch_time, Event::SchedCall);
                            }
                            f(&self.handle);
                        }
                    }
                }
            }
        };
        self.events += dispatched;
        TOTAL_EVENTS.fetch_add(dispatched, Ordering::Relaxed);
        result
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.handle.inner.procs.lock().len()
    }

    /// Tear down every still-live process: mark it killed, run it to its
    /// kill-unwind, and (under the threaded backend) join its thread.
    /// Idempotent; called automatically on drop, but callable explicitly
    /// so teardown cost lands in the stats before a report is assembled.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        let t0 = std::time::Instant::now();
        let mut procs = self.handle.inner.procs.lock();
        for slot in procs.iter_mut() {
            if !slot.gate.is_done() {
                slot.killed.store(true, Ordering::Relaxed);
                // Teardown hands control over; the kill check unwinds the
                // user closure and the gate comes back as Done. (Pooled
                // tasks that never started are terminated in place, so
                // shutdown needs no pool workers.)
                slot.gate.teardown();
            }
            if let Some(j) = slot.join.take() {
                let _ = j.join();
            }
        }
        drop(procs);
        self.handle.inner.stats.add_teardown_ns(t0.elapsed().as_nanos() as u64);
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Render a [`ResumeError`] into the public error type, resolving the
/// process name. Shared by the serial and parallel dispatch loops.
pub(crate) fn resume_error_for(inner: &Inner, pid: ProcId, err: ResumeError) -> SimError {
    let name = inner.procs.lock()[pid.index()].name.to_string();
    match err {
        ResumeError::Panicked(message) => SimError::ProcessPanicked { name, message },
        ResumeError::DoubleResume => SimError::DoubleResume { name },
    }
}
