//! Conservative-window parallel scheduler (YAWNS / null-message family).
//!
//! The serial scheduler dispatches one global `(time, seq)` heap. This
//! module partitions the simulated processes into *shards* (one per
//! simulated node block), each with its own event heap and clock, and
//! executes the shards concurrently inside conservative windows: given
//! the minimum pending timestamp `T_min` across all shards and the
//! fabric-derived *lookahead* `L` (the minimum cross-shard link latency),
//! every event with `t < T_min + L` can be executed without
//! synchronization, because any message a shard emits while executing at
//! time `t ≥ T_min` arrives at least `L` later — i.e. at or beyond the
//! window horizon `H = T_min + L`.
//!
//! Cross-shard event traffic goes through per-shard inbound *mailboxes*
//! and is merged into the destination heap in deterministic
//! `(time, lane, lane_seq)` order, where `lane` is the pushing shard and
//! `lane_seq` a per-lane counter: each lane's pushes are themselves a
//! deterministic stream (shards execute their heaps serially), so the
//! merged order — and therefore the simulation outcome — is reproducible
//! run to run. Result tables are additionally gated byte-identical
//! against the serial backend (the A/B oracle, `GBCR_SCHED=serial`) by
//! the benchmark harness, exactly like the pooled-vs-threaded executor
//! identity check.
//!
//! Two situations force a *degenerate* (fenced) window that executes only
//! the global `t == T_min` batch serially on the control thread, merged
//! across shards in `(lane, lane_seq)` order:
//!
//! * a raised [`crate::SimHandle::fence_raise`] fence — the checkpoint
//!   coordinator raises it around each epoch, whose protocol (connection
//!   teardown storms, shared storage processor-sharing state) has
//!   cross-shard interactions at sub-lookahead distance;
//! * a zero lookahead, where no window wider than a single timestamp is
//!   ever safe. Progress is still guaranteed: every window executes at
//!   least the `T_min` batch, so zero lookahead degrades to a lockstep
//!   simulation rather than deadlocking.
//!
//! A *causality assert* at every mailbox merge verifies `t ≥` the
//! destination shard's clock, so any interaction the lookahead analysis
//! missed aborts the run loudly instead of silently diverging.

use crate::engine::{resume_error_for, EventKind, Inner, QueuedEvent, Sim, SimHandle};
use crate::error::{SimError, SimResult};
use crate::exec::Gate;
use crate::process::ProcId;
use crate::time::Time;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which scheduler backend a [`crate::Sim`] run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The single-heap sequential scheduler — the determinism oracle and
    /// the fallback for configurations the parallel scheduler does not
    /// cover (fault injection, tracing, the threaded executor).
    Serial,
    /// The conservative-window sharded scheduler defined in this module.
    Parallel,
}

impl SchedKind {
    /// Stable lower-case name, as used by `GBCR_SCHED` and emitted in
    /// benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Serial => "serial",
            SchedKind::Parallel => "parallel",
        }
    }
}

/// Process-wide scheduler default: 0 = unset, 1 = serial, 2 = parallel.
static SCHED_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Force the scheduler backend for subsequently configured runs. Takes
/// precedence over `GBCR_SCHED`; used by the benchmark harness's
/// serial-vs-parallel identity check.
pub fn set_sched_default(kind: SchedKind) {
    let v = match kind {
        SchedKind::Serial => 1,
        SchedKind::Parallel => 2,
    };
    SCHED_DEFAULT.store(v, Ordering::Relaxed);
}

/// The scheduler backend new runs currently resolve to. Resolution order:
/// [`set_sched_default`] if set, else the `GBCR_SCHED` environment
/// variable (`serial`/`parallel`), else serial (the parallel scheduler is
/// opt-in while it matures).
pub fn sched_default() -> SchedKind {
    match SCHED_DEFAULT.load(Ordering::Relaxed) {
        1 => return SchedKind::Serial,
        2 => return SchedKind::Parallel,
        _ => {}
    }
    if let Ok(v) = std::env::var("GBCR_SCHED") {
        match v.to_ascii_lowercase().as_str() {
            "serial" | "seq" => return SchedKind::Serial,
            "parallel" | "par" => return SchedKind::Parallel,
            _ => {}
        }
    }
    SchedKind::Serial
}

/// Process-wide shard-count override: 0 = unset.
static SHARDS_DEFAULT: AtomicUsize = AtomicUsize::new(0);

/// Force the shard count for subsequently configured parallel runs
/// (`0` clears the override). Takes precedence over `GBCR_SHARDS`; the
/// tier-1 identity gate pins 2 shards so the merge path is exercised even
/// on single-core CI hosts.
pub fn set_shard_count_default(n: usize) {
    SHARDS_DEFAULT.store(n, Ordering::Relaxed);
}

/// The shard count parallel runs currently resolve to: the
/// [`set_shard_count_default`] override if set, else `GBCR_SHARDS`, else
/// the host's available parallelism.
pub fn shard_count_default() -> usize {
    let v = SHARDS_DEFAULT.load(Ordering::Relaxed);
    if v > 0 {
        return v;
    }
    if let Some(n) = std::env::var("GBCR_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Window/shard telemetry for one simulation run (all zeros under the
/// serial scheduler). Deterministic for a fixed configuration: every
/// counter is derived from the virtual-time window sequence, never from
/// wall-clock racing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedTelemetry {
    /// Shards the run was partitioned into (0 = serial).
    pub shards: u64,
    /// Conservative windows executed (including fenced ones).
    pub windows: u64,
    /// Windows forced degenerate by a raised fence or zero lookahead.
    pub fenced_windows: u64,
    /// Shard-windows in which a shard had pending events but none below
    /// the horizon (it sat the window out).
    pub horizon_stalls: u64,
    /// Sum over windows of the number of shards with work below the
    /// horizon; divide by `windows` for average occupancy.
    pub occupancy_sum: u64,
    /// Events routed to a different shard than the one that pushed them.
    pub cross_msgs: u64,
    /// Events routed back to the pushing shard.
    pub local_msgs: u64,
}

impl SchedTelemetry {
    /// Mean number of shards that had executable work per window.
    pub fn avg_occupancy(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.windows as f64
        }
    }

    /// Fraction of routed events that crossed a shard boundary.
    pub fn cross_ratio(&self) -> f64 {
        let total = self.cross_msgs + self.local_msgs;
        if total == 0 {
            0.0
        } else {
            self.cross_msgs as f64 / total as f64
        }
    }
}

/// Lane id for events routed from outside any shard (the control thread
/// between windows, or pre-run pushes drained from the injector).
pub(crate) const NO_SHARD: u32 = u32::MAX;

thread_local! {
    /// The shard whose clock and lane the current thread executes under;
    /// set by shard workers for a whole window and by the control thread
    /// per event in fenced windows.
    static CUR_SHARD: std::cell::Cell<u32> = const { std::cell::Cell::new(NO_SHARD) };
}

pub(crate) fn current_shard() -> u32 {
    CUR_SHARD.with(|c| c.get())
}

fn set_current_shard(s: u32) {
    CUR_SHARD.with(|c| c.set(s));
}

/// One cross- or intra-shard event with its deterministic merge key.
pub(crate) struct ParEvent {
    time: Time,
    lane: u32,
    lseq: u64,
    kind: EventKind,
}

impl PartialEq for ParEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.lane, self.lseq) == (other.time, other.lane, other.lseq)
    }
}
impl Eq for ParEvent {}
impl PartialOrd for ParEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ParEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.lane, self.lseq).cmp(&(other.time, other.lane, other.lseq))
    }
}

/// One shard: a clock, an inbound mailbox, and a private event heap.
struct Shard {
    /// Virtual time of the last batch this shard executed.
    clock: AtomicU64,
    mailbox: Mutex<Vec<ParEvent>>,
    mb_nonempty: AtomicBool,
    heap: Mutex<BinaryHeap<Reverse<ParEvent>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            clock: AtomicU64::new(0),
            mailbox: Mutex::new(Vec::new()),
            mb_nonempty: AtomicBool::new(false),
            heap: Mutex::new(BinaryHeap::new()),
        }
    }

    /// Merge the mailbox into `heap`, checking causality: an event behind
    /// the shard's clock means some interaction escaped the lookahead
    /// analysis and the run can no longer be trusted.
    fn drain_mailbox_into(&self, heap: &mut BinaryHeap<Reverse<ParEvent>>) {
        if !self.mb_nonempty.load(Ordering::Acquire) {
            return;
        }
        let mut mb = self.mailbox.lock();
        let clock = self.clock.load(Ordering::Relaxed);
        for ev in mb.drain(..) {
            assert!(
                ev.time >= clock,
                "parallel scheduler causality violation: event at t={} arrived behind \
                 shard clock {} (lane {}); rerun with GBCR_SCHED=serial and report this",
                ev.time,
                clock,
                ev.lane,
            );
            heap.push(Reverse(ev));
        }
        self.mb_nonempty.store(false, Ordering::Release);
    }

    /// Control-thread variant (takes the heap lock itself).
    fn drain_mailbox(&self) {
        if !self.mb_nonempty.load(Ordering::Acquire) {
            return;
        }
        let mut heap = self.heap.lock();
        self.drain_mailbox_into(&mut heap);
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.lock().peek().map(|Reverse(e)| e.time)
    }
}

/// Shared state of one parallel-scheduled simulation; hangs off the
/// engine's `Inner` once [`crate::Sim::enable_parallel`] succeeds.
pub(crate) struct ParState {
    shards: Vec<Shard>,
    /// Per-lane push counters; index `shards.len()` is the external lane.
    lane_seq: Vec<AtomicU64>,
    /// Owning shard per `ProcId`; extended on spawn (under the engine's
    /// process-table lock, so indices stay aligned with `ProcId`s).
    proc_shard: Mutex<Vec<u32>>,
    /// Owning shard per routing key (simulated node id) for
    /// [`crate::SimHandle::call_at_keyed`] callbacks such as fabric
    /// deliveries.
    key_shard: HashMap<u64, u32>,
    /// The conservative window width: minimum cross-shard link latency.
    lookahead: Time,
    /// True while a parallel run is in progress — the routing points in
    /// the engine only divert to mailboxes inside a run.
    pub(crate) active: AtomicBool,
    /// Events dispatched by the current run (drained at run end).
    dispatched: AtomicU64,
    windows: AtomicU64,
    fenced_windows: AtomicU64,
    horizon_stalls: AtomicU64,
    occupancy_sum: AtomicU64,
    cross_msgs: AtomicU64,
    local_msgs: AtomicU64,
}

impl ParState {
    pub(crate) fn new(
        shards: usize,
        lookahead: Time,
        proc_shard: Vec<u32>,
        key_shard: HashMap<u64, u32>,
    ) -> Self {
        assert!(shards >= 2, "parallel scheduling needs at least 2 shards");
        let in_range = |&s: &u32| (s as usize) < shards;
        assert!(proc_shard.iter().all(in_range), "process assigned to out-of-range shard");
        assert!(key_shard.values().all(in_range), "key assigned to out-of-range shard");
        ParState {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            lane_seq: (0..=shards).map(|_| AtomicU64::new(0)).collect(),
            proc_shard: Mutex::new(proc_shard),
            key_shard,
            lookahead,
            active: AtomicBool::new(false),
            dispatched: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            fenced_windows: AtomicU64::new(0),
            horizon_stalls: AtomicU64::new(0),
            occupancy_sum: AtomicU64::new(0),
            cross_msgs: AtomicU64::new(0),
            local_msgs: AtomicU64::new(0),
        }
    }

    /// The calling thread's shard clock, if it is executing a shard.
    pub(crate) fn local_now(&self) -> Option<Time> {
        let s = current_shard();
        if s == NO_SHARD {
            None
        } else {
            Some(self.shards[s as usize].clock.load(Ordering::Relaxed))
        }
    }

    /// Record a newly spawned process on the calling shard (shard 0 when
    /// spawned from outside any shard). Called under the engine's process
    /// table lock so the index matches the new `ProcId`.
    pub(crate) fn note_spawn(&self) {
        let s = current_shard();
        self.proc_shard.lock().push(if s == NO_SHARD { 0 } else { s });
    }

    fn shard_of_proc(&self, pid: ProcId) -> u32 {
        self.proc_shard.lock()[pid.index()]
    }

    fn call_dest(&self) -> u32 {
        let s = current_shard();
        if s == NO_SHARD {
            0
        } else {
            s
        }
    }

    /// Destination shard for an event, from its kind (wakes follow the
    /// process, un-keyed calls run on the pushing shard).
    fn dest_of(&self, kind: &EventKind) -> u32 {
        match kind {
            EventKind::Wake(pid) | EventKind::CancellableWake { pid, .. } => {
                self.shard_of_proc(*pid)
            }
            EventKind::Call { .. } => self.call_dest(),
        }
    }

    /// Route an event to `dest`'s mailbox with the pushing lane's next
    /// merge key.
    pub(crate) fn route(&self, dest: u32, time: Time, kind: EventKind) {
        let lane = current_shard();
        let lane_idx = if lane == NO_SHARD { self.shards.len() } else { lane as usize };
        let lseq = self.lane_seq[lane_idx].fetch_add(1, Ordering::Relaxed);
        if lane == dest {
            self.local_msgs.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cross_msgs.fetch_add(1, Ordering::Relaxed);
        }
        let sh = &self.shards[dest as usize];
        sh.mailbox.lock().push(ParEvent { time, lane, lseq, kind });
        sh.mb_nonempty.store(true, Ordering::Release);
    }

    pub(crate) fn route_by_kind(&self, time: Time, kind: EventKind) {
        let dest = self.dest_of(&kind);
        self.route(dest, time, kind);
    }

    /// Route a keyed callback (used by fabric deliveries) to the shard
    /// owning `key`, falling back to the pushing shard for unknown keys.
    pub(crate) fn route_keyed(&self, key: u64, time: Time, kind: EventKind) {
        let dest = self.key_shard.get(&key).copied().unwrap_or_else(|| self.call_dest());
        self.route(dest, time, kind);
    }

    pub(crate) fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            shards: self.shards.len() as u64,
            windows: self.windows.load(Ordering::Relaxed),
            fenced_windows: self.fenced_windows.load(Ordering::Relaxed),
            horizon_stalls: self.horizon_stalls.load(Ordering::Relaxed),
            occupancy_sum: self.occupancy_sum.load(Ordering::Relaxed),
            cross_msgs: self.cross_msgs.load(Ordering::Relaxed),
            local_msgs: self.local_msgs.load(Ordering::Relaxed),
        }
    }
}

/// What the control thread asks the shard workers to do next.
#[derive(Clone, Copy)]
enum Job {
    /// Execute your shard up to (exclusive) the horizon.
    Run { horizon: Time },
    Exit,
}

/// Generation-stamped window barrier between the control thread and the
/// shard workers.
struct WindowCtl {
    m: Mutex<WindowState>,
    worker_cv: Condvar,
    control_cv: Condvar,
}

struct WindowState {
    gen: u64,
    job: Job,
    remaining: usize,
}

impl WindowCtl {
    fn new() -> Self {
        WindowCtl {
            m: Mutex::new(WindowState { gen: 0, job: Job::Exit, remaining: 0 }),
            worker_cv: Condvar::new(),
            control_cv: Condvar::new(),
        }
    }

    /// Publish a window to all workers and block until they all finish.
    fn run_window(&self, horizon: Time, workers: usize) {
        let mut st = self.m.lock();
        st.gen += 1;
        st.job = Job::Run { horizon };
        st.remaining = workers;
        self.worker_cv.notify_all();
        while st.remaining > 0 {
            self.control_cv.wait(&mut st);
        }
    }

    fn shutdown(&self) {
        let mut st = self.m.lock();
        st.gen += 1;
        st.job = Job::Exit;
        self.worker_cv.notify_all();
    }
}

/// Resolve `pid`'s gate through a thread-local cache of the shared
/// process table (one lock per spawn, not per wake).
fn gate_of(
    gates: &mut Vec<Arc<dyn Gate>>,
    inner: &Inner,
    pid: ProcId,
) -> Arc<dyn Gate> {
    if pid.index() >= gates.len() {
        let procs = inner.procs.lock();
        gates.extend(procs[gates.len()..].iter().map(|s| s.gate.clone()));
    }
    gates[pid.index()].clone()
}

/// Execute one event on the calling thread (which has its shard context
/// set). Mirrors the serial dispatch arms minus tracing — parallel runs
/// never trace (the engine guards enablement).
fn dispatch_event(
    inner: &Arc<Inner>,
    handle: &SimHandle,
    gates: &mut Vec<Arc<dyn Gate>>,
    kind: EventKind,
) -> SimResult<()> {
    match kind {
        EventKind::Wake(pid) => {
            if let Err(e) = gate_of(gates, inner, pid).resume_local() {
                return Err(resume_error_for(inner, pid, e));
            }
        }
        EventKind::CancellableWake { slot, gen, pid } => {
            if inner.timers.retire(slot, gen) {
                if let Err(e) = gate_of(gates, inner, pid).resume_local() {
                    return Err(resume_error_for(inner, pid, e));
                }
            }
        }
        EventKind::Call { slot, gen, f } => {
            if inner.timers.retire(slot, gen) {
                f(handle);
            }
        }
    }
    Ok(())
}

/// Worker body: execute `shard` for every published window until told to
/// exit. The first error anywhere abandons the current window (remaining
/// workers still finish theirs; the control thread returns the error).
fn worker_loop(
    shard: u32,
    inner: &Arc<Inner>,
    par: &ParState,
    ctl: &WindowCtl,
    first_err: &Mutex<Option<SimError>>,
) {
    set_current_shard(shard);
    let handle = SimHandle { inner: Arc::clone(inner) };
    let mut gates: Vec<Arc<dyn Gate>> = Vec::new();
    let mut my_gen = 0u64;
    loop {
        let job = {
            let mut st = ctl.m.lock();
            while st.gen == my_gen {
                ctl.worker_cv.wait(&mut st);
            }
            my_gen = st.gen;
            st.job
        };
        let horizon = match job {
            Job::Exit => break,
            Job::Run { horizon } => horizon,
        };
        run_shard_window(shard, inner, &handle, par, &mut gates, horizon, first_err);
        let mut st = ctl.m.lock();
        st.remaining -= 1;
        if st.remaining == 0 {
            ctl.control_cv.notify_one();
        }
    }
    set_current_shard(NO_SHARD);
}

/// Execute every event of one shard strictly below `horizon`, including
/// events that land in the shard's mailbox mid-window (self wakes, and
/// cross-shard traffic — which the lookahead guarantees is at or beyond
/// the horizon, so it merely queues for the next window).
fn run_shard_window(
    shard: u32,
    inner: &Arc<Inner>,
    handle: &SimHandle,
    par: &ParState,
    gates: &mut Vec<Arc<dyn Gate>>,
    horizon: Time,
    first_err: &Mutex<Option<SimError>>,
) {
    let sh = &par.shards[shard as usize];
    let mut heap = sh.heap.lock();
    let mut dispatched: u64 = 0;
    'window: loop {
        sh.drain_mailbox_into(&mut heap);
        let batch_time = match heap.peek() {
            Some(Reverse(e)) if e.time < horizon => e.time,
            _ => break,
        };
        debug_assert!(batch_time >= sh.clock.load(Ordering::Relaxed), "shard time reversed");
        sh.clock.store(batch_time, Ordering::Relaxed);
        loop {
            let ev = match heap.peek() {
                Some(Reverse(e)) if e.time == batch_time => heap.pop().expect("peeked").0,
                _ => break,
            };
            dispatched += 1;
            if let Err(e) = dispatch_event(inner, handle, gates, ev.kind) {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                break 'window;
            }
        }
    }
    par.dispatched.fetch_add(dispatched, Ordering::Relaxed);
}

/// Degenerate window: merge the global `t == t_min` batch across all
/// shards in `(lane, lane_seq)` order and execute it serially on the
/// control thread, with the executing shard's context set per event.
/// Used while a fence is raised and under zero lookahead.
fn run_fenced_batch(
    inner: &Arc<Inner>,
    handle: &SimHandle,
    par: &ParState,
    gates: &mut Vec<Arc<dyn Gate>>,
    t_min: Time,
) -> SimResult<()> {
    let mut occupied: Vec<bool> = vec![false; par.shards.len()];
    let mut dispatched: u64 = 0;
    let result = 'batch: loop {
        let mut batch: Vec<(u32, ParEvent)> = Vec::new();
        for (i, s) in par.shards.iter().enumerate() {
            s.drain_mailbox();
            let mut heap = s.heap.lock();
            while matches!(heap.peek(), Some(Reverse(e)) if e.time == t_min) {
                batch.push((i as u32, heap.pop().expect("peeked").0));
            }
        }
        if batch.is_empty() {
            break Ok(());
        }
        batch.sort_by_key(|(_, e)| (e.lane, e.lseq));
        for (shard, ev) in batch {
            occupied[shard as usize] = true;
            let sh = &par.shards[shard as usize];
            if t_min > sh.clock.load(Ordering::Relaxed) {
                sh.clock.store(t_min, Ordering::Relaxed);
            }
            set_current_shard(shard);
            dispatched += 1;
            let r = dispatch_event(inner, handle, gates, ev.kind);
            set_current_shard(NO_SHARD);
            if let Err(e) = r {
                break 'batch Err(e);
            }
        }
    };
    par.dispatched.fetch_add(dispatched, Ordering::Relaxed);
    par.occupancy_sum.fetch_add(occupied.iter().filter(|&&o| o).count() as u64, Ordering::Relaxed);
    result
}

/// The parallel analogue of the serial `run_inner` loop. Returns exactly
/// the serial result surface: final time on drain, `Deadlock` with the
/// blocked process list, `HorizonReached` past `horizon`, or the first
/// process error.
pub(crate) fn run_parallel(sim: &mut Sim, horizon: Time) -> SimResult<Time> {
    let inner = Arc::clone(&sim.handle.inner);
    let par = Arc::clone(inner.par.get().expect("parallel state configured"));
    let nshards = par.shards.len();
    par.active.store(true, Ordering::Release);
    // Anything a previous serial run left in the scheduler-private heap
    // migrates to the shards, preserving its `(time, seq)` order.
    let mut leftovers: Vec<QueuedEvent> = Vec::new();
    while let Some(Reverse(ev)) = sim.heap.pop() {
        leftovers.push(ev);
    }
    leftovers.sort_by_key(|e| (e.time, e.seq));
    for ev in leftovers {
        par.route_by_kind(ev.time, ev.kind);
    }
    let ctl = WindowCtl::new();
    let first_err: Mutex<Option<SimError>> = Mutex::new(None);
    let result = std::thread::scope(|scope| {
        for i in 0..nshards {
            let (inner, par, ctl, first_err) = (&inner, &*par, &ctl, &first_err);
            scope.spawn(move || worker_loop(i as u32, inner, par, ctl, first_err));
        }
        let r = control_loop(&inner, &par, &ctl, &first_err, horizon);
        ctl.shutdown();
        r
    });
    par.active.store(false, Ordering::Release);
    let dispatched = par.dispatched.swap(0, Ordering::Relaxed);
    sim.events += dispatched;
    crate::engine::note_total_events(dispatched);
    result
}

fn control_loop(
    inner: &Arc<Inner>,
    par: &ParState,
    ctl: &WindowCtl,
    first_err: &Mutex<Option<SimError>>,
    horizon: Time,
) -> SimResult<Time> {
    let handle = SimHandle { inner: Arc::clone(inner) };
    let mut gates: Vec<Arc<dyn Gate>> = Vec::new();
    let mut drain_buf: Vec<QueuedEvent> = Vec::new();
    loop {
        // Injector traffic (pre-run pushes, spawns from outside the run)
        // migrates to the shards in its global `(time, seq)` order.
        inner.injector.drain_into(&mut drain_buf);
        drain_buf.sort_by_key(|e| (e.time, e.seq));
        for ev in drain_buf.drain(..) {
            par.route_by_kind(ev.time, ev.kind);
        }
        for s in &par.shards {
            s.drain_mailbox();
        }
        let peeks: Vec<Option<Time>> = par.shards.iter().map(Shard::peek_time).collect();
        let Some(t_min) = peeks.iter().flatten().copied().min() else {
            let now = inner.now.load(Ordering::Relaxed);
            let blocked: Vec<String> = inner
                .procs
                .lock()
                .iter()
                .filter(|p| !p.gate.is_done())
                .map(|p| p.name.to_string())
                .collect();
            return if blocked.is_empty() {
                Ok(now)
            } else {
                Err(SimError::Deadlock { at: now, blocked })
            };
        };
        if t_min > horizon {
            return Err(SimError::HorizonReached { at: horizon });
        }
        let fenced = inner.fence.load(Ordering::Acquire) > 0 || par.lookahead == 0;
        par.windows.fetch_add(1, Ordering::Relaxed);
        if fenced {
            par.fenced_windows.fetch_add(1, Ordering::Relaxed);
            run_fenced_batch(inner, &handle, par, &mut gates, t_min)?;
            if t_min > inner.now.load(Ordering::Relaxed) {
                inner.now.store(t_min, Ordering::Relaxed);
            }
            continue;
        }
        let h = t_min.saturating_add(par.lookahead).min(horizon.saturating_add(1));
        let mut occupied = 0u64;
        let mut stalled = 0u64;
        for p in &peeks {
            match p {
                Some(t) if *t < h => occupied += 1,
                Some(_) => stalled += 1,
                None => {}
            }
        }
        par.occupancy_sum.fetch_add(occupied, Ordering::Relaxed);
        par.horizon_stalls.fetch_add(stalled, Ordering::Relaxed);
        ctl.run_window(h, par.shards.len());
        if let Some(e) = first_err.lock().take() {
            return Err(e);
        }
        let max_clock =
            par.shards.iter().map(|s| s.clock.load(Ordering::Relaxed)).max().unwrap_or(0);
        if max_clock > inner.now.load(Ordering::Relaxed) {
            inner.now.store(max_clock, Ordering::Relaxed);
        }
    }
}
