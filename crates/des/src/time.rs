//! Virtual time: `u64` nanoseconds since simulation start, plus unit helpers.
//!
//! All durations and instants in the simulation share this representation;
//! there is deliberately no separate `Duration` type because protocol code
//! constantly mixes instants and spans and the simulation never deals with
//! negative time.

/// A virtual instant or span, in nanoseconds since simulation start.
pub type Time = u64;

/// Nanoseconds per microsecond.
pub const NANOS_PER_US: Time = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MS: Time = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: Time = 1_000_000_000;

/// `n` microseconds as a [`Time`].
#[inline]
pub const fn us(n: u64) -> Time {
    n * NANOS_PER_US
}

/// `n` milliseconds as a [`Time`].
#[inline]
pub const fn ms(n: u64) -> Time {
    n * NANOS_PER_MS
}

/// `n` seconds as a [`Time`].
#[inline]
pub const fn secs(n: u64) -> Time {
    n * NANOS_PER_SEC
}

/// A fractional number of seconds as a [`Time`], rounded to the nearest
/// nanosecond. Panics on negative or non-finite input.
#[inline]
pub fn secs_f64(s: f64) -> Time {
    assert!(s.is_finite() && s >= 0.0, "secs_f64 needs finite s >= 0, got {s}");
    (s * NANOS_PER_SEC as f64).round() as Time
}

/// A [`Time`] as fractional seconds (for reporting).
#[inline]
pub fn as_secs_f64(t: Time) -> f64 {
    t as f64 / NANOS_PER_SEC as f64
}

/// A [`Time`] as fractional milliseconds (for reporting).
#[inline]
pub fn as_millis_f64(t: Time) -> f64 {
    t as f64 / NANOS_PER_MS as f64
}

/// Pretty-print a time span with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt(t: Time) -> String {
    if t < NANOS_PER_US {
        format!("{t}ns")
    } else if t < NANOS_PER_MS {
        format!("{:.2}us", t as f64 / NANOS_PER_US as f64)
    } else if t < NANOS_PER_SEC {
        format!("{:.2}ms", as_millis_f64(t))
    } else {
        format!("{:.3}s", as_secs_f64(t))
    }
}

/// The time needed to move `bytes` at `bytes_per_sec`, rounded up to a whole
/// nanosecond so that a transfer never completes "for free".
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Time {
    assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
    let secs = bytes as f64 / bytes_per_sec;
    (secs * NANOS_PER_SEC as f64).ceil() as Time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers_compose() {
        assert_eq!(us(1), 1_000);
        assert_eq!(ms(1), 1_000 * us(1));
        assert_eq!(secs(1), 1_000 * ms(1));
    }

    #[test]
    fn secs_f64_round_trips() {
        let t = secs_f64(1.25);
        assert_eq!(t, 1_250_000_000);
        assert!((as_secs_f64(t) - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn secs_f64_rejects_negative() {
        secs_f64(-1.0);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 B/s = 333333333.33..ns -> 333333334
        assert_eq!(transfer_time(1, 3.0), 333_333_334);
        assert_eq!(transfer_time(0, 100.0), 0);
    }

    #[test]
    fn fmt_picks_adaptive_units() {
        assert_eq!(fmt(12), "12ns");
        assert_eq!(fmt(us(3)), "3.00us");
        assert_eq!(fmt(ms(250)), "250.00ms");
        assert_eq!(fmt(secs(2)), "2.000s");
    }
}
