//! Stackful coroutine primitive for the pooled executor: heap-allocated
//! stacks plus a hand-rolled callee-saved context switch.
//!
//! A suspended task is nothing but a stack and one saved stack pointer;
//! everything else (callee-saved registers, return address) lives *on*
//! that stack, exactly where [`switch_stacks`] pushed it. Resuming is the
//! mirror image: load the saved stack pointer, pop the registers, `ret`.
//! This is the classic boost.context / libaco design, reduced to the one
//! architecture this workspace targets (x86-64 SysV); other architectures
//! fall back to the thread-per-process executor (see
//! [`supported`]).
//!
//! Safety model in one paragraph: a coroutine's entry function
//! ([`crate::pool::task_entry`]) wraps the user closure in
//! `catch_unwind`, so no unwind can ever cross the switch frames; the
//! final switch out of a finished task happens only after every value
//! with a destructor on that stack has been dropped, so abandoning the
//! stack leaks nothing; and the scheduler/worker handoff protocol (see
//! [`crate::pool`]) guarantees a context is never entered by two threads
//! at once. Stacks are uncommitted until touched (large allocations are
//! fresh anonymous mappings), so 10k+ mostly-idle tasks cost virtual
//! address space, not resident memory.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Whether this build has a coroutine context switch for the target
/// architecture. When `false`, the pooled executor silently degrades to
/// the threaded one.
pub(crate) const fn supported() -> bool {
    cfg!(target_arch = "x86_64")
}

/// A heap-allocated coroutine stack. The low end carries a canary word so
/// overflow (the stack grows *down*, towards the canary) is detected at
/// the next slice boundary instead of silently corrupting the heap.
pub(crate) struct Stack {
    base: NonNull<u8>,
    size: usize,
}

// The stack is only ever used by one thread at a time (the pool worker
// hosting the current slice); ownership moves with the TaskCell.
unsafe impl Send for Stack {}

impl Stack {
    const CANARY: u64 = 0xDEAD_BEEF_CA11_57AC;

    /// Minimum size we accept; smaller requests are rounded up. Below
    /// this even the entry trampoline plus a panic would overflow.
    pub(crate) const MIN_SIZE: usize = 16 * 1024;

    pub(crate) fn new(size: usize) -> Stack {
        let size = size.max(Self::MIN_SIZE) & !15usize;
        let layout = Layout::from_size_align(size, 16).expect("valid stack layout");
        // SAFETY: layout has non-zero size.
        let p = unsafe { alloc(layout) };
        let base = NonNull::new(p).unwrap_or_else(|| handle_alloc_error(layout));
        // SAFETY: the allocation is at least MIN_SIZE and 16-aligned.
        unsafe { base.as_ptr().cast::<u64>().write(Self::CANARY) };
        Stack { base, size }
    }

    /// True while the guard word at the overflow end is intact.
    pub(crate) fn canary_ok(&self) -> bool {
        // SAFETY: base points at our own live allocation.
        unsafe { self.base.as_ptr().cast::<u64>().read() == Self::CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.size, 16).expect("valid stack layout");
        // SAFETY: allocated with the identical layout in `new`.
        unsafe { dealloc(self.base.as_ptr(), layout) };
    }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::Stack;

    /// Swap stacks: push the SysV callee-saved registers onto the current
    /// stack, store the resulting `rsp` through `save`, load a new `rsp`
    /// from `load`, pop the registers the other context pushed (or that
    /// [`init_stack`] forged), and `ret` into it.
    ///
    /// # Safety
    /// `save` must be a valid slot to store the suspended context's stack
    /// pointer; `load` must hold a stack pointer previously produced by
    /// this function or by [`init_stack`], on a stack that is not
    /// currently executing on any thread.
    #[unsafe(naked)]
    pub(crate) unsafe extern "C" fn switch_stacks(save: *mut usize, load: *const usize) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First landing pad of a fresh coroutine: [`init_stack`] plants this
    /// as the `ret` target with the task pointer in `r12`. Realigns the
    /// stack for the SysV call and enters the (never-returning) Rust
    /// entry.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "sub rsp, 8",
            "mov rdi, r12",
            "call {entry}",
            "ud2",
            entry = sym crate::pool::task_entry,
        )
    }

    /// Forge an initial context on `stack` so that the first
    /// [`switch_stacks`] into it "returns" into [`trampoline`] with
    /// `task` in `r12`. Returns the stack-pointer value to switch to.
    ///
    /// # Safety
    /// `stack` must outlive every switch into the returned context;
    /// `task` must stay valid for the coroutine's whole life.
    pub(crate) unsafe fn init_stack(stack: &Stack, task: *const ()) -> usize {
        let top = (stack.base.as_ptr() as usize + stack.size) & !15usize;
        // Eight slots below the (16-aligned) top, mirroring the pop
        // sequence of `switch_stacks` plus its `ret`:
        //   sp+0  r15      sp+24 r12 (task)   sp+48 ret -> trampoline
        //   sp+8  r14      sp+32 rbx          sp+56 pad (entry alignment)
        //   sp+16 r13      sp+40 rbp
        let sp = top - 8 * 8;
        let s = sp as *mut usize;
        // SAFETY: the eight slots lie inside the allocation (size >=
        // MIN_SIZE >> 64 bytes) and are 16-aligned by construction.
        unsafe {
            s.add(0).write(0);
            s.add(1).write(0);
            s.add(2).write(0);
            s.add(3).write(task as usize);
            s.add(4).write(0);
            s.add(5).write(0);
            s.add(6).write(trampoline as *const () as usize);
            s.add(7).write(0);
        }
        sp
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use arch::{init_stack, switch_stacks};

// On unsupported architectures the pooled executor is never constructed
// (see `exec::resolve_kind`), but the symbols must exist to compile.
#[cfg(not(target_arch = "x86_64"))]
mod arch_stub {
    use super::Stack;
    pub(crate) unsafe extern "C" fn switch_stacks(_save: *mut usize, _load: *const usize) {
        unreachable!("coroutine switch on unsupported architecture")
    }
    pub(crate) unsafe fn init_stack(_stack: &Stack, _task: *const ()) -> usize {
        unreachable!("coroutine init on unsupported architecture")
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) use arch_stub::{init_stack, switch_stacks};
