//! Executor abstraction: how simulated processes get something to run on.
//!
//! The scheduler does not care whether a simulated process is backed by a
//! dedicated OS thread or by a pooled coroutine; it only needs the
//! [`Gate`] handoff contract (resume a process, block until it parks or
//! finishes). This module defines that contract, the [`Executor`] factory
//! behind [`crate::Sim::spawn`], and the legacy thread-per-process
//! implementation; the pooled coroutine implementation lives in
//! [`crate::pool`].

use crate::process::{clear_kill_unwind_flag, KillSignal};
use parking_lot::{Condvar, Mutex};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which execution backend a [`crate::Sim`] uses for its simulated
/// processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// Resumable tasks (stackful coroutines) on a small shared worker
    /// pool: live OS threads scale with the pool size (default
    /// `min(ncpu, 8)`), not with rank count. The default wherever the
    /// architecture supports it.
    Pooled,
    /// One OS thread per simulated process with a mutex+condvar baton —
    /// the legacy mode, kept as an A/B fallback (`GBCR_EXECUTOR=threaded`)
    /// and for architectures without a coroutine context switch.
    Threaded,
}

impl ExecKind {
    /// Stable lower-case name, as used by `GBCR_EXECUTOR` and emitted in
    /// benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExecKind::Pooled => "pooled",
            ExecKind::Threaded => "threaded",
        }
    }
}

/// Per-[`crate::Sim`] execution configuration; pass to
/// [`crate::Sim::with_config`].
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// The execution backend.
    pub executor: ExecKind,
    /// Coroutine stack size in bytes (pooled mode only). Stacks are
    /// lazily committed, so generous sizes cost virtual address space,
    /// not resident memory. Default 1 MiB, overridable with
    /// `GBCR_STACK_KB`.
    pub stack_bytes: usize,
}

impl DesConfig {
    /// The pooled-coroutine backend (falls back to threaded on
    /// architectures without a context switch).
    pub fn pooled() -> Self {
        DesConfig { executor: clamp_supported(ExecKind::Pooled), ..Self::base() }
    }

    /// The legacy thread-per-process backend.
    pub fn threaded() -> Self {
        DesConfig { executor: ExecKind::Threaded, ..Self::base() }
    }

    fn base() -> Self {
        let stack_kb = std::env::var("GBCR_STACK_KB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&kb| kb > 0)
            .unwrap_or(1024);
        DesConfig { executor: ExecKind::Threaded, stack_bytes: stack_kb * 1024 }
    }

    pub(crate) fn build_executor(&self) -> Box<dyn Executor> {
        match clamp_supported(self.executor) {
            ExecKind::Pooled => {
                Box::new(crate::pool::PooledExecutor { stack_bytes: self.stack_bytes })
            }
            ExecKind::Threaded => Box::new(ThreadedExecutor),
        }
    }
}

impl Default for DesConfig {
    /// Resolution order: process-wide [`set_executor_default`] if one was
    /// set, else the `GBCR_EXECUTOR` environment variable
    /// (`pooled`/`threaded`), else pooled where supported.
    fn default() -> Self {
        DesConfig { executor: executor_default(), ..Self::base() }
    }
}

fn clamp_supported(kind: ExecKind) -> ExecKind {
    if matches!(kind, ExecKind::Pooled) && !crate::coro::supported() {
        ExecKind::Threaded
    } else {
        kind
    }
}

/// Process-wide executor default: 0 = unset, 1 = pooled, 2 = threaded.
static EXEC_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Force every subsequently created [`crate::Sim`] (without an explicit
/// [`DesConfig`]) onto the given backend. Takes precedence over
/// `GBCR_EXECUTOR`; used by the benchmark harness's pooled-vs-threaded
/// identity check.
pub fn set_executor_default(kind: ExecKind) {
    let v = match kind {
        ExecKind::Pooled => 1,
        ExecKind::Threaded => 2,
    };
    EXEC_DEFAULT.store(v, Ordering::Relaxed);
}

/// The backend [`DesConfig::default`] currently resolves to.
pub fn executor_default() -> ExecKind {
    match EXEC_DEFAULT.load(Ordering::Relaxed) {
        1 => return clamp_supported(ExecKind::Pooled),
        2 => return ExecKind::Threaded,
        _ => {}
    }
    if let Ok(v) = std::env::var("GBCR_EXECUTOR") {
        match v.to_ascii_lowercase().as_str() {
            "pooled" | "pool" | "coro" => return clamp_supported(ExecKind::Pooled),
            "threaded" | "thread" => return ExecKind::Threaded,
            _ => {}
        }
    }
    clamp_supported(ExecKind::Pooled)
}

/// Why a [`Gate::resume`] did not return normally.
#[derive(Debug)]
pub(crate) enum ResumeError {
    /// The process's slice ended in a (non-kill) panic, rendered to a
    /// string.
    Panicked(String),
    /// The process was already queued or running when resumed again — a
    /// scheduler bug, reported per-cell instead of aborting the process.
    DoubleResume,
}

/// The scheduler↔process handoff contract. `resume` hands control to the
/// process and blocks until it parks or finishes; `park` is the process
/// side handing control back. Exactly one simulated process runs at any
/// instant because the scheduler only ever resumes one gate at a time and
/// blocks inside `resume` until the slice is over.
pub(crate) trait Gate: Send + Sync {
    /// Scheduler side: run one slice of this process. `Ok` on park or
    /// normal finish (stale wakes on finished processes are no-ops).
    fn resume(&self) -> Result<(), ResumeError>;
    /// Like [`resume`](Gate::resume), but the slice executes *inline on
    /// the calling thread* when the backend supports it. The parallel
    /// scheduler's shard workers use this so process code observes the
    /// worker's shard-local clock (thread-local state) instead of being
    /// bounced to an unrelated pool thread. Backends without an inline
    /// path fall back to `resume`.
    fn resume_local(&self) -> Result<(), ResumeError> {
        self.resume()
    }
    /// Process side: yield back to the scheduler; returns when resumed.
    fn park(&self);
    /// Whether the process has terminated (normally, by panic, or by
    /// kill).
    fn is_done(&self) -> bool;
    /// Shutdown side: drive the (already kill-flagged) process to a
    /// terminal state. Defaults to `resume`; the pooled backend
    /// short-circuits never-started tasks so teardown works even when the
    /// worker pool is unavailable (e.g. a `Sim` dropped during an unwind
    /// inside a simulated process).
    fn teardown(&self) {
        let _ = self.resume();
    }
}

/// The ready-to-run closure for one simulated process: the user closure
/// with its [`crate::Proc`] context already bound.
pub(crate) type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// A spawned task: its gate, plus a join handle when the backend owns a
/// dedicated OS thread for it.
pub(crate) struct SpawnedTask {
    pub(crate) gate: Arc<dyn Gate>,
    pub(crate) join: Option<JoinHandle<()>>,
}

/// Factory for simulated-process run contexts. `make_body` closes the
/// gate↔process-context cycle: the executor creates the gate first, the
/// caller builds the `Proc` around it and returns the bound body.
pub(crate) trait Executor: Send + Sync {
    fn spawn(
        &self,
        name: Arc<str>,
        killed: Arc<AtomicBool>,
        stats: Arc<ExecStats>,
        make_body: Box<dyn FnOnce(Arc<dyn Gate>) -> TaskBody + '_>,
    ) -> SpawnedTask;
    fn kind(&self) -> ExecKind;
    /// Peak OS threads this backend used for process execution.
    fn exec_threads(&self, stats: &ExecStats) -> u64;
}

/// Execution counters for one simulation: spawn/teardown cost and
/// process-liveness high-water marks, reported next to the engine's
/// event/elision counters.
#[derive(Default)]
pub(crate) struct ExecStats {
    spawned: AtomicU64,
    live: AtomicU64,
    peak_live: AtomicU64,
    spawn_ns: AtomicU64,
    teardown_ns: AtomicU64,
}

impl ExecStats {
    pub(crate) fn task_spawned(&self) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    pub(crate) fn task_done(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn add_spawn_ns(&self, ns: u64) {
        self.spawn_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn add_teardown_ns(&self, ns: u64) {
        self.teardown_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    pub(crate) fn peak_live(&self) -> u64 {
        self.peak_live.load(Ordering::Relaxed)
    }

    pub(crate) fn spawn_ns(&self) -> u64 {
        self.spawn_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn teardown_ns(&self) -> u64 {
        self.teardown_ns.load(Ordering::Relaxed)
    }
}

pub(crate) fn panic_payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Map a `catch_unwind` result to a task outcome: kill unwinds are normal
/// terminations, anything else is a real panic.
pub(crate) fn outcome_from(
    result: Result<(), Box<dyn std::any::Any + Send>>,
) -> Result<(), String> {
    match result {
        Ok(()) => Ok(()),
        Err(payload) if payload.is::<KillSignal>() => Ok(()),
        Err(payload) => Err(panic_payload_to_string(payload.as_ref())),
    }
}

// ---------------------------------------------------------------------------
// Threaded backend: one OS thread per process, mutex+condvar baton.
// ---------------------------------------------------------------------------

/// Who currently holds the baton for one process thread.
#[derive(Debug)]
enum Baton {
    /// The process thread is parked; the scheduler may resume it.
    Parked,
    /// The process thread is running; the scheduler is waiting.
    Running,
    /// The process finished normally (or was killed, which is a normal end).
    DoneOk,
    /// The process panicked with the given rendered payload.
    DonePanic(String),
}

/// The per-process handoff cell shared by the scheduler and the process
/// thread.
struct ThreadGate {
    state: Mutex<Baton>,
    cv: Condvar,
}

impl ThreadGate {
    fn new() -> Arc<Self> {
        Arc::new(ThreadGate { state: Mutex::new(Baton::Parked), cv: Condvar::new() })
    }

    /// Process side: block until the scheduler first resumes us. The state
    /// starts out `Parked`, so this is just the waiting half of `park`.
    fn wait_first_resume(&self) {
        let mut st = self.state.lock();
        while matches!(*st, Baton::Parked) {
            self.cv.wait(&mut st);
        }
    }

    /// Process side: terminal hand-back.
    fn finish(&self, outcome: Result<(), String>) {
        let mut st = self.state.lock();
        *st = match outcome {
            Ok(()) => Baton::DoneOk,
            Err(msg) => Baton::DonePanic(msg),
        };
        self.cv.notify_all();
    }
}

impl Gate for ThreadGate {
    /// A single lock acquisition covers the whole handoff: the condvar wait
    /// releases the mutex atomically, so the process thread (blocked on the
    /// same condvar) acquires it, observes `Running`, and runs — there is no
    /// unlock/relock gap between publishing `Running` and starting to wait.
    fn resume(&self) -> Result<(), ResumeError> {
        let mut st = self.state.lock();
        match *st {
            Baton::Parked => {
                *st = Baton::Running;
                self.cv.notify_all();
            }
            Baton::DoneOk | Baton::DonePanic(_) => return Ok(()),
            Baton::Running => return Err(ResumeError::DoubleResume),
        }
        while matches!(*st, Baton::Running) {
            self.cv.wait(&mut st);
        }
        match &*st {
            Baton::DonePanic(msg) => Err(ResumeError::Panicked(msg.clone())),
            _ => Ok(()),
        }
    }

    fn park(&self) {
        let mut st = self.state.lock();
        *st = Baton::Parked;
        self.cv.notify_all();
        while matches!(*st, Baton::Parked) {
            self.cv.wait(&mut st);
        }
    }

    fn is_done(&self) -> bool {
        matches!(*self.state.lock(), Baton::DoneOk | Baton::DonePanic(_))
    }
}

/// The legacy executor: a dedicated OS thread per simulated process.
pub(crate) struct ThreadedExecutor;

impl Executor for ThreadedExecutor {
    fn spawn(
        &self,
        name: Arc<str>,
        killed: Arc<AtomicBool>,
        stats: Arc<ExecStats>,
        make_body: Box<dyn FnOnce(Arc<dyn Gate>) -> TaskBody + '_>,
    ) -> SpawnedTask {
        let gate = ThreadGate::new();
        let body = make_body(gate.clone());
        let thread_gate = gate.clone();
        let join = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                thread_gate.wait_first_resume();
                if killed.load(Ordering::Relaxed) {
                    // Killed before ever running: terminate without
                    // invoking the body.
                    drop(body);
                    thread_gate.finish(Ok(()));
                    stats.task_done();
                    return;
                }
                let result = std::panic::catch_unwind(AssertUnwindSafe(body));
                // The thread dies right after, but clearing keeps the TLS
                // contract identical across backends.
                clear_kill_unwind_flag();
                thread_gate.finish(outcome_from(result));
                stats.task_done();
            })
            .expect("failed to spawn simulation thread");
        SpawnedTask { gate, join: Some(join) }
    }

    fn kind(&self) -> ExecKind {
        ExecKind::Threaded
    }

    fn exec_threads(&self, stats: &ExecStats) -> u64 {
        stats.peak_live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Resuming a gate whose process is mid-slice is a scheduler bug; it
    /// must surface as the typed error, not hang or abort.
    #[test]
    fn thread_gate_double_resume_is_typed_error() {
        let gate = ThreadGate::new();
        *gate.state.lock() = Baton::Running;
        assert!(matches!(gate.resume(), Err(ResumeError::DoubleResume)));
        // Terminal states keep absorbing stale resumes.
        *gate.state.lock() = Baton::DoneOk;
        assert!(gate.resume().is_ok());
    }

    #[test]
    fn executor_kind_names_are_stable() {
        assert_eq!(ExecKind::Pooled.name(), "pooled");
        assert_eq!(ExecKind::Threaded.name(), "threaded");
    }
}
