//! Cancelable timer handles for scheduler callbacks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Handle returned by [`crate::SimHandle::call_at`] /
/// [`crate::SimHandle::call_after`]. Dropping the handle does *not* cancel
/// the callback; call [`TimerHandle::cancel`] explicitly.
///
/// Cancellation is how event-driven models with changing rates (the storage
/// processor-sharing model, rendezvous transfer completions) invalidate
/// stale completion events instead of trying to remove them from the heap.
#[derive(Clone, Debug)]
pub struct TimerHandle {
    cancelled: Arc<AtomicBool>,
}

impl TimerHandle {
    pub(crate) fn new(cancelled: Arc<AtomicBool>) -> Self {
        TimerHandle { cancelled }
    }

    /// Prevent the callback from firing. Idempotent; a timer that already
    /// fired is unaffected.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether `cancel` has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}
