//! Cancelable timer handles for scheduler callbacks, backed by a slab of
//! generation-checked slots.
//!
//! Arming a timer takes one slot from a free list inside the shared
//! [`TimerTable`] — no per-timer `Arc<AtomicBool>` or extra allocation
//! once the slab has warmed up. The queued event records `(slot, gen)`;
//! when it pops, the callback fires only if the slot's generation still
//! matches. Cancelling (or firing) bumps the generation and returns the
//! slot to the free list immediately, so a later timer may reuse the slot
//! while the stale event is still queued — the generation check makes
//! that reuse safe: the stale event can never fire the new timer's
//! callback.

use parking_lot::Mutex;
use std::sync::Arc;

/// One slab slot. A timer armed on this slot is live exactly while its
/// recorded generation equals the slot's current generation.
#[derive(Default)]
struct Slot {
    gen: u64,
}

#[derive(Default)]
struct Slab {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

/// The per-simulation table of armed timers. Shared (behind `Arc`) by the
/// engine and every [`TimerHandle`]; deliberately *not* part of the
/// engine's `Inner` so handles captured inside queued callbacks can never
/// form a reference cycle with the event queue.
#[derive(Default)]
pub(crate) struct TimerTable {
    slab: Mutex<Slab>,
}

impl TimerTable {
    pub(crate) fn new() -> Arc<Self> {
        Arc::default()
    }

    /// Reserve a slot for a new timer; returns its `(slot, gen)` identity.
    pub(crate) fn arm(&self) -> (u32, u64) {
        let mut slab = self.slab.lock();
        match slab.free.pop() {
            Some(slot) => (slot, slab.slots[slot as usize].gen),
            None => {
                let slot = u32::try_from(slab.slots.len()).expect("too many live timers");
                slab.slots.push(Slot::default());
                (slot, 0)
            }
        }
    }

    /// Retire `(slot, gen)` if it is still live, making its slot reusable.
    /// Returns whether the caller won the retirement — used both by cancel
    /// (winner suppresses the callback) and by the engine when the event
    /// pops (winner runs the callback).
    pub(crate) fn retire(&self, slot: u32, gen: u64) -> bool {
        let mut slab = self.slab.lock();
        let s = &mut slab.slots[slot as usize];
        if s.gen == gen {
            s.gen += 1;
            slab.free.push(slot);
            true
        } else {
            false
        }
    }

    fn is_live(&self, slot: u32, gen: u64) -> bool {
        self.slab.lock().slots[slot as usize].gen == gen
    }
}

/// Handle returned by [`crate::SimHandle::call_at`] /
/// [`crate::SimHandle::call_after`]. Dropping the handle does *not* cancel
/// the callback; call [`TimerHandle::cancel`] explicitly.
///
/// Cancellation is how event-driven models with changing rates (the storage
/// processor-sharing model, rendezvous transfer completions) invalidate
/// stale completion events instead of trying to remove them from the heap.
#[derive(Clone)]
pub struct TimerHandle {
    table: Arc<TimerTable>,
    slot: u32,
    gen: u64,
}

impl TimerHandle {
    pub(crate) fn new(table: Arc<TimerTable>, slot: u32, gen: u64) -> Self {
        TimerHandle { table, slot, gen }
    }

    /// Prevent the callback from firing. Idempotent; a timer that already
    /// fired is unaffected.
    pub fn cancel(&self) {
        self.table.retire(self.slot, self.gen);
    }

    /// Whether this timer can no longer fire — because [`cancel`] was
    /// called or because it has already fired.
    ///
    /// [`cancel`]: TimerHandle::cancel
    pub fn is_cancelled(&self) -> bool {
        !self.table.is_live(self.slot, self.gen)
    }
}

impl std::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerHandle")
            .field("slot", &self.slot)
            .field("gen", &self.gen)
            .field("live", &self.table.is_live(self.slot, self.gen))
            .finish()
    }
}
