//! An optional in-memory trace of simulation events.
//!
//! Disabled by default so the hot path pays only one relaxed atomic load.
//! Tests (notably the recovery-line consistency property tests in
//! `gbcr-core`) enable it to assert ordering properties of protocol events.

use crate::time::Time;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was recorded.
    pub time: Time,
    /// Static category tag (e.g. `"net.send"`, `"ckpt.phase"`).
    pub category: &'static str,
    /// Free-form message.
    pub message: String,
}

/// Append-only event log shared across the simulation.
#[derive(Default)]
pub struct TraceLog {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceLog {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Turn recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off (already-recorded events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an event; the message closure is only evaluated when tracing
    /// is enabled.
    #[inline]
    pub fn record(&self, time: Time, category: &'static str, message: impl FnOnce() -> String) {
        if self.is_enabled() {
            self.events.lock().push(TraceEvent { time, category, message: message() });
        }
    }

    /// Copy out all recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Copy out events in a category.
    pub fn snapshot_category(&self, category: &str) -> Vec<TraceEvent> {
        self.events.lock().iter().filter(|e| e.category == category).cloned().collect()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
