//! Simulation-level errors.

use crate::time::Time;
use std::fmt;

/// Result alias for simulation runs.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by [`crate::Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more processes were still
    /// blocked: nobody can ever wake them again. Carries the virtual time
    /// of the last processed event and the names of the stuck processes.
    Deadlock {
        /// Virtual time at which the queue drained.
        at: Time,
        /// Names of the processes that are parked forever.
        blocked: Vec<String>,
    },
    /// A simulated process panicked; the message is the panic payload
    /// rendered to a string.
    ProcessPanicked {
        /// Name of the panicking process.
        name: String,
        /// Stringified panic payload.
        message: String,
    },
    /// `run_until` reached its horizon before the event queue drained.
    HorizonReached {
        /// The horizon that was reached.
        at: Time,
    },
    /// The scheduler resumed a process that was already queued or running
    /// — a scheduler invariant violation. Surfaced as an error so that a
    /// bug in one simulation fails that run, not the whole harness
    /// process.
    DoubleResume {
        /// Name of the doubly-resumed process.
        name: String,
    },
    /// A recovery path needed a complete checkpoint epoch that does not
    /// exist — e.g. a crash preceded the first completed checkpoint, or a
    /// specific image of the requested epoch is missing (torn or never
    /// written). Callers can degrade (restart from scratch, pick an older
    /// epoch) instead of dying.
    NoRestartPoint {
        /// The checkpoint job namespace that was searched.
        job: String,
        /// Human-readable description of what exactly was missing.
        detail: String,
    },
    /// A supervised run gave up: the bounded retry budget was exhausted
    /// without the job ever completing.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: usize,
    },
    /// Restart state existed but failed validation — e.g. an image that
    /// decodes to the wrong rank or epoch, or a manifest whose entries
    /// disagree with the images on disk. Unlike [`SimError::NoRestartPoint`]
    /// this is not "nothing to restart from" but "what is there cannot be
    /// trusted"; callers should fall back to an older epoch or give up
    /// rather than restore corrupt state.
    CorruptRestartState {
        /// The checkpoint job namespace being validated.
        job: String,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The checkpoint *control plane* was lost: the coordinator's node
    /// died and no surviving node took the role over (static coordinator,
    /// or a failover election that never converged). Distinct from
    /// [`SimError::NoRestartPoint`] — the data plane may hold perfectly
    /// good restart state; what failed is the authority that schedules
    /// epochs.
    CoordinatorLost {
        /// Election term in force when the coordinator was lost (1 for a
        /// static coordinator that never migrated).
        term: u64,
        /// The epoch the coordinator was orchestrating (or about to
        /// request) when it died.
        epoch: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => write!(
                f,
                "simulation deadlock at t={}: blocked processes: {}",
                crate::time::fmt(*at),
                blocked.join(", ")
            ),
            SimError::ProcessPanicked { name, message } => {
                write!(f, "simulated process '{name}' panicked: {message}")
            }
            SimError::HorizonReached { at } => {
                write!(f, "simulation horizon reached at t={}", crate::time::fmt(*at))
            }
            SimError::DoubleResume { name } => {
                write!(f, "scheduler resumed already-running process '{name}'")
            }
            SimError::NoRestartPoint { job, detail } => {
                write!(f, "no restart point for job '{job}': {detail}")
            }
            SimError::RetriesExhausted { attempts } => {
                write!(f, "supervised run gave up after {attempts} attempts")
            }
            SimError::CorruptRestartState { job, detail } => {
                write!(f, "corrupt restart state for job '{job}': {detail}")
            }
            SimError::CoordinatorLost { term, epoch } => write!(
                f,
                "checkpoint coordinator lost at term {term} (epoch {epoch}) \
                 with no surviving leader"
            ),
        }
    }
}

impl std::error::Error for SimError {}
