//! Simulated processes and the baton handoff between them and the scheduler.
//!
//! Every simulated process is an OS thread, but the [`Gate`] baton protocol
//! guarantees that at most one simulated thread runs at any instant: the
//! scheduler resumes a process and then blocks until the process either
//! *parks* (yields) or finishes. All simulation state can therefore be
//! mutated without data races, as long as code never parks while holding a
//! lock (an invariant all crates in this workspace follow).

use crate::engine::SimHandle;
use crate::time::Time;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifier of a simulated process, dense from zero in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The dense index of this process (spawn order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Who currently holds the baton for one process thread.
#[derive(Debug)]
pub(crate) enum Baton {
    /// The process thread is parked; the scheduler may resume it.
    Parked,
    /// The process thread is running; the scheduler is waiting.
    Running,
    /// The process finished normally (or was killed, which is a normal end).
    DoneOk,
    /// The process panicked with the given rendered payload.
    DonePanic(String),
}

/// The per-process handoff cell shared by the scheduler and the process
/// thread.
pub(crate) struct Gate {
    state: Mutex<Baton>,
    cv: Condvar,
}

/// Marker payload used to unwind a killed process out of its user closure.
/// Treated as a normal termination by the thread wrapper.
pub(crate) struct KillSignal;

impl Gate {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Gate { state: Mutex::new(Baton::Parked), cv: Condvar::new() })
    }

    /// Scheduler side: hand the baton to the process and block until it is
    /// handed back. Returns the terminal panic message if the process died
    /// panicking during this slice. Stale wakes on finished processes are
    /// no-ops.
    ///
    /// A single lock acquisition covers the whole handoff: the condvar wait
    /// releases the mutex atomically, so the process thread (blocked on the
    /// same condvar) acquires it, observes `Running`, and runs — there is no
    /// unlock/relock gap between publishing `Running` and starting to wait.
    pub(crate) fn resume(&self) -> Result<(), String> {
        let mut st = self.state.lock();
        match *st {
            Baton::Parked => {
                *st = Baton::Running;
                self.cv.notify_all();
            }
            Baton::DoneOk | Baton::DonePanic(_) => return Ok(()),
            Baton::Running => unreachable!("scheduler resumed a running process"),
        }
        while matches!(*st, Baton::Running) {
            self.cv.wait(&mut st);
        }
        match &*st {
            Baton::DonePanic(msg) => Err(msg.clone()),
            _ => Ok(()),
        }
    }

    /// Process side: hand the baton back to the scheduler and block until
    /// resumed again.
    pub(crate) fn park(&self) {
        let mut st = self.state.lock();
        *st = Baton::Parked;
        self.cv.notify_all();
        while matches!(*st, Baton::Parked) {
            self.cv.wait(&mut st);
        }
    }

    /// Process side: block until the scheduler first resumes us. The state
    /// starts out `Parked`, so this is just the waiting half of [`park`].
    pub(crate) fn wait_first_resume(&self) {
        let mut st = self.state.lock();
        while matches!(*st, Baton::Parked) {
            self.cv.wait(&mut st);
        }
    }

    /// Process side: terminal hand-back.
    pub(crate) fn finish(&self, outcome: Result<(), String>) {
        let mut st = self.state.lock();
        *st = match outcome {
            Ok(()) => Baton::DoneOk,
            Err(msg) => Baton::DonePanic(msg),
        };
        self.cv.notify_all();
    }

    pub(crate) fn is_done(&self) -> bool {
        matches!(*self.state.lock(), Baton::DoneOk | Baton::DonePanic(_))
    }
}

/// The context handle passed to every simulated process closure.
///
/// All blocking primitives (`sleep`, `park`, [`crate::Signal::wait`]) are
/// methods here or take a `&Proc`, which statically prevents code running on
/// the scheduler (timer callbacks) from blocking.
pub struct Proc {
    pub(crate) handle: SimHandle,
    pub(crate) id: ProcId,
    pub(crate) name: Arc<str>,
    pub(crate) killed: Arc<AtomicBool>,
    pub(crate) gate: Arc<Gate>,
}

impl Proc {
    /// This process's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// This process's name (as given to `spawn`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.handle.now()
    }

    /// A cloneable handle to the simulation usable from anywhere (including
    /// timer callbacks); it can schedule and wake but never block.
    #[inline]
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Yield without a scheduled wake-up: some other process, signal or
    /// timer must call [`SimHandle::wake`] for this process, or the
    /// simulation will report a deadlock.
    ///
    /// May return spuriously (e.g. a stale wake from an earlier sleep), so
    /// callers must re-check their predicate in a loop.
    pub fn park(&self) {
        self.gate.park();
        self.check_killed();
    }

    /// Advance this process's local activity by `dt` of virtual time.
    ///
    /// Robust to spurious wakes: re-parks until the deadline has truly been
    /// reached.
    pub fn sleep(&self, dt: Time) {
        let deadline = self.now().saturating_add(dt);
        self.handle.schedule_wake(deadline, self.id);
        loop {
            self.gate.park();
            self.check_killed();
            if self.now() >= deadline {
                return;
            }
        }
    }

    /// True once [`SimHandle::kill`] has been called on this process. User
    /// code rarely needs this; the kill unwind happens automatically at the
    /// next yield point.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    fn check_killed(&self) {
        if self.is_killed() {
            install_quiet_kill_hook();
            KILL_UNWINDING.with(|f| f.set(true));
            std::panic::panic_any(KillSignal);
        }
    }
}

thread_local! {
    static KILL_UNWINDING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Kill unwinds are implemented with `panic_any(KillSignal)`; without this
/// hook every kill would print a spurious "thread panicked" line. The hook
/// installs once per program and suppresses output only for threads that are
/// mid-kill, delegating everything else to the previous hook.
fn install_quiet_kill_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if KILL_UNWINDING.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc").field("id", &self.id).field("name", &self.name).finish()
    }
}
