//! Simulated processes and their blocking context handle.
//!
//! Every simulated process runs behind a [`crate::exec::Gate`] — the
//! scheduler↔process handoff that guarantees at most one simulated
//! process runs at any instant: the scheduler resumes a process and then
//! blocks until the process either *parks* (yields) or finishes. Whether
//! the gate is backed by a dedicated OS thread or by a pooled coroutine
//! (see [`crate::exec`] / [`crate::pool`]) is invisible here. All
//! simulation state can therefore be mutated without data races, as long
//! as code never parks while holding a lock (an invariant all crates in
//! this workspace follow).

use crate::engine::SimHandle;
use crate::exec::Gate;
use crate::time::Time;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifier of a simulated process, dense from zero in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The dense index of this process (spawn order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Marker payload used to unwind a killed process out of its user closure.
/// Treated as a normal termination by both executor backends.
pub(crate) struct KillSignal;

/// The context handle passed to every simulated process closure.
///
/// All blocking primitives (`sleep`, `park`, [`crate::Signal::wait`]) are
/// methods here or take a `&Proc`, which statically prevents code running on
/// the scheduler (timer callbacks) from blocking.
pub struct Proc {
    pub(crate) handle: SimHandle,
    pub(crate) id: ProcId,
    pub(crate) name: Arc<str>,
    pub(crate) killed: Arc<AtomicBool>,
    pub(crate) gate: Arc<dyn Gate>,
}

impl Proc {
    /// This process's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// This process's name (as given to `spawn`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.handle.now()
    }

    /// A cloneable handle to the simulation usable from anywhere (including
    /// timer callbacks); it can schedule and wake but never block.
    #[inline]
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Yield without a scheduled wake-up: some other process, signal or
    /// timer must call [`SimHandle::wake`] for this process, or the
    /// simulation will report a deadlock.
    ///
    /// May return spuriously (e.g. a stale wake from an earlier sleep), so
    /// callers must re-check their predicate in a loop.
    pub fn park(&self) {
        self.gate.park();
        self.check_killed();
    }

    /// Advance this process's local activity by `dt` of virtual time.
    ///
    /// Robust to spurious wakes: re-parks until the deadline has truly been
    /// reached.
    pub fn sleep(&self, dt: Time) {
        let deadline = self.now().saturating_add(dt);
        self.handle.schedule_wake(deadline, self.id);
        loop {
            self.gate.park();
            self.check_killed();
            if self.now() >= deadline {
                return;
            }
        }
    }

    /// True once [`SimHandle::kill`] has been called on this process. User
    /// code rarely needs this; the kill unwind happens automatically at the
    /// next yield point.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    fn check_killed(&self) {
        if self.is_killed() {
            install_quiet_kill_hook();
            KILL_UNWINDING.with(|f| f.set(true));
            std::panic::panic_any(KillSignal);
        }
    }
}

thread_local! {
    static KILL_UNWINDING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Reset this OS thread's kill-unwind flag. Both executor backends call
/// this when a task's unwind has been caught: pool workers are reused for
/// other tasks, and a stale flag would silently swallow the next real
/// panic's output.
pub(crate) fn clear_kill_unwind_flag() {
    KILL_UNWINDING.with(|f| f.set(false));
}

/// Whether this OS thread currently carries the kill-unwind flag.
/// Test-only introspection for the executor equivalence suite.
#[doc(hidden)]
pub fn kill_unwind_flag_set() -> bool {
    KILL_UNWINDING.with(|f| f.get())
}

/// Kill unwinds are implemented with `panic_any(KillSignal)`; without this
/// hook every kill would print a spurious "thread panicked" line. The hook
/// installs once per program and suppresses output only for threads that are
/// mid-kill, delegating everything else to the previous hook.
fn install_quiet_kill_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if KILL_UNWINDING.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc").field("id", &self.id).field("name", &self.name).finish()
    }
}
