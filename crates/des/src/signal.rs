//! Simulation condition variables.

use crate::engine::SimHandle;
use crate::process::{Proc, ProcId};
use parking_lot::Mutex;
use std::sync::Arc;

/// A condition-variable-like wait point for simulated processes.
///
/// `Signal::wait` registers the calling process and parks it;
/// `Signal::notify_all` wakes every registered waiter at the current virtual
/// time. Like a real condvar, **waits can return spuriously** (a stale wake
/// from an earlier sleep, or a notify racing with re-registration), so
/// callers must always wrap waits in a predicate loop:
///
/// ```ignore
/// while !predicate() {
///     signal.wait(p);
/// }
/// ```
#[derive(Clone)]
pub struct Signal {
    name: Arc<str>,
    waiters: Arc<Mutex<Vec<ProcId>>>,
}

impl Signal {
    pub(crate) fn new(name: String) -> Self {
        Signal { name: name.into(), waiters: Arc::new(Mutex::new(Vec::new())) }
    }

    /// The name given at creation (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Park the calling process until some notifier wakes it. May return
    /// spuriously; re-check your predicate.
    pub fn wait(&self, p: &Proc) {
        self.waiters.lock().push(p.id());
        p.park();
        // Drop our registration if it is still there (spurious wake): a
        // later notify must not wake us for a wait we already abandoned.
        self.waiters.lock().retain(|&w| w != p.id());
    }

    /// Wake all currently registered waiters at the present virtual time.
    /// Callable from processes and from scheduler callbacks alike.
    pub fn notify_all(&self, ctx: impl AsSimHandle) {
        let h = ctx.as_sim_handle();
        let drained: Vec<ProcId> = std::mem::take(&mut *self.waiters.lock());
        for pid in drained {
            h.wake(pid);
        }
    }

    /// Number of processes currently waiting (diagnostics/tests).
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().len()
    }
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("name", &self.name)
            .field("waiters", &self.waiters.lock().len())
            .finish()
    }
}

/// Anything that can produce a [`SimHandle`]: a `&Proc` inside a simulated
/// process or a `&SimHandle` inside a scheduler callback.
pub trait AsSimHandle {
    /// Borrow the underlying simulation handle.
    fn as_sim_handle(&self) -> &SimHandle;
}

impl AsSimHandle for &Proc {
    fn as_sim_handle(&self) -> &SimHandle {
        self.handle()
    }
}

impl AsSimHandle for &SimHandle {
    fn as_sim_handle(&self) -> &SimHandle {
        self
    }
}
