//! Tests for the scheduler hot path: slab-backed timers with
//! generation-checked cancellation, same-timestamp batch dispatch, the
//! gate cache under mid-run spawns, and the event counters.

use gbcr_des::{time, total_events_processed, Sim};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly the non-cancelled timers fire, each exactly once, regardless
    /// of how arms and cancels interleave. Cancelled slots are recycled for
    /// later arms, so this also exercises slot reuse under the generation
    /// check: a stale queued event must never fire a newer timer that
    /// happens to occupy the same slot.
    #[test]
    fn slab_timers_fire_exactly_the_uncancelled_set(
        plan in prop::collection::vec((1u64..100, any::<bool>()), 1..40),
    ) {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let fired: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (i, (delay_us, _)) in plan.iter().enumerate() {
            let fired = fired.clone();
            handles.push(h.call_at(time::us(*delay_us), move |_| {
                fired.lock().push(i);
            }));
        }
        // Cancel the chosen subset *before* running; their queued events
        // are still in the heap and must be skipped.
        for (handle, (_, cancel)) in handles.iter().zip(&plan) {
            if *cancel {
                handle.cancel();
                prop_assert!(handle.is_cancelled());
            }
        }
        // Arm one replacement timer per cancelled slot: these reuse freed
        // slots while stale events for the same slots are queued.
        let reused: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let n_cancelled = plan.iter().filter(|(_, c)| *c).count();
        for _ in 0..n_cancelled {
            let reused = reused.clone();
            h.call_at(time::us(200), move |_| {
                *reused.lock() += 1;
            });
        }
        sim.run().unwrap();
        let mut got = fired.lock().clone();
        got.sort_unstable();
        let want: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, (_, cancel))| !cancel)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want, "wrong set of timers fired");
        prop_assert_eq!(*reused.lock(), n_cancelled, "a reused slot misfired");
        // After the run every surviving handle has fired, so all of them —
        // cancelled or fired — report "can no longer fire".
        for handle in &handles {
            prop_assert!(handle.is_cancelled());
        }
    }
}

/// A callback that cancels a later timer wins: the later timer never
/// fires, and a fresh timer armed from inside the callback (reusing the
/// just-freed slot) does.
#[test]
fn cancel_from_inside_a_callback_suppresses_and_slot_is_reusable() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    let victim = {
        let log = log.clone();
        h.call_at(time::ms(20), move |_| log.lock().push("victim"))
    };
    {
        let log = log.clone();
        h.call_at(time::ms(10), move |h| {
            log.lock().push("killer");
            victim.cancel();
            let log = log.clone();
            // Reuses the slot just freed by the cancel; the victim's stale
            // event (still queued for t=20ms) must not fire this.
            h.call_at(time::ms(30), move |_| log.lock().push("replacement"));
        });
    }
    sim.run().unwrap();
    assert_eq!(*log.lock(), vec!["killer", "replacement"]);
}

/// Cancelling an already-fired timer is a no-op, and double-cancel is
/// idempotent even with a new tenant in the slot.
#[test]
fn cancel_is_idempotent_and_safe_after_fire() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    let count = Arc::new(Mutex::new(0u32));
    let c = count.clone();
    let t1 = h.call_at(time::ms(1), move |_| *c.lock() += 1);
    sim.run().unwrap();
    assert_eq!(*count.lock(), 1);
    assert!(t1.is_cancelled(), "fired timer reports it can no longer fire");
    // t1's slot is free now; a new timer may take it.
    let c = count.clone();
    let t2 = h.call_at(time::ms(2), move |_| *c.lock() += 10);
    t1.cancel();
    t1.cancel();
    sim.run().unwrap();
    assert_eq!(*count.lock(), 11, "stale cancel must not suppress the new tenant");
    assert!(t2.is_cancelled());
}

/// Same-timestamp events dispatch in push order (sequence order), whether
/// they were pushed before the run or from inside a same-time callback.
#[test]
fn same_timestamp_batch_preserves_push_order() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..5u32 {
        let log = log.clone();
        h.call_at(time::ms(5), move |_| log.lock().push(i));
    }
    {
        let log = log.clone();
        h.call_at(time::ms(5), move |h| {
            log.lock().push(5);
            // Pushed mid-batch at the same timestamp: must run after every
            // event already queued for t=5ms, in push order.
            for i in 6..9u32 {
                let log = log.clone();
                h.call_at(time::ms(5), move |_| log.lock().push(i));
            }
        });
    }
    sim.run().unwrap();
    assert_eq!(*log.lock(), (0..9).collect::<Vec<u32>>());
}

/// Processes spawned mid-run (by other processes and by callbacks) are
/// woken through the gate cache's refresh path and all complete.
#[test]
fn mid_run_spawns_extend_the_gate_cache() {
    let mut sim = Sim::new(0);
    let done: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let d = done.clone();
    sim.spawn("root", move |p| {
        p.sleep(time::ms(1));
        for i in 0..8u64 {
            let d = d.clone();
            p.handle().spawn(format!("child{i}"), move |p| {
                p.sleep(time::us(100 * (i + 1)));
                let d2 = d.clone();
                p.handle().spawn(format!("grandchild{i}"), move |p| {
                    p.sleep(time::us(10));
                    d2.lock().push(p.name().to_owned());
                });
                d.lock().push(p.name().to_owned());
            });
        }
        d.lock().push("root".to_owned());
    });
    sim.run().unwrap();
    let mut got = done.lock().clone();
    got.sort();
    assert_eq!(got.len(), 17);
    assert!(got.contains(&"grandchild7".to_owned()));
}

/// The per-sim and global event counters advance together and the wake
/// fast path counts its events.
#[test]
fn event_counters_advance() {
    let before_global = total_events_processed();
    let mut sim = Sim::new(0);
    sim.spawn("sleeper", |p| {
        for _ in 0..100 {
            p.sleep(time::us(10));
        }
    });
    assert_eq!(sim.events_processed(), 0);
    sim.run().unwrap();
    let per_sim = sim.events_processed();
    // 1 initial wake + 100 sleep wakes.
    assert!(per_sim >= 101, "expected at least 101 events, got {per_sim}");
    assert!(
        total_events_processed() - before_global >= per_sim,
        "global counter must include this sim's events"
    );
}

/// The single-lock baton handoff stays correct under a long strict
/// alternation: two processes interleave thousands of park/resume cycles
/// with no lost or misordered handoffs.
#[test]
fn handoff_survives_long_ping_pong() {
    let mut sim = Sim::new(1);
    let log: Arc<Mutex<Vec<(char, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    const ROUNDS: u32 = 5_000;
    {
        let log = log.clone();
        sim.spawn("a", move |p| {
            // Logs at t = 0, 2, 4, ... — every iteration is a full
            // park/resume handoff through the scheduler.
            for i in 0..ROUNDS {
                log.lock().push(('a', i));
                p.sleep(time::us(2));
            }
        });
    }
    {
        let log = log.clone();
        sim.spawn("b", move |p| {
            // Offset by 1 µs: logs at t = 1, 3, 5, ...
            p.sleep(time::us(1));
            for i in 0..ROUNDS {
                log.lock().push(('b', i));
                p.sleep(time::us(2));
            }
        });
    }
    sim.run().unwrap();
    let log = log.lock();
    assert_eq!(log.len(), 2 * ROUNDS as usize);
    for (i, pair) in log.chunks(2).enumerate() {
        assert_eq!(pair, [('a', i as u32), ('b', i as u32)], "round {i} out of order");
    }
}

// ---------------------------------------------------------------------
// Cancellable wakes and demand-driven progress (DemandWake)
// ---------------------------------------------------------------------

use gbcr_des::{total_wakes_elided, DemandWake};

/// A cancelled `schedule_wake_cancellable` never resumes its process; an
/// uncancelled one does, and cancelling after the fire is a no-op.
#[test]
fn cancellable_wake_cancel_suppresses_resume() {
    let mut sim = Sim::new(0);
    sim.spawn("sleeper", |p| {
        let early = p.handle().schedule_wake_cancellable(time::ms(10), p.id());
        let late = p.handle().schedule_wake_cancellable(time::ms(20), p.id());
        early.cancel();
        p.park();
        assert_eq!(p.now(), time::ms(20), "the cancelled 10ms wake must not resume");
        late.cancel(); // already fired: no-op
    });
    sim.run().unwrap();
}

/// Deliveries before a slice boundary coalesce into one wake at that
/// boundary, and every earlier boundary the park crossed without traffic
/// is counted as elided — on the per-sim and the global counter.
#[test]
fn demand_wake_rounds_to_boundary_coalesces_and_counts_elided() {
    let global0 = total_wakes_elided();
    let mut sim = Sim::new(0);
    let h = sim.handle();
    let dw = DemandWake::new(sim.handle());
    let dw_rank = dw.clone();
    sim.spawn("rank", move |p| {
        // Slice lattice 0, 1ms, 2ms, ... with the deadline far away.
        dw_rank.arm(p.id(), 0, time::ms(1), time::ms(100));
        assert!(dw_rank.is_armed());
        p.park();
        assert_eq!(p.now(), time::ms(4), "woken at the boundary after the deliveries");
        dw_rank.disarm();
        assert!(!dw_rank.is_armed());
    });
    // Two "deliveries" inside the (3ms, 4ms) slice: one wake, at 4ms.
    let d = dw.clone();
    h.call_at(time::us(3200), move |_| d.poke());
    let d = dw.clone();
    h.call_at(time::us(3700), move |_| d.poke());
    sim.run().unwrap();
    // Boundaries 1,2,3,4 ms were crossed; the 4ms one actually fired.
    assert_eq!(sim.wakes_elided(), 3);
    assert_eq!(total_wakes_elided() - global0, 3);
}

/// A poke whose rounded-up boundary lands at or past the limit schedules
/// nothing (the caller's deadline wake covers it); the boundary the park
/// crossed is still credited as elided.
#[test]
fn demand_wake_defers_to_the_deadline_at_the_limit() {
    let mut sim = Sim::new(0);
    let h = sim.handle();
    let dw = DemandWake::new(sim.handle());
    let dw_rank = dw.clone();
    sim.spawn("rank", move |p| {
        let deadline = time::ms(2);
        dw_rank.arm(p.id(), 0, time::ms(1), deadline);
        p.handle().schedule_wake_cancellable(deadline, p.id());
        p.park();
        assert_eq!(p.now(), time::ms(2), "only the deadline wake fires");
        dw_rank.disarm();
    });
    let d = dw.clone();
    h.call_at(time::us(1500), move |_| d.poke());
    sim.run().unwrap();
    // The 1ms boundary was crossed with no wake scheduled for it.
    assert_eq!(sim.wakes_elided(), 1);
}

/// Park/resume handoff microbench: a rank sitting out a 1s window on a
/// 10ms slice lattice. The polled chain pays one full park/resume handoff
/// per boundary; the demand-driven path parks once and wakes once (a
/// single mid-window delivery), eliding everything else.
#[test]
fn demand_wakes_cut_events_vs_polled_park_resume_chain() {
    let window = time::secs(1);
    let interval = time::ms(10);

    let mut polled = Sim::new(0);
    polled.spawn("rank", move |p| loop {
        let now = p.now();
        if now >= window {
            break;
        }
        p.handle().schedule_wake_cancellable((now + interval).min(window), p.id());
        p.park();
    });
    polled.run().unwrap();
    let polled_events = polled.events_processed();
    assert_eq!(polled.wakes_elided(), 0, "the polled chain elides nothing");

    let mut demand = Sim::new(0);
    let dw = DemandWake::new(demand.handle());
    let dw_rank = dw.clone();
    demand.spawn("rank", move |p| {
        dw_rank.arm(p.id(), 0, interval, window);
        let deadline = p.handle().schedule_wake_cancellable(window, p.id());
        p.park();
        assert_eq!(p.now(), time::ms(500));
        dw_rank.disarm();
        deadline.cancel();
    });
    let d = dw.clone();
    demand.handle().call_at(time::ms(495), move |_| d.poke());
    demand.run().unwrap();
    let demand_events = demand.events_processed();

    assert!(
        demand_events * 5 < polled_events,
        "demand path must be far cheaper: {demand_events} vs {polled_events} events"
    );
    // Segment (0, 500ms] crosses 50 boundaries; one (500ms) fired.
    assert_eq!(demand.wakes_elided(), 49);
}
