//! Integration tests for the discrete-event engine: ordering, determinism,
//! blocking primitives, timers, kill/failure injection, error reporting.

use gbcr_des::{time, Sim, SimError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn empty_sim_finishes_at_time_zero() {
    let mut sim = Sim::new(0);
    assert_eq!(sim.run().unwrap(), 0);
}

#[test]
fn single_process_advances_clock() {
    let mut sim = Sim::new(0);
    sim.spawn("p", |p| {
        assert_eq!(p.now(), 0);
        p.sleep(time::ms(5));
        assert_eq!(p.now(), time::ms(5));
        p.sleep(time::us(1));
        assert_eq!(p.now(), time::ms(5) + time::us(1));
    });
    assert_eq!(sim.run().unwrap(), time::ms(5) + time::us(1));
}

#[test]
fn events_fire_in_time_order_with_fifo_ties() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Sim::new(0);
    for i in 0..4 {
        let log = log.clone();
        // All four sleep to the same instant; ties must resolve in spawn
        // (sequence) order.
        sim.spawn(format!("p{i}"), move |p| {
            p.sleep(time::ms(10));
            log.lock().push(i);
        });
    }
    sim.run().unwrap();
    assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
}

#[test]
fn interleaving_is_deterministic_across_runs() {
    fn run_once(seed: u64) -> Vec<(u64, usize)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(seed);
        for i in 0..8 {
            let log = log.clone();
            sim.spawn(format!("p{i}"), move |p| {
                for step in 0..20 {
                    let dt = p.handle().with_rng(|r| {
                        use rand::Rng;
                        r.gen_range(1..1000u64)
                    });
                    p.sleep(time::us(dt));
                    log.lock().push((p.now(), i * 100 + step));
                }
            });
        }
        sim.run().unwrap();
        let v = log.lock().clone();
        v
    }
    assert_eq!(run_once(7), run_once(7));
    assert_ne!(run_once(7), run_once(8), "different seeds should differ");
}

#[test]
fn signal_wakes_all_waiters_at_notify_time() {
    let mut sim = Sim::new(0);
    let sig = sim.signal("go");
    let woken = Arc::new(AtomicU64::new(0));
    for i in 0..3 {
        let sig = sig.clone();
        let woken = woken.clone();
        sim.spawn(format!("waiter{i}"), move |p| {
            let deadline_passed = || p.now() >= time::ms(50);
            while !deadline_passed() {
                sig.wait(p);
            }
            woken.fetch_add(1, Ordering::Relaxed);
        });
    }
    let sig2 = sig.clone();
    sim.spawn("notifier", move |p| {
        p.sleep(time::ms(50));
        sig2.notify_all(p);
    });
    assert_eq!(sim.run().unwrap(), time::ms(50));
    assert_eq!(woken.load(Ordering::Relaxed), 3);
}

#[test]
fn signal_wait_survives_spurious_wakes() {
    let mut sim = Sim::new(0);
    let sig = sim.signal("cond");
    let flag = Arc::new(AtomicU64::new(0));
    let (f1, s1) = (flag.clone(), sig.clone());
    let waiter = sim.spawn("waiter", move |p| {
        while f1.load(Ordering::Relaxed) == 0 {
            s1.wait(p);
        }
        assert_eq!(p.now(), time::ms(20));
    });
    let (f2, s2) = (flag, sig);
    sim.spawn("poker", move |p| {
        p.sleep(time::ms(10));
        // Spurious wake: waiter's predicate is still false.
        p.handle().wake(waiter);
        p.sleep(time::ms(10));
        f2.store(1, Ordering::Relaxed);
        s2.notify_all(p);
    });
    sim.run().unwrap();
}

#[test]
fn deadlock_is_reported_with_names() {
    let mut sim = Sim::new(0);
    let sig = sim.signal("never");
    sim.spawn("stuck-one", move |p| {
        loop {
            sig.wait(p);
        }
    });
    match sim.run() {
        Err(SimError::Deadlock { at, blocked }) => {
            assert_eq!(at, 0);
            assert_eq!(blocked, vec!["stuck-one".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn process_panic_is_propagated() {
    let mut sim = Sim::new(0);
    sim.spawn("bad", |p| {
        p.sleep(time::ms(1));
        panic!("boom at {}", p.now());
    });
    match sim.run() {
        Err(SimError::ProcessPanicked { name, message }) => {
            assert_eq!(name, "bad");
            assert!(message.contains("boom"), "got: {message}");
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn timers_fire_and_cancel() {
    let mut sim = Sim::new(0);
    let fired = Arc::new(AtomicU64::new(0));
    let h = sim.handle();
    let f1 = fired.clone();
    h.call_at(time::ms(3), move |hh| {
        assert_eq!(hh.now(), time::ms(3));
        f1.fetch_add(1, Ordering::Relaxed);
    });
    let f2 = fired.clone();
    let cancelable = h.call_at(time::ms(5), move |_| {
        f2.fetch_add(100, Ordering::Relaxed);
    });
    cancelable.cancel();
    assert!(cancelable.is_cancelled());
    sim.run().unwrap();
    assert_eq!(fired.load(Ordering::Relaxed), 1);
}

#[test]
fn nested_spawn_and_timer_chains() {
    let mut sim = Sim::new(0);
    let total = Arc::new(AtomicU64::new(0));
    let t = total.clone();
    sim.spawn("parent", move |p| {
        p.sleep(time::ms(1));
        let t2 = t.clone();
        p.handle().spawn("child", move |c| {
            c.sleep(time::ms(2));
            t2.fetch_add(c.now(), Ordering::Relaxed);
        });
        p.sleep(time::ms(10));
        t.fetch_add(p.now(), Ordering::Relaxed);
    });
    sim.run().unwrap();
    // child finishes at 3ms, parent at 11ms
    assert_eq!(total.load(Ordering::Relaxed), time::ms(3) + time::ms(11));
}

#[test]
fn kill_unwinds_at_next_yield() {
    let mut sim = Sim::new(0);
    let progressed = Arc::new(AtomicU64::new(0));
    let pr = progressed.clone();
    let victim = sim.spawn("victim", move |p| {
        for _ in 0..100 {
            p.sleep(time::ms(10));
            pr.fetch_add(1, Ordering::Relaxed);
        }
    });
    let h = sim.handle();
    sim.spawn("killer", move |p| {
        p.sleep(time::ms(35));
        h.kill(victim);
    });
    let end = sim.run().unwrap();
    // victim completed sleeps at 10,20,30 then died at its 40ms wake (or at
    // the kill wake at 35ms).
    assert_eq!(progressed.load(Ordering::Relaxed), 3);
    assert!(end <= time::ms(40));
    assert!(sim.handle().is_done(victim));
}

#[test]
fn kill_before_first_run_never_executes_body() {
    let mut sim = Sim::new(0);
    let ran = Arc::new(AtomicU64::new(0));
    let r = ran.clone();
    let h = sim.handle();
    // Spawn a process and kill it before the scheduler ever runs it: the
    // kill event precedes... actually the wake is queued first, so kill it
    // from another process scheduled earlier.
    let target = sim.spawn("target", move |_p| {
        r.fetch_add(1, Ordering::Relaxed);
    });
    h.kill(target);
    // The initial wake is already queued before the kill, so the body would
    // run unless the spawn wrapper checks the kill flag first.
    sim.run().unwrap();
    assert_eq!(ran.load(Ordering::Relaxed), 0);
}

#[test]
fn run_until_stops_at_horizon() {
    let mut sim = Sim::new(0);
    sim.spawn("long", |p| p.sleep(time::secs(100)));
    match sim.run_until(time::secs(1)) {
        Err(SimError::HorizonReached { at }) => assert_eq!(at, time::secs(1)),
        other => panic!("expected horizon, got {other:?}"),
    }
    // Dropping the sim must cleanly unwind the still-parked process.
}

#[test]
fn tracer_records_when_enabled() {
    use gbcr_des::{Event, TraceLevel, Track};
    let mut sim = Sim::new(0);
    let h = sim.handle();
    sim.spawn("p", move |p| {
        let h = p.handle();
        h.trace_instant(|| Event::Mark { category: "test", message: "before enable".into() });
        let t0 = p.now();
        p.sleep(time::ms(1));
        h.tracer().set_level(TraceLevel::Phases);
        h.trace_instant(|| Event::Mark { category: "test", message: "after enable".into() });
        h.trace_span(Track::Rank(0), "work", t0, Vec::new);
    });
    sim.run().unwrap();
    let data = h.tracer().snapshot();
    assert_eq!(data.instants.len(), 1, "nothing recorded before enabling");
    assert_eq!(data.instants[0].event.message(), "after enable");
    assert_eq!(data.instants[0].time, time::ms(1));
    assert_eq!(data.instants_in("test").len(), 1);
    assert_eq!(data.instants_in("other").len(), 0);
    // The span covers the sleep and ended when it was recorded.
    assert_eq!(data.spans.len(), 1);
    assert_eq!(data.spans[0].name, "work");
    assert_eq!(data.spans[0].t_start, 0);
    assert_eq!(data.spans[0].t_end, time::ms(1));
    assert_eq!(data.spans[0].track, Track::Rank(0));
}

#[test]
fn full_level_records_scheduler_dispatch() {
    use gbcr_des::TraceLevel;
    let mut sim = Sim::new(0);
    sim.handle().tracer().set_level(TraceLevel::Full);
    sim.spawn("p", |p| {
        p.sleep(time::ms(1)); // plain scheduled wake
    });
    sim.run().unwrap();
    let data = sim.handle().tracer().take();
    assert!(
        !data.instants_in("sched.wake").is_empty(),
        "Full level records scheduler wakes: {data:?}"
    );
}

#[test]
fn many_processes_scale() {
    // 256 processes ping-ponging sleeps: exercises the baton protocol and
    // queue under load.
    let mut sim = Sim::new(0);
    let counter = Arc::new(AtomicU64::new(0));
    for i in 0..256 {
        let c = counter.clone();
        sim.spawn(format!("p{i}"), move |p| {
            for _ in 0..10 {
                p.sleep(time::us(i + 1));
                c.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    sim.run().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 2560);
}

#[test]
fn wake_is_not_lost_when_scheduled_before_park() {
    // A wake scheduled for a process that has not yet parked (it is running)
    // must still be delivered: the scheduler only dispatches when no process
    // runs, so the wake stays queued until the process parks.
    let mut sim = Sim::new(0);
    let sig = sim.signal("s");
    let done = Arc::new(AtomicU64::new(0));
    let s1 = sig.clone();
    let d = done.clone();
    sim.spawn("a", move |p| {
        // Busy "compute" then wait; notifier notifies while we compute.
        let flag = Arc::new(AtomicU64::new(0));
        p.sleep(time::ms(5));
        while p.now() < time::ms(20) {
            s1.wait(p);
        }
        let _ = flag;
        d.store(p.now(), Ordering::Relaxed);
    });
    let s2 = sig;
    sim.spawn("b", move |p| {
        p.sleep(time::ms(20));
        s2.notify_all(p);
    });
    sim.run().unwrap();
    assert_eq!(done.load(Ordering::Relaxed), time::ms(20));
}
