//! Unit-level scheduler equivalence: the conservative-window parallel
//! scheduler against the serial oracle on raw `Sim` workloads, with
//! arbitrary (not just contiguous) shard partitions.
//!
//! Tables are compared as multisets per timestamp (sorted): the parallel
//! merge is deterministic in `(time, lane, lane_seq)` order, which can
//! legitimately interleave *same-timestamp* events from different lanes
//! differently than the serial `(time, seq)` order. Event *times* and the
//! set of events at each time must be identical.

use gbcr_des::{time, DesConfig, ExecKind, ProcId, SchedKind, Sim, Time};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type Table = Vec<(u64, String)>;

/// Token ring over `call_at_keyed` deliveries: proc `i` sends one token a
/// round to proc `i+1` with `lat` of delivery latency (the fabric-lookahead
/// pattern), then parks until its own token of the round arrives. This is
/// the canonical lookahead-sound workload: every cross-shard effect is at
/// least `lat` in the future.
fn ring_run(
    partition: Option<(usize, Vec<u32>)>,
    lat: Time,
    nprocs: usize,
    rounds: u64,
) -> Option<(Table, u64, gbcr_des::SchedTelemetry)> {
    let log: Arc<Mutex<Table>> = Arc::new(Mutex::new(Vec::new()));
    let counts: Arc<Vec<AtomicU64>> = Arc::new((0..nprocs).map(|_| AtomicU64::new(0)).collect());
    let pids: Arc<Mutex<Vec<ProcId>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim = Sim::with_config(13, DesConfig::pooled());
    for i in 0..nprocs {
        let (log, counts, pids2) = (log.clone(), counts.clone(), pids.clone());
        let pid = sim.spawn(format!("ring{i}"), move |p| {
            let pids = pids2;
            let next = (i + 1) % nprocs;
            for round in 0..rounds {
                let pid_next = pids.lock()[next];
                let counts2 = counts.clone();
                p.handle().call_at_keyed(next as u64, p.now() + lat, move |h| {
                    counts2[next].fetch_add(1, Ordering::SeqCst);
                    h.schedule_wake(h.now(), pid_next);
                });
                while counts[i].load(Ordering::SeqCst) < round + 1 {
                    p.park();
                }
                log.lock().push((p.now(), format!("{i}:r{round}")));
            }
        });
        pids.lock().push(pid);
    }

    if let Some((shards, proc_shard)) = partition {
        let key_shard: HashMap<u64, u32> =
            proc_shard.iter().enumerate().map(|(i, &s)| (i as u64, s)).collect();
        if !sim.enable_parallel(shards, lat, proc_shard, key_shard) {
            return None; // platform without the pooled executor
        }
        assert_eq!(sim.sched_kind(), SchedKind::Parallel);
    }
    let end = sim.run().expect("ring completes");
    let telemetry = sim.sched_telemetry();
    sim.shutdown();
    let mut table = log.lock().clone();
    table.sort();
    Some((table, end, telemetry))
}

#[test]
fn ring_tables_identical_across_arbitrary_partitions() {
    let (nprocs, rounds, lat) = (6, 5, time::us(7));
    let Some((serial, end_s, _)) = ring_run(None, lat, nprocs, rounds) else {
        return;
    };
    assert_eq!(serial.len(), nprocs * rounds as usize);
    for part in [
        vec![0, 0, 0, 1, 1, 1], // contiguous blocks
        vec![0, 1, 0, 1, 0, 1], // alternating
        vec![2, 0, 1, 1, 0, 2], // scrambled, 3 shards
    ] {
        let shards = (*part.iter().max().unwrap() + 1).max(2) as usize;
        let Some((par, end_p, t)) = ring_run(Some((shards, part.clone())), lat, nprocs, rounds)
        else {
            return;
        };
        assert_eq!(end_s, end_p, "end time diverged for {part:?}");
        assert_eq!(serial, par, "tables diverged for {part:?}");
        assert!(t.windows > 0, "parallel run executed no windows");
        assert_eq!(t.fenced_windows, 0, "nonzero lookahead needed no fenced windows");
    }
}

/// Zero lookahead must degrade to lockstep single-timestamp windows —
/// never deadlock — and still match the oracle.
#[test]
fn zero_lookahead_is_lockstep_not_deadlock() {
    let (nprocs, rounds) = (4, 4);
    let Some((serial, end_s, _)) = ring_run(None, 0, nprocs, rounds) else {
        return;
    };
    let Some((par, end_p, t)) = ring_run(Some((2, vec![0, 1, 0, 1])), 0, nprocs, rounds) else {
        return;
    };
    assert_eq!((serial, end_s), (par, end_p));
    assert!(t.windows > 0);
    assert_eq!(t.windows, t.fenced_windows, "zero lookahead must fence every window");
}

/// A raised fence makes *any* workload safe under any partition — every
/// window degrades to the globally-merged `t == T_min` batch — including
/// signal wakes and same-timestamp cross-shard interactions that the
/// lookahead analysis cannot cover.
#[test]
fn fenced_run_handles_signal_workload_on_any_partition() {
    fn run(partition: Option<(usize, Vec<u32>)>) -> Option<(Table, u64)> {
        let log: Arc<Mutex<Table>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::with_config(7, DesConfig::pooled());
        let sig = sim.signal("go");
        for i in 0..3u64 {
            let log = log.clone();
            sim.spawn(format!("ticker{i}"), move |p| {
                for _ in 0..4 {
                    p.sleep(time::ms(3 + i));
                    log.lock().push((p.now(), format!("ticker{i}:tick")));
                }
            });
        }
        for i in 0..2u64 {
            let (sig, log) = (sig.clone(), log.clone());
            sim.spawn(format!("waiter{i}"), move |p| {
                sig.wait(p);
                log.lock().push((p.now(), format!("waiter{i}:woken")));
            });
        }
        let (sig2, log2) = (sig.clone(), log.clone());
        sim.spawn("notifier", move |p| {
            p.sleep(time::ms(7));
            log2.lock().push((p.now(), "notifier:notify".into()));
            sig2.notify_all(p);
        });
        let log3 = log.clone();
        sim.spawn("spawner", move |p| {
            p.sleep(time::ms(2));
            let log4 = log3.clone();
            p.handle().spawn("child", move |c| {
                c.sleep(time::ms(1));
                log4.lock().push((c.now(), "child:done".into()));
            });
            log3.lock().push((p.now(), "spawner:spawned".into()));
        });

        if let Some((shards, proc_shard)) = partition {
            if !sim.enable_parallel(shards, time::us(10), proc_shard, HashMap::new()) {
                return None;
            }
            // Signals wake cross-shard at the same timestamp: only safe in
            // lockstep. Raise the fence for the whole run.
            sim.handle().fence_raise();
        }
        let end = sim.run().expect("signal workload completes");
        sim.shutdown();
        let mut table = log.lock().clone();
        table.sort();
        Some((table, end))
    }

    let Some(serial) = run(None) else { return };
    for part in [vec![0, 1, 0, 1, 0, 1, 0], vec![1, 1, 0, 2, 0, 2, 1]] {
        let shards = (*part.iter().max().unwrap() + 1).max(2) as usize;
        let Some(par) = run(Some((shards, part.clone()))) else { return };
        assert_eq!(serial, par, "fenced tables diverged for {part:?}");
    }
}

/// `enable_parallel` must refuse configurations it cannot honor rather
/// than run them unsoundly.
#[test]
fn enable_parallel_refuses_unsupported_configs() {
    // Fewer than 2 shards.
    let mut sim = Sim::with_config(1, DesConfig::pooled());
    sim.spawn("a", |p| p.sleep(time::ms(1)));
    assert!(!sim.enable_parallel(1, time::us(1), vec![0], HashMap::new()));
    assert_eq!(sim.sched_kind(), SchedKind::Serial);

    // Threaded executor.
    let mut sim = Sim::with_config(1, DesConfig::threaded());
    sim.spawn("a", |p| p.sleep(time::ms(1)));
    sim.spawn("b", |p| p.sleep(time::ms(1)));
    assert!(!sim.enable_parallel(2, time::us(1), vec![0, 1], HashMap::new()));
    assert_eq!(sim.sched_kind(), SchedKind::Serial);
    assert_eq!(sim.sched_telemetry(), gbcr_des::SchedTelemetry::default());
}

#[test]
fn env_and_default_resolution() {
    // Process-wide defaults round-trip; 0 clears the shard override.
    let before = gbcr_des::sched_default();
    gbcr_des::set_sched_default(SchedKind::Parallel);
    assert_eq!(gbcr_des::sched_default(), SchedKind::Parallel);
    gbcr_des::set_sched_default(before);
    gbcr_des::set_shard_count_default(3);
    assert_eq!(gbcr_des::shard_count_default(), 3);
    gbcr_des::set_shard_count_default(0);
    assert!(gbcr_des::shard_count_default() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shard partitions and lookahead values: the ring workload's
    /// table must match the serial oracle byte-for-byte (after the
    /// per-timestamp sort) for any assignment of procs to shards.
    #[test]
    fn random_partition_and_lookahead_match_oracle(
        part in prop::collection::vec(0u32..4, 3..8),
        lat_us in 0u64..25,
        rounds in 1u64..5,
    ) {
        let nprocs = part.len();
        let lat = time::us(lat_us);
        let Some((serial, end_s, _)) = ring_run(None, lat, nprocs, rounds) else {
            return Ok(());
        };
        let shards = (part.iter().copied().max().unwrap() + 1).max(2) as usize;
        let Some((par, end_p, t)) = ring_run(Some((shards, part.clone())), lat, nprocs, rounds)
        else {
            return Ok(());
        };
        prop_assert_eq!(end_s, end_p);
        prop_assert_eq!(serial, par);
        prop_assert!(t.windows > 0);
    }
}

/// The parallel scheduler composes with the pooled executor only; this is
/// a smoke check that the combination actually exercised above is the one
/// the platform provides.
#[test]
fn parallel_requires_pooled_executor() {
    let sim = Sim::with_config(0, DesConfig::pooled());
    if sim.executor_kind() != ExecKind::Pooled {
        // Non-x86_64: every parallel test above returned early.
        return;
    }
    assert_eq!(gbcr_des::SchedKind::Parallel.name(), "parallel");
    assert_eq!(gbcr_des::SchedKind::Serial.name(), "serial");
}
