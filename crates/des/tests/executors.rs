//! Executor equivalence suite: the pooled coroutine backend and the
//! legacy thread-per-process backend must be observationally identical —
//! same event tables, same kill/panic semantics, same TLS hygiene — while
//! only the pooled backend can afford a 10k-process simulation.

use gbcr_des::{time, DesConfig, ExecKind, Sim, SimError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A mixed workload exercising every yield primitive: sleeps, signal
/// wait/notify, spawn-during-run, park/wake, and a mid-run kill. Returns
/// the full `(virtual time, marker)` event table plus the end time.
fn note(log: &Mutex<Vec<(u64, String)>>, p: &gbcr_des::Proc, what: &str) {
    log.lock().push((p.now(), format!("{}:{}", p.name(), what)));
}

fn run_recorded(cfg: DesConfig) -> (Vec<(u64, String)>, u64) {
    let log: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim = Sim::with_config(7, cfg);
    let sig = sim.signal("go");

    for i in 0..3u64 {
        let log = log.clone();
        sim.spawn(format!("ticker{i}"), move |p| {
            for _ in 0..4 {
                p.sleep(time::ms(3 + i));
                note(&log, p, "tick");
            }
        });
    }

    for i in 0..2u64 {
        let sig = sig.clone();
        let log = log.clone();
        sim.spawn(format!("waiter{i}"), move |p| {
            sig.wait(p);
            note(&log, p, "woken");
        });
    }

    {
        let sig = sig.clone();
        let log = log.clone();
        sim.spawn("notifier", move |p| {
            p.sleep(time::ms(7));
            note(&log, p, "notify");
            sig.notify_all(p);
        });
    }

    {
        let log = log.clone();
        sim.spawn("spawner", move |p| {
            p.sleep(time::ms(2));
            let log2 = log.clone();
            p.handle().spawn("child", move |c| {
                c.sleep(time::ms(1));
                log2.lock().push((c.now(), "child:done".to_owned()));
            });
            note(&log, p, "spawned");
        });
    }

    let victim = {
        let log = log.clone();
        sim.spawn("victim", move |p| loop {
            p.sleep(time::ms(4));
            note(&log, p, "alive");
        })
    };
    sim.handle().call_at(time::ms(9), move |h| h.kill(victim));

    let end = sim.run().expect("mixed workload completes");
    sim.shutdown();
    let table = log.lock().clone();
    (table, end)
}

#[test]
fn event_tables_byte_identical_across_executors() {
    let (pooled, end_p) = run_recorded(DesConfig::pooled());
    let (threaded, end_t) = run_recorded(DesConfig::threaded());
    assert_eq!(end_p, end_t, "end times differ across executors");
    assert_eq!(pooled, threaded, "event tables differ across executors");
    assert!(!pooled.is_empty());
}

/// Kill semantics must match: the victim's destructors run (its unwind is
/// a real unwind, not a leak) and the run completes cleanly on both
/// backends.
#[test]
fn kill_runs_destructors_on_both_executors() {
    struct Sentinel(Arc<AtomicBool>);
    impl Drop for Sentinel {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    for cfg in [DesConfig::pooled(), DesConfig::threaded()] {
        let dropped = Arc::new(AtomicBool::new(false));
        let mut sim = Sim::with_config(1, cfg);
        let sentinel = Sentinel(dropped.clone());
        let victim = sim.spawn("victim", move |p| {
            let _held = &sentinel;
            loop {
                p.sleep(time::ms(1));
            }
        });
        sim.handle().call_at(time::ms(5), move |h| h.kill(victim));
        sim.run().expect("kill is a clean termination");
        sim.shutdown();
        assert!(
            dropped.load(Ordering::Relaxed),
            "killed process leaked its stack-held state ({} executor)",
            sim.executor_kind().name()
        );
        assert!(sim.handle().is_done(victim));
    }
}

/// A panicking process must surface the same `ProcessPanicked` error —
/// same process name, same rendered payload — on both backends.
#[test]
fn panic_reporting_identical_across_executors() {
    let errs: Vec<SimError> = [DesConfig::pooled(), DesConfig::threaded()]
        .into_iter()
        .map(|cfg| {
            let mut sim = Sim::with_config(2, cfg);
            sim.spawn("bomb", |p| {
                p.sleep(time::ms(3));
                panic!("exploded at step {}", 41 + 1);
            });
            sim.run().expect_err("panic must fail the run")
        })
        .collect();
    assert_eq!(errs[0], errs[1], "panic reports differ across executors");
    match &errs[0] {
        SimError::ProcessPanicked { name, message } => {
            assert_eq!(name, "bomb");
            assert!(message.contains("exploded at step 42"), "payload lost: {message}");
        }
        other => panic!("expected ProcessPanicked, got {other:?}"),
    }
}

/// Satellite regression test: a pool worker that hosted a killed task's
/// unwind must not carry the kill-unwind TLS flag into the next task it
/// hosts (a stale flag would silently swallow the next real panic's
/// output). Checkers run strictly after a batch of kill-unwinds, so on
/// every pool size some checker slices land on workers that just
/// unwound.
#[test]
fn pool_worker_kill_flag_does_not_leak_into_next_task() {
    let mut sim = Sim::with_config(3, DesConfig::pooled());
    for i in 0..8u64 {
        let victim = sim.spawn(format!("victim{i}"), |p| loop {
            p.park();
        });
        sim.handle().call_at(time::ms(1 + i), move |h| h.kill(victim));
    }
    let stale = Arc::new(AtomicU64::new(0));
    let stale2 = stale.clone();
    sim.handle().call_at(time::ms(50), move |h| {
        for i in 0..8u64 {
            let stale = stale2.clone();
            h.spawn(format!("checker{i}"), move |p| {
                if gbcr_des::kill_unwind_flag_set() {
                    stale.fetch_add(1, Ordering::Relaxed);
                }
                p.sleep(time::ms(1));
            });
        }
    });
    sim.run().expect("kill-then-check completes");
    assert_eq!(stale.load(Ordering::Relaxed), 0, "stale kill-unwind TLS on a pool worker");
}

/// The headline capability: 10 000 simultaneously-live processes on a
/// bounded worker pool. The threaded backend cannot run this (10k OS
/// threads); pooled runs it with `min(ncpu, 8)` workers. Asserts the
/// executor telemetry and that the *process* stays under a sane OS-thread
/// count.
#[test]
fn ten_thousand_procs_spawn_park_finish_on_bounded_pool() {
    let mut sim = Sim::with_config(11, DesConfig::pooled());
    if sim.executor_kind() != ExecKind::Pooled {
        // Architecture without a coroutine switch: nothing to test.
        return;
    }
    const N: u64 = 10_000;
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..N {
        let done = done.clone();
        sim.spawn(format!("rank{i}"), move |p| {
            p.sleep(time::ms(1 + (i % 16)));
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    let end = sim.run().expect("10k-proc smoke completes");
    assert_eq!(end, time::ms(16));
    assert_eq!(done.load(Ordering::Relaxed), N);
    assert_eq!(sim.procs_spawned(), N);
    assert_eq!(sim.peak_live_procs(), N, "all ranks live at once mid-run");
    assert!(sim.exec_threads() <= 8, "pool exceeded its documented bound");
    assert!(sim.spawn_cost_ns() > 0);

    let threads = os_thread_count();
    assert!(
        threads > 0 && threads < 100,
        "expected a bounded OS thread count with 10k live procs, got {threads}"
    );
    sim.shutdown();
}

/// Live OS threads of this test process, from /proc (Linux only; the
/// tests target the Linux CI environment).
fn os_thread_count() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 1, // non-procfs platform: don't fail the assert
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// Teardown of unfinished processes (explicit `shutdown` or drop) must
/// work identically on both backends, and its cost must be recorded.
#[test]
fn shutdown_kills_parked_and_unstarted_procs_on_both_executors() {
    for cfg in [DesConfig::pooled(), DesConfig::threaded()] {
        let mut sim = Sim::with_config(4, cfg);
        let kind = sim.executor_kind();
        // Parked forever: must be kill-unwound by shutdown.
        sim.spawn("parked", |p| loop {
            p.park();
        });
        let _ = sim.run(); // deadlock error — the proc is parked forever
        // Never resumed at all (spawned after the run drained the queue).
        let unstarted = sim.spawn("unstarted", |p| p.sleep(time::ms(1)));
        sim.shutdown();
        assert!(sim.handle().is_done(unstarted), "shutdown left a process live");
        assert!(
            sim.teardown_cost_ns() > 0,
            "teardown cost not recorded ({} executor)",
            kind.name()
        );
    }
}

#[test]
fn double_resume_error_is_typed_and_displayed() {
    let err = SimError::DoubleResume { name: "rank3".into() };
    assert_eq!(err.to_string(), "scheduler resumed already-running process 'rank3'");
    assert_eq!(err, SimError::DoubleResume { name: "rank3".into() });
}

/// `DesConfig`/env resolution: explicit configs are honored and the
/// process-wide default override beats everything.
#[test]
fn explicit_config_selects_backend() {
    let sim = Sim::with_config(0, DesConfig::threaded());
    assert_eq!(sim.executor_kind(), ExecKind::Threaded);
    let sim = Sim::with_config(0, DesConfig::pooled());
    // On x86_64 this is Pooled; elsewhere it clamps to Threaded.
    let expect = if cfg!(target_arch = "x86_64") { ExecKind::Pooled } else { ExecKind::Threaded };
    assert_eq!(sim.executor_kind(), expect);
}
