//! Checkpoint-interval and placement advice.
//!
//! Two pieces of practical guidance fall out of the paper:
//!
//! * **How often to checkpoint**: the classic Young interval
//!   `T_opt = sqrt(2 · δ · MTBF)` balances checkpoint overhead against
//!   expected recomputation, where `δ` is the effective delay of one
//!   checkpoint — which group-based checkpointing reduces, so it also
//!   shortens the optimal interval and the expected loss.
//! * **Where to place it** (§6.1, Figure 4): "checkpoint request should be
//!   placed long before synchronization to achieve better overlap" — given
//!   a barrier period, prefer issuance right after a synchronization line.
//!
//! The advisor works entirely from quantities this workspace measures.

use gbcr_des::Time;

/// Inputs to the interval advisor.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorInputs {
    /// Effective Checkpoint Delay of one checkpoint (measured; seconds).
    pub effective_delay: f64,
    /// Cluster mean time between failures (seconds).
    pub mtbf: f64,
    /// Expected restart cost: image read-back plus lost work is folded in
    /// by Young's first-order model; this adds the fixed restart-storm
    /// read time (seconds).
    pub restart_read: f64,
}

/// The advisor's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Advice {
    /// Young's optimal checkpoint interval (seconds).
    pub interval: f64,
    /// Expected overhead fraction of total runtime at that interval
    /// (checkpointing + expected recomputation + restart), first-order.
    pub overhead_fraction: f64,
}

/// Young's formula with a restart-cost refinement.
pub fn young_interval(inputs: AdvisorInputs) -> Advice {
    assert!(inputs.effective_delay > 0.0 && inputs.mtbf > 0.0);
    let interval = (2.0 * inputs.effective_delay * inputs.mtbf).sqrt();
    // First-order expected overhead per unit time:
    //   δ/T            (checkpointing)
    // + T/(2·MTBF)     (expected recomputation after a failure)
    // + R/MTBF         (restart reads per failure)
    let overhead_fraction = inputs.effective_delay / interval
        + interval / (2.0 * inputs.mtbf)
        + inputs.restart_read / inputs.mtbf;
    Advice { interval, overhead_fraction }
}

/// Daly's higher-order refinement of Young's interval (Daly 2006): for
/// `δ < 2·MTBF`,
/// `T_opt = sqrt(2δM)·[1 + (1/3)·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ`,
/// else `T_opt = MTBF`. Slightly shorter than Young's for short-MTBF
/// regimes (it accounts for failures landing *during* checkpoints), and it
/// degrades gracefully as the failure rate approaches the checkpoint cost
/// — the regime the fault sweep explores.
pub fn daly_interval(inputs: AdvisorInputs) -> Advice {
    assert!(inputs.effective_delay > 0.0 && inputs.mtbf > 0.0);
    let d = inputs.effective_delay;
    let m = inputs.mtbf;
    let interval = if d < 2.0 * m {
        let x = (d / (2.0 * m)).sqrt();
        (2.0 * d * m).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - d
    } else {
        m
    };
    let overhead_fraction =
        d / interval + interval / (2.0 * m) + inputs.restart_read / m;
    Advice { interval, overhead_fraction }
}

/// §6.1 placement advice: given a synchronization period, the best
/// issuance offset within a period is right after the synchronization line
/// (maximal distance for the early groups to overlap before everyone must
/// meet at the barrier), and the worst is immediately before the next line
/// (no room to overlap: the delay approaches the Total Checkpoint Time —
/// Figure 4's shape). Returns `(best_offset, worst_offset)` within
/// `[0, period)`. `total_ckpt_time` bounds how early "immediately before"
/// needs to be to already be maximal.
pub fn placement_window(period: Time, total_ckpt_time: Time) -> (Time, Time) {
    assert!(period > 0);
    // Anywhere in the last ~tenth of the checkpoint's own span before the
    // line is effectively worst-case; report the latest representative
    // offset strictly inside the period.
    let margin = (total_ckpt_time / 10).clamp(1, period / 10 + 1);
    (0, period - margin.min(period))
}

/// How much of one group's checkpoint a non-checkpointing rank can overlap
/// given its compute-chunk length: the §6.3 observation, as a ratio in
/// `[0, 1]`.
pub fn overlap_ratio(compute_chunk: Time, group_write: Time) -> f64 {
    if group_write == 0 {
        return 1.0;
    }
    (compute_chunk as f64 / group_write as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_des::time;

    #[test]
    fn young_matches_hand_computation() {
        // δ = 50 s, MTBF = 24 h: T = sqrt(2·50·86400) = 2939.4 s.
        let a = young_interval(AdvisorInputs {
            effective_delay: 50.0,
            mtbf: 86_400.0,
            restart_read: 120.0,
        });
        assert!((a.interval - 2939.4).abs() < 0.1, "got {}", a.interval);
        // overhead = 50/2939.4 + 2939.4/172800 + 120/86400 ≈ 3.5 %
        assert!((a.overhead_fraction - 0.0354).abs() < 0.001, "got {}", a.overhead_fraction);
    }

    #[test]
    fn smaller_effective_delay_shortens_interval_and_overhead() {
        // Group-based checkpointing cutting δ from 120 s to 60 s must both
        // shorten the optimal interval and cut the overhead fraction.
        let all = young_interval(AdvisorInputs {
            effective_delay: 120.0,
            mtbf: 43_200.0,
            restart_read: 100.0,
        });
        let grouped = young_interval(AdvisorInputs {
            effective_delay: 60.0,
            mtbf: 43_200.0,
            restart_read: 100.0,
        });
        assert!(grouped.interval < all.interval);
        assert!(grouped.overhead_fraction < all.overhead_fraction);
    }

    #[test]
    fn daly_tracks_young_in_the_long_mtbf_limit() {
        let inputs = AdvisorInputs {
            effective_delay: 50.0,
            mtbf: 86_400.0,
            restart_read: 120.0,
        };
        let y = young_interval(inputs);
        let d = daly_interval(inputs);
        // For δ ≪ MTBF the two agree to within a few percent, with Daly's
        // correction always shaving the interval.
        assert!(d.interval < y.interval);
        assert!((d.interval - y.interval).abs() / y.interval < 0.05, "daly {} vs young {}", d.interval, y.interval);
    }

    #[test]
    fn daly_saturates_at_mtbf_for_failure_dominated_regimes() {
        let a = daly_interval(AdvisorInputs {
            effective_delay: 100.0,
            mtbf: 40.0, // δ ≥ 2·MTBF: checkpoint as often as failures land
            restart_read: 0.0,
        });
        assert_eq!(a.interval, 40.0);
    }

    #[test]
    fn placement_window_brackets_the_period() {
        let (best, worst) = placement_window(time::secs(60), time::secs(41));
        assert_eq!(best, 0);
        assert!(worst > time::secs(50) && worst < time::secs(60), "{worst}");
        // Degenerate: checkpoint longer than the period still yields a
        // strictly-inside worst offset.
        let (best, worst) = placement_window(time::secs(10), time::secs(41));
        assert_eq!(best, 0);
        assert!(worst < time::secs(10));
    }

    #[test]
    fn overlap_ratio_saturates() {
        assert_eq!(overlap_ratio(time::secs(5), time::secs(10)), 0.5);
        assert_eq!(overlap_ratio(time::secs(20), time::secs(10)), 1.0);
        assert_eq!(overlap_ratio(time::secs(20), 0), 1.0);
    }
}
