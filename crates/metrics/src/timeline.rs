//! Per-rank epoch timelines: render what every process was doing during a
//! checkpoint epoch as an ASCII Gantt chart (the visual intuition behind
//! the paper's Figure 2).
//!
//! Built from [`gbcr_core::EpochReport`]s: for each rank the chart marks
//! the span between the epoch request and that rank's checkpoint write
//! (computing or blocked, `·`), the write itself (`█`), and the tail until
//! the epoch completes (`·`). Group structure becomes immediately visible:
//! regular checkpointing is one solid block column; group-based
//! checkpointing is a staircase.

use gbcr_core::EpochReport;
use gbcr_des::{time, Span, Time, TraceData, Track};

/// Render an epoch as an ASCII Gantt, `width` characters wide.
///
/// The write span per rank is reconstructed from the group schedule: ranks
/// in group `g` write in the order the groups completed, each for its
/// Individual Checkpoint Time, ending when the group's last member
/// reported. This is a faithful reconstruction for the blocking protocols
/// (writes are the dominant span of the individual time).
pub fn render_epoch(ep: &EpochReport, width: usize) -> String {
    assert!(width >= 20, "need at least 20 columns");
    let t0 = ep.requested_at;
    let t1 = ep.all_ranks_done_at.max(t0 + 1);
    let span = (t1 - t0) as f64;
    let col = |t: Time| -> usize {
        (((t.saturating_sub(t0)) as f64 / span) * (width as f64 - 1.0)).round() as usize
    };

    // Reconstruct each group's write window: groups complete in order;
    // group g's window ends when its slowest member finished. Individual
    // times approximate the write spans.
    let mut out = String::new();
    out.push_str(&format!(
        "epoch {} — {} group(s), request at {}, all done at {} (total {})\n",
        ep.epoch,
        ep.plan.group_count(),
        time::fmt(ep.requested_at),
        time::fmt(ep.all_ranks_done_at),
        time::fmt(ep.total_time()),
    ));
    // Cumulative end estimate per group: proportional split of the span by
    // the groups' max individual times.
    let group_max: Vec<Time> = (0..ep.plan.group_count())
        .map(|g| {
            ep.individuals
                .iter()
                .filter(|(r, _)| ep.plan.group_of(*r) == g)
                .map(|(_, t)| *t)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let total_writes: Time = group_max.iter().sum::<Time>().max(1);
    let mut ends: Vec<Time> = Vec::with_capacity(group_max.len());
    let mut acc: Time = t0;
    for &gm in &group_max {
        // Scale group windows into the actual epoch span (coordination
        // gaps distribute proportionally).
        acc += (gm as u128 * (t1 - t0) as u128 / total_writes as u128) as Time;
        ends.push(acc.min(t1));
    }

    for &(rank, ind) in &ep.individuals {
        let g = ep.plan.group_of(rank);
        let end = ends[g];
        let start = end.saturating_sub(ind).max(t0);
        let (a, b) = (col(start), col(end).max(col(start) + 1));
        let mut row: Vec<char> = vec!['·'; width];
        for c in row.iter_mut().take(b.min(width)).skip(a) {
            *c = '█';
        }
        out.push_str(&format!("r{rank:<3} "));
        out.extend(row);
        out.push_str(&format!("  (individual {})\n", time::fmt(ind)));
    }
    out
}

/// Render every recorded checkpoint epoch from a trace as an ASCII phase
/// breakdown, `width` characters wide.
///
/// Unlike [`render_epoch`], which *reconstructs* write windows from an
/// [`EpochReport`]'s group schedule, this renders the actual recorded
/// spans: the coordinator row shows the five protocol phases and the
/// manifest commit, and each rank row shows the measured flush / drain /
/// teardown / image-write sub-phases of its local checkpoint. Requires a
/// run traced at [`TraceLevel::Phases`](gbcr_des::TraceLevel) or above
/// (e.g. via `gbcr_core::JobRunner::traced` or the `--trace` bench flag).
///
/// Legend: coordinator `b`egin / group-`s`tart / `c`heckpoint /
/// group-`d`one / `e`nd / `m`anifest; ranks `─` in-checkpoint, `f`lush,
/// `d`rain, `t`eardown, `█` image write.
pub fn render_epoch_trace(trace: &TraceData, width: usize) -> String {
    assert!(width >= 20, "need at least 20 columns");
    let mut out = String::new();
    let epochs: Vec<&Span> = trace
        .spans
        .iter()
        .filter(|s| s.track == Track::Coordinator && s.name == "epoch")
        .collect();
    if epochs.is_empty() {
        out.push_str("no epoch spans recorded (was the run traced?)\n");
        return out;
    }
    for ep in epochs {
        render_one_epoch(&mut out, trace, ep, width);
    }
    out
}

fn render_one_epoch(out: &mut String, trace: &TraceData, ep: &Span, width: usize) {
    let t0 = ep.t_start;
    let t1 = ep.t_end.max(t0 + 1);
    let span = (t1 - t0) as f64;
    let col = |t: Time| -> usize {
        (((t.clamp(t0, t1) - t0) as f64 / span) * (width as f64 - 1.0)).round() as usize
    };
    // Paint one span's columns (at least one) with `mark`.
    let paint = |row: &mut [char], s: &Span, mark: char| {
        let (a, b) = (col(s.t_start), col(s.t_end).max(col(s.t_start) + 1));
        for c in row.iter_mut().take(b.min(width)).skip(a) {
            *c = mark;
        }
    };
    let overlaps = |s: &Span| s.t_end >= t0 && s.t_start <= t1;

    out.push_str(&format!(
        "epoch {} — {} group(s), [{} .. {}] (total {})\n",
        ep.arg_u64("epoch").unwrap_or(0),
        ep.arg_u64("groups").unwrap_or(0),
        time::fmt(t0),
        time::fmt(t1),
        time::fmt(t1 - t0),
    ));

    // Paint bulk phases first so the (often sub-column) coordination
    // markers stay visible on top.
    let mut coord: Vec<char> = vec!['·'; width];
    for (name, mark) in [
        ("phase.checkpoint", 'c'),
        ("phase.group_done", 'd'),
        ("phase.group_start", 's'),
        ("manifest.commit", 'm'),
        ("phase.begin", 'b'),
        ("phase.end", 'e'),
    ] {
        for s in &trace.spans {
            if s.track == Track::Coordinator && s.name == name && overlaps(s) {
                paint(&mut coord, s, mark);
            }
        }
    }
    out.push_str("coord");
    out.extend(coord);
    out.push('\n');

    let mut ranks: Vec<u32> = trace
        .spans
        .iter()
        .filter_map(|s| match s.track {
            Track::Rank(r) if overlaps(s) => Some(r),
            _ => None,
        })
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    for rank in ranks {
        let mut row: Vec<char> = vec!['·'; width];
        // Paint coarse-to-fine so the sub-phases overlay the enclosing
        // checkpoint span.
        for (name, mark) in [
            ("rank.checkpoint", '─'),
            ("rank.flush", 'f'),
            ("rank.drain", 'd'),
            ("rank.teardown", 't'),
            ("blcr.checkpoint", '█'),
        ] {
            for s in &trace.spans {
                if s.track == Track::Rank(rank) && s.name == name && overlaps(s) {
                    paint(&mut row, s, mark);
                }
            }
        }
        if row.iter().all(|&c| c == '·') {
            continue; // rank had activity spans, none checkpoint-related
        }
        out.push_str(&format!("r{rank:<4}"));
        out.extend(row);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_core::{CkptMode, CkptSchedule, CoordinatorCfg, Formation};
    use gbcr_storage::MB;
    use gbcr_workloads::MicroBench;

    fn epoch(group_size: u32) -> EpochReport {
        let mb = MicroBench {
            n: 8,
            comm_group_size: 4,
            footprint: 70 * MB,
            steps: 100,
            ..Default::default()
        };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size },
            schedule: CkptSchedule::once(gbcr_des::time::secs(3)),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        mb.job().runner().ckpt(cfg).run().unwrap().epochs[0].clone()
    }

    #[test]
    fn regular_epoch_renders_one_block_column() {
        let s = render_epoch(&epoch(8), 40);
        let rows: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(rows.len(), 8);
        // All ranks' write spans cover (nearly) the whole width.
        for row in rows {
            let solid = row.chars().filter(|&c| c == '█').count();
            assert!(solid > 30, "regular write should span the epoch: {row}");
        }
    }

    #[test]
    fn grouped_epoch_renders_a_staircase() {
        let s = render_epoch(&epoch(2), 40);
        let rows: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(rows.len(), 8);
        let first_solid: Vec<usize> = rows
            .iter()
            .map(|r| r.find('█').expect("every rank writes"))
            .collect();
        // Later groups start later (non-decreasing stairs, strictly later
        // between first and last group).
        assert!(first_solid.windows(2).all(|w| w[1] >= w[0]), "{first_solid:?}");
        assert!(
            first_solid[7] > first_solid[0] + 10,
            "staircase should be visible: {first_solid:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 20")]
    fn width_is_validated() {
        let _ = render_epoch(&epoch(8), 5);
    }

    #[test]
    fn trace_render_shows_phases_and_writes() {
        let mb = MicroBench {
            n: 4,
            comm_group_size: 2,
            footprint: 40 * MB,
            steps: 60,
            ..Default::default()
        };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 2 },
            schedule: CkptSchedule::once(gbcr_des::time::secs(3)),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let report = mb
            .job()
            .runner()
            .ckpt(cfg)
            .traced(gbcr_des::TraceLevel::Phases)
            .run()
            .unwrap();
        let trace = report.trace.as_deref().expect("traced run records spans");
        let s = render_epoch_trace(trace, 60);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("epoch 0 — 2 group(s)"), "{s}");
        let coord = lines.iter().find(|l| l.starts_with("coord")).expect("coordinator row");
        for mark in ['b', 's', 'c', 'e'] {
            assert!(coord.contains(mark), "coordinator row missing {mark:?}: {s}");
        }
        let rank_rows: Vec<&&str> = lines.iter().filter(|l| l.starts_with('r')).collect();
        assert_eq!(rank_rows.len(), 4, "{s}");
        for row in rank_rows {
            assert!(row.contains('█'), "every rank writes an image: {s}");
        }
    }

    #[test]
    fn trace_render_on_untraced_data_says_so() {
        let s = render_epoch_trace(&gbcr_des::TraceData::default(), 40);
        assert!(s.contains("no epoch spans"));
    }

    #[test]
    #[should_panic(expected = "at least 20")]
    fn trace_render_width_is_validated() {
        let _ = render_epoch_trace(&gbcr_des::TraceData::default(), 5);
    }
}
