//! # gbcr-metrics — the paper's §5 metrics and the experiment harness
//!
//! Three metrics characterize the time overhead of checkpointing a
//! parallel application (paper §5):
//!
//! * **Individual Checkpoint Time** — the downtime each process observes
//!   while taking its own checkpoint. For regular coordinated
//!   checkpointing this is ≈ `footprint × N / B` (Eq. 2a); for group-based
//!   checkpointing it is ≈ `footprint × group_size / B` (Eq. 3a).
//! * **Total Checkpoint Time** — from checkpoint request to the last
//!   process finishing; ≈ `groups × Individual` for group-based (Eq. 3b).
//! * **Effective Checkpoint Delay** — the increase in the application's
//!   completion time caused by taking one checkpoint; the end goal, and
//!   always sandwiched `Individual ≤ Effective ≤ Total` (Eq. 3c).
//!
//! [`measure`] runs a workload twice — once bare, once with a checkpoint —
//! and extracts all three. [`run_sweep`] fans whole sweeps of independent
//! `(spec, cfg)` cells over a worker pool with deterministic, cell-ordered
//! results. [`format_series`]/[`Table`] format the sweeps the benches print for
//! each of the paper's figures.

#![warn(missing_docs)]

pub mod advisor;
mod availability;
mod cost;
mod harness;
mod table;
pub mod tenancy;
pub mod timeline;

pub use advisor::{daly_interval, placement_window, young_interval, Advice, AdvisorInputs};
pub use availability::{sum_counters, FaultAccounting};
pub use gbcr_core::RecoveryCounters;
pub use cost::{
    cell_cost, cell_costs_snapshot, cell_phases, cell_phases_snapshot, record_cell_cost,
    record_cell_phases, seed_cell_cost, CellCost,
};
pub use harness::{
    delay_from_reports, measure, measure_with, resolve_threads, run_cells, run_sweep,
    DelayMeasurement, GroupReports, SweepGroup,
};
pub use table::{format_series, Table};
pub use timeline::{render_epoch, render_epoch_trace};
