//! Plain-text tables matching the paper's figure series.

/// A printable table: a header row plus data rows, column-aligned.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cells[c], w = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }
}

/// Format an `(x, y)` series as `label: y@x y@x …` (one-line summaries for
/// EXPERIMENTS.md).
pub fn format_series(label: &str, points: &[(f64, f64)]) -> String {
    let body: Vec<String> =
        points.iter().map(|(x, y)| format!("{y:.1}@{x:.0}")).collect();
    format!("{label}: {}", body.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["a", "long-col"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.starts_with("# Fig X\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "rows aligned with header");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        Table::new("t", &["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn series_format() {
        assert_eq!(
            format_series("g4", &[(50.0, 12.34), (100.0, 5.0)]),
            "g4: 12.3@50 5.0@100"
        );
    }
}
