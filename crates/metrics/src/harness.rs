//! Effective-delay measurement harness and the parallel sweep runner.
//!
//! Every figure in the paper's evaluation is a sweep of independent
//! `(JobSpec, CoordinatorCfg)` simulations plus one bare baseline run per
//! spec. [`run_sweep`] fans those cells over a scoped worker pool: each
//! cell is a self-contained deterministic [`Sim`](gbcr_des::Sim), so the
//! results are bit-for-bit identical whatever the thread count — only the
//! wall-clock time changes. Results are assembled in cell-index order, so
//! output ordering (and which error is reported first) is deterministic
//! too.

use gbcr_core::{CkptSchedule, CoordinatorCfg, JobSpec, RunReport};
use gbcr_des::{time, SimResult, Time};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One workload spec plus every coordinator configuration to run on it.
///
/// [`run_sweep`] runs the spec bare exactly once per group (the shared
/// baseline is deduplicated across the group's cells) and once per config.
#[derive(Clone)]
pub struct SweepGroup {
    /// The workload to simulate.
    pub spec: JobSpec,
    /// The checkpoint configurations to measure on it, in output order.
    pub cfgs: Vec<CoordinatorCfg>,
    /// Stable key prefix for the per-cell cost registry (see
    /// [`crate::record_cell_cost`]). Defaults to the spec's job name; the
    /// bench drivers set a sweep-unique label so costs persisted in
    /// `BENCH_harness.json` match up across runs.
    pub label: String,
}

impl SweepGroup {
    /// Convenience constructor; the cost label defaults to the job name.
    pub fn new(spec: JobSpec, cfgs: Vec<CoordinatorCfg>) -> Self {
        let label = spec.name.clone();
        SweepGroup { spec, cfgs, label }
    }

    /// Constructor with an explicit cost-registry label.
    pub fn labeled(spec: JobSpec, cfgs: Vec<CoordinatorCfg>, label: impl Into<String>) -> Self {
        SweepGroup { spec, cfgs, label: label.into() }
    }
}

/// All reports produced for one [`SweepGroup`], in the group's cfg order.
#[derive(Debug, Clone)]
pub struct GroupReports {
    /// The bare (no-checkpoint) run of the group's spec.
    pub baseline: RunReport,
    /// One checkpointed run per config, aligned with [`SweepGroup::cfgs`].
    pub runs: Vec<RunReport>,
}

/// Resolve the worker count for [`run_sweep`]: an explicit argument wins,
/// then the `GBCR_THREADS` environment variable, then the machine's
/// available parallelism. Never less than 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var("GBCR_THREADS").ok().and_then(|s| s.trim().parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Run `count` independent cells over a pool of `threads` workers
/// (resolved via [`resolve_threads`] when `None`), assembling results in
/// cell-index order.
///
/// The generic engine underneath [`run_sweep`], exposed for sweeps whose
/// cells are not `(spec, cfg)` pairs — e.g. the fault sweep, where one
/// cell is an entire supervised multi-attempt run. Each cell must be
/// self-contained and deterministic in its index; then the output is
/// byte-identical whatever the worker count.
pub fn run_cells<T, F>(count: usize, threads: Option<usize>, run: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(run).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let _ = slots[i].set(run(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every dispensed cell stored a result"))
        .collect()
}

/// Run every cell of `groups` — one baseline per group plus one run per
/// config — over a pool of `threads` workers (resolved via
/// [`resolve_threads`] when `None`).
///
/// Each cell is an independent deterministic simulation, so the returned
/// reports are identical to a serial run; with more than one worker only
/// the wall-clock time changes. On error, the first failing cell in task
/// order is reported, regardless of which worker hit it first.
///
/// Dispatch is **cost-aware**: cells with a known cost (recorded by a
/// previous run, possibly seeded from `BENCH_harness.json`) are handed to
/// workers longest-first (LPT), and unknown cells before all known ones,
/// so a long-pole cell can never be the last thing started. Results are
/// still assembled in cell-index order, so the output — values, ordering,
/// and which error surfaces first — is byte-identical whatever the
/// dispatch order or worker count.
pub fn run_sweep(groups: &[SweepGroup], threads: Option<usize>) -> SimResult<Vec<GroupReports>> {
    // Flatten to (group, cfg-or-baseline) tasks: index order is output order.
    let mut tasks: Vec<(usize, Option<usize>)> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        tasks.push((g, None));
        for c in 0..group.cfgs.len() {
            tasks.push((g, Some(c)));
        }
    }
    let key_of = |&(g, c): &(usize, Option<usize>)| -> String {
        match c {
            None => format!("{}/base", groups[g].label),
            Some(i) => format!("{}/c{i}", groups[g].label),
        }
    };
    let keys: Vec<String> = tasks.iter().map(key_of).collect();
    let run_task = |i: usize| -> SimResult<RunReport> {
        let (g, c) = tasks[i];
        let group = &groups[g];
        let t0 = std::time::Instant::now();
        let out = group.spec.runner().ckpt_opt(c.map(|j| group.cfgs[j].clone())).run();
        if let Ok(report) = &out {
            crate::cost::record_cell_cost(
                &keys[i],
                t0.elapsed().as_secs_f64() * 1e3,
                report.events,
            );
            if !report.phase_stats.is_empty() {
                crate::cost::record_cell_phases(&keys[i], report.phase_stats.clone());
            }
        }
        out
    };

    // LPT dispatch order: unknown cells first (they might be the long
    // pole), then known cells by descending expected wall time; ties (and
    // the serial path) fall back to task order.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        let cost = |i: usize| crate::cost::cell_cost(&keys[i]).map_or(f64::INFINITY, |c| c.wall_ms);
        cost(b).partial_cmp(&cost(a)).expect("costs are never NaN").then(a.cmp(&b))
    });

    let workers = resolve_threads(threads).min(tasks.len().max(1));
    let results: Vec<SimResult<RunReport>> = if workers <= 1 {
        (0..tasks.len()).map(run_task).collect()
    } else {
        let slots: Vec<OnceLock<SimResult<RunReport>>> =
            tasks.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let d = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(d) else { break };
                    let _ = slots[i].set(run_task(i));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every dispensed task stored a result"))
            .collect()
    };

    // Reassemble in task order; `?` surfaces the first error deterministically.
    let mut results = results.into_iter();
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        let baseline = results.next().expect("task list covers every group")?;
        let mut runs = Vec::with_capacity(group.cfgs.len());
        for _ in &group.cfgs {
            runs.push(results.next().expect("task list covers every cfg")?);
        }
        out.push(GroupReports { baseline, runs });
    }
    Ok(out)
}

/// One checkpoint's worth of §5 metrics.
#[derive(Debug, Clone)]
pub struct DelayMeasurement {
    /// Issuance time of the checkpoint request.
    pub issued_at: Time,
    /// Completion time of the bare (no-checkpoint) run.
    pub baseline_completion: Time,
    /// Completion time of the checkpointed run.
    pub ckpt_completion: Time,
    /// Mean per-rank Individual Checkpoint Time.
    pub individual: Time,
    /// Max per-rank Individual Checkpoint Time.
    pub individual_max: Time,
    /// Min per-rank Individual Checkpoint Time.
    pub individual_min: Time,
    /// Total Checkpoint Time (request → all images durable).
    pub total: Time,
    /// Number of checkpoint groups used.
    pub groups: usize,
    /// The full checkpointed-run report (for deeper digging).
    pub report: RunReport,
}

impl DelayMeasurement {
    /// The Effective Checkpoint Delay: completion-time increase caused by
    /// the checkpoint.
    pub fn effective(&self) -> Time {
        self.ckpt_completion.saturating_sub(self.baseline_completion)
    }

    /// Effective delay in seconds (for printing).
    pub fn effective_secs(&self) -> f64 {
        time::as_secs_f64(self.effective())
    }

    /// Individual (mean) in seconds.
    pub fn individual_secs(&self) -> f64 {
        time::as_secs_f64(self.individual)
    }

    /// Total in seconds.
    pub fn total_secs(&self) -> f64 {
        time::as_secs_f64(self.total)
    }
}

/// Extract the §5 metrics from a matched (baseline, checkpointed) report
/// pair whose config scheduled one checkpoint at `issued_at`.
///
/// Panics if the checkpoint never ran (issued after job completion).
pub fn delay_from_reports(issued_at: Time, baseline: &RunReport, ck: &RunReport) -> DelayMeasurement {
    let ep = ck
        .epochs
        .first()
        .unwrap_or_else(|| panic!("checkpoint at {} never ran (job too short?)", time::fmt(issued_at)));
    DelayMeasurement {
        issued_at,
        baseline_completion: baseline.completion,
        ckpt_completion: ck.completion,
        individual: ep.mean_individual(),
        individual_max: ep.max_individual(),
        individual_min: ep.individuals.iter().map(|(_, t)| *t).min().unwrap_or(0),
        total: ep.total_time(),
        groups: ep.plan.group_count(),
        report: ck.clone(),
    }
}

/// Run `spec` bare and with one checkpoint from `cfg` (which must schedule
/// exactly one epoch), returning the three metrics.
pub fn measure_with(spec: &JobSpec, cfg: CoordinatorCfg) -> SimResult<DelayMeasurement> {
    assert_eq!(cfg.schedule.at.len(), 1, "measure_with expects exactly one checkpoint");
    let issued_at = cfg.schedule.at[0];
    let group = SweepGroup::new(spec.clone(), vec![cfg]);
    let gr = run_sweep(std::slice::from_ref(&group), None)?.pop().expect("one group in, one out");
    Ok(delay_from_reports(issued_at, &gr.baseline, &gr.runs[0]))
}

/// Convenience wrapper: one checkpoint at `at` with `cfg_base`'s other
/// fields.
pub fn measure(
    spec: &JobSpec,
    mut cfg_base: CoordinatorCfg,
    at: Time,
) -> SimResult<DelayMeasurement> {
    cfg_base.schedule = CkptSchedule::once(at);
    measure_with(spec, cfg_base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_core::{CkptMode, Formation};
    use gbcr_storage::MB;
    use gbcr_workloads::MicroBench;

    #[test]
    fn sandwich_inequality_holds() {
        let mb = MicroBench {
            n: 8,
            comm_group_size: 4,
            footprint: 90 * MB,
            steps: 120,
            step_compute: gbcr_des::time::ms(250),
            ..Default::default()
        };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 4 },
            schedule: CkptSchedule::none(),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let m = measure(&mb.job(), cfg, gbcr_des::time::secs(5)).unwrap();
        assert_eq!(m.groups, 2);
        let eff = m.effective();
        assert!(
            eff + gbcr_des::time::ms(500) >= m.individual_min,
            "effective {} below individual {}",
            time::fmt(eff),
            time::fmt(m.individual_min)
        );
        assert!(
            eff <= m.total + gbcr_des::time::secs(1),
            "effective {} above total {}",
            time::fmt(eff),
            time::fmt(m.total)
        );
        assert!(m.individual_max >= m.individual && m.individual >= m.individual_min);
    }

    #[test]
    #[should_panic(expected = "never ran")]
    fn checkpoint_after_completion_panics() {
        let mb = MicroBench { n: 4, comm_group_size: 2, steps: 4, ..Default::default() };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 2 },
            schedule: CkptSchedule::none(),
            incremental: false,
            deadlines: gbcr_core::PhaseDeadlines::none(),
            election: Default::default(),
        };
        let _ = measure(&mb.job(), cfg, gbcr_des::time::secs(9999));
    }

    /// The same sweep must produce byte-identical reports on 1 worker and
    /// on many; run_sweep's parallelism can only change wall time.
    #[test]
    fn sweep_is_thread_count_invariant() {
        let specs = [
            MicroBench { n: 8, comm_group_size: 4, steps: 40, ..Default::default() },
            MicroBench { n: 4, comm_group_size: 2, steps: 40, ..Default::default() },
        ];
        let groups: Vec<SweepGroup> = specs
            .iter()
            .map(|mb| {
                let cfgs = [4u32, 2]
                    .iter()
                    .map(|&g| CoordinatorCfg {
                        job: "micro".into(),
                        mode: CkptMode::Buffering,
                        formation: Formation::Static { group_size: g },
                        schedule: CkptSchedule::once(gbcr_des::time::secs(5)),
                        incremental: false,
                        deadlines: gbcr_core::PhaseDeadlines::none(),
                        election: Default::default(),
                    })
                    .collect();
                SweepGroup::new(mb.job(), cfgs)
            })
            .collect();
        let serial = run_sweep(&groups, Some(1)).unwrap();
        let parallel = run_sweep(&groups, Some(4)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.baseline.completion, p.baseline.completion);
            assert_eq!(s.runs.len(), p.runs.len());
            for (sr, pr) in s.runs.iter().zip(&p.runs) {
                assert_eq!(sr.completion, pr.completion);
                assert_eq!(sr.epochs.len(), pr.epochs.len());
                for (se, pe) in sr.epochs.iter().zip(&pr.epochs) {
                    assert_eq!(se.individuals, pe.individuals);
                }
            }
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "zero clamps to one worker");
        assert!(resolve_threads(None) >= 1);
    }
}
