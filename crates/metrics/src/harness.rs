//! Effective-delay measurement harness.

use gbcr_core::{run_job, CkptSchedule, CoordinatorCfg, JobSpec, RunReport};
use gbcr_des::{time, SimResult, Time};

/// One checkpoint's worth of §5 metrics.
#[derive(Debug, Clone)]
pub struct DelayMeasurement {
    /// Issuance time of the checkpoint request.
    pub issued_at: Time,
    /// Completion time of the bare (no-checkpoint) run.
    pub baseline_completion: Time,
    /// Completion time of the checkpointed run.
    pub ckpt_completion: Time,
    /// Mean per-rank Individual Checkpoint Time.
    pub individual: Time,
    /// Max per-rank Individual Checkpoint Time.
    pub individual_max: Time,
    /// Min per-rank Individual Checkpoint Time.
    pub individual_min: Time,
    /// Total Checkpoint Time (request → all images durable).
    pub total: Time,
    /// Number of checkpoint groups used.
    pub groups: usize,
    /// The full checkpointed-run report (for deeper digging).
    pub report: RunReport,
}

impl DelayMeasurement {
    /// The Effective Checkpoint Delay: completion-time increase caused by
    /// the checkpoint.
    pub fn effective(&self) -> Time {
        self.ckpt_completion.saturating_sub(self.baseline_completion)
    }

    /// Effective delay in seconds (for printing).
    pub fn effective_secs(&self) -> f64 {
        time::as_secs_f64(self.effective())
    }

    /// Individual (mean) in seconds.
    pub fn individual_secs(&self) -> f64 {
        time::as_secs_f64(self.individual)
    }

    /// Total in seconds.
    pub fn total_secs(&self) -> f64 {
        time::as_secs_f64(self.total)
    }
}

/// Run `spec` bare and with one checkpoint from `cfg` (which must schedule
/// exactly one epoch), returning the three metrics.
pub fn measure_with(spec: &JobSpec, cfg: CoordinatorCfg) -> SimResult<DelayMeasurement> {
    assert_eq!(cfg.schedule.at.len(), 1, "measure_with expects exactly one checkpoint");
    let issued_at = cfg.schedule.at[0];
    let baseline = run_job(spec, None)?;
    let ck = run_job(spec, Some(cfg))?;
    let ep = ck
        .epochs
        .first()
        .unwrap_or_else(|| panic!("checkpoint at {} never ran (job too short?)", time::fmt(issued_at)));
    Ok(DelayMeasurement {
        issued_at,
        baseline_completion: baseline.completion,
        ckpt_completion: ck.completion,
        individual: ep.mean_individual(),
        individual_max: ep.max_individual(),
        individual_min: ep.individuals.iter().map(|(_, t)| *t).min().unwrap_or(0),
        total: ep.total_time(),
        groups: ep.plan.group_count(),
        report: ck.clone(),
    })
}

/// Convenience wrapper: one checkpoint at `at` with `cfg_base`'s other
/// fields.
pub fn measure(
    spec: &JobSpec,
    mut cfg_base: CoordinatorCfg,
    at: Time,
) -> SimResult<DelayMeasurement> {
    cfg_base.schedule = CkptSchedule::once(at);
    measure_with(spec, cfg_base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_core::{CkptMode, Formation};
    use gbcr_storage::MB;
    use gbcr_workloads::MicroBench;

    #[test]
    fn sandwich_inequality_holds() {
        let mb = MicroBench {
            n: 8,
            comm_group_size: 4,
            footprint: 90 * MB,
            steps: 120,
            step_compute: gbcr_des::time::ms(250),
            ..Default::default()
        };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 4 },
            schedule: CkptSchedule::none(),
            incremental: false,
        };
        let m = measure(&mb.job(), cfg, gbcr_des::time::secs(5)).unwrap();
        assert_eq!(m.groups, 2);
        let eff = m.effective();
        assert!(
            eff + gbcr_des::time::ms(500) >= m.individual_min,
            "effective {} below individual {}",
            time::fmt(eff),
            time::fmt(m.individual_min)
        );
        assert!(
            eff <= m.total + gbcr_des::time::secs(1),
            "effective {} above total {}",
            time::fmt(eff),
            time::fmt(m.total)
        );
        assert!(m.individual_max >= m.individual && m.individual >= m.individual_min);
    }

    #[test]
    #[should_panic(expected = "never ran")]
    fn checkpoint_after_completion_panics() {
        let mb = MicroBench { n: 4, comm_group_size: 2, steps: 4, ..Default::default() };
        let cfg = CoordinatorCfg {
            job: "micro".into(),
            mode: CkptMode::Buffering,
            formation: Formation::Static { group_size: 2 },
            schedule: CkptSchedule::none(),
            incremental: false,
        };
        let _ = measure(&mb.job(), cfg, gbcr_des::time::secs(9999));
    }
}
