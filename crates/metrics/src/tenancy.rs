//! Per-tenant aggregation over cluster runs: attribute traced phase time
//! to tenants and summarize per-tenant latency/goodput populations.
//!
//! Coordinator spans carry a `job` argument (the tenant's name), so a
//! traced [`gbcr_core::cluster::run_cluster`] produces one interleaved
//! trace that [`span_time_by_job`] splits back into per-tenant phase
//! budgets — the PR 5 span machinery doing multi-tenant attribution.

use gbcr_des::trace::{ArgValue, TraceData};
use gbcr_des::Time;
use std::collections::BTreeMap;

/// Sum the wall (virtual) time of every span whose name starts with
/// `prefix` (use `""` for all spans), keyed by the span's `job` argument.
/// Spans without a `job` argument (rank/storage/fabric tracks) are
/// ignored. Returns `(job, total_time, span_count)` sorted by job name —
/// deterministic, so smoke goldens can pin it.
pub fn span_time_by_job(trace: &TraceData, prefix: &str) -> Vec<(String, Time, u64)> {
    let mut by_job: BTreeMap<String, (Time, u64)> = BTreeMap::new();
    for span in &trace.spans {
        if !span.name.starts_with(prefix) {
            continue;
        }
        let Some(job) = span.args.iter().find_map(|(k, v)| {
            if *k != "job" {
                return None;
            }
            match v {
                ArgValue::Str(j) => Some(j.clone()),
                _ => None,
            }
        }) else {
            continue;
        };
        let e = by_job.entry(job).or_default();
        e.0 += span.t_end - span.t_start;
        e.1 += 1;
    }
    by_job.into_iter().map(|(job, (t, c))| (job, t, c)).collect()
}

/// Summary statistics of one latency population (epoch total times,
/// per-tenant completions, ...): count, mean, P50/P99 by nearest rank,
/// max. All zeros for an empty population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Population size.
    pub count: u64,
    /// Arithmetic mean (integer division of the sum).
    pub mean: Time,
    /// Median (nearest rank).
    pub p50: Time,
    /// 99th percentile (nearest rank).
    pub p99: Time,
    /// Maximum.
    pub max: Time,
}

impl LatencyStats {
    /// Summarize a latency population.
    pub fn of(samples: impl IntoIterator<Item = Time>) -> Self {
        let v: Vec<Time> = samples.into_iter().collect();
        if v.is_empty() {
            return LatencyStats::default();
        }
        let sum: Time = v.iter().sum();
        LatencyStats {
            count: v.len() as u64,
            mean: sum / v.len() as Time,
            p50: gbcr_core::cluster::percentile(v.iter().copied(), 0.50),
            p99: gbcr_core::cluster::percentile(v.iter().copied(), 0.99),
            max: *v.iter().max().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbcr_des::trace::{Span, Track};

    fn span(name: &'static str, job: Option<&str>, t0: Time, t1: Time) -> Span {
        Span {
            track: Track::Coordinator,
            name,
            t_start: t0,
            t_end: t1,
            args: job
                .map(|j| vec![("job", ArgValue::Str(j.to_owned()))])
                .unwrap_or_default(),
        }
    }

    #[test]
    fn splits_interleaved_spans_by_job() {
        let trace = TraceData {
            spans: vec![
                span("phase.begin", Some("b"), 0, 10),
                span("phase.checkpoint", Some("a"), 5, 25),
                span("epoch", Some("a"), 0, 30),
                span("phase.end", None, 0, 100), // no job arg: ignored
            ],
            ..TraceData::default()
        };
        assert_eq!(
            span_time_by_job(&trace, "phase."),
            vec![("a".into(), 20, 1), ("b".into(), 10, 1)]
        );
        assert_eq!(
            span_time_by_job(&trace, ""),
            vec![("a".into(), 50, 2), ("b".into(), 10, 1)]
        );
    }

    #[test]
    fn latency_stats_summary() {
        assert_eq!(LatencyStats::of([]), LatencyStats::default());
        let s = LatencyStats::of(1..=100);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }
}
