//! Per-cell cost registry for cost-aware sweep scheduling.
//!
//! Every sweep cell (one `(spec, cfg)` simulation) is keyed by a stable
//! string; after a cell runs, [`run_sweep`](crate::run_sweep) records its
//! wall time and simulated-event count here. The bench harness persists
//! the registry into `BENCH_harness.json` and seeds it back on the next
//! run, so `run_sweep` can dispatch cells **longest-expected-first**
//! (LPT): with a long-pole cell started first, the pool drains with far
//! less tail idle time than naive task order, while the results are still
//! reassembled in cell-index order — output stays byte-identical.
//!
//! Unknown cells (no prior record) are treated as the most expensive and
//! dispatched first; their measured cost lands in the registry for the
//! next run.

use gbcr_des::trace::PhaseStat;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Measured cost of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCost {
    /// Wall-clock milliseconds the cell took (on whatever host recorded it;
    /// only the relative ordering matters for scheduling).
    pub wall_ms: f64,
    /// Simulated events the cell dispatched (host-independent).
    pub events: u64,
}

fn registry() -> &'static Mutex<HashMap<String, CellCost>> {
    static REG: OnceLock<Mutex<HashMap<String, CellCost>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record (or overwrite) the measured cost of a cell.
pub fn record_cell_cost(key: &str, wall_ms: f64, events: u64) {
    registry().lock().insert(key.to_owned(), CellCost { wall_ms, events });
}

/// Seed a cost from a previous run's persisted record (identical to
/// [`record_cell_cost`]; named for intent at the call site).
pub fn seed_cell_cost(key: &str, wall_ms: f64, events: u64) {
    record_cell_cost(key, wall_ms, events);
}

/// Look up the known cost of a cell, if any.
pub fn cell_cost(key: &str) -> Option<CellCost> {
    registry().lock().get(key).copied()
}

/// Snapshot of every recorded cell, sorted by key (stable for persisting).
pub fn cell_costs_snapshot() -> Vec<(String, CellCost)> {
    let mut v: Vec<(String, CellCost)> =
        registry().lock().iter().map(|(k, c)| (k.clone(), *c)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn phases_registry() -> &'static Mutex<HashMap<String, Vec<PhaseStat>>> {
    static REG: OnceLock<Mutex<HashMap<String, Vec<PhaseStat>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record (or overwrite) the per-phase latency statistics a cell's traced
/// run produced. Only cells run with tracing enabled have anything to
/// record; the sweep harness skips empty stat sets.
pub fn record_cell_phases(key: &str, phases: Vec<PhaseStat>) {
    phases_registry().lock().insert(key.to_owned(), phases);
}

/// Look up the recorded phase statistics of a cell, if any.
pub fn cell_phases(key: &str) -> Option<Vec<PhaseStat>> {
    phases_registry().lock().get(key).cloned()
}

/// Snapshot of every cell's phase statistics, sorted by key (stable for
/// persisting into figure JSON).
pub fn cell_phases_snapshot() -> Vec<(String, Vec<PhaseStat>)> {
    let mut v: Vec<(String, Vec<PhaseStat>)> =
        phases_registry().lock().iter().map(|(k, p)| (k.clone(), p.clone())).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_lookup_snapshot_roundtrip() {
        let stat = PhaseStat {
            name: "phase.checkpoint".into(),
            count: 2,
            total_ns: 100,
            min_ns: 40,
            max_ns: 60,
        };
        record_cell_phases("t/ph/a", vec![stat.clone()]);
        assert_eq!(cell_phases("t/ph/a"), Some(vec![stat]));
        assert_eq!(cell_phases("t/ph/missing"), None);
        let snap = cell_phases_snapshot();
        assert!(snap.iter().any(|(k, p)| k == "t/ph/a" && p.len() == 1));
    }

    #[test]
    fn record_lookup_snapshot_roundtrip() {
        record_cell_cost("t/unit/a", 12.5, 100);
        record_cell_cost("t/unit/b", 2.0, 7);
        record_cell_cost("t/unit/a", 13.0, 101); // overwrite wins
        assert_eq!(cell_cost("t/unit/a"), Some(CellCost { wall_ms: 13.0, events: 101 }));
        assert_eq!(cell_cost("t/unit/missing"), None);
        let snap = cell_costs_snapshot();
        let ours: Vec<_> = snap.iter().filter(|(k, _)| k.starts_with("t/unit/")).collect();
        assert_eq!(ours.len(), 2);
        assert!(ours[0].0 < ours[1].0, "snapshot sorted by key");
    }
}
