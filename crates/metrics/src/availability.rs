//! Availability, lost-work and goodput accounting for supervised faulted
//! runs.
//!
//! A supervised run under a failure process spends its wall-clock on four
//! things: useful computation (what a failure-free run would have cost),
//! checkpoint overhead, recomputation of work lost to failures, and
//! restart/backoff. This module collapses a run's totals into the three
//! operational numbers the fault sweep tables report:
//!
//! * **availability** — `useful / wall`, the fraction of cluster time that
//!   produced the result;
//! * **lost work** — `wall − useful` in node-seconds, everything burned on
//!   overhead + recomputation + restarts, scaled by cluster size;
//! * **goodput** — `n × availability`, the effective number of nodes'
//!   worth of useful throughput the cluster sustained.

use gbcr_core::{RecoveryCounters, SupervisedReport};

/// Sum the recovery-protocol counters over a set of supervised runs — the
/// fleet-level robustness totals a fault-sweep cell reports alongside its
/// availability numbers.
pub fn sum_counters<'a, I>(reports: I) -> RecoveryCounters
where
    I: IntoIterator<Item = &'a SupervisedReport>,
{
    let mut total = RecoveryCounters::default();
    for r in reports {
        total.merge(&r.counters);
    }
    total
}

/// Accounting summary of one supervised faulted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultAccounting {
    /// Total wall-clock seconds across every attempt, including restart
    /// backoff.
    pub wall: f64,
    /// Useful seconds: the failure-free completion time of the same job.
    pub useful: f64,
    /// `useful / wall` in `[0, 1]`.
    pub availability: f64,
    /// `(wall − useful) × n` node-seconds burned on overhead,
    /// recomputation and restarts.
    pub lost_work: f64,
    /// `n × availability`: effective useful node count.
    pub goodput: f64,
    /// Failures survived on the way to the finish.
    pub failures: usize,
    /// Attempts consumed (failures + the final successful one).
    pub attempts: usize,
}

impl FaultAccounting {
    /// Collapse a run's totals. `wall` is the supervised run's total wall
    /// seconds (all attempts + backoff); `useful` the failure-free
    /// completion seconds of the same job; `n` the rank count.
    pub fn from_run(wall: f64, useful: f64, n: u32, failures: usize, attempts: usize) -> Self {
        assert!(wall > 0.0 && useful > 0.0, "wall {wall} and useful {useful} must be positive");
        let availability = (useful / wall).min(1.0);
        FaultAccounting {
            wall,
            useful,
            availability,
            lost_work: (wall - useful).max(0.0) * f64::from(n),
            goodput: f64::from(n) * availability,
            failures,
            attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_fully_available() {
        let a = FaultAccounting::from_run(100.0, 100.0, 8, 0, 1);
        assert_eq!(a.availability, 1.0);
        assert_eq!(a.lost_work, 0.0);
        assert_eq!(a.goodput, 8.0);
    }

    #[test]
    fn lost_work_scales_with_cluster_size() {
        let a = FaultAccounting::from_run(150.0, 100.0, 16, 2, 3);
        assert!((a.availability - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.lost_work - 50.0 * 16.0).abs() < 1e-9);
        assert!((a.goodput - 16.0 * 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.failures, 2);
        assert_eq!(a.attempts, 3);
    }

    #[test]
    fn availability_caps_at_one() {
        // Supervised wall can undercut the baseline by scheduling jitter;
        // availability still reads as 1.
        let a = FaultAccounting::from_run(99.9, 100.0, 4, 0, 1);
        assert_eq!(a.availability, 1.0);
        assert_eq!(a.lost_work, 0.0);
    }
}
