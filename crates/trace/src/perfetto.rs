//! Chrome/Perfetto trace JSON export and a minimal parser for validating
//! exported files (no third-party JSON crates are available offline, so
//! both directions are hand-rolled).
//!
//! The export uses the Chrome trace-event format Perfetto ingests
//! directly: an object `{"traceEvents": [...]}` whose events are `"X"`
//! (complete span, `ts` + `dur`), `"i"` (instant), and `"M"` (metadata:
//! process/thread names). Timestamps are **virtual-time microseconds**
//! with the nanosecond remainder as a decimal fraction, so a trace loads
//! in `ui.perfetto.dev` with the simulation's own clock.

use crate::{ArgValue, Instant, Span, Time, TraceData, Track};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// (pid, tid, process name, thread label) for a track.
fn track_ids(t: Track) -> (u64, u64, &'static str, String) {
    match t {
        Track::Sim => (1, 0, "scheduler", "dispatch".to_owned()),
        Track::Coordinator => (2, 0, "coordinator", "protocol".to_owned()),
        Track::Rank(r) => (3, u64::from(r), "ranks", format!("rank {r}")),
        Track::Node(n) => (4, u64::from(n), "fabric", format!("node {n}")),
        Track::Storage(c) => (5, u64::from(c), "storage", format!("client {c}")),
    }
}

/// Render `ns` as fractional microseconds (`123.456`), exact for any ns.
fn us(ns: Time) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Serialize recorded trace data as Chrome/Perfetto trace JSON.
pub fn to_chrome_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(256 + 160 * data.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    // Metadata: name every process and thread we are about to emit on.
    let mut procs: BTreeMap<u64, &'static str> = BTreeMap::new();
    let mut threads: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let tracks = data
        .spans
        .iter()
        .map(|s| s.track)
        .chain(data.instants.iter().map(|i| i.event.track()));
    for t in tracks {
        let (pid, tid, pname, tname) = track_ids(t);
        procs.insert(pid, pname);
        threads.entry((pid, tid)).or_insert(tname);
    }
    for (pid, pname) in &procs {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{pname}\"}}}}"
        );
    }
    for ((pid, tid), tname) in &threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{tname}\"}}}}"
        );
    }

    for Span { track, name, t_start, t_end, args } in &data.spans {
        let (pid, tid, _, _) = track_ids(*track);
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\
             \"ts\":{},\"dur\":{},\"args\":",
            us(*t_start),
            us(t_end.saturating_sub(*t_start)),
        );
        write_args(&mut out, args);
        out.push('}');
    }

    for Instant { time, event } in &data.instants {
        let (pid, tid, _, _) = track_ids(event.track());
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"name\":\"{}\",\
             \"ts\":{},\"args\":{{\"detail\":",
            event.category(),
            us(*time),
        );
        out.push('"');
        escape_into(&mut out, &event.message());
        out.push_str("\"}}");
    }

    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parser (validation side)
// ---------------------------------------------------------------------

/// A parsed JSON value (only what trace validation needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered not preserved (keyed map).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.i)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("utf8"))?;
        s.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.err("utf8 in \\u"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 code point.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("utf8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse arbitrary JSON text (the validation side of the exporter).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// One event read back from an exported trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase: `X` (complete span), `i` (instant), `M` (metadata).
    pub ph: char,
    /// Process id (track group).
    pub pid: u64,
    /// Thread id within the process.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Start timestamp, virtual ns (rounded back from µs).
    pub ts_ns: u64,
    /// Duration, virtual ns (0 for instants/metadata).
    pub dur_ns: u64,
}

/// A parsed, schema-checked Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    /// All events, in file order.
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// Only the complete spans (`ph == 'X'`).
    pub fn spans(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.events.iter().filter(|e| e.ph == 'X')
    }

    /// Spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ChromeEvent> {
        self.spans().filter(move |e| e.name == name)
    }

    /// Verify that on every (pid, tid) row the spans either nest or are
    /// disjoint — the structural invariant Perfetto's renderer assumes.
    pub fn well_nested(&self) -> bool {
        let mut rows: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
        for e in self.spans() {
            rows.entry((e.pid, e.tid)).or_default().push((e.ts_ns, e.ts_ns + e.dur_ns));
        }
        for intervals in rows.values_mut() {
            // Start ascending, end descending: an enclosing span that starts
            // at the same instant as its child must be visited first.
            intervals.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            let mut open: Vec<u64> = Vec::new(); // stack of end times
            for &(start, end) in intervals.iter() {
                while let Some(&top) = open.last() {
                    if top <= start {
                        open.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&top) = open.last() {
                    if end > top {
                        return false; // partial overlap
                    }
                }
                open.push(end);
            }
        }
        true
    }
}

fn us_to_ns(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

/// Parse and schema-check an exported Chrome/Perfetto trace file. Accepts
/// both the object form (`{"traceEvents": [...]}`) and a bare event
/// array. Returns an error describing the first malformed event.
pub fn parse_chrome_json(s: &str) -> Result<ChromeTrace, String> {
    let root = parse_json(s)?;
    let events = match &root {
        Json::Arr(_) => root.as_arr().expect("checked"),
        Json::Obj(_) => root
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing traceEvents array")?,
        _ => return Err("trace root must be an object or array".into()),
    };
    let mut out = ChromeTrace::default();
    for (i, ev) in events.iter().enumerate() {
        let bad = |what: &str| format!("event {i}: {what}");
        let ph_str = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing ph"))?;
        let ph = ph_str.chars().next().ok_or_else(|| bad("empty ph"))?;
        if !matches!(ph, 'X' | 'i' | 'I' | 'M' | 'B' | 'E' | 'b' | 'e' | 'C') {
            return Err(bad(&format!("unsupported ph '{ph}'")));
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let ts = match ph {
            'M' => 0.0,
            _ => ev.get("ts").and_then(Json::as_f64).ok_or_else(|| bad("missing ts"))?,
        };
        let dur = match ph {
            'X' => ev.get("dur").and_then(Json::as_f64).ok_or_else(|| bad("X without dur"))?,
            _ => 0.0,
        };
        if ts < 0.0 || dur < 0.0 {
            return Err(bad("negative time"));
        }
        out.events.push(ChromeEvent {
            ph,
            pid,
            tid,
            name,
            ts_ns: us_to_ns(ts),
            dur_ns: us_to_ns(dur),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Span, Tracer, TraceLevel};

    fn sample() -> TraceData {
        let t = Tracer::new(TraceLevel::Phases);
        t.record_span(Span {
            track: Track::Coordinator,
            name: "epoch",
            t_start: 1_000,
            t_end: 9_000,
            args: vec![("epoch", ArgValue::U64(0)), ("note", ArgValue::Str("a\"b".into()))],
        });
        t.record_span(Span {
            track: Track::Coordinator,
            name: "phase.begin",
            t_start: 1_500,
            t_end: 2_500,
            args: Vec::new(),
        });
        t.record_instant(3_000, Event::NetConnect { a: 0, b: 1 });
        t.take()
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let json = to_chrome_json(&sample());
        let trace = parse_chrome_json(&json).expect("valid");
        assert!(trace.well_nested());
        let epoch: Vec<_> = trace.spans_named("epoch").collect();
        assert_eq!(epoch.len(), 1);
        assert_eq!(epoch[0].ts_ns, 1_000);
        assert_eq!(epoch[0].dur_ns, 8_000);
        let inner: Vec<_> = trace.spans_named("phase.begin").collect();
        assert_eq!(inner[0].ts_ns, 1_500);
        assert!(trace.events.iter().any(|e| e.ph == 'i' && e.name == "net.connect"));
        assert!(trace.events.iter().any(|e| e.ph == 'M' && e.name == "process_name"));
    }

    #[test]
    fn nesting_violations_are_detected() {
        let json = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":0,"name":"a","ts":0,"dur":10,"args":{}},
            {"ph":"X","pid":1,"tid":0,"name":"b","ts":5,"dur":10,"args":{}}
        ]}"#;
        let trace = parse_chrome_json(json).expect("parses");
        assert!(!trace.well_nested(), "partial overlap must be flagged");
    }

    #[test]
    fn malformed_events_are_rejected() {
        assert!(parse_chrome_json("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(parse_chrome_json("[{\"name\":\"x\"}]").is_err());
        assert!(parse_chrome_json("not json").is_err());
        // X without dur
        assert!(parse_chrome_json(
            "[{\"ph\":\"X\",\"name\":\"x\",\"ts\":1}]"
        )
        .is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let json = to_chrome_json(&sample());
        let root = parse_json(&json).expect("valid");
        let evs = root.get("traceEvents").and_then(Json::as_arr).expect("array");
        let epoch = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("epoch"))
            .expect("epoch span present");
        let note = epoch
            .get("args")
            .and_then(|a| a.get("note"))
            .and_then(Json::as_str)
            .expect("note arg");
        assert_eq!(note, "a\"b");
    }
}
