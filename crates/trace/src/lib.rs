//! # gbcr-trace — structured span/instant tracing for the simulator
//!
//! The measurement substrate for the paper's "where does the epoch go"
//! questions: typed [`Span`]s (an interval on a [`Track`]) and typed
//! instant [`Event`]s, recorded into a [`Tracer`] owned by the simulation.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Every instrumentation point is guarded by a
//!    single relaxed atomic load ([`Tracer::enabled`]); the tracer never
//!    schedules events, never sleeps, and never advances virtual time, so a
//!    traced run is *byte-identical* to an untraced one in every committed
//!    table.
//! 2. **Typed, not stringly.** The old `TraceEvent { category, message }`
//!    is retired; every recorded instant is an [`Event`] variant with real
//!    fields. The legacy category strings survive as [`Event::category`]
//!    so existing filters keep working.
//! 3. **Exportable.** [`perfetto::to_chrome_json`] renders a recorded
//!    [`TraceData`] as Chrome/Perfetto trace JSON (virtual-time
//!    microseconds, loadable in `ui.perfetto.dev`), and
//!    [`perfetto::parse_chrome_json`] parses it back for validation.
//!
//! Two capture levels keep volume sane: [`TraceLevel::Phases`] records
//! protocol/infrastructure spans and instants only (bounded by epochs ×
//! ranks); [`TraceLevel::Full`] adds per-message MPI spans and scheduler
//! dispatch instants.

#![warn(missing_docs)]

pub mod perfetto;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};

/// Virtual time in nanoseconds (mirrors `gbcr_des::Time`; this crate sits
/// below the engine so it cannot depend on it).
pub type Time = u64;

// ---------------------------------------------------------------------
// Tracks
// ---------------------------------------------------------------------

/// Which timeline a span or instant belongs to. Tracks map 1:1 onto
/// Perfetto process/thread rows (see `perfetto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The scheduler itself (dispatch instants, timer fires).
    Sim,
    /// The checkpoint coordinator process (the five protocol phases).
    Coordinator,
    /// One MPI rank (application + controller activity).
    Rank(u32),
    /// One fabric endpoint (connection lifecycle, deliveries).
    Node(u32),
    /// One storage client's transfers.
    Storage(u32),
}

/// One argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

/// A named span argument.
pub type Arg = (&'static str, ArgValue);

/// A completed interval on a track. Spans are recorded *after* they end
/// (the instrumentation point captures `t_start`, does the work, then
/// records), so there is no begin/end pairing state to corrupt.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Timeline this span belongs to.
    pub track: Track,
    /// Span name (static taxonomy; see DESIGN.md §6).
    pub name: &'static str,
    /// Virtual start time, ns.
    pub t_start: Time,
    /// Virtual end time, ns (`>= t_start`).
    pub t_end: Time,
    /// Structured arguments.
    pub args: Vec<Arg>,
}

impl Span {
    /// Span duration in virtual ns.
    pub fn duration(&self) -> Time {
        self.t_end.saturating_sub(self.t_start)
    }

    /// Look up a `U64` argument by name.
    pub fn arg_u64(&self, name: &str) -> Option<u64> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if *k == name => Some(*n),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------
// Typed instant events
// ---------------------------------------------------------------------

/// What stage a forced link disconnect was in when observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapStage {
    /// Connection was idle; dropped immediately.
    Idle,
    /// Traffic in flight; connection moved to draining.
    Draining,
    /// The drain completed and the connection finished dropping.
    Drained,
}

/// A typed instant event. Replaces the old stringly
/// `TraceEvent { category, message }`: every variant carries real fields,
/// and the legacy category string survives as [`Event::category`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Scheduler dispatched a plain wake ([`TraceLevel::Full`] only).
    SchedWake {
        /// Woken process index.
        pid: u32,
    },
    /// Scheduler dispatched a live (uncancelled) timer wake
    /// ([`TraceLevel::Full`] only).
    SchedTimer {
        /// Woken process index.
        pid: u32,
    },
    /// Scheduler dispatched a live callback ([`TraceLevel::Full`] only).
    SchedCall,
    /// A fabric connection was established (initiator paid setup).
    NetConnect {
        /// Initiating endpoint.
        a: u32,
        /// Peer endpoint.
        b: u32,
    },
    /// A fabric connection finished an orderly teardown.
    NetTeardown {
        /// Endpoint that ran the teardown.
        a: u32,
        /// Peer endpoint.
        b: u32,
    },
    /// A forced disconnect (fault injection) hit a connection.
    NetFlap {
        /// One endpoint of the flapped link.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// How far the drop got when observed.
        stage: FlapStage,
    },
    /// A message landed at its destination endpoint.
    NetDeliver {
        /// Sender endpoint.
        from: u32,
        /// Receiver endpoint.
        to: u32,
        /// Wire bytes charged.
        bytes: u64,
    },
    /// An MPI rank's node was marked failed.
    NodeFailed {
        /// The failed rank.
        rank: u32,
    },
    /// Coordinator aborted the current epoch attempt.
    CkptAbort {
        /// Epoch number.
        epoch: u64,
        /// Why (deadline phase, straggler description, ...).
        reason: String,
    },
    /// Coordinator committed an epoch end-to-end.
    CkptEpochDone {
        /// Epoch number.
        epoch: u64,
        /// Number of groups checkpointed.
        groups: u64,
    },
    /// Manifest commit was suppressed (torn/outage); previous manifest
    /// stays authoritative.
    CkptManifestSkip {
        /// Epoch whose manifest failed to publish.
        epoch: u64,
    },
    /// A rank finished writing its checkpoint for an epoch.
    CkptRankDone {
        /// The reporting rank.
        rank: u32,
        /// Epoch number.
        epoch: u64,
    },
    /// A rank processed an epoch abort.
    CkptRankAbort {
        /// The aborting rank.
        rank: u32,
        /// Epoch number.
        epoch: u64,
    },
    /// BLCR wrote a checkpoint image.
    BlcrCheckpoint {
        /// Rank whose image was written.
        rank: u32,
        /// Storage object name.
        name: String,
    },
    /// BLCR restored a rank from an image.
    BlcrRestart {
        /// Restored rank.
        rank: u32,
        /// Storage object name.
        name: String,
    },
    /// A restart found its image missing/torn.
    BlcrImageLost {
        /// Rank whose image was lost.
        rank: u32,
        /// Storage object name.
        name: String,
    },
    /// Fault injector killed a rank's node.
    FaultNodeKill {
        /// Killed rank.
        rank: u32,
    },
    /// A node death aborted the whole job (no checkpointing to save it).
    FaultAbort {
        /// Rank whose death aborted the job.
        rank: u32,
    },
    /// Cluster-wide power failure (crash-stop of every rank).
    ClusterCrash,
    /// Fault injector flapped a link between two ranks.
    FaultLinkFlap {
        /// One rank.
        a: u32,
        /// The other rank.
        b: u32,
    },
    /// Fault injector stalled a rank inside a protocol phase.
    FaultPhaseStall {
        /// Stalled rank.
        rank: u32,
        /// Description (phase, stall length).
        detail: String,
    },
    /// Fault injector killed the node hosting the checkpoint coordinator
    /// (control-plane loss; every rank survives).
    CoordinatorKilled {
        /// Election term that died with the coordinator.
        term: u64,
    },
    /// A standby's coordinator lease expired without a heartbeat.
    HeartbeatMissed {
        /// The standby's rank.
        node: u32,
        /// Term whose lease lapsed.
        term: u64,
    },
    /// A standby started a failover election (became a candidate).
    ElectionStart {
        /// The term being contested.
        term: u64,
        /// The candidate's rank.
        candidate: u32,
    },
    /// A candidate collected a majority and took the coordinator role.
    ElectionWon {
        /// The won term.
        term: u64,
        /// The new leader's rank.
        leader: u32,
    },
    /// A write's bytes moved but the object was never published.
    StorageTorn {
        /// Writing client.
        client: u32,
        /// Object name.
        name: String,
    },
    /// A write errored out immediately.
    StorageFail {
        /// Writing client.
        client: u32,
        /// Object name.
        name: String,
    },
    /// A checked write / meta commit bounced off an outage window.
    StorageUnavailable {
        /// Writing client.
        client: u32,
        /// Object name.
        name: String,
    },
    /// An outage window was opened or extended.
    StorageOutage {
        /// Instant the server accepts writes again.
        until: Time,
    },
    /// A metadata commit was torn (manifest not published).
    StorageTornMeta {
        /// Committing client.
        client: u32,
        /// Manifest name.
        name: String,
    },
    /// A metadata record became visible (manifest commit).
    StorageCommit {
        /// Committing client.
        client: u32,
        /// Manifest name.
        name: String,
    },
    /// Bandwidth derate changed (brown-out injection).
    StorageDerate {
        /// New derate factor, 1.0 = healthy.
        factor: f64,
    },
    /// A transfer stream was admitted to the shared server.
    StorageStart {
        /// Client id.
        client: u32,
        /// `"Write"` or `"Read"`.
        kind: &'static str,
        /// Bytes to move.
        bytes: u64,
        /// Stream id.
        id: u64,
    },
    /// A transfer stream completed.
    StorageDone {
        /// Client id.
        client: u32,
        /// Stream id.
        id: u64,
    },
    /// A failing write was redirected to a standby target.
    StorageFailover {
        /// Writing client.
        client: u32,
        /// Object name.
        name: String,
        /// Index of the target that accepted the write.
        target: u64,
    },
    /// A checkpoint image copy was pushed to a remote peer node's
    /// in-memory store (diskless replicated backend).
    StorageReplicate {
        /// Writing client (owning rank).
        client: u32,
        /// Node receiving the replica copy.
        peer: u32,
        /// Object name.
        name: String,
    },
    /// A restart read was served from a remote replica because the owner
    /// node's local copy was gone.
    StorageRecoverRemote {
        /// Reading client (restarting rank).
        client: u32,
        /// Node the surviving replica was read from.
        peer: u32,
        /// Object name.
        name: String,
    },
    /// A node crash wiped that node's in-memory store (local images and
    /// any replica copies it held for peers).
    StorageNodeLost {
        /// The crashed node.
        node: u32,
        /// Objects destroyed with it.
        objects: u64,
    },
    /// Free-form marker for tests and one-off instrumentation.
    Mark {
        /// Category tag (matches the legacy string-category filters).
        category: &'static str,
        /// Free-form message.
        message: String,
    },
}

impl Event {
    /// The legacy category string for this event (what the retired
    /// `TraceEvent.category` field held).
    pub fn category(&self) -> &'static str {
        match self {
            Event::SchedWake { .. } => "sched.wake",
            Event::SchedTimer { .. } => "sched.timer",
            Event::SchedCall => "sched.call",
            Event::NetConnect { .. } => "net.connect",
            Event::NetTeardown { .. } => "net.teardown",
            Event::NetFlap { .. } => "net.flap",
            Event::NetDeliver { .. } => "net.deliver",
            Event::NodeFailed { .. } => "mpi.node_failed",
            Event::CkptAbort { .. } => "ckpt.abort",
            Event::CkptEpochDone { .. } => "ckpt.epoch_done",
            Event::CkptManifestSkip { .. } => "ckpt.manifest_skip",
            Event::CkptRankDone { .. } => "ckpt.rank_done",
            Event::CkptRankAbort { .. } => "ckpt.rank_abort",
            Event::BlcrCheckpoint { .. } => "blcr.checkpoint",
            Event::BlcrRestart { .. } => "blcr.restart",
            Event::BlcrImageLost { .. } => "blcr.image_lost",
            Event::FaultNodeKill { .. } => "fault.node_kill",
            Event::FaultAbort { .. } => "fault.abort",
            Event::ClusterCrash => "crash",
            Event::FaultLinkFlap { .. } => "fault.link_flap",
            Event::FaultPhaseStall { .. } => "fault.phase_stall",
            Event::CoordinatorKilled { .. } => "fault.coordinator_kill",
            Event::HeartbeatMissed { .. } => "election.heartbeat_missed",
            Event::ElectionStart { .. } => "election.start",
            Event::ElectionWon { .. } => "election.won",
            Event::StorageTorn { .. } => "storage.torn",
            Event::StorageFail { .. } => "storage.fail",
            Event::StorageUnavailable { .. } => "storage.unavailable",
            Event::StorageOutage { .. } => "storage.outage",
            Event::StorageTornMeta { .. } => "storage.torn_meta",
            Event::StorageCommit { .. } => "storage.commit",
            Event::StorageDerate { .. } => "storage.derate",
            Event::StorageStart { .. } => "storage.start",
            Event::StorageDone { .. } => "storage.done",
            Event::StorageFailover { .. } => "storage.failover",
            Event::StorageReplicate { .. } => "storage.replicate",
            Event::StorageRecoverRemote { .. } => "storage.recover_remote",
            Event::StorageNodeLost { .. } => "storage.node_lost",
            Event::Mark { category, .. } => category,
        }
    }

    /// Which track the event renders on.
    pub fn track(&self) -> Track {
        match self {
            Event::SchedWake { .. } | Event::SchedTimer { .. } | Event::SchedCall => Track::Sim,
            Event::NetConnect { a, .. }
            | Event::NetTeardown { a, .. }
            | Event::NetFlap { a, .. }
            | Event::FaultLinkFlap { a, .. } => Track::Node(*a),
            Event::NetDeliver { to, .. } => Track::Node(*to),
            Event::NodeFailed { rank }
            | Event::CkptRankDone { rank, .. }
            | Event::CkptRankAbort { rank, .. }
            | Event::BlcrCheckpoint { rank, .. }
            | Event::BlcrRestart { rank, .. }
            | Event::BlcrImageLost { rank, .. }
            | Event::FaultNodeKill { rank }
            | Event::FaultAbort { rank }
            | Event::FaultPhaseStall { rank, .. } => Track::Rank(*rank),
            Event::CkptAbort { .. }
            | Event::CkptEpochDone { .. }
            | Event::CkptManifestSkip { .. }
            | Event::ClusterCrash
            | Event::CoordinatorKilled { .. }
            | Event::ElectionWon { .. } => Track::Coordinator,
            Event::HeartbeatMissed { node, .. } => Track::Rank(*node),
            Event::ElectionStart { candidate, .. } => Track::Rank(*candidate),
            Event::StorageTorn { client, .. }
            | Event::StorageFail { client, .. }
            | Event::StorageUnavailable { client, .. }
            | Event::StorageTornMeta { client, .. }
            | Event::StorageCommit { client, .. }
            | Event::StorageStart { client, .. }
            | Event::StorageDone { client, .. }
            | Event::StorageFailover { client, .. }
            | Event::StorageReplicate { client, .. }
            | Event::StorageRecoverRemote { client, .. } => Track::Storage(*client),
            Event::StorageNodeLost { node, .. } => Track::Storage(*node),
            Event::StorageOutage { .. } | Event::StorageDerate { .. } => Track::Storage(u32::MAX),
            Event::Mark { .. } => Track::Sim,
        }
    }

    /// A human-readable rendering (what the retired free-form message
    /// roughly said).
    pub fn message(&self) -> String {
        match self {
            Event::SchedWake { pid } => format!("wake p{pid}"),
            Event::SchedTimer { pid } => format!("timer wake p{pid}"),
            Event::SchedCall => "callback".into(),
            Event::NetConnect { a, b } => format!("n{a} <-> n{b}"),
            Event::NetTeardown { a, b } => format!("n{a} <-> n{b}"),
            Event::NetFlap { a, b, stage } => format!("n{a} <-> n{b} ({stage:?})"),
            Event::NetDeliver { from, to, bytes } => format!("n{from} -> n{to} ({bytes}B)"),
            Event::NodeFailed { rank } => format!("rank {rank}"),
            Event::CkptAbort { epoch, reason } => format!("epoch {epoch}: {reason}"),
            Event::CkptEpochDone { epoch, groups } => {
                format!("epoch {epoch} ({groups} groups)")
            }
            Event::CkptManifestSkip { epoch } => format!("epoch {epoch}"),
            Event::CkptRankDone { rank, epoch } => format!("rank {rank} epoch {epoch}"),
            Event::CkptRankAbort { rank, epoch } => format!("rank {rank} epoch {epoch}"),
            Event::BlcrCheckpoint { rank, name } => format!("rank={rank} -> {name}"),
            Event::BlcrRestart { rank, name } => format!("rank={rank} <- {name}"),
            Event::BlcrImageLost { rank, name } => format!("rank={rank} -> {name}"),
            Event::FaultNodeKill { rank } => format!("rank {rank}"),
            Event::FaultAbort { rank } => format!("rank {rank} down: job aborted"),
            Event::ClusterCrash => "cluster power failure".into(),
            Event::FaultLinkFlap { a, b } => format!("rank {a} <-> rank {b}"),
            Event::FaultPhaseStall { rank, detail } => format!("rank {rank}: {detail}"),
            Event::CoordinatorKilled { term } => format!("coordinator down (term {term})"),
            Event::HeartbeatMissed { node, term } => {
                format!("standby {node}: lease lapsed (term {term})")
            }
            Event::ElectionStart { term, candidate } => {
                format!("rank {candidate} contests term {term}")
            }
            Event::ElectionWon { term, leader } => {
                format!("rank {leader} leads term {term}")
            }
            Event::StorageTorn { client, name }
            | Event::StorageFail { client, name }
            | Event::StorageUnavailable { client, name }
            | Event::StorageTornMeta { client, name }
            | Event::StorageCommit { client, name } => format!("client={client} name={name}"),
            Event::StorageOutage { until } => format!("until={until}ns"),
            Event::StorageDerate { factor } => format!("x{factor}"),
            Event::StorageStart { client, kind, bytes, id } => {
                format!("client={client} kind={kind} bytes={bytes} id={id}")
            }
            Event::StorageDone { client, id } => format!("client={client} id={id}"),
            Event::StorageFailover { client, name, target } => {
                format!("client={client} name={name} target={target}")
            }
            Event::StorageReplicate { client, peer, name }
            | Event::StorageRecoverRemote { client, peer, name } => {
                format!("client={client} peer={peer} name={name}")
            }
            Event::StorageNodeLost { node, objects } => {
                format!("node={node} objects={objects}")
            }
            Event::Mark { message, .. } => message.clone(),
        }
    }
}

/// A recorded instant: an [`Event`] stamped with virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Instant {
    /// Virtual time of the event, ns.
    pub time: Time,
    /// The typed event.
    pub event: Event,
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

/// How much to capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the default; one relaxed load per site).
    Off,
    /// Protocol and infrastructure spans/instants: coordinator phases,
    /// rank checkpoint sub-phases, connection lifecycle, storage
    /// transfers. Bounded by epochs × ranks, safe to leave on across a
    /// whole sweep.
    Phases,
    /// Everything in `Phases` plus per-message MPI operation spans and
    /// scheduler dispatch instants. For single-run deep dives.
    Full,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Phases,
            _ => TraceLevel::Full,
        }
    }
}

/// Everything one simulation recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Completed spans, in recording (i.e. end-time) order.
    pub spans: Vec<Span>,
    /// Instant events, in recording order.
    pub instants: Vec<Instant>,
}

impl TraceData {
    /// Total recorded items.
    pub fn len(&self) -> usize {
        self.spans.len() + self.instants.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty()
    }

    /// All spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// All instants whose event maps to the given legacy category.
    pub fn instants_in(&self, category: &str) -> Vec<&Instant> {
        self.instants.iter().filter(|i| i.event.category() == category).collect()
    }
}

/// The per-simulation recorder. Owned by the engine; instrumentation
/// points reach it through `SimHandle`. All recording methods are no-ops
/// unless the level says otherwise, and the *only* cost on the disabled
/// path is one relaxed atomic load — the tracer never schedules events or
/// advances virtual time, so enabling it cannot change simulation output.
pub struct Tracer {
    level: AtomicU8,
    data: Mutex<TraceData>,
}

impl Tracer {
    /// Create a tracer at the given capture level.
    pub fn new(level: TraceLevel) -> Self {
        Tracer { level: AtomicU8::new(level as u8), data: Mutex::new(TraceData::default()) }
    }

    /// Change the capture level (already-recorded data is kept).
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Current capture level.
    pub fn level(&self) -> TraceLevel {
        TraceLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Whether anything is being captured. This is the one-atomic-load
    /// fast path every instrumentation point pays when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) != 0
    }

    /// Whether per-message / scheduler detail is being captured.
    #[inline]
    pub fn detailed(&self) -> bool {
        self.level.load(Ordering::Relaxed) >= TraceLevel::Full as u8
    }

    /// Record an instant (caller has already checked the level).
    pub fn record_instant(&self, time: Time, event: Event) {
        self.data.lock().instants.push(Instant { time, event });
    }

    /// Record a completed span (caller has already checked the level).
    pub fn record_span(&self, span: Span) {
        self.data.lock().spans.push(span);
    }

    /// Move the recorded data out, leaving the tracer empty.
    pub fn take(&self) -> TraceData {
        std::mem::take(&mut *self.data.lock())
    }

    /// Copy the recorded data.
    pub fn snapshot(&self) -> TraceData {
        self.data.lock().clone()
    }
}

// ---------------------------------------------------------------------
// Per-phase latency histograms
// ---------------------------------------------------------------------

/// Aggregated latency statistics for one span name (one protocol phase).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name the statistics aggregate.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Shortest span, ns.
    pub min_ns: u64,
    /// Longest span, ns.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Mean span duration, ns.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregate spans into per-name latency statistics, sorted by name
/// (deterministic output for JSON cells).
pub fn phase_stats(spans: &[Span]) -> Vec<PhaseStat> {
    let mut by_name: std::collections::BTreeMap<&str, PhaseStat> =
        std::collections::BTreeMap::new();
    for s in spans {
        let d = s.duration();
        let e = by_name.entry(s.name).or_insert_with(|| PhaseStat {
            name: s.name.to_owned(),
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        e.count += 1;
        e.total_ns += d;
        e.min_ns = e.min_ns.min(d);
        e.max_ns = e.max_ns.max(d);
    }
    by_name.into_values().collect()
}

// ---------------------------------------------------------------------
// Process-wide capture default
// ---------------------------------------------------------------------

static CAPTURE_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Set the capture level newly created simulations start at. Read once
/// per `Sim::new`; used by the `--trace` flags on the benchmark binaries
/// (single-threaded setup). Tests that need tracing should prefer an
/// explicit per-run level (`JobRunner::traced`) — this global is racy across
/// concurrently constructed simulations by design, exactly like the
/// polled-progress default.
pub fn set_capture_default(level: TraceLevel) {
    CAPTURE_DEFAULT.store(level as u8, Ordering::Relaxed);
}

/// The capture level newly created simulations start at.
pub fn capture_default() -> TraceLevel {
    TraceLevel::from_u8(CAPTURE_DEFAULT.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, t0: Time, t1: Time) -> Span {
        Span { track: Track::Coordinator, name, t_start: t0, t_end: t1, args: Vec::new() }
    }

    #[test]
    fn levels_gate_enabled_and_detailed() {
        let t = Tracer::new(TraceLevel::Off);
        assert!(!t.enabled() && !t.detailed());
        t.set_level(TraceLevel::Phases);
        assert!(t.enabled() && !t.detailed());
        t.set_level(TraceLevel::Full);
        assert!(t.enabled() && t.detailed());
    }

    #[test]
    fn phase_stats_aggregate_by_name_sorted() {
        let spans =
            vec![span("b", 0, 10), span("a", 0, 4), span("b", 10, 40), span("a", 4, 6)];
        let stats = phase_stats(&spans);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 6);
        assert_eq!(stats[0].min_ns, 2);
        assert_eq!(stats[0].max_ns, 4);
        assert_eq!(stats[0].mean_ns(), 3);
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[1].max_ns, 30);
    }

    #[test]
    fn events_keep_legacy_categories() {
        assert_eq!(Event::NetConnect { a: 0, b: 1 }.category(), "net.connect");
        assert_eq!(Event::ClusterCrash.category(), "crash");
        assert_eq!(
            Event::Mark { category: "test", message: "x".into() }.category(),
            "test"
        );
        assert_eq!(Event::StorageDone { client: 3, id: 7 }.track(), Track::Storage(3));
        assert_eq!(
            Event::CoordinatorKilled { term: 1 }.category(),
            "fault.coordinator_kill"
        );
        assert_eq!(Event::CoordinatorKilled { term: 1 }.track(), Track::Coordinator);
        assert_eq!(
            Event::ElectionStart { term: 2, candidate: 0 }.track(),
            Track::Rank(0)
        );
        assert_eq!(Event::ElectionWon { term: 2, leader: 0 }.category(), "election.won");
        assert_eq!(
            Event::HeartbeatMissed { node: 3, term: 1 }.category(),
            "election.heartbeat_missed"
        );
    }

    #[test]
    fn take_empties_the_tracer() {
        let t = Tracer::new(TraceLevel::Phases);
        t.record_instant(5, Event::ClusterCrash);
        t.record_span(span("x", 0, 5));
        let data = t.take();
        assert_eq!(data.len(), 2);
        assert!(t.snapshot().is_empty());
        assert_eq!(data.spans_named("x").len(), 1);
        assert_eq!(data.instants_in("crash").len(), 1);
    }
}
