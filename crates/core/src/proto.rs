//! Protocol message kinds and serialization helpers.
//!
//! Out-of-band messages drive the global protocol; their `kind` field takes
//! one of the constants below. Serialization of structured payloads (group
//! plans, traffic vectors, MPI library state) uses the `gbcr-blcr` codec.

use bytes::Bytes;
use gbcr_blcr::codec::{CodecError, Decoder, Encoder};
use gbcr_mpi::{Msg, MpiCrState, Rank, Tag};

/// Coordinator → all ranks: an epoch begins; payload carries the plan.
pub const EPOCH_BEGIN: u32 = 1;
/// Rank → coordinator: epoch state installed.
pub const EPOCH_BEGIN_ACK: u32 = 2;
/// Coordinator → all ranks: group `b` is about to checkpoint (close gates).
pub const GROUP_START: u32 = 3;
/// Rank → coordinator: gate toward the starting group is closed.
pub const GROUP_START_ACK: u32 = 4;
/// Coordinator → members of group `b`: take your local checkpoints now.
pub const GROUP_GO: u32 = 5;
/// Member → coordinator: local checkpoint durable; `b` = individual time.
pub const RANK_DONE: u32 = 6;
/// Coordinator → all ranks: group `b` has completed its checkpoints.
pub const GROUP_DONE: u32 = 7;
/// Coordinator → all ranks: the global checkpoint is complete.
pub const EPOCH_END: u32 = 8;
/// Rank → coordinator: epoch state cleared.
pub const EPOCH_END_ACK: u32 = 9;
/// Coordinator → all ranks: report your communication statistics.
pub const TRAFFIC_QUERY: u32 = 10;
/// Rank → coordinator: serialized traffic vector.
pub const TRAFFIC_REPLY: u32 = 11;
/// Rank → coordinator: application body finished.
pub const FINISHED: u32 = 12;
/// Coordinator → all ranks: job over, leave the service loop.
pub const SHUTDOWN: u32 = 13;

/// In-band (data fabric) control kinds, carried in [`gbcr_mpi::CtrlWire`].
/// Checkpointing member → peer: "stop sending to me and acknowledge so I
/// can flush and tear down our connection" (§4.2's active side).
pub const FLUSH_REQ: u32 = 100;
/// Peer → member: flush acknowledged (§4.2's passive side). The latency of
/// this reply is what the §4.4 helper thread bounds for computing peers.
pub const FLUSH_ACK: u32 = 101;
/// Chandy-Lamport marker on a channel: "my snapshot precedes this point"
/// (§2.1's non-blocking alternative, idealized comparator).
pub const CL_MARKER: u32 = 102;

/// Coordinator → all ranks (Chandy-Lamport mode): take your snapshot now,
/// non-blocking, with markers and channel-state logging.
pub const CL_SNAPSHOT: u32 = 14;
/// Coordinator → one rank (uncoordinated mode): take an independent local
/// snapshot now (the coordinator only emulates each rank's local timer).
pub const UNCOORD_GO: u32 = 15;
/// Coordinator → all ranks: a phase deadline tripped; discard the epoch
/// attempt carried in `a` (an epoch word, see [`epoch_word`]) and roll back
/// to running state. The previous manifest stays authoritative.
pub const ABORT_EPOCH: u32 = 16;
/// Rank → coordinator: abort processed, rank is back to running state.
pub const ABORT_ACK: u32 = 17;

// ---------------------------------------------------------------------
// Control-plane liveness and failover (lease-based leader election)
// ---------------------------------------------------------------------

/// Leader → standbys: lease renewal. `a` = current term, `b` = heartbeat
/// sequence number within the term.
pub const HEARTBEAT: u32 = 18;
/// Candidate standby → all standbys: request a vote for term `a`; `b` is
/// the candidate's rank.
pub const ELECT_REQ: u32 = 19;
/// Standby → candidate standby: vote granted for term `a`; `b` is the
/// voter's rank. At most one vote per term per standby.
pub const ELECT_VOTE: u32 = 20;
/// New leader → standbys: term `a` won by rank `b`; adopt the term and
/// refresh your lease.
pub const LEADER_ANNOUNCE: u32 = 21;
/// New leader → all ranks: report your control-plane state for term `a`
/// so the takeover can rebuild the dead coordinator's bookkeeping.
pub const RECONCILE: u32 = 22;
/// Rank → coordinator: reconciliation report for term `a`. `b` is 1 if
/// this rank's application body already finished (its `FINISHED` message
/// may have died with the old coordinator); the payload carries the
/// rank's open epoch word, if any (see [`encode_reconcile_ack`]).
pub const RECONCILE_ACK: u32 = 23;
/// Leader → standbys: the job is complete, leave the standby loop.
pub const STANDBY_STOP: u32 = 24;

/// Render a protocol kind for diagnostics.
pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        EPOCH_BEGIN => "EPOCH_BEGIN",
        EPOCH_BEGIN_ACK => "EPOCH_BEGIN_ACK",
        GROUP_START => "GROUP_START",
        GROUP_START_ACK => "GROUP_START_ACK",
        GROUP_GO => "GROUP_GO",
        RANK_DONE => "RANK_DONE",
        GROUP_DONE => "GROUP_DONE",
        EPOCH_END => "EPOCH_END",
        EPOCH_END_ACK => "EPOCH_END_ACK",
        TRAFFIC_QUERY => "TRAFFIC_QUERY",
        TRAFFIC_REPLY => "TRAFFIC_REPLY",
        FINISHED => "FINISHED",
        SHUTDOWN => "SHUTDOWN",
        FLUSH_REQ => "FLUSH_REQ",
        FLUSH_ACK => "FLUSH_ACK",
        CL_MARKER => "CL_MARKER",
        CL_SNAPSHOT => "CL_SNAPSHOT",
        UNCOORD_GO => "UNCOORD_GO",
        ABORT_EPOCH => "ABORT_EPOCH",
        ABORT_ACK => "ABORT_ACK",
        HEARTBEAT => "HEARTBEAT",
        ELECT_REQ => "ELECT_REQ",
        ELECT_VOTE => "ELECT_VOTE",
        LEADER_ANNOUNCE => "LEADER_ANNOUNCE",
        RECONCILE => "RECONCILE",
        RECONCILE_ACK => "RECONCILE_ACK",
        STANDBY_STOP => "STANDBY_STOP",
        _ => "UNKNOWN",
    }
}

// ---------------------------------------------------------------------
// Epoch words: epoch number + retry counter in one OOB `a` field
// ---------------------------------------------------------------------

/// Bits of an epoch word holding the epoch number; the retry counter lives
/// above them.
const EPOCH_BITS: u32 = 48;

/// Pack an epoch number and a retry counter into one OOB `a` word. Try 0
/// encodes to the bare epoch number, so fault-free runs put exactly the
/// same bytes on the wire as before retries existed. Ranks treat the word
/// as opaque (install it, echo it back); only the coordinator and the
/// image-naming path split it.
pub fn epoch_word(epoch: u64, tries: u64) -> u64 {
    debug_assert!(epoch < 1 << EPOCH_BITS, "epoch {epoch} overflows the epoch word");
    debug_assert!(tries < 1 << (64 - EPOCH_BITS), "try counter {tries} overflows");
    epoch | (tries << EPOCH_BITS)
}

/// Split an epoch word into `(epoch, tries)`. A bare epoch number (as used
/// by the Chandy-Lamport and uncoordinated paths) splits to `(epoch, 0)`.
pub fn split_epoch(word: u64) -> (u64, u64) {
    (word & ((1 << EPOCH_BITS) - 1), word >> EPOCH_BITS)
}

// ---------------------------------------------------------------------
// Reconciliation payloads (failover takeover)
// ---------------------------------------------------------------------

/// Encode a [`RECONCILE_ACK`] payload: the rank's currently installed
/// (half-open) epoch word, if any.
pub fn encode_reconcile_ack(open: Option<u64>) -> Bytes {
    let mut e = Encoder::new();
    match open {
        Some(word) => {
            e.put_u64(1);
            e.put_u64(word);
        }
        None => e.put_u64(0),
    }
    e.finish()
}

/// Decode a [`RECONCILE_ACK`] payload into the open epoch word, if any.
pub fn decode_reconcile_ack(buf: Bytes) -> Result<Option<u64>, CodecError> {
    let mut d = Decoder::new(buf);
    let out = match d.get_u64()? {
        0 => None,
        1 => Some(d.get_u64()?),
        _ => return Err(CodecError::Corrupt("bad reconcile-ack discriminant")),
    };
    if d.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in reconcile ack"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Epoch manifests: the atomic commit record of the two-phase epoch commit
// ---------------------------------------------------------------------

/// Storage name of the manifest object for `(job, epoch)`.
pub fn manifest_name(job: &str, epoch: u64) -> String {
    format!("manifest/{job}/e{epoch}")
}

/// One manifest row: `(rank, image virtual size, image payload checksum)`.
pub type ManifestEntry = (u32, u64, u64);

/// Encode an epoch manifest: the commit record listing every rank's image.
pub fn encode_manifest(epoch: u64, entries: &[ManifestEntry]) -> Bytes {
    let mut e = Encoder::new();
    e.put_u64(epoch);
    e.put_u64(entries.len() as u64);
    for &(rank, size, checksum) in entries {
        e.put_u32(rank);
        e.put_u64(size);
        e.put_u64(checksum);
    }
    e.finish()
}

/// Decode an epoch manifest into `(epoch, entries)`.
pub fn decode_manifest(buf: Bytes) -> Result<(u64, Vec<ManifestEntry>), CodecError> {
    let mut d = Decoder::new(buf);
    let epoch = d.get_u64()?;
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("manifest length exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((d.get_u32()?, d.get_u64()?, d.get_u64()?));
    }
    if d.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in manifest"));
    }
    Ok((epoch, v))
}

// ---------------------------------------------------------------------
// Payload codecs (free functions: `Msg` and `MpiCrState` live in
// `gbcr-mpi`, the codec trait in `gbcr-blcr`, so blanket impls would be
// orphaned).
// ---------------------------------------------------------------------

/// Encode a group plan (`rank → group` map plus group count).
pub fn encode_plan(group_of: &[usize]) -> Bytes {
    let mut e = Encoder::new();
    e.put_u64(group_of.len() as u64);
    for &g in group_of {
        e.put_u32(u32::try_from(g).expect("group index fits u32"));
    }
    e.finish()
}

/// Decode a group plan payload.
pub fn decode_plan(buf: Bytes) -> Result<Vec<usize>, CodecError> {
    let mut d = Decoder::new(buf);
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("plan length exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.get_u32()? as usize);
    }
    Ok(v)
}

/// Encode a traffic vector `(peer, messages, bytes)*`.
pub fn encode_traffic(rows: &[(Rank, u64, u64)]) -> Bytes {
    let mut e = Encoder::new();
    e.put_u64(rows.len() as u64);
    for &(r, m, b) in rows {
        e.put_u32(r);
        e.put_u64(m);
        e.put_u64(b);
    }
    e.finish()
}

/// Decode a traffic vector.
pub fn decode_traffic(buf: Bytes) -> Result<Vec<(Rank, u64, u64)>, CodecError> {
    let mut d = Decoder::new(buf);
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("traffic length exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((d.get_u32()?, d.get_u64()?, d.get_u64()?));
    }
    Ok(v)
}

fn put_msg(e: &mut Encoder, m: &Msg) {
    e.put_bytes(&m.data);
    e.put_u64(m.size);
}

fn get_msg(d: &mut Decoder) -> Result<Msg, CodecError> {
    let data = d.get_bytes()?;
    let size = d.get_u64()?;
    Ok(Msg { data, size })
}

fn put_triples(e: &mut Encoder, rows: &[(Rank, Tag, Msg)]) {
    e.put_u64(rows.len() as u64);
    for (r, t, m) in rows {
        e.put_u32(*r);
        e.put_u32(*t);
        put_msg(e, m);
    }
}

fn get_triples(d: &mut Decoder) -> Result<Vec<(Rank, Tag, Msg)>, CodecError> {
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("triple count exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((d.get_u32()?, d.get_u32()?, get_msg(d)?));
    }
    Ok(v)
}

fn put_seq_pairs(e: &mut Encoder, rows: &[(Rank, u64)]) {
    e.put_u64(rows.len() as u64);
    for &(r, s) in rows {
        e.put_u32(r);
        e.put_u64(s);
    }
}

fn get_seq_pairs(d: &mut Decoder) -> Result<Vec<(Rank, u64)>, CodecError> {
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("pair count exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((d.get_u32()?, d.get_u64()?));
    }
    Ok(v)
}

fn put_deferred(e: &mut Encoder, rows: &[(Rank, Tag, Msg, u64)]) {
    e.put_u64(rows.len() as u64);
    for (r, t, m, u) in rows {
        e.put_u32(*r);
        e.put_u32(*t);
        put_msg(e, m);
        e.put_u64(*u);
    }
}

fn get_deferred(d: &mut Decoder) -> Result<Vec<(Rank, Tag, Msg, u64)>, CodecError> {
    let n = d.get_u64()? as usize;
    if n > d.remaining() {
        return Err(CodecError::Corrupt("deferred count exceeds payload"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((d.get_u32()?, d.get_u32()?, get_msg(d)?, d.get_u64()?));
    }
    Ok(v)
}

/// Image payload: the application's registered state plus the
/// checkpointable MPI library state.
pub fn encode_image_payload(app_state: &Bytes, mpi_state: &MpiCrState) -> Bytes {
    let mut e = Encoder::new();
    e.put_bytes(app_state);
    put_triples(&mut e, &mpi_state.inbound);
    put_deferred(&mut e, &mpi_state.deferred_eager);
    put_seq_pairs(&mut e, &mpi_state.send_seqs);
    put_seq_pairs(&mut e, &mpi_state.recv_watermarks);
    e.put_u64(mpi_state.coll_seqs.len() as u64);
    for &(c, q) in &mpi_state.coll_seqs {
        e.put_u32(c);
        e.put_u32(q);
    }
    e.finish()
}

/// Inverse of [`encode_image_payload`].
pub fn decode_image_payload(buf: Bytes) -> Result<(Bytes, MpiCrState), CodecError> {
    let mut d = Decoder::new(buf);
    let app_state = d.get_bytes()?;
    let inbound = get_triples(&mut d)?;
    let deferred_eager = get_deferred(&mut d)?;
    let send_seqs = get_seq_pairs(&mut d)?;
    let recv_watermarks = get_seq_pairs(&mut d)?;
    let nc = d.get_u64()? as usize;
    if nc > d.remaining() {
        return Err(CodecError::Corrupt("coll-seq count exceeds payload"));
    }
    let mut coll_seqs = Vec::with_capacity(nc);
    for _ in 0..nc {
        coll_seqs.push((d.get_u32()?, d.get_u32()?));
    }
    if d.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in image payload"));
    }
    Ok((
        app_state,
        MpiCrState { inbound, deferred_eager, send_seqs, recv_watermarks, coll_seqs },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trip() {
        let plan = vec![0usize, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(decode_plan(encode_plan(&plan)).unwrap(), plan);
    }

    #[test]
    fn traffic_round_trip() {
        let t = vec![(1u32, 5u64, 500u64), (7, 1, 16)];
        assert_eq!(decode_traffic(encode_traffic(&t)).unwrap(), t);
    }

    #[test]
    fn image_payload_round_trip() {
        let app = Bytes::from_static(b"app-state");
        let mpi = MpiCrState {
            inbound: vec![(3, 7, Msg::with_size(&b"x"[..], 1024))],
            deferred_eager: vec![(1, 2, Msg::u64(9), 4), (1, 2, Msg::u64(10), 5)],
            send_seqs: vec![(1, 6), (3, 2)],
            recv_watermarks: vec![(3, 9)],
            coll_seqs: vec![(0, 12)],
        };
        let (a2, m2) = decode_image_payload(encode_image_payload(&app, &mpi)).unwrap();
        assert_eq!(a2, app);
        assert_eq!(m2, mpi);
    }

    #[test]
    fn corrupt_plan_is_rejected() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        assert!(decode_plan(e.finish()).is_err());
    }

    #[test]
    fn kind_names_cover_protocol() {
        for k in 1..=24 {
            assert_ne!(kind_name(k), "UNKNOWN", "kind {k}");
        }
        assert_eq!(kind_name(99), "UNKNOWN");
    }

    #[test]
    fn epoch_word_try_zero_is_the_bare_epoch() {
        assert_eq!(epoch_word(5, 0), 5, "fault-free wire bytes must not change");
        assert_eq!(split_epoch(5), (5, 0));
        assert_eq!(split_epoch(epoch_word(5, 3)), (5, 3));
        assert_ne!(epoch_word(5, 1), epoch_word(5, 2));
    }

    #[test]
    fn reconcile_ack_round_trip() {
        assert_eq!(decode_reconcile_ack(encode_reconcile_ack(None)).unwrap(), None);
        let word = epoch_word(7, 2);
        assert_eq!(
            decode_reconcile_ack(encode_reconcile_ack(Some(word))).unwrap(),
            Some(word)
        );
        let mut e = Encoder::new();
        e.put_u64(9);
        assert!(decode_reconcile_ack(e.finish()).is_err());
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let entries = vec![(0u32, 1_000_000u64, 0xDEAD_BEEFu64), (1, 2_000_000, 7)];
        let (e, back) = decode_manifest(encode_manifest(3, &entries)).unwrap();
        assert_eq!(e, 3);
        assert_eq!(back, entries);

        let mut enc = Encoder::new();
        enc.put_u64(3);
        enc.put_u64(u64::MAX); // absurd entry count
        assert!(decode_manifest(enc.finish()).is_err());

        let truncated = encode_manifest(3, &entries).slice(0..20);
        assert!(decode_manifest(truncated).is_err());
    }
}
