//! Checkpoint group formation (paper §4.1).

use gbcr_mpi::Rank;

/// How checkpoint groups are formed for an epoch.
#[derive(Debug, Clone)]
pub enum Formation {
    /// Groups of `group_size` consecutive global ranks (the paper's static
    /// formation: "based on a user-defined group size and the global rank
    /// of each process").
    Static {
        /// Number of processes per group (last group may be smaller).
        group_size: u32,
    },
    /// Analyze measured communication traffic at runtime: build a weighted
    /// communication graph, take the transitive closure of *frequent*
    /// communication (union-find over edges carrying at least
    /// `frequent_fraction` of the busiest edge's message count), and use
    /// those closures as groups. If the closure analysis degenerates into
    /// one global group (the application "mainly does global
    /// communication"), fall back to static formation with
    /// `fallback_group_size`.
    Dynamic {
        /// Edge weight threshold as a fraction of the maximum edge weight.
        frequent_fraction: f64,
        /// Static group size used when the pattern is global.
        fallback_group_size: u32,
        /// Closures larger than this also trigger the static fallback
        /// (a near-global closure gains nothing and costs analysis).
        max_group_size: u32,
    },
    /// Explicit groups (each rank exactly once).
    Explicit(Vec<Vec<Rank>>),
}

impl Formation {
    /// Regular (non-group) coordinated checkpointing — the paper's baseline
    /// \[14] — is group-based checkpointing with a single all-rank group.
    pub fn regular(n: u32) -> Self {
        Formation::Static { group_size: n }
    }
}

/// One rank's measured traffic: `(peer, messages, bytes)` rows.
pub type TrafficRows = Vec<(Rank, u64, u64)>;

/// A concrete partition of the job's ranks into ordered checkpoint groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    groups: Vec<Vec<Rank>>,
    group_of: Vec<usize>,
}

impl GroupPlan {
    /// Build a plan from explicit groups; validates that every rank in
    /// `0..n` appears exactly once.
    pub fn new(n: u32, groups: Vec<Vec<Rank>>) -> Self {
        let mut group_of = vec![usize::MAX; n as usize];
        for (gi, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "empty checkpoint group {gi}");
            for &r in g {
                assert!(r < n, "rank {r} out of range");
                assert_eq!(group_of[r as usize], usize::MAX, "rank {r} in two groups");
                group_of[r as usize] = gi;
            }
        }
        assert!(
            group_of.iter().all(|&g| g != usize::MAX),
            "some rank belongs to no checkpoint group"
        );
        GroupPlan { groups, group_of }
    }

    /// Static formation by rank.
    pub fn by_size(n: u32, group_size: u32) -> Self {
        let group_size = group_size.clamp(1, n);
        let groups = (0..n)
            .collect::<Vec<_>>()
            .chunks(group_size as usize)
            .map(<[Rank]>::to_vec)
            .collect();
        Self::new(n, groups)
    }

    /// Dynamic formation from per-rank traffic vectors
    /// (`traffic[r] = [(peer, msgs, bytes)]`). See [`Formation::Dynamic`].
    pub fn dynamic(
        n: u32,
        traffic: &[TrafficRows],
        frequent_fraction: f64,
        fallback_group_size: u32,
        max_group_size: u32,
    ) -> Self {
        assert_eq!(traffic.len(), n as usize, "traffic vector per rank required");
        // Symmetrize the message-count matrix.
        let idx = |a: Rank, b: Rank| a as usize * n as usize + b as usize;
        let mut w = vec![0u64; n as usize * n as usize];
        for (r, rows) in traffic.iter().enumerate() {
            for &(peer, msgs, _bytes) in rows {
                w[idx(r as Rank, peer)] += msgs;
                w[idx(peer, r as Rank)] += msgs;
            }
        }
        let max_w = w.iter().copied().max().unwrap_or(0);
        if max_w == 0 {
            // No traffic at all: embarrassingly parallel; static grouping.
            return Self::by_size(n, fallback_group_size);
        }
        let threshold = ((max_w as f64) * frequent_fraction).max(1.0) as u64;
        // Union-find over frequent edges: the transitive closure of
        // frequently-communicating processes.
        let mut uf = UnionFind::new(n as usize);
        for a in 0..n {
            for b in (a + 1)..n {
                if w[idx(a, b)] >= threshold {
                    uf.union(a as usize, b as usize);
                }
            }
        }
        let mut closures: Vec<Vec<Rank>> = Vec::new();
        let mut root_to_group = std::collections::HashMap::<usize, usize>::new();
        for r in 0..n {
            let root = uf.find(r as usize);
            let gi = *root_to_group.entry(root).or_insert_with(|| {
                closures.push(Vec::new());
                closures.len() - 1
            });
            closures[gi].push(r);
        }
        let biggest = closures.iter().map(Vec::len).max().unwrap_or(0) as u32;
        if biggest > max_group_size {
            // Mainly global communication: fall back to static formation to
            // limit the analysis cost (paper §4.1).
            return Self::by_size(n, fallback_group_size);
        }
        Self::new(n, closures)
    }

    /// Build the plan a [`Formation`] describes (dynamic needs traffic).
    pub fn from_formation(
        n: u32,
        formation: &Formation,
        traffic: Option<&[TrafficRows]>,
    ) -> Self {
        match formation {
            Formation::Static { group_size } => Self::by_size(n, *group_size),
            Formation::Dynamic { frequent_fraction, fallback_group_size, max_group_size } => {
                let t = traffic.expect("dynamic formation requires traffic data");
                Self::dynamic(n, t, *frequent_fraction, *fallback_group_size, *max_group_size)
            }
            Formation::Explicit(groups) => Self::new(n, groups.clone()),
        }
    }

    /// The ordered groups.
    pub fn groups(&self) -> &[Vec<Rank>] {
        &self.groups
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Which group `rank` belongs to.
    pub fn group_of(&self, rank: Rank) -> usize {
        self.group_of[rank as usize]
    }

    /// The full `rank → group` map.
    pub fn group_map(&self) -> &[usize] {
        &self.group_of
    }

    /// Members of group `g`.
    pub fn members(&self, g: usize) -> &[Rank] {
        &self.groups[g]
    }

    /// Re-form the plan over the survivors of `failed`: dead ranks are
    /// struck from their groups (groups emptied entirely are dropped) and
    /// appended as trailing singleton groups, keeping the "every rank in
    /// exactly one group" invariant the wire encoding relies on while
    /// guaranteeing no surviving group ever gates on — or waits for — a
    /// dead member. With `failed` empty this is the identity.
    pub fn reform(&self, failed: &[Rank]) -> Self {
        if failed.is_empty() {
            return self.clone();
        }
        let n = self.group_of.len() as u32;
        let mut groups: Vec<Vec<Rank>> = self
            .groups
            .iter()
            .map(|g| g.iter().copied().filter(|r| !failed.contains(r)).collect::<Vec<_>>())
            .filter(|g| !g.is_empty())
            .collect();
        let mut dead: Vec<Rank> = failed.to_vec();
        dead.sort_unstable();
        dead.dedup();
        for r in dead {
            groups.push(vec![r]);
        }
        Self::new(n, groups)
    }

    /// Rebuild a plan from a decoded `rank → group` map.
    pub fn from_map(group_of: Vec<usize>) -> Self {
        let n_groups = group_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); n_groups];
        for (r, &g) in group_of.iter().enumerate() {
            groups[g].push(r as Rank);
        }
        Self::new(group_of.len() as u32, groups)
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root index under the smaller so group order
            // follows rank order deterministically.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_size_partitions_in_rank_order() {
        let p = GroupPlan::by_size(8, 4);
        assert_eq!(p.groups(), &[vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert_eq!(p.group_of(5), 1);
    }

    #[test]
    fn by_size_handles_remainders_and_degenerate_sizes() {
        let p = GroupPlan::by_size(7, 3);
        assert_eq!(p.groups(), &[vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
        let all = GroupPlan::by_size(4, 100);
        assert_eq!(all.group_count(), 1);
        let ones = GroupPlan::by_size(3, 0);
        assert_eq!(ones.group_count(), 3, "size 0 clamps to 1");
    }

    #[test]
    #[should_panic(expected = "in two groups")]
    fn duplicate_rank_rejected() {
        GroupPlan::new(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "no checkpoint group")]
    fn missing_rank_rejected() {
        GroupPlan::new(3, vec![vec![0, 1]]);
    }

    #[test]
    fn dynamic_finds_communication_closures() {
        // 8 ranks: pairs (0,1)(2,3)(4,5)(6,7) talk heavily; a whisper of
        // cross-pair traffic must not merge them.
        let n = 8u32;
        let mut traffic = vec![Vec::new(); 8];
        for base in [0u32, 2, 4, 6] {
            traffic[base as usize].push((base + 1, 1000, 1 << 20));
        }
        traffic[0].push((7, 3, 100)); // infrequent
        let p = GroupPlan::dynamic(n, &traffic, 0.1, 4, 6);
        assert_eq!(
            p.groups(),
            &[vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]],
            "closures follow frequent edges only"
        );
    }

    #[test]
    fn dynamic_transitivity_chains_groups() {
        // 0-1, 1-2 heavy: closure {0,1,2}; 3 isolated.
        let mut traffic = vec![Vec::new(); 4];
        traffic[0].push((1, 500, 0));
        traffic[1].push((2, 500, 0));
        let p = GroupPlan::dynamic(4, &traffic, 0.5, 2, 4);
        assert_eq!(p.groups(), &[vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn dynamic_falls_back_on_global_patterns() {
        // All-to-all equal traffic: one global closure → fallback static 2.
        let n = 6u32;
        let mut traffic = vec![Vec::new(); 6];
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    traffic[a as usize].push((b, 100, 0));
                }
            }
        }
        let p = GroupPlan::dynamic(n, &traffic, 0.5, 2, 4);
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.groups()[0], vec![0, 1]);
    }

    #[test]
    fn dynamic_no_traffic_uses_fallback() {
        let traffic = vec![Vec::new(); 4];
        let p = GroupPlan::dynamic(4, &traffic, 0.5, 2, 4);
        assert_eq!(p.groups(), &[vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn map_round_trip() {
        let p = GroupPlan::by_size(6, 2);
        let p2 = GroupPlan::from_map(p.group_map().to_vec());
        assert_eq!(p, p2);
    }

    #[test]
    fn reform_strikes_dead_ranks_into_singletons() {
        let p = GroupPlan::by_size(8, 4);
        let r = p.reform(&[1, 4, 5]);
        assert_eq!(r.groups(), &[vec![0, 2, 3], vec![6, 7], vec![1], vec![4], vec![5]]);
        assert_eq!(r.group_of(6), 1);
        assert_eq!(r.group_of(1), 2, "dead ranks trail in rank order");
    }

    #[test]
    fn reform_drops_fully_dead_groups_and_is_identity_when_no_failures() {
        let p = GroupPlan::by_size(6, 2);
        assert_eq!(p.reform(&[]), p);
        let r = p.reform(&[2, 3]);
        assert_eq!(r.groups(), &[vec![0, 1], vec![4, 5], vec![2], vec![3]]);
    }

    #[test]
    fn regular_formation_is_one_group() {
        let p = GroupPlan::from_formation(32, &Formation::regular(32), None);
        assert_eq!(p.group_count(), 1);
        assert_eq!(p.members(0).len(), 32);
    }
}
